#!/usr/bin/env bash
# End-to-end smoke of the live write path (the "mutate-smoke" CI gate):
# starts orx_serve with --mutate on an ephemeral port, drives a mixed
# 50/50 read/write load, then checks the accounting: zero dropped
# (unanswered) frames, at least MIN_PUBLICATIONS snapshot publications
# (the builder actually consumed the log and hot-swapped), no read-p99
# cliff across publication windows, and a clean SIGTERM drain that
# flushes every acknowledged batch into a published snapshot.
#
# usage: tools/mutate_smoke.sh [build-dir] [load-seconds] [connections]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
LOAD_SECONDS="${2:-10}"
CONNECTIONS="${3:-64}"
SCALE="${ORX_MUTATE_SMOKE_SCALE:-0.05}"
MIN_PUBLICATIONS="${ORX_MUTATE_SMOKE_MIN_PUBLICATIONS:-20}"
# A publication stall would park read latencies for a full swap; allow
# windows to vary but not by more than this factor.
MAX_P99_CLIFF="${ORX_MUTATE_SMOKE_MAX_P99_CLIFF:-10}"
SERVE_LOG="$(mktemp)"
BENCH_JSON="${ORX_MUTATE_SMOKE_JSON:-BENCH_mutate.json}"
ulimit -n 4096 || true

"$BUILD_DIR/tools/orx_serve" --port 0 --scale "$SCALE" --mutate \
  >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT

PORT=""
for _ in $(seq 1 120); do
  PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$SERVE_LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
  sleep 0.5
done
[ -n "$PORT" ] || { echo "server never reported its port"; cat "$SERVE_LOG"; exit 1; }
grep -q "write path on" "$SERVE_LOG" || {
  echo "FAILED: server did not enable the write path"; cat "$SERVE_LOG"; exit 1; }
echo "=== orx_serve up on port $PORT (write path on) ==="

echo "=== mixed load: $CONNECTIONS connections, 50/50 read/write, ${LOAD_SECONDS}s ==="
LOAD_OUT="$("$BUILD_DIR/tools/orx_client" --mode load --port "$PORT" \
  --scale "$SCALE" --connections "$CONNECTIONS" --threads 4 \
  --duration "$LOAD_SECONDS" --write-fraction 0.5 \
  --json "$BENCH_JSON" | tee /dev/stderr)"

# The load client already fails on dropped frames and on a write path
# that never publishes. Additionally require a sustained publication
# cadence and a bounded read-p99 spread across windows.
PUBLICATIONS="$(sed -n 's/.*snapshots_published=\([0-9]*\).*/\1/p' <<<"$LOAD_OUT")"
if [ -z "$PUBLICATIONS" ] || [ "$PUBLICATIONS" -lt "$MIN_PUBLICATIONS" ]; then
  echo "FAILED: expected >= $MIN_PUBLICATIONS snapshot publications, saw '${PUBLICATIONS:-unparsed}'"
  exit 1
fi
CLIFF_OK="$(sed -n 's/^read p99 by window: min=\([0-9.]*\)ms max=\([0-9.]*\)ms.*/\1 \2/p' <<<"$LOAD_OUT" \
  | awk -v bound="$MAX_P99_CLIFF" '{ exit !($1 > 0 && $2 <= bound * $1) }' \
  && echo yes || echo no)"
if [ "$CLIFF_OK" != "yes" ]; then
  echo "FAILED: read p99 cliff across publication windows (bound ${MAX_P99_CLIFF}x)"
  exit 1
fi
echo "=== $PUBLICATIONS snapshot publications, read p99 within ${MAX_P99_CLIFF}x across windows ==="

echo "=== SIGTERM drain ==="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 60); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAILED: server did not exit after SIGTERM"
  cat "$SERVE_LOG"
  exit 1
fi
wait "$SERVE_PID" || { echo "FAILED: server exited non-zero"; cat "$SERVE_LOG"; exit 1; }
grep -q "unanswered=0" "$SERVE_LOG" || {
  echo "FAILED: drain left unanswered frames"; cat "$SERVE_LOG"; exit 1; }
grep -q "write path drained" "$SERVE_LOG" || {
  echo "FAILED: write path did not drain"; cat "$SERVE_LOG"; exit 1; }
tail -4 "$SERVE_LOG"
echo "mutate-smoke: PASS"
