#!/usr/bin/env bash
# One-command data-race check: builds the concurrency-sensitive tests
# under ThreadSanitizer and runs the ctest label that covers the thread
# pool, the rank-cache parallel build, logging, the latency histogram,
# the fused SpMV power-iteration kernel, and the serving subsystem.
#
#   tools/check_tsan.sh [build-dir]        (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DORX_SANITIZE=thread \
  -DORX_BUILD_BENCHMARKS=OFF \
  -DORX_BUILD_EXAMPLES=OFF
# Keep this target list in sync with the `tsan` label in
# tests/CMakeLists.txt, or newly labeled tests show up as "Not Run".
cmake --build "$BUILD_DIR" -j \
  --target mutex_test thread_pool_test histogram_test logging_test \
           rank_cache_test concurrent_search_test serve_test net_test \
           mutate_test epoch_reclaim_test spmv_kernel_test \
           batch_kernel_test approx_tier_test
ctest --test-dir "$BUILD_DIR" -L tsan --output-on-failure
echo "TSan suite passed."
