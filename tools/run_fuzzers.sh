#!/usr/bin/env bash
# Builds every fuzz harness under ASan+UBSan and runs each over its
# checked-in corpus (fuzz/corpus/<target>/) plus a time-budgeted mutation
# pass. Any crash, sanitizer report, leak, or harness trap fails the
# script — this is the "fuzz-smoke" CI gate.
#
# usage: tools/run_fuzzers.sh [seconds-per-target]   (default 30)
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_PER_TARGET="${1:-30}"
BUILD_DIR="${ORX_FUZZ_BUILD_DIR:-build-fuzz}"
TARGETS=(dblp_xml graph_tsv dataset_io container rank_cache text net_frame
  mutation)

cmake -B "$BUILD_DIR" -S . \
  -DORX_FUZZ=ON \
  -DORX_SANITIZE=address,undefined \
  -DORX_BUILD_TESTS=OFF -DORX_BUILD_BENCHMARKS=OFF -DORX_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j \
  --target "${TARGETS[@]/%/_fuzz}"

status=0
for target in "${TARGETS[@]}"; do
  echo "=== ${target}_fuzz: corpus replay + ${SECONDS_PER_TARGET}s mutations ==="
  if ! ASAN_OPTIONS=abort_on_error=1:detect_leaks=1:allocator_may_return_null=0 \
       UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
       "$BUILD_DIR/fuzz/${target}_fuzz" "fuzz/corpus/${target}" \
         -max_total_time="$SECONDS_PER_TARGET" -seed=1; then
    echo "FAILED: ${target}_fuzz"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "all ${#TARGETS[@]} fuzz targets clean"
fi
exit $status
