// orx_cli — interactive shell over the ORX library: generate/load/parse a
// dataset, run authority-flow queries, explain results, give relevance
// feedback, and watch the query vector and transfer rates evolve. Also
// usable non-interactively: `echo "figure1\nquery olap\nexplain 1" | orx_cli`.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/rank_cache.h"
#include "core/searcher.h"
#include "datasets/bio_generator.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_xml.h"
#include "datasets/figure1.h"
#include "datasets/zipf.h"
#include "explain/explainer.h"
#include "graph/validate.h"
#include "io/container.h"
#include "io/dataset_io.h"
#include "io/graph_tsv.h"
#include "io/snapshot_io.h"
#include "net/net_util.h"
#include "reformulate/reformulator.h"
#include "serve/search_service.h"
#include "serve/snapshot.h"
#include "text/query.h"

namespace {

using namespace orx;

constexpr const char* kHelp = R"(commands:
  figure1                     load the paper's Figure 1 example graph
  generate dblp <papers>      generate a synthetic DBLP dataset
  generate bio <pubs>         generate a synthetic biological dataset
  parse <dblp.xml>            shred a DBLP XML file into a dataset
  load <file> | save <file>   binary dataset persistence (.orxd)
  load-tsv <f> | save-tsv <f> human-editable TSV persistence
  dot <rank> [file]           Graphviz export of a result's explanation
  info                        dataset statistics
  rates gt | uniform [v] | show   set/show authority transfer rates
  filter <TypeLabel> | off    restrict results to one node type
  k <n>                       result-list size (default 10)
  precompute [threads [max-terms]]  build + attach per-keyword rank cache
  precompute off              detach the rank cache
  serve-bench [clients [queries]] [--max_batch_size=N]
              [--max_batch_delay_ms=X]   load-test a SearchService
  pack <f.orxd2> [f.orxc2]    write the dataset (and attached rank cache)
                              as zero-copy mmap containers (orx_serve
                              --dataset / --rank-cache attach them)
  validate [file]             deep structural check of an .orxd dataset,
                              .orxc rank cache, or .orxd2/.orxc2 mmap
                              container (no file: current dataset)
  query <keywords...>         run ObjectRank2
  explain <rank>              explaining subgraph of a result
  feedback <rank> [rank...]   reformulate from relevant results
  show query                  current (possibly reformulated) query vector
  help | quit
)";

struct CliState {
  std::unique_ptr<datasets::Dataset> dataset;
  std::optional<datasets::DblpTypes> dblp_types;
  std::optional<datasets::BioTypes> bio_types;
  std::unique_ptr<core::Searcher> searcher;
  std::unique_ptr<core::RankCache> rank_cache;
  graph::TransferRates rates;
  text::QueryVector query;
  core::SearchOptions search_options;
  std::vector<core::ScoredNode> last_top;
  std::vector<double> last_scores;
  bool have_result = false;

  void AdoptDataset(datasets::Dataset dataset_in) {
    dataset = std::make_unique<datasets::Dataset>(std::move(dataset_in));
    if (!dataset->finalized()) dataset->Finalize();
    dblp_types.reset();
    bio_types.reset();
    if (auto t = datasets::DblpTypesFromSchema(dataset->schema()); t.ok()) {
      dblp_types = *t;
    } else if (auto b = datasets::BioTypesFromSchema(dataset->schema());
               b.ok()) {
      bio_types = *b;
    }
    searcher = std::make_unique<core::Searcher>(
        dataset->data(), dataset->authority(), dataset->corpus());
    rank_cache.reset();  // a cache is only valid for the graph it was built on
    SetGroundTruthRates();
    search_options = core::SearchOptions{};
    last_top.clear();
    have_result = false;
    std::printf("dataset '%s': %zu nodes, %zu edges\n",
                dataset->name().c_str(), dataset->data().num_nodes(),
                dataset->data().num_edges());
  }

  void SetGroundTruthRates() {
    if (dblp_types.has_value()) {
      rates = datasets::DblpGroundTruthRates(dataset->schema(), *dblp_types);
    } else if (bio_types.has_value()) {
      rates = datasets::BioGroundTruthRates(dataset->schema(), *bio_types);
    } else {
      rates = graph::TransferRates(dataset->schema(), 0.3);
      rates.CapOutgoingSums(dataset->schema());
    }
  }

  bool Ready() const {
    if (dataset == nullptr) {
      std::printf("no dataset loaded; try 'figure1' or 'generate dblp "
                  "2000'\n");
      return false;
    }
    return true;
  }
};

void PrintTop(const CliState& state) {
  const graph::DataGraph& data = state.dataset->data();
  int rank = 1;
  for (const core::ScoredNode& r : state.last_top) {
    std::printf("%3d. [%.5f] %-14s %.80s\n", rank++, r.score,
                data.schema().NodeTypeLabel(data.NodeType(r.node)).c_str(),
                data.DisplayLabel(r.node).c_str());
  }
}

void DoQuery(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  text::QueryVector query(text::ParseQuery(args));
  if (query.empty()) {
    std::printf("usage: query <keywords...>\n");
    return;
  }
  state.query = std::move(query);
  auto result = state.searcher->Search(state.query, state.rates,
                                       state.search_options);
  if (!result.ok()) {
    std::printf("search failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("base set %zu, %d iterations, %.1f ms%s\n",
              result->base_set_size, result->iterations,
              result->seconds * 1e3,
              result->from_cache ? " (rank cache)" : "");
  state.last_top = result->top;
  state.last_scores = std::move(result->scores);
  state.have_result = true;
  PrintTop(state);
}

graph::NodeId ResolveRank(const CliState& state, const std::string& token) {
  int rank = std::atoi(token.c_str());
  if (rank < 1 || static_cast<size_t>(rank) > state.last_top.size()) {
    return graph::kInvalidNodeId;
  }
  return state.last_top[static_cast<size_t>(rank) - 1].node;
}

void DoExplain(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  if (!state.have_result) {
    std::printf("run a query first\n");
    return;
  }
  const graph::NodeId target = ResolveRank(state, args);
  if (target == graph::kInvalidNodeId) {
    std::printf("usage: explain <rank 1..%zu>\n", state.last_top.size());
    return;
  }
  auto base = core::BuildBaseSet(state.dataset->corpus(), state.query,
                                 core::BaseSetMode::kIrWeighted,
                                 state.search_options.bm25);
  if (!base.ok()) {
    std::printf("%s\n", base.status().ToString().c_str());
    return;
  }
  explain::Explainer explainer(state.dataset->data(),
                               state.dataset->authority());
  auto explanation = explainer.Explain(
      target, *base, state.last_scores, state.rates,
      state.search_options.objectrank.damping, explain::ExplainOptions{});
  if (!explanation.ok()) {
    std::printf("explain failed: %s\n",
                explanation.status().ToString().c_str());
    return;
  }
  std::printf("%s", explanation->subgraph.ToString(state.dataset->data())
                        .c_str());
  std::printf("(%d explaining fixpoint iterations, %.1f + %.1f ms)\n",
              explanation->iterations,
              explanation->construction_seconds * 1e3,
              explanation->adjustment_seconds * 1e3);
}

void DoDot(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  if (!state.have_result) {
    std::printf("run a query first\n");
    return;
  }
  auto tokens = SplitWhitespace(args);
  if (tokens.empty()) {
    std::printf("usage: dot <rank> [file.dot]\n");
    return;
  }
  const graph::NodeId target = ResolveRank(state, tokens[0]);
  if (target == graph::kInvalidNodeId) {
    std::printf("usage: dot <rank 1..%zu> [file.dot]\n",
                state.last_top.size());
    return;
  }
  auto base = core::BuildBaseSet(state.dataset->corpus(), state.query,
                                 core::BaseSetMode::kIrWeighted,
                                 state.search_options.bm25);
  if (!base.ok()) {
    std::printf("%s\n", base.status().ToString().c_str());
    return;
  }
  explain::Explainer explainer(state.dataset->data(),
                               state.dataset->authority());
  auto explanation = explainer.Explain(
      target, *base, state.last_scores, state.rates,
      state.search_options.objectrank.damping, explain::ExplainOptions{});
  if (!explanation.ok()) {
    std::printf("explain failed: %s\n",
                explanation.status().ToString().c_str());
    return;
  }
  const std::string dot =
      explanation->subgraph.ToDot(state.dataset->data());
  if (tokens.size() > 1) {
    std::ofstream out(tokens[1]);
    out << dot;
    std::printf(out ? "wrote %s\n" : "cannot write %s\n",
                tokens[1].c_str());
  } else {
    std::printf("%s", dot.c_str());
  }
}

void DoFeedback(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  if (!state.have_result) {
    std::printf("run a query first\n");
    return;
  }
  std::vector<graph::NodeId> feedback;
  for (const std::string& token : SplitWhitespace(args)) {
    const graph::NodeId node = ResolveRank(state, token);
    if (node == graph::kInvalidNodeId) {
      std::printf("bad rank '%s'\n", token.c_str());
      return;
    }
    feedback.push_back(node);
  }
  if (feedback.empty()) {
    std::printf("usage: feedback <rank> [rank...]\n");
    return;
  }
  auto base = core::BuildBaseSet(state.dataset->corpus(), state.query,
                                 core::BaseSetMode::kIrWeighted,
                                 state.search_options.bm25);
  if (!base.ok()) {
    std::printf("%s\n", base.status().ToString().c_str());
    return;
  }
  reform::Reformulator reformulator(state.dataset->data(),
                                    state.dataset->authority(),
                                    state.dataset->corpus());
  auto result = reformulator.Reformulate(state.query, state.rates, *base,
                                         state.last_scores, feedback,
                                         reform::ReformulationOptions{});
  if (!result.ok()) {
    std::printf("reformulation failed: %s\n",
                result.status().ToString().c_str());
    return;
  }
  state.query = result->query;
  state.rates = result->rates;
  std::printf("query  -> %s\n", state.query.ToString().c_str());
  std::printf("rates  -> %s\n",
              state.rates.ToString(state.dataset->schema()).c_str());
  std::printf("rerunning...\n");
  auto rerun = state.searcher->Search(state.query, state.rates,
                                      state.search_options);
  if (rerun.ok()) {
    state.last_top = rerun->top;
    state.last_scores = std::move(rerun->scores);
    PrintTop(state);
  }
}

void DoRates(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  auto tokens = SplitWhitespace(args);
  if (tokens.empty() || tokens[0] == "show") {
    std::printf("%s\n", state.rates.ToString(state.dataset->schema())
                            .c_str());
    return;
  }
  if (tokens[0] == "gt") {
    state.SetGroundTruthRates();
  } else if (tokens[0] == "uniform") {
    const double value = tokens.size() > 1 ? std::atof(tokens[1].c_str())
                                           : 0.3;
    if (value < 0.0 || value > 1.0) {
      std::printf("rate must be in [0,1]\n");
      return;
    }
    state.rates = graph::TransferRates(state.dataset->schema(), value);
    state.rates.CapOutgoingSums(state.dataset->schema());
  } else {
    std::printf("usage: rates gt | uniform [v] | show\n");
    return;
  }
  std::printf("%s\n", state.rates.ToString(state.dataset->schema()).c_str());
}

void DoFilter(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  const std::string label(StripWhitespace(args));
  if (label == "off" || label.empty()) {
    state.search_options.result_type.reset();
    std::printf("filter off\n");
    return;
  }
  auto type = state.dataset->schema().NodeTypeByLabel(label);
  if (!type.ok()) {
    std::printf("%s\n", type.status().ToString().c_str());
    return;
  }
  state.search_options.result_type = *type;
  std::printf("filter: %s\n", label.c_str());
}

void DoPrecompute(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  auto tokens = SplitWhitespace(args);
  if (!tokens.empty() && tokens[0] == "off") {
    state.searcher->AttachRankCache(nullptr);
    state.rank_cache.reset();
    std::printf("rank cache detached\n");
    return;
  }
  int threads = static_cast<int>(ThreadPool::HardwareThreads());
  if (!tokens.empty()) {
    threads = std::atoi(tokens[0].c_str());
    if (threads < 1) {
      std::printf("usage: precompute [threads [max-terms]] | precompute "
                  "off\n");
      return;
    }
  }
  core::RankCache::Options options;
  options.objectrank = state.search_options.objectrank;
  options.bm25 = state.search_options.bm25;
  options.build_threads = threads;
  if (tokens.size() > 1) {
    const int max_terms = std::atoi(tokens[1].c_str());
    if (max_terms < 1) {
      std::printf("usage: precompute [threads [max-terms]] | precompute "
                  "off\n");
      return;
    }
    options.max_terms = static_cast<size_t>(max_terms);
  }
  core::RankCache::BuildStats stats;
  state.rank_cache = std::make_unique<core::RankCache>(core::RankCache::Build(
      state.dataset->authority(), state.dataset->corpus(), state.rates,
      options, &stats));
  state.searcher->AttachRankCache(state.rank_cache.get());
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("cache: %zu terms, %.1f MB; attached (queries under the "
              "current rates + BM25 params are served from it)\n",
              state.rank_cache->num_terms(),
              state.rank_cache->MemoryFootprintBytes() / (1024.0 * 1024.0));
}

void DoServeBench(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  auto tokens = SplitWhitespace(args);
  int clients = 4;
  int queries_per_client = 50;
  size_t max_batch_size = 1;
  double max_batch_delay_ms = 2.0;
  bool ok = true;
  size_t positional = 0;
  for (const std::string& token : tokens) {
    if (token.rfind("--max_batch_size=", 0) == 0) {
      const int v = std::atoi(token.c_str() + 17);
      if (v < 1) ok = false;
      max_batch_size = static_cast<size_t>(std::max(v, 1));
    } else if (token.rfind("--max_batch_delay_ms=", 0) == 0) {
      max_batch_delay_ms = std::atof(token.c_str() + 21);
      if (max_batch_delay_ms < 0.0) ok = false;
    } else if (token.rfind("--", 0) == 0) {
      ok = false;
    } else if (positional == 0) {
      clients = std::atoi(token.c_str());
      ++positional;
    } else if (positional == 1) {
      queries_per_client = std::atoi(token.c_str());
      ++positional;
    } else {
      ok = false;
    }
  }
  if (!ok || clients < 1 || queries_per_client < 1) {
    std::printf("usage: serve-bench [clients [queries-per-client]] "
                "[--max_batch_size=N] [--max_batch_delay_ms=X]\n");
    return;
  }

  // The snapshot aliases the CLI's dataset (and rank cache, if one is
  // attached) without owning it: no-op deleters, and the service is
  // destroyed before this function returns.
  auto no_own = [](const auto* ptr) {
    using T = std::remove_cv_t<std::remove_pointer_t<decltype(ptr)>>;
    return std::shared_ptr<const T>(ptr, [](const T*) {});
  };
  auto snapshot = std::make_shared<serve::ServeSnapshot>();
  snapshot->data = no_own(&state.dataset->data());
  snapshot->authority = no_own(&state.dataset->authority());
  snapshot->corpus = no_own(&state.dataset->corpus());
  snapshot->rates = state.rates;
  if (state.rank_cache != nullptr) {
    snapshot->rank_cache = no_own(state.rank_cache.get());
  }
  snapshot->default_options = state.search_options;

  // Zipf-distributed mix over the most frequent corpus terms, as in
  // bench_serve_load.
  const text::Corpus& corpus = state.dataset->corpus();
  std::vector<std::pair<uint32_t, std::string>> by_df;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<text::QueryVector> mix;
  for (size_t i = 0; i < by_df.size() && mix.size() < 64; ++i) {
    mix.emplace_back(text::ParseQuery(by_df[i].second));
  }
  if (mix.empty()) {
    std::printf("corpus has no indexed terms\n");
    return;
  }
  const datasets::ZipfSampler popularity(mix.size(), 1.0);

  for (const bool use_cache : {true, false}) {
    serve::SearchService::Options options;
    if (!use_cache) {
      options.result_cache_entries = 0;
      options.single_flight = false;
    }
    options.max_batch_size = max_batch_size;
    options.max_batch_delay_ms = max_batch_delay_ms;
    serve::SearchService service(snapshot, options);
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Rng rng(static_cast<uint64_t>(c) * 7919 + 1);
        for (int q = 0; q < queries_per_client; ++q) {
          serve::ServeRequest request;
          request.query = mix[popularity.Sample(rng)];
          auto response = service.Search(std::move(request));
          if (!response.ok()) {
            std::printf("query failed: %s\n",
                        response.status().ToString().c_str());
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();
    std::printf("%-16s %s\n",
                use_cache ? "result-cache on" : "result-cache off",
                service.Snapshot().ToString().c_str());
  }
}

// Runs the full graph-side validator stack on an in-memory dataset:
// authority CSR (bounded by the schema's rate slots), the SELL-8
// restructuring of its in-adjacency, and a fused layout materialized
// under the current rates. Returns the first violation.
Status ValidateDataset(const datasets::Dataset& dataset,
                       const graph::TransferRates& rates) {
  ORX_RETURN_IF_ERROR(graph::ValidateInvariants(
      dataset.authority(), dataset.schema().num_rate_slots()));
  graph::FusedLayout layout(dataset.authority(), rates);
  ORX_RETURN_IF_ERROR(graph::ValidateInvariants(layout));
  return Status::OK();
}

void DoValidate(CliState& state, const std::string& args) {
  const std::string path(orx::StripWhitespace(args));
  if (path.empty()) {
    if (!state.Ready()) return;
    Status status = ValidateDataset(*state.dataset, state.rates);
    std::printf("%s\n", status.ok() ? "dataset OK" : status.ToString().c_str());
    return;
  }
  // Dispatch on the file's magic: "ORXD2"/"ORXC2" mmap containers first
  // (their 8-byte magic shares the old formats' 4-byte prefix), then the
  // streamed "ORXD" datasets and "ORXC" rank caches.
  char magic[8] = {};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in || !in.read(magic, 4)) {
      std::printf("cannot read %s\n", path.c_str());
      return;
    }
    in.read(magic + 4, 4);  // optional: old files may be this short
  }
  if (std::equal(magic, magic + 8, orx::io::kDatasetMagic)) {
    // Deep validation is the point here: hashes over every section,
    // per-edge schema conformance, CSR/SELL cross-checks, corpus bounds.
    auto mapped = orx::io::OpenMappedDataset(path);
    if (!mapped.ok()) {
      std::printf("%s\n", mapped.status().ToString().c_str());
      return;
    }
    std::printf("mmap dataset OK: '%s', %zu nodes, %zu edges, %zu terms\n",
                (*mapped)->name().c_str(),
                (*mapped)->data().num_nodes(),
                (*mapped)->authority().num_edges(),
                (*mapped)->corpus().vocab_size());
  } else if (std::equal(magic, magic + 8, orx::io::kRankCacheMagic)) {
    auto cache = orx::io::OpenMappedRankCache(path);
    if (!cache.ok()) {
      std::printf("%s\n", cache.status().ToString().c_str());
      return;
    }
    std::printf("mmap rank cache OK: %zu terms x %zu nodes\n",
                cache->Terms().size(), cache->num_nodes());
  } else if (std::string_view(magic, 4) == "ORXD") {
    auto loaded = orx::io::LoadDataset(path);
    if (!loaded.ok()) {
      std::printf("%s\n", loaded.status().ToString().c_str());
      return;
    }
    if (!loaded->finalized()) loaded->Finalize();
    graph::TransferRates rates(loaded->schema(), 0.3);
    Status status = ValidateDataset(*loaded, rates);
    std::printf("%s\n",
                status.ok() ? "dataset OK" : status.ToString().c_str());
  } else if (std::string_view(magic, 4) == "ORXC") {
    auto cache = core::RankCache::Load(path);
    if (!cache.ok()) {
      std::printf("%s\n", cache.status().ToString().c_str());
      return;
    }
    Status status = cache->ValidateInvariants();
    std::printf("%s\n",
                status.ok() ? "rank cache OK" : status.ToString().c_str());
  } else {
    std::printf("%s: unrecognized magic (expected ORXD or ORXC)\n",
                path.c_str());
  }
}

void DoPack(CliState& state, const std::string& args) {
  if (!state.Ready()) return;
  auto tokens = SplitWhitespace(args);
  if (tokens.empty() || tokens.size() > 2) {
    std::printf("usage: pack <dataset.orxd2> [rank-cache.orxc2]\n");
    return;
  }
  Status status =
      orx::io::WriteDatasetContainer(*state.dataset, state.rates, tokens[0]);
  if (!status.ok()) {
    std::printf("%s\n", status.ToString().c_str());
    return;
  }
  std::printf("packed %s\n", tokens[0].c_str());
  if (tokens.size() == 2) {
    if (state.rank_cache == nullptr) {
      std::printf("no rank cache attached (run 'precompute' first)\n");
      return;
    }
    status = orx::io::WriteRankCacheContainer(*state.rank_cache, tokens[1]);
    std::printf("%s\n", status.ok() ? ("packed " + tokens[1]).c_str()
                                    : status.ToString().c_str());
  }
}

void DoGenerate(CliState& state, const std::string& args) {
  auto tokens = SplitWhitespace(args);
  if (tokens.size() < 2) {
    std::printf("usage: generate dblp|bio <size>\n");
    return;
  }
  const uint32_t size =
      static_cast<uint32_t>(std::max(1, std::atoi(tokens[1].c_str())));
  if (tokens[0] == "dblp") {
    datasets::DblpDataset dblp =
        datasets::GenerateDblp(datasets::DblpGeneratorConfig::Tiny(size));
    state.AdoptDataset(std::move(dblp.dataset));
  } else if (tokens[0] == "bio") {
    datasets::BioDataset bio =
        datasets::GenerateBio(datasets::BioGeneratorConfig::Tiny(size));
    state.AdoptDataset(std::move(bio.dataset));
  } else {
    std::printf("usage: generate dblp|bio <size>\n");
  }
}

}  // namespace

int main() {
  // The shell itself never writes to sockets, but serve-bench's client
  // threads do, and a reader that disconnects mid-response must surface
  // as EPIPE rather than kill the process. Piped stdout gets the same
  // courtesy.
  orx::net::IgnoreSigpipe();
  CliState state;
  std::printf("ORX shell — authority-flow search with explanations "
              "(type 'help')\n");
  std::string line;
  while (std::printf("orx> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::string trimmed(orx::StripWhitespace(line));
    if (trimmed.empty()) continue;
    const size_t space = trimmed.find(' ');
    const std::string command = trimmed.substr(0, space);
    const std::string args =
        space == std::string::npos ? "" : trimmed.substr(space + 1);

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf("%s", kHelp);
    } else if (command == "figure1") {
      state.AdoptDataset(std::move(datasets::MakeFigure1Dataset().dataset));
    } else if (command == "generate") {
      DoGenerate(state, args);
    } else if (command == "parse") {
      auto parsed = datasets::ParseDblpXmlFile(std::string(
          orx::StripWhitespace(args)));
      if (!parsed.ok()) {
        std::printf("%s\n", parsed.status().ToString().c_str());
      } else {
        std::printf("parsed %zu papers, %zu authors, %zu/%zu citations\n",
                    parsed->papers, parsed->authors,
                    parsed->citations_resolved,
                    parsed->citations_resolved +
                        parsed->citations_unresolved);
        state.AdoptDataset(std::move(parsed->dataset));
      }
    } else if (command == "dot") {
      DoDot(state, args);
    } else if (command == "load-tsv") {
      auto loaded = orx::io::LoadGraphTsv(std::string(
          orx::StripWhitespace(args)));
      if (!loaded.ok()) {
        std::printf("%s\n", loaded.status().ToString().c_str());
      } else {
        state.AdoptDataset(std::move(loaded).value());
      }
    } else if (command == "save-tsv") {
      if (state.Ready()) {
        auto status = orx::io::SaveGraphTsv(
            *state.dataset, std::string(orx::StripWhitespace(args)));
        std::printf("%s\n", status.ok() ? "saved"
                                         : status.ToString().c_str());
      }
    } else if (command == "load") {
      auto loaded = orx::io::LoadDataset(std::string(
          orx::StripWhitespace(args)));
      if (!loaded.ok()) {
        std::printf("%s\n", loaded.status().ToString().c_str());
      } else {
        state.AdoptDataset(std::move(loaded).value());
      }
    } else if (command == "save") {
      if (state.Ready()) {
        auto status = orx::io::SaveDataset(
            *state.dataset, std::string(orx::StripWhitespace(args)));
        std::printf("%s\n", status.ok() ? "saved" :
                    status.ToString().c_str());
      }
    } else if (command == "info") {
      if (state.Ready()) {
        std::printf("'%s': %zu nodes, %zu data edges, %zu indexed terms, "
                    "%.1f MB in memory\n",
                    state.dataset->name().c_str(),
                    state.dataset->data().num_nodes(),
                    state.dataset->data().num_edges(),
                    state.dataset->corpus().vocab_size(),
                    state.dataset->MemoryFootprintBytes() / 1048576.0);
      }
    } else if (command == "rates") {
      DoRates(state, args);
    } else if (command == "filter") {
      DoFilter(state, args);
    } else if (command == "k") {
      const int k = std::atoi(args.c_str());
      if (k >= 1) state.search_options.k = static_cast<size_t>(k);
      std::printf("k = %zu\n", state.search_options.k);
    } else if (command == "validate") {
      DoValidate(state, args);
    } else if (command == "pack") {
      DoPack(state, args);
    } else if (command == "precompute") {
      DoPrecompute(state, args);
    } else if (command == "serve-bench") {
      DoServeBench(state, args);
    } else if (command == "query") {
      DoQuery(state, args);
    } else if (command == "explain") {
      DoExplain(state, args);
    } else if (command == "feedback") {
      DoFeedback(state, args);
    } else if (command == "show") {
      std::printf("query: %s\n", state.query.ToString().c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
