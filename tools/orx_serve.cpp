// orx_serve: the ORXN network front end. Generates a deterministic DBLP
// dataset, stands up one serve::SearchService behind a net::Server, and
// runs until SIGTERM/SIGINT, then drains gracefully (stops accepting,
// answers in-flight frames, flushes outbound buffers) before exiting.
//
//   orx_serve --port 7411 --scale 0.05 --workers 2
//
// With --port 0 the kernel picks an ephemeral port; the chosen port is
// printed on the "listening" line, which scripts (the CI net-smoke job)
// parse.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "common/timer.h"
#include "dataset_spec.h"
#include "mutate/delta_log.h"
#include "mutate/epoch.h"
#include "mutate/snapshot_builder.h"
#include "net/net_util.h"
#include "net/serve_handler.h"
#include "net/server.h"
#include "serve/search_service.h"

namespace {

using namespace orx;

struct ServeFlags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string dataset;     // ORXD2 container; empty = generate (--scale)
  std::string rank_cache;  // optional ORXC2 alongside --dataset
  double scale = 0.05;
  size_t workers = 2;
  size_t threads = 0;        // SearchService pool; 0 = hardware threads
  size_t max_pending = 64;   // admission bound
  size_t cache_entries = 512;
  size_t batch = 1;          // micro-batch size; <= 1 = off
  double idle_timeout = 300.0;
  double drain_timeout = 5.0;
  bool mutate = false;         // enable the write path (kMutate op)
  size_t log_capacity = 1024;  // delta-log bound before kUnavailable
  size_t max_live_epochs = 8;  // publish backpressure bound
  // Tier policy (serve/search_service.h Options): auto-tier requests are
  // steered by deadline headroom + admission load when enabled.
  bool tier_policy = false;
  double tier_exact_deadline = 0.25;
  double tier_approx_deadline = 0.02;
  double tier_load_high = 0.75;
  double approx_rmax = 0.0;  // > 0 overrides the snapshot's default r_max
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--scale S] [--workers N]\n"
      "          [--dataset PATH.orxd2] [--rank-cache PATH.orxc2]\n"
      "          [--threads N] [--max-pending N] [--cache-entries N]\n"
      "          [--batch N] [--idle-timeout SEC] [--drain-timeout SEC]\n"
      "          [--mutate] [--log-capacity N] [--max-live-epochs N]\n"
      "          [--tier-policy] [--tier-exact-deadline SEC]\n"
      "          [--tier-approx-deadline SEC] [--tier-load-high F]\n"
      "          [--approx-rmax R]\n"
      "Serves the ORXN protocol (search/explain/reformulate/validate/\n"
      "metrics/ping) over a generated DBLP dataset, or — with --dataset —\n"
      "over an ORXD2 container attached zero-copy via mmap (optionally\n"
      "with a precomputed ORXC2 rank cache; see `orx_cli pack`). --port 0\n"
      "picks an ephemeral port (printed on the 'listening' line).\n"
      "--mutate enables the write path: kMutate frames append to a delta\n"
      "log consumed by a background snapshot builder (without it the\n"
      "server is read-only); it requires a generated dataset, not\n"
      "--dataset. --tier-policy steers tier-auto searches by deadline\n"
      "headroom and admission load (exact / approximate / cached; see\n"
      "docs/approx_tier.md); --approx-rmax sets the push kernel's\n"
      "residual threshold. Runs until SIGTERM/SIGINT, then drains.\n",
      argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, ServeFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = value())) {
      flags->host = v;
    } else if (arg == "--port" && (v = value())) {
      flags->port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--scale" && (v = value())) {
      flags->scale = std::atof(v);
    } else if (arg == "--dataset" && (v = value())) {
      flags->dataset = v;
    } else if (arg == "--rank-cache" && (v = value())) {
      flags->rank_cache = v;
    } else if (arg == "--workers" && (v = value())) {
      flags->workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--threads" && (v = value())) {
      flags->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-pending" && (v = value())) {
      flags->max_pending = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--cache-entries" && (v = value())) {
      flags->cache_entries = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--batch" && (v = value())) {
      flags->batch = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--idle-timeout" && (v = value())) {
      flags->idle_timeout = std::atof(v);
    } else if (arg == "--drain-timeout" && (v = value())) {
      flags->drain_timeout = std::atof(v);
    } else if (arg == "--mutate") {
      flags->mutate = true;
    } else if (arg == "--tier-policy") {
      flags->tier_policy = true;
    } else if (arg == "--tier-exact-deadline" && (v = value())) {
      flags->tier_exact_deadline = std::atof(v);
    } else if (arg == "--tier-approx-deadline" && (v = value())) {
      flags->tier_approx_deadline = std::atof(v);
    } else if (arg == "--tier-load-high" && (v = value())) {
      flags->tier_load_high = std::atof(v);
    } else if (arg == "--approx-rmax" && (v = value())) {
      flags->approx_rmax = std::atof(v);
    } else if (arg == "--log-capacity" && (v = value())) {
      flags->log_capacity = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-live-epochs" && (v = value())) {
      flags->max_live_epochs = static_cast<size_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->mutate && !flags->dataset.empty()) {
    std::fprintf(stderr,
                 "--mutate needs the generated dataset (the write path "
                 "rebuilds from the owning Dataset); drop --dataset\n");
    return false;
  }
  if (!flags->rank_cache.empty() && flags->dataset.empty()) {
    std::fprintf(stderr, "--rank-cache only applies with --dataset\n");
    return false;
  }
  return flags->scale > 0.0 && flags->workers > 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeFlags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);

  // Socket/signal hygiene before any thread exists: SIGPIPE ignored
  // process-wide, and the termination signals blocked in every thread so
  // only main's sigwait() sees them (worker loops inherit the mask).
  net::IgnoreSigpipe();
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  tools::ServingDataset dataset;
  if (!flags.dataset.empty()) {
    std::printf("orx_serve: attaching %s...\n", flags.dataset.c_str());
    std::fflush(stdout);
    Timer attach_timer;
    auto attached = tools::BuildServingDatasetFromContainer(
        flags.dataset, flags.rank_cache);
    if (!attached.ok()) {
      std::fprintf(stderr, "orx_serve: %s\n",
                   attached.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*attached);
    std::printf("orx_serve: snapshot attached in %.1fms (%s%s)\n",
                attach_timer.ElapsedSeconds() * 1e3,
                dataset.description.c_str(),
                flags.rank_cache.empty() ? "" : ", rank cache on");
  } else {
    std::printf("orx_serve: generating dataset (scale=%.3f)...\n",
                flags.scale);
    std::fflush(stdout);
    Timer build_timer;
    dataset = tools::BuildServingDataset(flags.scale);
    std::printf("orx_serve: dataset ready in %.2fs (%s)\n",
                build_timer.ElapsedSeconds(), dataset.description.c_str());
  }

  if (flags.approx_rmax > 0.0) {
    dataset.snapshot->default_options.approx.r_max = flags.approx_rmax;
  }

  serve::SearchService::Options service_options;
  service_options.num_threads = flags.threads;
  service_options.max_pending = flags.max_pending;
  service_options.result_cache_entries = flags.cache_entries;
  service_options.max_batch_size = flags.batch;
  service_options.enable_tier_policy = flags.tier_policy;
  service_options.tier_exact_deadline_seconds = flags.tier_exact_deadline;
  service_options.tier_approx_deadline_seconds = flags.tier_approx_deadline;
  service_options.tier_load_high = flags.tier_load_high;
  serve::SearchService service(dataset.snapshot, service_options);
  if (flags.tier_policy) {
    std::printf("orx_serve: tier policy on (exact<%.3fs approx<%.3fs "
                "load_high=%.2f, r_max=%g)\n",
                flags.tier_exact_deadline, flags.tier_approx_deadline,
                flags.tier_load_high,
                dataset.snapshot->default_options.approx.r_max);
  }
  net::ServeHandler handler(&service);

  // Write path: the delta log feeds a background snapshot builder that
  // publishes through the service's hot-swap under epoch accounting. The
  // dblp owner (and with it the schema) outlives everything below.
  std::unique_ptr<mutate::DeltaLog> delta_log;
  std::unique_ptr<mutate::EpochManager> epochs;
  std::unique_ptr<mutate::SnapshotBuilder> builder;
  if (flags.mutate) {
    mutate::DeltaLog::Options log_options;
    log_options.capacity = flags.log_capacity;
    delta_log = std::make_unique<mutate::DeltaLog>(
        dataset.dblp->dataset.schema(), log_options);
    epochs = std::make_unique<mutate::EpochManager>();
    mutate::SnapshotBuilder::Options builder_options;
    builder_options.max_live_epochs = flags.max_live_epochs;
    builder = std::make_unique<mutate::SnapshotBuilder>(
        &service, delta_log.get(), epochs.get(), dataset.snapshot,
        builder_options);
    builder->Start();
    net::ServeHandler::MutationHooks hooks;
    hooks.log = delta_log.get();
    hooks.epochs = epochs.get();
    hooks.builder = builder.get();
    handler.set_mutation_hooks(hooks);
    std::printf("orx_serve: write path on (log capacity=%zu, "
                "max live epochs=%zu)\n",
                flags.log_capacity, flags.max_live_epochs);
  }

  net::ServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = flags.port;
  server_options.num_workers = flags.workers;
  server_options.idle_timeout_seconds = flags.idle_timeout;
  server_options.drain_timeout_seconds = flags.drain_timeout;
  net::Server server(server_options,
                     [&handler](net::Frame frame, net::ResponderPtr respond) {
                       handler.Handle(std::move(frame), std::move(respond));
                     });
  handler.set_server_stats([&server] { return server.stats(); });

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "orx_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("orx_serve listening on %s:%u\n", flags.host.c_str(),
              server.port());
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&mask, &signal_number);
  std::printf("orx_serve: signal %d (%s), draining...\n", signal_number,
              strsignal(signal_number));
  std::fflush(stdout);
  server.Shutdown();
  if (builder != nullptr) {
    // The server answered its last frame; drain the log so every
    // acknowledged batch reaches a published snapshot before exit.
    builder->Stop();
    const mutate::SnapshotBuilder::Stats b = builder->stats();
    const mutate::DeltaLog::Stats l = delta_log->stats();
    std::printf(
        "orx_serve: write path drained. batches applied=%llu rejected=%llu "
        "mutations=%llu publications=%llu corpus_rebuilds=%llu | rank terms "
        "reused=%llu refreshed=%llu full_rebuilds=%llu | log appended=%llu "
        "rejected=%llu | epochs live=%llu\n",
        static_cast<unsigned long long>(b.batches_applied),
        static_cast<unsigned long long>(b.batches_rejected),
        static_cast<unsigned long long>(b.mutations_applied),
        static_cast<unsigned long long>(b.publications),
        static_cast<unsigned long long>(b.corpus_rebuilds),
        static_cast<unsigned long long>(b.terms_reused),
        static_cast<unsigned long long>(b.terms_refreshed),
        static_cast<unsigned long long>(b.cache_full_rebuilds),
        static_cast<unsigned long long>(l.appended),
        static_cast<unsigned long long>(l.rejected),
        static_cast<unsigned long long>(epochs->live()));
  }

  const net::ServerStats stats = server.stats();
  const serve::ServeMetrics metrics = service.Snapshot();
  std::printf(
      "orx_serve: drained. connections accepted=%llu closed=%llu | frames "
      "received=%llu sent=%llu errors=%llu unanswered=%llu | decode=%llu "
      "backpressure=%llu idle=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.closed),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.frames_sent),
      static_cast<unsigned long long>(stats.error_frames_sent),
      static_cast<unsigned long long>(stats.unanswered_frames),
      static_cast<unsigned long long>(stats.decode_errors),
      static_cast<unsigned long long>(stats.backpressure_closes),
      static_cast<unsigned long long>(stats.idle_closes));
  std::printf(
      "orx_serve: service submitted=%llu completed=%llu rejected=%llu "
      "hits=%llu coalesced=%llu executed=%llu p50=%.2fms p99=%.2fms\n",
      static_cast<unsigned long long>(metrics.submitted),
      static_cast<unsigned long long>(metrics.completed),
      static_cast<unsigned long long>(metrics.rejected),
      static_cast<unsigned long long>(metrics.cache_hits),
      static_cast<unsigned long long>(metrics.coalesced),
      static_cast<unsigned long long>(metrics.executed),
      metrics.latency_p50 * 1e3, metrics.latency_p99 * 1e3);
  std::printf(
      "orx_serve: tiers exact=%llu approx=%llu cached=%llu "
      "escalations=%llu | approx p50=%.2fms exact p50=%.2fms\n",
      static_cast<unsigned long long>(metrics.tier_exact),
      static_cast<unsigned long long>(metrics.tier_approximate),
      static_cast<unsigned long long>(metrics.tier_cached),
      static_cast<unsigned long long>(metrics.escalations),
      metrics.tier_approximate_p50 * 1e3, metrics.tier_exact_p50 * 1e3);
  return 0;
}
