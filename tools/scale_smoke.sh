#!/usr/bin/env bash
# Paper-scale container smoke (the "scale-smoke" CI gate): runs
# bench_scaling's mmap sweep restricted to the 1x DBLPcomplete preset —
# generate (~876K nodes / ~4.17M authority edges), pack into an ORXD2
# container, cold + warm mmap attach, then a fixed-work power iteration
# streaming the mmap-backed layout, cross-checked against the in-memory
# engine (L-inf <= 1e-12; the binary exits nonzero on divergence or any
# pack/attach failure). The record lands in BENCH_scaling.json; when a
# previous artifact is restored at that path the new record is appended,
# so the file accumulates one record per run for trend lines.
#
# usage: tools/scale_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FACTORS="${ORX_SCALING_FACTORS:-1}"

cmake --build "$BUILD_DIR" -j --target bench_scaling

PREVIOUS=""
if [ -f BENCH_scaling.json ]; then
  PREVIOUS="$(cat BENCH_scaling.json)"
fi

echo "=== bench_scaling: factors $FACTORS through the ORXD2 mmap path ==="
# Part 1 (interactive-ops table) shrinks to keep the gate focused on the
# container path; part 2 runs the selected presets at full scale.
ORX_SCALING_FACTORS="$FACTORS" ORX_BENCH_SCALE=1 \
  "$BUILD_DIR/bench/bench_scaling"

python3 - "$PREVIOUS" <<'EOF'
import json, sys

with open("BENCH_scaling.json") as f:
    records = json.load(f)
assert records, "no sweep records produced"
for r in records:
    name = r["dataset"]["name"]
    nodes = r["dataset"]["nodes"]
    edges = r["dataset"]["edges"]
    assert r["linf_vs_memory"] <= 1e-12, (
        f"{name}: mmap scores diverge from in-memory "
        f"(L-inf {r['linf_vs_memory']})")
    if name == "dblp-complete-1x":
        assert nodes > 800_000, f"1x preset too small: {nodes} nodes"
        assert edges > 4_000_000, f"1x preset too small: {edges} edges"
        assert r["warm_attach_ms"] <= 100.0, (
            f"{name}: warm attach {r['warm_attach_ms']}ms exceeds 100ms")
    print(f"OK {name}: {nodes} nodes / {edges} edges, "
          f"cold {r['cold_attach_ms']:.1f}ms / "
          f"warm {r['warm_attach_ms']:.2f}ms, "
          f"{r['edges_per_second'] / 1e6:.0f} Medges/s, "
          f"L-inf {r['linf_vs_memory']:.1e}")

# Append onto a restored artifact so successive CI runs accumulate.
previous = json.loads(sys.argv[1]) if sys.argv[1].strip() else []
if previous:
    records = previous + records
    with open("BENCH_scaling.json", "w") as f:
        json.dump(records, f)
    print(f"appended onto {len(previous)} restored record(s)")
EOF

echo "scale smoke passed"
