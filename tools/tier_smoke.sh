#!/usr/bin/env bash
# Tier smoke (the "tier-smoke" CI gate): runs bench_tier_frontier on a
# scaled DBLPcomplete and asserts the hard properties of the tier stack —
# every reported additive error bound dominates the measured L-inf error,
# every approximate-tier answer that certified its top-k set matches the
# exact top-k exactly (precision@10 == 1.0), the cached tiers answer from
# the cache, and the compressed RankCache lands the >= 4x size reduction.
# The frontier's latency numbers are informational; the gate is about
# soundness, not speed. The record lands in BENCH_tier_frontier.json;
# when a previous artifact is restored at that path the new records are
# appended, so the file accumulates per run for trend lines.
#
# usage: tools/tier_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SCALE="${ORX_BENCH_SCALE:-0.1}"

cmake --build "$BUILD_DIR" -j --target bench_tier_frontier

PREVIOUS=""
if [ -f BENCH_tier_frontier.json ]; then
  PREVIOUS="$(cat BENCH_tier_frontier.json)"
fi

echo "=== bench_tier_frontier: exact / approx / cached tiers at scale $SCALE ==="
ORX_BENCH_SCALE="$SCALE" "$BUILD_DIR/bench/bench_tier_frontier"

python3 - "$PREVIOUS" <<'EOF'
import json, sys

with open("BENCH_tier_frontier.json") as f:
    records = json.load(f)
assert records, "no tier records produced"

tiers = set()
for r in records:
    tier, band = r["tier"], r["band"]
    tiers.add(tier)
    # Hard property 1: every reported bound dominates the measured error.
    assert r["bound_holds"], (
        f"{tier}/{band}: reported bound {r['max_reported_bound']} below "
        f"measured L-inf {r['max_measured_linf']}")
    # Hard property 2: a certified top-k set IS the exact top-k set. A
    # fully-certified slice must therefore score perfect precision.
    if r["queries"] > 0 and r["certified"] == r["queries"]:
        assert r["precision_at_k"] >= 1.0, (
            f"{tier}/{band}: all queries certified but precision@k is "
            f"{r['precision_at_k']}")
    if tier.startswith("cached") and band == "all" and r["queries"] > 0:
        assert r["cache_hits"] + r["escalated"] >= r["queries"], (
            f"{tier}: {r['cache_hits']} hits + {r['escalated']} "
            f"escalations cover only part of {r['queries']} queries")
    if tier == "cached_compressed" and band == "all":
        ratio = r["cache_compression_ratio"]
        assert ratio >= 4.0, f"compressed cache only {ratio:.1f}x smaller"
        print(f"OK compression: {r['cache_bytes_dense']} -> "
              f"{r['cache_bytes_compressed']} bytes ({ratio:.1f}x)")

for expected in ("exact", "cached_dense", "cached_compressed"):
    assert expected in tiers, f"tier {expected} missing from the sweep"
assert any(t.startswith("approx_") for t in tiers), "no approximate tier"

for r in records:
    if r["band"] == "all":
        print(f"OK {r['tier']}: {r['queries']} queries, "
              f"{r['certified']} certified, {r['escalated']} escalated, "
              f"precision@{r['k']} {r['precision_at_k']:.4f}, "
              f"p50 {r['latency_p50_ms']:.3f}ms "
              f"(x{r['speedup_vs_exact_p50']:.1f} vs exact)")

# Append onto a restored artifact so successive CI runs accumulate.
previous = json.loads(sys.argv[1]) if sys.argv[1].strip() else []
if previous:
    records = previous + records
    with open("BENCH_tier_frontier.json", "w") as f:
        json.dump(records, f)
    print(f"appended onto {len(previous)} restored record(s)")
EOF

echo "tier smoke passed"
