#!/usr/bin/env bash
# One-command memory-safety check: builds the FULL test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer and runs every ctest.
# Any heap error, leak, or UB report fails the run.
#
#   tools/check_asan.sh [build-dir]        (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DORX_SANITIZE=address,undefined \
  -DORX_BUILD_BENCHMARKS=OFF \
  -DORX_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
echo "ASan+UBSan suite passed."
