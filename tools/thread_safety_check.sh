#!/usr/bin/env bash
# Negative-compile gate for the ORX thread-safety annotations.
#
# Clang's -Wthread-safety only has teeth if a genuine violation actually
# fails the build: if the ORX_* macros rotted into no-ops under Clang
# (say, a broken #ifdef), every annotated file would still compile and
# CI would go green while guarding nothing. This script pins the gate
# from both sides:
#
#   1. a GOOD twin — an ORX_GUARDED_BY field written under MutexLock —
#      must compile cleanly with -Wthread-safety -Werror;
#   2. a BAD twin — the same field written with no lock held — must
#      FAIL to compile with a thread-safety diagnostic.
#
# Exits 0 on success, 1 on failure, 77 (the ctest SKIP_RETURN_CODE)
# when no clang++ is available: GCC compiles the annotations away, so
# only a Clang toolchain can run this check. Override the compiler with
# ORX_CLANGXX=/path/to/clang++.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

find_clangxx() {
  if [[ -n "${ORX_CLANGXX:-}" ]]; then
    echo "$ORX_CLANGXX"
    return
  fi
  local cand
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      echo "$cand"
      return
    fi
  done
}

CLANGXX="$(find_clangxx)"
if [[ -z "$CLANGXX" ]]; then
  echo "thread_safety_check: no clang++ found; skipping (exit 77)" >&2
  exit 77
fi

CXXFLAGS=(-std=c++20 -fsyntax-only -Wthread-safety -Wthread-safety-beta
          -Werror "-I$ROOT/src")
TMPDIR_TS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_TS"' EXIT

# Shared scaffold: one annotated counter class, two twins that differ
# only in whether the guarded write happens under the lock.
cat > "$TMPDIR_TS/scaffold.h" <<'EOF'
#include "common/mutex.h"

namespace tscheck {

class Counter {
 public:
  void Increment() {
    orx::MutexLock lock(mu_);
    ++value_;
  }

  int UnguardedRead();  // defined per-twin

 protected:
  orx::Mutex mu_;
  int value_ ORX_GUARDED_BY(mu_) = 0;
};

}  // namespace tscheck
EOF

cat > "$TMPDIR_TS/good.cc" <<'EOF'
#include "scaffold.h"

namespace tscheck {
int Counter::UnguardedRead() {
  orx::MutexLock lock(mu_);
  return value_;
}
}  // namespace tscheck
EOF

cat > "$TMPDIR_TS/bad.cc" <<'EOF'
#include "scaffold.h"

namespace tscheck {
int Counter::UnguardedRead() {
  ++value_;  // guarded field touched with mu_ not held
  return value_;
}
}  // namespace tscheck
EOF

echo "thread_safety_check: using $("$CLANGXX" --version | head -1)"

if ! "$CLANGXX" "${CXXFLAGS[@]}" "-I$TMPDIR_TS" "$TMPDIR_TS/good.cc"; then
  echo "thread_safety_check: FAIL — the well-locked twin did not compile" >&2
  echo "  (annotation macros or include paths are broken)" >&2
  exit 1
fi

if "$CLANGXX" "${CXXFLAGS[@]}" "-I$TMPDIR_TS" "$TMPDIR_TS/bad.cc" \
    2> "$TMPDIR_TS/bad.err"; then
  echo "thread_safety_check: FAIL — a GUARDED_BY violation compiled clean" >&2
  echo "  (-Wthread-safety is not biting; check the ORX_* macro guards)" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$TMPDIR_TS/bad.err"; then
  echo "thread_safety_check: FAIL — bad twin failed for the wrong reason:" >&2
  cat "$TMPDIR_TS/bad.err" >&2
  exit 1
fi

echo "thread_safety_check: OK (good twin compiles, bad twin rejected)"
