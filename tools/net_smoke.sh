#!/usr/bin/env bash
# End-to-end smoke of the network front end (the "net-smoke" CI gate):
# starts orx_serve on an ephemeral port, runs the client's e2e mode
# (wire responses vs in-process goldens) and a short load burst, then
# checks the accounting: zero dropped (unanswered) frames, zero
# unexpected error frames, and a clean SIGTERM drain.
#
# usage: tools/net_smoke.sh [build-dir] [load-seconds] [connections]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
LOAD_SECONDS="${2:-5}"
CONNECTIONS="${3:-200}"
SCALE="${ORX_NET_SMOKE_SCALE:-0.05}"
SERVE_LOG="$(mktemp)"
ulimit -n 4096 || true

"$BUILD_DIR/tools/orx_serve" --port 0 --scale "$SCALE" >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT

PORT=""
for _ in $(seq 1 120); do
  PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$SERVE_LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
  sleep 0.5
done
[ -n "$PORT" ] || { echo "server never reported its port"; cat "$SERVE_LOG"; exit 1; }
echo "=== orx_serve up on port $PORT ==="

echo "=== e2e: wire vs in-process goldens ==="
"$BUILD_DIR/tools/orx_client" --mode e2e --port "$PORT" --scale "$SCALE"

echo "=== load: $CONNECTIONS connections, ${LOAD_SECONDS}s burst ==="
LOAD_OUT="$("$BUILD_DIR/tools/orx_client" --mode load --port "$PORT" \
  --scale "$SCALE" --connections "$CONNECTIONS" --threads 4 \
  --duration "$LOAD_SECONDS" --churn 0.02 --json /dev/null | tee /dev/stderr)"

# The load client already fails on dropped frames; additionally require
# that the healthy burst produced no error frames at all (nothing here
# should be rejected or malformed).
ERRORS="$(sed -n 's/^error_frames=\([0-9]*\) .*/\1/p' <<<"$LOAD_OUT")"
if [ -z "$ERRORS" ] || [ "$ERRORS" -ne 0 ]; then
  echo "FAILED: expected zero error frames, saw '${ERRORS:-unparsed}'"
  exit 1
fi

echo "=== SIGTERM drain ==="
kill -TERM "$SERVE_PID"
for _ in $(seq 1 40); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAILED: server did not exit after SIGTERM"
  cat "$SERVE_LOG"
  exit 1
fi
wait "$SERVE_PID" || { echo "FAILED: server exited non-zero"; cat "$SERVE_LOG"; exit 1; }
grep -q "unanswered=0" "$SERVE_LOG" || {
  echo "FAILED: drain left unanswered frames"; cat "$SERVE_LOG"; exit 1; }
tail -3 "$SERVE_LOG"
echo "net-smoke: PASS"
