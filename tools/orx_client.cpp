// orx_client: the ORXN protocol client. Four modes:
//
//   interactive  REPL over one blocking connection (query / explain /
//                feedback / validate / metrics / ping).
//   e2e          drives the wire protocol and compares every response
//                against in-process golden results computed from the same
//                deterministic dataset (requires the server's --scale).
//   load         many non-blocking connections across a few poll() threads;
//                closed-loop (bounded outstanding per connection) or
//                open-loop (--rate RPS) with a Zipf query mix and optional
//                connection churn. Accounts for every frame sent: answered,
//                error frames (admission rejections separately), dropped.
//                With --write-fraction F, fraction F of sends are kMutate
//                batches (the server must run --mutate): read and write
//                latencies are split, the read p99 is tracked per time
//                window to expose publication-induced cliffs, and the
//                record lands in BENCH_mutate.json with the server's
//                write-path counters (snapshots published, epochs live).
//   bench        per-op latency percentiles over one connection.
//
// load and bench append records to BENCH_net_serve.json (shared
// bench-record schema). load exits non-zero if any sent frame went
// unanswered — load shedding must arrive as kError/kUnavailable frames,
// never as silence.

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <latch>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/base_set.h"
#include "dataset_spec.h"
#include "datasets/zipf.h"
#include "explain/explainer.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/net_util.h"
#include "reformulate/reformulator.h"
#include "serve/search_service.h"
#include "text/query.h"

namespace {

using namespace orx;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct ClientFlags {
  std::string mode = "interactive";
  std::string host = "127.0.0.1";
  int port = 0;
  double scale = 0.05;
  std::string dataset;     // ORXD2 container; empty = generate (--scale)
  std::string rank_cache;  // optional ORXC2 alongside --dataset
  // e2e score comparison tolerance (relative). < 0 = pick the default:
  // exact (0) against a generated server, 1e-12 against --dataset — the
  // mmap attach is bit-identical by design, but a server with a rank
  // cache the goldens lack answers from precomputed scores whose last
  // bits legitimately differ from a fresh power iteration.
  double score_tol = -1.0;
  // load:
  int threads = 4;
  int connections = 64;
  double duration = 5.0;
  int pipeline = 1;     // closed-loop outstanding frames per connection
  double rate = 0.0;    // > 0: open loop at this aggregate RPS
  double churn = 0.0;   // P(reconnect) after a response, per connection
  double drain_grace = 5.0;
  double write_fraction = 0.0;  // P(a send is a kMutate batch)
  bool json_path_set = false;   // --json given (else mixed mode retargets)
  // query mix:
  int zipf_terms = 64;
  double zipf_s = 1.0;
  uint32_t k = 10;
  uint64_t seed = 1;
  // Requested execution tier on every kSearch frame (wire value of
  // core::SearchTier): 0 auto, 1 exact, 2 approximate, 3 cached.
  uint8_t tier = 0;
  // bench:
  int iters = 200;
  std::string json_path = "BENCH_net_serve.json";
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --mode interactive|e2e|load|bench --port P [--host H]\n"
      "  common: --scale S (dataset for query mix / e2e goldens)\n"
      "          --dataset PATH.orxd2 [--rank-cache PATH.orxc2] (attach\n"
      "          the server's container instead of generating; goldens\n"
      "          and the query mix come from the mapped corpus)\n"
      "          --score-tol T (e2e relative score tolerance; default 0\n"
      "          generated, 1e-12 with --dataset)\n"
      "          --tier auto|exact|approx|cached (execution tier hint on\n"
      "          every search frame; default auto)\n"
      "  load:   --threads N --connections N --duration SEC --pipeline N\n"
      "          --rate RPS (0 = closed loop) --churn P --zipf-terms N\n"
      "          --zipf-s S --k K --seed N --json PATH --drain-grace SEC\n"
      "          --write-fraction F (mix kMutate sends; server needs\n"
      "          --mutate; records land in BENCH_mutate.json)\n"
      "  bench:  --iters N --json PATH\n",
      argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, ClientFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--mode" && (v = value())) {
      flags->mode = v;
    } else if (arg == "--host" && (v = value())) {
      flags->host = v;
    } else if (arg == "--port" && (v = value())) {
      flags->port = std::atoi(v);
    } else if (arg == "--scale" && (v = value())) {
      flags->scale = std::atof(v);
    } else if (arg == "--dataset" && (v = value())) {
      flags->dataset = v;
    } else if (arg == "--rank-cache" && (v = value())) {
      flags->rank_cache = v;
    } else if (arg == "--score-tol" && (v = value())) {
      flags->score_tol = std::atof(v);
    } else if (arg == "--tier" && (v = value())) {
      const std::string tier = v;
      if (tier == "auto") {
        flags->tier = 0;
      } else if (tier == "exact") {
        flags->tier = 1;
      } else if (tier == "approx" || tier == "approximate") {
        flags->tier = 2;
      } else if (tier == "cached") {
        flags->tier = 3;
      } else {
        std::fprintf(stderr, "unknown tier '%s'\n", v);
        return false;
      }
    } else if (arg == "--threads" && (v = value())) {
      flags->threads = std::atoi(v);
    } else if (arg == "--connections" && (v = value())) {
      flags->connections = std::atoi(v);
    } else if (arg == "--duration" && (v = value())) {
      flags->duration = std::atof(v);
    } else if (arg == "--pipeline" && (v = value())) {
      flags->pipeline = std::atoi(v);
    } else if (arg == "--rate" && (v = value())) {
      flags->rate = std::atof(v);
    } else if (arg == "--churn" && (v = value())) {
      flags->churn = std::atof(v);
    } else if (arg == "--drain-grace" && (v = value())) {
      flags->drain_grace = std::atof(v);
    } else if (arg == "--write-fraction" && (v = value())) {
      flags->write_fraction = std::atof(v);
    } else if (arg == "--zipf-terms" && (v = value())) {
      flags->zipf_terms = std::atoi(v);
    } else if (arg == "--zipf-s" && (v = value())) {
      flags->zipf_s = std::atof(v);
    } else if (arg == "--k" && (v = value())) {
      flags->k = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--seed" && (v = value())) {
      flags->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--iters" && (v = value())) {
      flags->iters = std::atoi(v);
    } else if (arg == "--json" && (v = value())) {
      flags->json_path = v;
      flags->json_path_set = true;
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", arg.c_str());
      return false;
    }
  }
  return flags->port > 0 && flags->port <= 65535;
}

/// The client-side mirror of the server's dataset: the same ORXD2
/// container when --dataset is given (zero-copy attach; MAP_PRIVATE, so
/// sharing the file with a running server is safe), the same seeded
/// generation otherwise.
tools::ServingDataset BuildClientDataset(const ClientFlags& flags,
                                         size_t max_head_terms = 64) {
  if (!flags.dataset.empty()) {
    std::printf("attaching %s...\n", flags.dataset.c_str());
    auto attached = tools::BuildServingDatasetFromContainer(
        flags.dataset, flags.rank_cache, max_head_terms);
    if (!attached.ok()) {
      std::fprintf(stderr, "dataset attach: %s\n",
                   attached.status().ToString().c_str());
      // Single-threaded startup path; exit() is fine here.
      std::exit(1);  // NOLINT(concurrency-mt-unsafe)
    }
    return std::move(*attached);
  }
  return tools::BuildServingDataset(flags.scale, max_head_terms);
}

// --- interactive -----------------------------------------------------------

void PrintSearchResponse(const net::SearchResponse& response) {
  TablePrinter table({"rank", "score", "type", "label"});
  int rank = 1;
  for (const net::WireResult& r : response.results) {
    table.AddRow({std::to_string(rank++), FormatDouble(r.score, 6),
                  r.type_label, r.display_label});
  }
  std::printf("%s", table.ToString().c_str());
  static const char* kTierNames[] = {"auto", "exact", "approx", "cached"};
  const char* tier = response.tier_used <= 3
                         ? kTierNames[response.tier_used]
                         : "?";
  std::printf("(%u iterations%s%s%s, tier %s%s%s, %.2f ms",
              response.iterations,
              response.from_rank_cache ? ", rank-cache warm start" : "",
              response.cache_hit ? ", result-cache hit" : "",
              response.coalesced ? ", coalesced" : "", tier,
              response.certified ? "" : " UNCERTIFIED",
              response.escalated ? " escalated" : "",
              response.total_seconds * 1e3);
  if (response.error_bound > 0.0) {
    std::printf(", bound %.3g", response.error_bound);
  }
  std::printf(")\n");
}

int RunInteractive(const ClientFlags& flags) {
  net::BlockingClient client;
  Status connected =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%d; commands: query <terms>, explain <rank>, "
              "feedback <ranks...>, validate, metrics, ping, quit\n",
              flags.host.c_str(), flags.port);
  std::string last_query;
  std::string line;
  while (std::printf("orx> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "ping") {
      Timer timer;
      Status status = client.Ping();
      std::printf("%s (%.2f ms)\n",
                  status.ok() ? "pong" : status.ToString().c_str(),
                  timer.ElapsedSeconds() * 1e3);
    } else if (command == "query" || command == "search") {
      std::string terms;
      std::getline(in, terms);
      net::SearchRequest request;
      request.query = terms;
      request.k = flags.k;
      request.tier = flags.tier;
      auto response = client.Search(request);
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      last_query = terms;
      PrintSearchResponse(*response);
    } else if (command == "explain") {
      uint32_t rank = 1;
      in >> rank;
      if (last_query.empty()) {
        std::printf("no previous query\n");
        continue;
      }
      auto response = client.Explain({last_query, rank});
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      std::printf("%s(%u iterations, build %.2f ms + adjust %.2f ms)\n",
                  response->text.c_str(), response->iterations,
                  response->construction_seconds * 1e3,
                  response->adjustment_seconds * 1e3);
    } else if (command == "feedback") {
      std::vector<uint32_t> ranks;
      uint32_t rank = 0;
      while (in >> rank) ranks.push_back(rank);
      if (last_query.empty()) {
        std::printf("no previous query\n");
        continue;
      }
      auto response = client.Reformulate({last_query, ranks});
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      std::printf("reformulated: %s\n",
                  response->reformulated_query.c_str());
      for (const auto& [term, weight] : response->top_expansion_terms) {
        std::printf("  + %s (%.4f)\n", term.c_str(), weight);
      }
      last_query = response->reformulated_query;
    } else if (command == "validate") {
      auto response = client.Validate();
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      std::printf("%s: %s\n", response->ok ? "OK" : "FAILED",
                  response->report.c_str());
    } else if (command == "metrics") {
      auto response = client.Metrics();
      if (!response.ok()) {
        std::printf("error: %s\n", response.status().ToString().c_str());
        continue;
      }
      const serve::ServeMetrics& m = response->serve;
      std::printf(
          "serve: submitted=%llu completed=%llu rejected=%llu hits=%llu "
          "coalesced=%llu executed=%llu p50=%.2fms p99=%.2fms qps=%.1f\n",
          static_cast<unsigned long long>(m.submitted),
          static_cast<unsigned long long>(m.completed),
          static_cast<unsigned long long>(m.rejected),
          static_cast<unsigned long long>(m.cache_hits),
          static_cast<unsigned long long>(m.coalesced),
          static_cast<unsigned long long>(m.executed),
          m.latency_p50 * 1e3, m.latency_p99 * 1e3, m.qps);
      std::printf(
          "net: accepted=%llu open=%llu frames in=%llu out=%llu errors=%llu "
          "decode=%llu backpressure=%llu idle=%llu\n",
          static_cast<unsigned long long>(response->connections_accepted),
          static_cast<unsigned long long>(response->connections_open),
          static_cast<unsigned long long>(response->frames_received),
          static_cast<unsigned long long>(response->frames_sent),
          static_cast<unsigned long long>(response->error_frames_sent),
          static_cast<unsigned long long>(response->decode_errors),
          static_cast<unsigned long long>(response->backpressure_closes),
          static_cast<unsigned long long>(response->idle_closes));
    } else {
      std::printf("unknown command '%s'\n", command.c_str());
    }
  }
  return 0;
}

// --- e2e -------------------------------------------------------------------

#define E2E_CHECK(cond, what)                                       \
  do {                                                              \
    if (cond) {                                                     \
      std::printf("  ok: %s\n", what);                              \
    } else {                                                        \
      std::printf("  FAIL: %s\n", what);                            \
      ++failures;                                                   \
    }                                                               \
  } while (0)

int RunE2e(const ClientFlags& flags) {
  std::printf("e2e: building golden dataset (scale=%.3f)...\n", flags.scale);
  tools::ServingDataset dataset = BuildClientDataset(flags);
  serve::SearchService golden(dataset.snapshot, {});
  const serve::ServeSnapshot& snap = *dataset.snapshot;

  // Exact against a generated twin; float-tolerant against a container
  // (see ClientFlags::score_tol).
  const double score_tol =
      flags.score_tol >= 0.0 ? flags.score_tol
                             : (flags.dataset.empty() ? 0.0 : 1e-12);
  auto scores_close = [score_tol](double wire, double local) {
    if (wire == local) return true;
    return std::abs(wire - local) <=
           score_tol * std::max({1.0, std::abs(wire), std::abs(local)});
  };

  net::BlockingClient client;
  Status connected =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 1;
  }
  int failures = 0;

  E2E_CHECK(client.Ping().ok(), "ping");

  // Search: wire results must match the in-process service bit-for-bit —
  // same deterministic generation, same snapshot, same kernels (the
  // power iteration promises per-lane bit-identity across paths).
  std::vector<std::string> queries;
  for (size_t i = 0; i < dataset.head_terms.size() && queries.size() < 6; ++i) {
    queries.push_back(dataset.head_terms[i]);
  }
  if (dataset.head_terms.size() >= 2) {
    queries.push_back(dataset.head_terms[0] + " " + dataset.head_terms[1]);
  }
  for (const std::string& q : queries) {
    auto wire = client.Search({q, flags.k, 0.0});
    serve::ServeRequest request;
    request.query = text::QueryVector(text::ParseQuery(q));
    core::SearchOptions options = snap.default_options;
    options.k = flags.k;
    request.options = options;
    auto local = golden.Search(std::move(request));
    const std::string what = "search '" + q + "'";
    if (!wire.ok() || !local.ok()) {
      E2E_CHECK(!wire.ok() && !local.ok() &&
                    wire.status().code() == local.status().code(),
                (what + " (status parity)").c_str());
      continue;
    }
    bool same = wire->results.size() == local->result.top.size();
    for (size_t i = 0; same && i < wire->results.size(); ++i) {
      const net::WireResult& w = wire->results[i];
      const core::ScoredNode& g = local->result.top[i];
      same = w.node == g.node && scores_close(w.score, g.score) &&
             w.display_label == snap.data->DisplayLabel(g.node);
    }
    E2E_CHECK(same, what.c_str());
  }

  // Explain: wire text equals the locally computed explaining subgraph.
  {
    const std::string& q = queries.front();
    const uint32_t rank = 2;
    auto wire = client.Explain({q, rank});
    text::QueryVector query(text::ParseQuery(q));
    serve::ServeRequest request;
    request.query = query;
    auto local = golden.Search(std::move(request));
    bool same = false;
    if (wire.ok() && local.ok() && local->result.top.size() >= rank) {
      auto base =
          core::BuildBaseSet(*snap.corpus, query,
                             core::BaseSetMode::kIrWeighted,
                             snap.default_options.bm25);
      if (base.ok()) {
        explain::Explainer explainer(*snap.data, *snap.authority);
        auto explanation = explainer.Explain(
            local->result.top[rank - 1].node, *base, local->result.scores,
            snap.rates, snap.default_options.objectrank.damping,
            explain::ExplainOptions{});
        same = explanation.ok() &&
               wire->text == explanation->subgraph.ToString(*snap.data);
      }
    }
    E2E_CHECK(same, "explain rank 2 matches local explainer");

    auto out_of_range = client.Explain({q, 9999});
    E2E_CHECK(!out_of_range.ok() && out_of_range.status().code() ==
                                        StatusCode::kInvalidArgument,
              "explain rank 9999 -> kInvalidArgument error frame");
  }

  // Reformulate: wire query string equals the local reformulator's.
  {
    const std::string& q = queries.front();
    auto wire = client.Reformulate({q, {1, 3}});
    text::QueryVector query(text::ParseQuery(q));
    serve::ServeRequest request;
    request.query = query;
    auto local = golden.Search(std::move(request));
    bool same = false;
    if (wire.ok() && local.ok() && local->result.top.size() >= 3) {
      auto base =
          core::BuildBaseSet(*snap.corpus, query,
                             core::BaseSetMode::kIrWeighted,
                             snap.default_options.bm25);
      if (base.ok()) {
        reform::Reformulator reformulator(*snap.data, *snap.authority,
                                          *snap.corpus);
        std::vector<graph::NodeId> feedback = {local->result.top[0].node,
                                               local->result.top[2].node};
        auto result = reformulator.Reformulate(
            query, snap.rates, *base, local->result.scores, feedback,
            reform::ReformulationOptions{});
        same = result.ok() &&
               wire->reformulated_query == result->query.ToString();
      }
    }
    E2E_CHECK(same, "reformulate {1,3} matches local reformulator");
  }

  {
    auto empty = client.Search({"", flags.k, 0.0});
    E2E_CHECK(!empty.ok() &&
                  empty.status().code() == StatusCode::kInvalidArgument,
              "empty query -> kInvalidArgument error frame");
  }

  // Tier hints: an exact-tier request reports tier 1 with a zero bound; an
  // approximate-tier request either certifies (same top-k node set as the
  // exact golden, a positive finite bound) or escalates back to exact.
  {
    const std::string& q = queries.front();
    net::SearchRequest exact_request;
    exact_request.query = q;
    exact_request.k = flags.k;
    exact_request.tier = 1;
    auto exact = client.Search(exact_request);
    E2E_CHECK(exact.ok() && exact->tier_used == 1 &&
                  exact->error_bound == 0.0 && exact->certified,
              "tier=exact -> tier_used 1, zero error bound");

    net::SearchRequest approx_request = exact_request;
    approx_request.tier = 2;
    auto approx = client.Search(approx_request);
    bool tier_ok = approx.ok();
    if (tier_ok && approx->tier_used == 2) {
      // Certified answer: the top-k node set must equal the exact one.
      tier_ok = approx->certified && approx->error_bound > 0.0 &&
                exact.ok() &&
                approx->results.size() == exact->results.size();
      for (size_t i = 0; tier_ok && i < approx->results.size(); ++i) {
        bool found = false;
        for (size_t j = 0; !found && j < exact->results.size(); ++j) {
          found = approx->results[i].node == exact->results[j].node;
        }
        tier_ok = found;
      }
    } else if (tier_ok) {
      tier_ok = approx->tier_used == 1 && approx->escalated;
    }
    E2E_CHECK(tier_ok,
              "tier=approx -> certified top-k == exact, or escalated");
  }
  {
    auto validate = client.Validate();
    E2E_CHECK(validate.ok() && validate->ok,
              "validate reports a structurally sound snapshot");
  }
  {
    auto metrics = client.Metrics();
    E2E_CHECK(metrics.ok() && metrics->frames_received > 0 &&
                  metrics->serve.completed <= metrics->serve.submitted,
              "metrics consistent (frames seen, completed <= submitted)");
  }

  std::printf("e2e: %s (%d failure%s)\n", failures == 0 ? "PASS" : "FAIL",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

// --- load ------------------------------------------------------------------

/// Aggregated per-thread accounting. "dropped" are frames we sent that
/// were never answered by anything — not even an error frame. The
/// acceptance bar is dropped == 0: under overload the server sheds load
/// with kError/kUnavailable, it does not go silent.
struct LoadCounters {
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t error_frames = 0;
  uint64_t rejected = 0;  // error frames carrying kUnavailable
  uint64_t dropped = 0;
  uint64_t reconnects = 0;
  uint64_t connect_failures = 0;
  uint64_t writes_sent = 0;
  uint64_t writes_answered = 0;
  uint64_t writes_rejected = 0;  // kUnavailable on a kMutate (log full)

  void MergeInto(LoadCounters* total) const {
    total->sent += sent;
    total->answered += answered;
    total->error_frames += error_frames;
    total->rejected += rejected;
    total->dropped += dropped;
    total->reconnects += reconnects;
    total->connect_failures += connect_failures;
    total->writes_sent += writes_sent;
    total->writes_answered += writes_answered;
    total->writes_rejected += writes_rejected;
  }
};

struct InflightFrame {
  Clock::time_point sent;
  bool is_write = false;
};

struct LoadConn {
  int fd = -1;
  std::string outbuf;
  size_t write_pos = 0;
  std::string inbuf;
  std::unordered_map<uint64_t, InflightFrame> inflight;
  uint64_t next_id = 1;
  double next_send = 0.0;  // open-loop schedule, seconds since thread start
};

/// Node/type handles the mixed mode mutates against. Writes only ever
/// reference *initial* nodes: RemoveNode is detach-only (dense stable
/// ids) and the load mode never removes, so ids valid at dataset build
/// time stay valid on the server no matter how many writes land first.
struct WritePlan {
  std::vector<graph::NodeId> papers;
  std::vector<graph::NodeId> authors;
  graph::TypeId paper_type = 0;
  graph::EdgeTypeId cites = 0;
  graph::EdgeTypeId by = 0;
};

struct LoadShared {
  const ClientFlags* flags = nullptr;
  const std::vector<std::string>* terms = nullptr;
  const datasets::ZipfSampler* popularity = nullptr;
  LatencyHistogram* histogram = nullptr;        // reads
  LatencyHistogram* write_histogram = nullptr;  // kMutate acks
  /// Read latencies bucketed by send-period time window; a snapshot
  /// publication that stalls readers shows up as one window's p99
  /// spiking above the others (the "cliff" the acceptance bar forbids).
  std::vector<LatencyHistogram>* read_windows = nullptr;
  double window_seconds = 1.0;
  const WritePlan* writes = nullptr;  // null = read-only load
  std::latch* ready = nullptr;
};

int ConnectLoad(const ClientFlags& flags, LoadCounters* counters) {
  // A burst of N simultaneous connects can overflow the listen backlog;
  // brief retries keep the ramp honest instead of under-provisioning the
  // fleet silently.
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto fd = net::ConnectTcp(flags.host, static_cast<uint16_t>(flags.port));
    if (fd.ok()) {
      IgnoreError(net::SetNonBlocking(*fd));
      return *fd;
    }
    usleep(2000 * (attempt + 1));
  }
  ++counters->connect_failures;
  return -1;
}

/// Flushes as much of the outbound buffer as the socket accepts.
/// Returns false when the connection died under us.
bool FlushConn(LoadConn* conn) {
  while (conn->write_pos < conn->outbuf.size()) {
    const ssize_t n = net::RetryEintr([&] {
      return write(conn->fd, conn->outbuf.data() + conn->write_pos,
                   conn->outbuf.size() - conn->write_pos);
    });
    if (n > 0) {
      conn->write_pos += static_cast<size_t>(n);
      continue;
    }
    if (n == -1 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  conn->outbuf.clear();
  conn->write_pos = 0;
  return true;
}

void CloseLoadConn(LoadConn* conn, LoadCounters* counters) {
  counters->dropped += conn->inflight.size();
  conn->inflight.clear();
  if (conn->fd != -1) close(conn->fd);
  conn->fd = -1;
  conn->outbuf.clear();
  conn->write_pos = 0;
  conn->inbuf.clear();
}

void SendSearch(LoadConn* conn, const LoadShared& shared, Rng& rng,
                LoadCounters* counters, Clock::time_point now) {
  net::SearchRequest request;
  request.query = (*shared.terms)[shared.popularity->Sample(rng)];
  request.k = shared.flags->k;
  request.tier = shared.flags->tier;
  const uint64_t id = conn->next_id++;
  conn->outbuf += net::EncodeFrame(net::Op::kSearch, id,
                                   net::EncodeSearchRequest(request));
  conn->inflight.emplace(id, InflightFrame{now, false});
  ++counters->sent;
}

/// One kMutate batch of 1–3 mutations against the write plan: title
/// rewrites on existing papers (text + BM25 stats churn), new citation /
/// authorship edges (authority churn; an occasional exact duplicate is
/// rejected at apply time, which the rejected-batch accounting absorbs),
/// and fresh paper nodes built from head terms.
void SendMutate(LoadConn* conn, const LoadShared& shared, Rng& rng,
                LoadCounters* counters, Clock::time_point now) {
  const WritePlan& plan = *shared.writes;
  const std::vector<std::string>& terms = *shared.terms;
  auto term = [&]() -> const std::string& {
    return terms[rng.UniformInt(terms.size())];
  };
  auto paper = [&]() -> graph::NodeId {
    return plan.papers[rng.UniformInt(plan.papers.size())];
  };
  net::MutateRequest request;
  const size_t count = 1 + rng.UniformInt(3);
  for (size_t i = 0; i < count; ++i) {
    switch (rng.UniformInt(3)) {
      case 0:
        request.batch.mutations.push_back(mutate::Mutation::UpdateNodeText(
            paper(), {{"title", term() + " " + term() + " revised"}}));
        break;
      case 1:
        if (!plan.authors.empty() && rng.UniformInt(2) == 0) {
          request.batch.mutations.push_back(mutate::Mutation::AddEdge(
              paper(), plan.authors[rng.UniformInt(plan.authors.size())],
              plan.by));
        } else {
          const size_t a = rng.UniformInt(plan.papers.size());
          const size_t b =
              (a + 1 + rng.UniformInt(plan.papers.size() - 1)) %
              plan.papers.size();
          request.batch.mutations.push_back(mutate::Mutation::AddEdge(
              plan.papers[a], plan.papers[b], plan.cites));
        }
        break;
      default:
        request.batch.mutations.push_back(mutate::Mutation::AddNode(
            plan.paper_type,
            {{"title", term() + " " + term() + " " + term()}}));
        break;
    }
  }
  const uint64_t id = conn->next_id++;
  conn->outbuf += net::EncodeFrame(net::Op::kMutate, id,
                                   net::EncodeMutateRequest(request));
  conn->inflight.emplace(id, InflightFrame{now, true});
  ++counters->sent;
  ++counters->writes_sent;
}

/// Picks read vs write per the configured mix.
void SendOne(LoadConn* conn, const LoadShared& shared, Rng& rng,
             LoadCounters* counters, Clock::time_point now) {
  if (shared.writes != nullptr &&
      rng.UniformDouble() < shared.flags->write_fraction) {
    SendMutate(conn, shared, rng, counters, now);
  } else {
    SendSearch(conn, shared, rng, counters, now);
  }
}

/// Consumes complete frames from the connection's read buffer. Returns
/// false if framing was lost (the connection must be closed). `start` is
/// the thread's send-period origin, for windowed read latencies.
bool ParseLoadFrames(LoadConn* conn, const LoadShared& shared,
                     LoadCounters* counters, Clock::time_point start) {
  size_t pos = 0;
  while (conn->inbuf.size() - pos >= net::kHeaderSize) {
    auto header = net::DecodeHeader(conn->inbuf.data() + pos);
    if (!header.ok()) return false;
    if (conn->inbuf.size() - pos < net::kHeaderSize + header->payload_size) {
      break;
    }
    const Clock::time_point now = Clock::now();
    bool is_write = false;
    auto it = conn->inflight.find(header->request_id);
    if (it != conn->inflight.end()) {
      is_write = it->second.is_write;
      const double latency = Seconds(it->second.sent, now);
      if (is_write) {
        shared.write_histogram->Record(latency);
        ++counters->writes_answered;
      } else {
        shared.histogram->Record(latency);
        if (shared.read_windows != nullptr && !shared.read_windows->empty()) {
          const size_t window = std::min(
              shared.read_windows->size() - 1,
              static_cast<size_t>(std::max(0.0, Seconds(start, now)) /
                                  shared.window_seconds));
          (*shared.read_windows)[window].Record(latency);
        }
      }
      conn->inflight.erase(it);
      ++counters->answered;
    }
    if (header->op == net::Op::kError) {
      ++counters->error_frames;
      const std::string payload = conn->inbuf.substr(
          pos + net::kHeaderSize, header->payload_size);
      auto error = net::DecodeErrorResponse(payload);
      if (error.ok() && error->code == StatusCode::kUnavailable) {
        ++counters->rejected;
        if (is_write) ++counters->writes_rejected;
      }
    }
    pos += net::kHeaderSize + header->payload_size;
  }
  conn->inbuf.erase(0, pos);
  return true;
}

void RunLoadThread(int thread_index, int num_conns, LoadShared shared,
                   LoadCounters* counters) {
  const ClientFlags& flags = *shared.flags;
  Rng rng(flags.seed * 7919 + static_cast<uint64_t>(thread_index) + 1);
  std::vector<LoadConn> conns(static_cast<size_t>(num_conns));
  for (LoadConn& conn : conns) conn.fd = ConnectLoad(flags, counters);

  // Open-loop pacing: each connection owns an equal slice of the target
  // rate, with a jittered start so the fleet doesn't fire in phase.
  const double interval =
      flags.rate > 0.0
          ? static_cast<double>(flags.threads) * num_conns / flags.rate
          : 0.0;
  for (LoadConn& conn : conns) {
    conn.next_send = interval * rng.UniformDouble();
  }

  shared.ready->arrive_and_wait();
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(flags.duration));
  const Clock::time_point drain_deadline =
      end + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(flags.drain_grace));

  std::vector<pollfd> fds;
  std::vector<size_t> index;  // fds[i] -> conns[index[i]]
  for (;;) {
    const Clock::time_point now = Clock::now();
    const bool sending = now < end;
    if (!sending) {
      bool idle = true;
      for (const LoadConn& conn : conns) {
        if (conn.fd != -1 &&
            (!conn.inflight.empty() || conn.write_pos < conn.outbuf.size())) {
          idle = false;
          break;
        }
      }
      if (idle || now >= drain_deadline) break;
    }

    const double elapsed = Seconds(start, now);
    for (LoadConn& conn : conns) {
      if (conn.fd == -1) {
        if (sending) {
          conn.fd = ConnectLoad(flags, counters);
          if (conn.fd != -1) ++counters->reconnects;
        }
        if (conn.fd == -1) continue;
      }
      if (!sending) continue;
      if (flags.rate > 0.0) {
        // Open loop: send on schedule regardless of outstanding frames
        // (bounded only by a sanity cap so a stalled server can't grow
        // the map without limit — those sends are simply not offered).
        while (conn.next_send <= elapsed &&
               conn.inflight.size() < 4096) {
          SendOne(&conn, shared, rng, counters, now);
          conn.next_send += interval;
        }
      } else {
        while (conn.inflight.size() <
               static_cast<size_t>(flags.pipeline)) {
          SendOne(&conn, shared, rng, counters, now);
        }
      }
      if (!FlushConn(&conn)) CloseLoadConn(&conn, counters);
    }

    fds.clear();
    index.clear();
    for (size_t i = 0; i < conns.size(); ++i) {
      if (conns[i].fd == -1) continue;
      pollfd p{};
      p.fd = conns[i].fd;
      p.events = POLLIN;
      if (conns[i].write_pos < conns[i].outbuf.size()) p.events |= POLLOUT;
      fds.push_back(p);
      index.push_back(i);
    }
    if (fds.empty()) {
      if (!sending) break;
      usleep(1000);
      continue;
    }
    const int ready = net::RetryEintr([&] {
      return poll(fds.data(), fds.size(), 2);
    });
    if (ready <= 0) continue;

    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      LoadConn& conn = conns[index[i]];
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseLoadConn(&conn, counters);
        continue;
      }
      if (fds[i].revents & POLLOUT) {
        if (!FlushConn(&conn)) {
          CloseLoadConn(&conn, counters);
          continue;
        }
      }
      if ((fds[i].revents & POLLIN) == 0) continue;
      bool dead = false;
      char buffer[65536];
      for (;;) {
        const ssize_t n = net::RetryEintr([&] {
          return read(conn.fd, buffer, sizeof(buffer));
        });
        if (n > 0) {
          conn.inbuf.append(buffer, static_cast<size_t>(n));
          continue;
        }
        if (n == -1 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;  // EOF or a hard error
        break;
      }
      if (!ParseLoadFrames(&conn, shared, counters, start)) dead = true;
      if (dead) {
        CloseLoadConn(&conn, counters);
        continue;
      }
      // Churn: once quiescent, occasionally cycle the connection to
      // exercise accept/close under load. Only when nothing is in
      // flight, so churn never manufactures dropped frames.
      if (Clock::now() < end && flags.churn > 0.0 &&
          conn.inflight.empty() && rng.UniformDouble() < flags.churn) {
        CloseLoadConn(&conn, counters);
        conn.fd = ConnectLoad(flags, counters);
        if (conn.fd != -1) ++counters->reconnects;
      }
    }
  }

  for (LoadConn& conn : conns) {
    if (conn.fd != -1) CloseLoadConn(&conn, counters);
  }
}

int RunLoad(const ClientFlags& flags) {
  net::IgnoreSigpipe();
  std::printf("load: building query mix (scale=%.3f)...\n", flags.scale);
  tools::ServingDataset dataset =
      BuildClientDataset(flags, static_cast<size_t>(flags.zipf_terms));
  if (dataset.head_terms.empty()) {
    std::fprintf(stderr, "load: empty query universe\n");
    return 1;
  }
  const datasets::ZipfSampler popularity(dataset.head_terms.size(),
                                         flags.zipf_s);
  LatencyHistogram histogram;
  LatencyHistogram write_histogram;

  const bool mixed = flags.write_fraction > 0.0;
  WritePlan plan;
  if (mixed) {
    const graph::DataGraph& data = dataset.dblp->dataset.data();
    const datasets::DblpTypes& types = dataset.dblp->types;
    plan.paper_type = types.paper;
    plan.cites = types.cites;
    plan.by = types.by;
    for (graph::NodeId v = 0;
         v < static_cast<graph::NodeId>(data.num_nodes()); ++v) {
      if (data.NodeType(v) == types.paper) {
        plan.papers.push_back(v);
      } else if (data.NodeType(v) == types.author) {
        plan.authors.push_back(v);
      }
    }
    if (plan.papers.size() < 2) {
      std::fprintf(stderr, "load: dataset too small for a write mix\n");
      return 1;
    }
  }
  // ~1s read-latency windows across the send period (at least 4 so a
  // single publication stall can't hide in a lone window's average).
  const size_t num_windows =
      std::max<size_t>(4, static_cast<size_t>(flags.duration));
  std::vector<LatencyHistogram> read_windows(mixed ? num_windows : 0);

  const int threads = std::max(1, flags.threads);
  const int connections = std::max(1, flags.connections);
  std::latch ready(threads + 1);
  LoadShared shared;
  shared.flags = &flags;
  shared.terms = &dataset.head_terms;
  shared.popularity = &popularity;
  shared.histogram = &histogram;
  shared.write_histogram = &write_histogram;
  shared.read_windows = mixed ? &read_windows : nullptr;
  shared.window_seconds =
      flags.duration / static_cast<double>(num_windows);
  shared.writes = mixed ? &plan : nullptr;
  shared.ready = &ready;

  std::printf("load: %d connections on %d threads for %.1fs (%s%s%s)\n",
              connections, threads, flags.duration,
              flags.rate > 0.0
                  ? ("open loop @ " + FormatDouble(flags.rate, 0) + " rps")
                        .c_str()
                  : ("closed loop, pipeline " +
                     std::to_string(flags.pipeline))
                        .c_str(),
              flags.churn > 0.0 ? ", with churn" : "",
              mixed ? (", write fraction " +
                       FormatDouble(flags.write_fraction, 2))
                          .c_str()
                    : "");
  std::vector<LoadCounters> per_thread(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    const int conns =
        connections / threads + (t < connections % threads ? 1 : 0);
    workers.emplace_back(RunLoadThread, t, conns, shared,
                         &per_thread[static_cast<size_t>(t)]);
  }
  ready.arrive_and_wait();
  const Clock::time_point start = Clock::now();
  for (std::thread& w : workers) w.join();
  const double wall = Seconds(start, Clock::now());

  LoadCounters total;
  for (const LoadCounters& c : per_thread) c.MergeInto(&total);
  const double rps = wall > 0.0 ? total.answered / wall : 0.0;
  const double p50 = histogram.Percentile(50) * 1e3;
  const double p95 = histogram.Percentile(95) * 1e3;
  const double p99 = histogram.Percentile(99) * 1e3;
  const double mean = histogram.MeanSeconds() * 1e3;

  TablePrinter table({"sent", "answered", "errors", "rejected", "dropped",
                      "reconnects", "rps", "p50 (ms)", "p95 (ms)",
                      "p99 (ms)", "mean (ms)"});
  table.AddRow({std::to_string(total.sent), std::to_string(total.answered),
                std::to_string(total.error_frames),
                std::to_string(total.rejected),
                std::to_string(total.dropped),
                std::to_string(total.reconnects), FormatDouble(rps, 0),
                FormatDouble(p50, 2), FormatDouble(p95, 2),
                FormatDouble(p99, 2), FormatDouble(mean, 2)});
  std::printf("%s", table.ToString().c_str());
  std::printf("error_frames=%llu dropped=%llu connect_failures=%llu\n",
              static_cast<unsigned long long>(total.error_frames),
              static_cast<unsigned long long>(total.dropped),
              static_cast<unsigned long long>(total.connect_failures));

  // Mixed-mode extras: write-side latencies, the windowed read p99 (a
  // publication-induced stall spikes one window), and the server's
  // write-path counters from a final kMetrics call.
  double write_p50 = 0.0, write_p95 = 0.0, write_p99 = 0.0;
  double window_p99_max = 0.0, window_p99_min = 0.0;
  net::MetricsResponse server_metrics;
  bool have_metrics = false;
  if (mixed) {
    write_p50 = write_histogram.Percentile(50) * 1e3;
    write_p95 = write_histogram.Percentile(95) * 1e3;
    write_p99 = write_histogram.Percentile(99) * 1e3;
    bool first = true;
    for (const LatencyHistogram& w : read_windows) {
      if (w.TotalCount() == 0) continue;
      const double wp99 = w.Percentile(99) * 1e3;
      window_p99_max = first ? wp99 : std::max(window_p99_max, wp99);
      window_p99_min = first ? wp99 : std::min(window_p99_min, wp99);
      first = false;
    }
    std::printf("write: sent=%llu answered=%llu rejected=%llu "
                "p50=%.2fms p95=%.2fms p99=%.2fms\n",
                static_cast<unsigned long long>(total.writes_sent),
                static_cast<unsigned long long>(total.writes_answered),
                static_cast<unsigned long long>(total.writes_rejected),
                write_p50, write_p95, write_p99);
    std::printf("read p99 by window: min=%.2fms max=%.2fms (overall "
                "%.2fms across %zu windows)\n",
                window_p99_min, window_p99_max, p99, read_windows.size());

    net::BlockingClient metrics_client;
    Status connected = metrics_client.Connect(
        flags.host, static_cast<uint16_t>(flags.port));
    if (connected.ok()) {
      auto response = metrics_client.Metrics();
      if (response.ok()) {
        server_metrics = *response;
        have_metrics = true;
        std::printf(
            "server write path: accepted=%llu rejected=%llu queued=%llu "
            "snapshots_published=%llu epochs_live=%llu rank terms "
            "reused=%llu refreshed=%llu\n",
            static_cast<unsigned long long>(server_metrics.mutate_accepted),
            static_cast<unsigned long long>(server_metrics.mutate_rejected),
            static_cast<unsigned long long>(server_metrics.mutate_queued),
            static_cast<unsigned long long>(
                server_metrics.snapshots_published),
            static_cast<unsigned long long>(server_metrics.epochs_live),
            static_cast<unsigned long long>(
                server_metrics.rank_terms_reused),
            static_cast<unsigned long long>(
                server_metrics.rank_terms_refreshed));
      }
    }
    if (!have_metrics) {
      std::fprintf(stderr,
                   "load: warning — could not fetch final server metrics\n");
    }
  }

  const std::string json_path = (mixed && !flags.json_path_set)
                                    ? std::string("BENCH_mutate.json")
                                    : flags.json_path;
  bench::JsonObject record = bench::BenchRecord(
      mixed ? "net_serve_mutate_load" : "net_serve_load",
      bench::BenchDataset{dataset.description,
                          dataset.snapshot->data->num_nodes(),
                          dataset.snapshot->authority->num_edges()},
      threads, wall);
  record.Add("mode", flags.rate > 0.0 ? "open" : "closed")
      .Add("tier", static_cast<int>(flags.tier))
      .Add("connections", connections)
      .Add("pipeline", flags.pipeline)
      .Add("target_rate", flags.rate)
      .Add("churn", flags.churn)
      .Add("duration_seconds", flags.duration)
      .Add("sent", static_cast<unsigned long long>(total.sent))
      .Add("answered", static_cast<unsigned long long>(total.answered))
      .Add("error_frames",
           static_cast<unsigned long long>(total.error_frames))
      .Add("rejected", static_cast<unsigned long long>(total.rejected))
      .Add("dropped", static_cast<unsigned long long>(total.dropped))
      .Add("reconnects", static_cast<unsigned long long>(total.reconnects))
      .Add("rps", rps)
      .Add("latency_p50_ms", p50)
      .Add("latency_p95_ms", p95)
      .Add("latency_p99_ms", p99)
      .Add("latency_mean_ms", mean);
  if (mixed) {
    record.Add("write_fraction", flags.write_fraction)
        .Add("writes_sent", static_cast<unsigned long long>(total.writes_sent))
        .Add("writes_answered",
             static_cast<unsigned long long>(total.writes_answered))
        .Add("writes_rejected",
             static_cast<unsigned long long>(total.writes_rejected))
        .Add("write_latency_p50_ms", write_p50)
        .Add("write_latency_p95_ms", write_p95)
        .Add("write_latency_p99_ms", write_p99)
        .Add("read_p99_window_min_ms", window_p99_min)
        .Add("read_p99_window_max_ms", window_p99_max)
        .Add("read_windows", read_windows.size())
        .Add("mutate_accepted",
             static_cast<unsigned long long>(server_metrics.mutate_accepted))
        .Add("mutate_rejected",
             static_cast<unsigned long long>(server_metrics.mutate_rejected))
        .Add("snapshots_published",
             static_cast<unsigned long long>(
                 server_metrics.snapshots_published))
        .Add("epochs_live",
             static_cast<unsigned long long>(server_metrics.epochs_live))
        .Add("rank_terms_reused",
             static_cast<unsigned long long>(
                 server_metrics.rank_terms_reused))
        .Add("rank_terms_refreshed",
             static_cast<unsigned long long>(
                 server_metrics.rank_terms_refreshed));
  }
  bench::WriteJsonFile(json_path, bench::JsonArray({record.ToString()}));

  if (total.dropped > 0) {
    std::fprintf(stderr,
                 "load: FAIL — %llu sent frames were never answered\n",
                 static_cast<unsigned long long>(total.dropped));
    return 1;
  }
  if (mixed && have_metrics && total.writes_sent > 0 &&
      server_metrics.snapshots_published == 0) {
    std::fprintf(stderr,
                 "load: FAIL — writes were accepted but no snapshot was "
                 "ever published (builder not running?)\n");
    return 1;
  }
  std::printf("load: PASS — every sent frame was answered\n");
  return 0;
}

// --- bench -----------------------------------------------------------------

int RunBench(const ClientFlags& flags) {
  std::printf("bench: building query mix (scale=%.3f)...\n", flags.scale);
  tools::ServingDataset dataset =
      BuildClientDataset(flags, static_cast<size_t>(flags.zipf_terms));
  if (dataset.head_terms.empty()) {
    std::fprintf(stderr, "bench: empty query universe\n");
    return 1;
  }
  const datasets::ZipfSampler popularity(dataset.head_terms.size(),
                                         flags.zipf_s);
  Rng rng(flags.seed);
  net::BlockingClient client;
  Status connected =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n", connected.ToString().c_str());
    return 1;
  }

  struct OpBench {
    std::string name;
    std::function<Status()> call;
    int iters;
  };
  const std::string& head = dataset.head_terms.front();
  std::vector<OpBench> ops;
  ops.push_back({"ping", [&] { return client.Ping(); }, flags.iters});
  ops.push_back({"search_zipf",
                 [&] {
                   net::SearchRequest request;
                   request.query =
                       dataset.head_terms[popularity.Sample(rng)];
                   request.k = flags.k;
                   request.tier = flags.tier;
                   return client.Search(request).status();
                 },
                 flags.iters});
  ops.push_back({"explain_rank1",
                 [&] { return client.Explain({head, 1}).status(); },
                 std::max(1, flags.iters / 10)});
  ops.push_back({"reformulate",
                 [&] { return client.Reformulate({head, {1}}).status(); },
                 std::max(1, flags.iters / 10)});
  ops.push_back({"validate", [&] { return client.Validate().status(); },
                 std::max(1, flags.iters / 10)});
  ops.push_back({"metrics", [&] { return client.Metrics().status(); },
                 flags.iters});

  TablePrinter table({"op", "iters", "errors", "p50 (ms)", "p95 (ms)",
                      "p99 (ms)", "mean (ms)"});
  std::vector<std::string> records;
  for (OpBench& op : ops) {
    LatencyHistogram histogram;
    int errors = 0;
    IgnoreError(op.call());  // warm-up round
    Timer wall;
    for (int i = 0; i < op.iters; ++i) {
      Timer timer;
      if (!op.call().ok()) ++errors;
      histogram.Record(timer.ElapsedSeconds());
    }
    const double wall_seconds = wall.ElapsedSeconds();
    const double p50 = histogram.Percentile(50) * 1e3;
    const double p95 = histogram.Percentile(95) * 1e3;
    const double p99 = histogram.Percentile(99) * 1e3;
    const double mean = histogram.MeanSeconds() * 1e3;
    table.AddRow({op.name, std::to_string(op.iters),
                  std::to_string(errors), FormatDouble(p50, 3),
                  FormatDouble(p95, 3), FormatDouble(p99, 3),
                  FormatDouble(mean, 3)});
    bench::JsonObject record = bench::BenchRecord(
        "net_serve_bench",
        bench::BenchDataset{dataset.description,
                            dataset.snapshot->data->num_nodes(),
                            dataset.snapshot->authority->num_edges()},
        1, wall_seconds);
    record.Add("op", op.name)
        .Add("iters", op.iters)
        .Add("errors", errors)
        .Add("latency_p50_ms", p50)
        .Add("latency_p95_ms", p95)
        .Add("latency_p99_ms", p99)
        .Add("latency_mean_ms", mean);
    records.push_back(record.ToString());
  }
  std::printf("%s", table.ToString().c_str());
  bench::WriteJsonFile(flags.json_path, bench::JsonArray(records));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientFlags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);
  if (flags.mode == "interactive") return RunInteractive(flags);
  if (flags.mode == "e2e") return RunE2e(flags);
  if (flags.mode == "load") return RunLoad(flags);
  if (flags.mode == "bench") return RunBench(flags);
  std::fprintf(stderr, "unknown mode '%s'\n", flags.mode.c_str());
  return Usage(argv[0]);
}
