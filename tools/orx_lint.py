#!/usr/bin/env python3
"""orx_lint: repo-specific correctness lint for ORX.

Checks invariants the compiler cannot (or that -Wall only covers half
of):

  status-discard  `(void)Foo(...)` casts of *calls* are banned everywhere.
                  Status/StatusOr are [[nodiscard]]; the one sanctioned
                  way to drop an error is orx::IgnoreError(Foo(...)),
                  which reads as a decision and is greppable. ((void)var
                  of an already-materialized variable is fine.)
  fp-contract     The power-iteration kernel TUs (graph/spmv_layout.cc,
                  core/objectrank.cc) must keep -ffp-contract=off in
                  src/CMakeLists.txt - the batch-vs-single bit-identity
                  guarantee dies silently if the property is dropped.
  no-rand         rand()/std::rand() are banned (not reproducible, not
                  thread-safe); use common/rng.h.
  naked-new       `new`/`delete` expressions in src/ outside the two
                  sanctioned shapes: the static leaky-singleton idiom
                  (`static ... = *new T(...)` / `static T* x = new T`,
                  which deliberately never destructs), and allocator
                  machinery spelled through `::operator new/delete`.
                  Everything else must use containers or smart pointers.
  include-guard   src/ headers must guard with ORX_<PATH>_H_ (e.g.
                  src/graph/validate.h -> ORX_GRAPH_VALIDATE_H_), so
                  guards never collide after a file move.
  raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable (and friends) are banned in
                  src/ outside common/mutex.{h,cc}: every lock goes
                  through the annotated orx::Mutex layer so the Clang
                  thread-safety analysis and the runtime lock-order
                  validator see it.
  detached-thread std::thread construction is banned in src/ and tools/
                  outside common/thread_pool.{h,cc} (use the pool, or
                  allowlist the sanctioned long-lived service threads),
                  and .detach() is banned everywhere scanned — a
                  detached thread outlives every shutdown contract.
                  (std::thread::id / std::this_thread are fine.)

Allowlist: tools/orx_lint_allow.txt, one entry per line:
    <rule> <path-suffix>[ <substring>]
suppresses findings of <rule> in files whose path ends with
<path-suffix>; with <substring>, only findings whose line contains it.
Blank lines and # comments are ignored.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
--self-test feeds known-bad snippets through every checker and fails if
any goes undetected (guards against the linter rotting into a no-op).
"""

import argparse
import os
import re
import sys

KERNEL_TUS = ("graph/spmv_layout.cc", "core/objectrank.cc")

# (void) cast directly applied to a call: `(void)Foo(`, `(void) obj.Bar(`,
# `(void)ns::Baz(`. A cast of a bare variable has no following '('.
STATUS_DISCARD_RE = re.compile(
    r"\(\s*void\s*\)\s*[A-Za-z_][A-Za-z0-9_]*(?:(?:::|\.|->)[A-Za-z_][A-Za-z0-9_]*)*\s*\(")

RAND_RE = re.compile(r"(?:\bstd::rand\b|(?<![A-Za-z0-9_.])rand\s*\(\s*\))")

NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")

GUARD_RE = re.compile(r"^#ifndef\s+([A-Z0-9_]+)\s*$", re.MULTILINE)

# The raw synchronization vocabulary the orx::Mutex layer replaces.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")
RAW_MUTEX_EXEMPT = ("src/common/mutex.h", "src/common/mutex.cc")

# `std::thread t(...)` but not `std::thread::id` / `std::thread::
# hardware_concurrency` (scope-resolution uses are queries, not spawns).
THREAD_SPAWN_RE = re.compile(r"\bstd::thread\b(?!\s*::)")
THREAD_SPAWN_EXEMPT = ("src/common/thread_pool.h", "src/common/thread_pool.cc")
DETACH_RE = re.compile(r"\.\s*detach\s*\(")


def strip_comments_and_strings(line):
    """Blanks out // comments and string/char literals so banned tokens
    inside them don't count. Line-local (block comments spanning lines are
    rare in this codebase and /// docs are caught by the // rule)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] in "/*":
            if line[i + 1] == "/":
                break  # rest is a // comment
            # /* ... */ within one line; if unterminated, drop the rest.
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, lineno, line, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.line = line
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.lineno}" if self.lineno else self.path
        return f"{loc}: [{self.rule}] {self.message}\n    {self.line.strip()}"


def check_status_discard(path, text):
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = strip_comments_and_strings(raw)
        if STATUS_DISCARD_RE.search(line):
            yield Finding(
                "status-discard", path, lineno, raw,
                "(void)-cast of a call discards its result invisibly; "
                "use orx::IgnoreError(...) if dropping it is deliberate")


def check_no_rand(path, text):
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = strip_comments_and_strings(raw)
        if RAND_RE.search(line):
            yield Finding(
                "no-rand", path, lineno, raw,
                "rand()/std::rand() is banned (irreproducible, not "
                "thread-safe); use orx::Rng from common/rng.h")


def check_naked_new(path, text):
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = strip_comments_and_strings(raw)
        if line.lstrip().startswith("#"):
            continue  # preprocessor (`#include <new>` is not an expression)
        if NEW_RE.search(line):
            allowed = (
                "operator new" in line
                or "*new" in line.replace("* new", "*new")
                or ("static" in line and "= new" in line.replace("=new", "= new"))
                or "placement new" in line
            )
            if not allowed:
                yield Finding(
                    "naked-new", path, lineno, raw,
                    "naked `new` outside the static leaky-singleton idiom; "
                    "use a container or std::make_unique/make_shared")
        if DELETE_RE.search(line):
            allowed = (
                "operator delete" in line
                or "= delete" in line.replace("=delete", "= delete")
            )
            if not allowed:
                yield Finding(
                    "naked-new", path, lineno, raw,
                    "naked `delete`; owning raw pointers are banned in src/")


def check_raw_mutex(path, text):
    if path in RAW_MUTEX_EXEMPT:
        return
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = strip_comments_and_strings(raw)
        if line.lstrip().startswith("#"):
            continue  # `#include <mutex>` inside common/mutex.h etc.
        if RAW_MUTEX_RE.search(line):
            yield Finding(
                "raw-mutex", path, lineno, raw,
                "raw std:: synchronization in src/; use orx::Mutex / "
                "orx::MutexLock / orx::CondVar from common/mutex.h so the "
                "thread-safety analysis and lock-order validator cover it")


def check_detached_thread(path, text, ban_spawn):
    exempt_spawn = path in THREAD_SPAWN_EXEMPT
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = strip_comments_and_strings(raw)
        if line.lstrip().startswith("#"):
            continue
        if ban_spawn and not exempt_spawn and THREAD_SPAWN_RE.search(line):
            yield Finding(
                "detached-thread", path, lineno, raw,
                "std::thread outside common/thread_pool; submit to a "
                "ThreadPool, or allowlist a sanctioned long-lived service "
                "thread in tools/orx_lint_allow.txt")
        if DETACH_RE.search(line):
            yield Finding(
                "detached-thread", path, lineno, raw,
                ".detach() is banned: a detached thread outlives every "
                "shutdown/drain contract; keep the handle and join it")


def expected_guard(rel_path):
    # src/graph/validate.h -> ORX_GRAPH_VALIDATE_H_
    inner = rel_path[len("src/"):] if rel_path.startswith("src/") else rel_path
    stem = inner[:-2] if inner.endswith(".h") else inner
    return "ORX_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_include_guard(path, text, rel_path):
    match = GUARD_RE.search(text)
    want = expected_guard(rel_path)
    if not match:
        yield Finding("include-guard", path, 1, text.splitlines()[0] if text else "",
                      f"header has no #ifndef include guard (want {want})")
        return
    got = match.group(1)
    if got != want:
        yield Finding("include-guard", path,
                      text[:match.start()].count("\n") + 1, match.group(0),
                      f"include guard {got} does not match path (want {want})")
    if f"#define {got}" not in text:
        yield Finding("include-guard", path, 1, match.group(0),
                      f"guard {got} is never #defined")


def check_fp_contract(root):
    """The kernel TUs' bit-identity promise requires -ffp-contract=off as
    a source-file property in src/CMakeLists.txt."""
    path = os.path.join(root, "src", "CMakeLists.txt")
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        yield Finding("fp-contract", path, 0, "", "src/CMakeLists.txt not readable")
        return
    for block_match in re.finditer(
            r"set_source_files_properties\s*\(([^)]*)\)", text, re.DOTALL):
        block = block_match.group(1)
        if "-ffp-contract=off" in block and "COMPILE_OPTIONS" in block:
            missing = [tu for tu in KERNEL_TUS if tu not in block]
            for tu in missing:
                yield Finding(
                    "fp-contract", path,
                    text[:block_match.start()].count("\n") + 1, block_match.group(0).splitlines()[0],
                    f"kernel TU {tu} is missing from the -ffp-contract=off "
                    "property (its kernels would silently lose bit-identity)")
            return
    yield Finding(
        "fp-contract", path, 0, "",
        "no set_source_files_properties(... COMPILE_OPTIONS \"-ffp-contract=off\") "
        f"block found; kernel TUs {KERNEL_TUS} require it")


def load_allowlist(root):
    entries = []
    path = os.path.join(root, "tools", "orx_lint_allow.txt")
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2:
                print(f"orx_lint: malformed allowlist entry: {line!r}",
                      file=sys.stderr)
                sys.exit(2)
            rule, suffix = parts[0], parts[1]
            substring = parts[2] if len(parts) > 2 else None
            entries.append((rule, suffix, substring))
    return entries


def allowed(finding, allowlist):
    for rule, suffix, substring in allowlist:
        if rule != finding.rule:
            continue
        if not finding.path.replace(os.sep, "/").endswith(suffix):
            continue
        if substring is not None and substring not in finding.line:
            continue
        return True
    return False


def iter_source_files(root):
    scan_dirs = ("src", "tools", "tests", "fuzz", "bench", "examples")
    exts = (".h", ".cc", ".cpp")
    for scan in scan_dirs:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, _, filenames in os.walk(top):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def lint_tree(root):
    findings = []
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as err:
            findings.append(Finding("io", path, 0, "", str(err)))
            continue
        findings.extend(check_status_discard(rel, text))
        findings.extend(check_no_rand(rel, text))
        # .detach() is banned in every scanned dir; bare std::thread only
        # in src/ and tools/ (tests spawn scenario threads legitimately).
        findings.extend(check_detached_thread(
            rel, text,
            ban_spawn=rel.startswith("src/") or rel.startswith("tools/")))
        if rel.startswith("src/"):
            findings.extend(check_raw_mutex(rel, text))
            findings.extend(check_naked_new(rel, text))
            if rel.endswith(".h"):
                findings.extend(check_include_guard(rel, text, rel))
    findings.extend(check_fp_contract(root))
    return findings


def self_test():
    """Every rule must flag its canonical bad snippet and pass its good
    twin; a checker that stops firing is worse than no checker."""
    cases = [
        # (checker-lambda, bad snippet, good snippet)
        (lambda t: list(check_status_discard("x.cc", t)),
         "  (void)DoThing(arg);\n",
         "  orx::IgnoreError(DoThing(arg));\n  (void)unused_var;\n"),
        (lambda t: list(check_status_discard("x.cc", t)),
         "  (void) obj->Save(path);\n",
         "  // (void)InComment();\n  s = \"(void)InString()\";\n"),
        (lambda t: list(check_no_rand("x.cc", t)),
         "  int x = std::rand();\n",
         "  orx::Rng rng(7); rng.Next();\n"),
        (lambda t: list(check_no_rand("x.cc", t)),
         "  seed = rand();\n",
         "  value = grand();\n  b = brand(1);\n"),
        (lambda t: list(check_naked_new("src/x.cc", t)),
         "  auto* p = new Widget();\n",
         "  static auto& w = *new Widget();\n"),
        (lambda t: list(check_naked_new("src/x.cc", t)),
         "  delete ptr;\n",
         "  Widget(const Widget&) = delete;\n"
         "  ::operator delete(p, std::align_val_t(64));\n"),
        (lambda t: list(check_include_guard("src/graph/thing.h", t,
                                            "src/graph/thing.h")),
         "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n",
         "#ifndef ORX_GRAPH_THING_H_\n#define ORX_GRAPH_THING_H_\n#endif\n"),
        (lambda t: list(check_raw_mutex("src/x.cc", t)),
         "  std::lock_guard<std::mutex> lock(mu_);\n",
         "  orx::MutexLock lock(mu_);\n  // std::mutex in a comment\n"),
        (lambda t: list(check_raw_mutex("src/x.h", t)),
         "  std::condition_variable cv_;\n  std::unique_lock<std::mutex> l;\n",
         "  orx::CondVar cv_;\n  orx::Mutex mu_;\n#include <mutex>\n"),
        # The wrapper's own implementation files may use the raw
        # vocabulary (None = no bad half: nothing should fire there).
        (lambda t: list(check_raw_mutex("src/common/mutex.cc", t)),
         None,
         "  std::mutex mu_;\n  std::unique_lock<std::mutex> lock(mu.mu_);\n"),
        (lambda t: list(check_detached_thread("src/x.cc", t, True)),
         "  std::thread t([] {});\n",
         "  std::thread::id id = std::this_thread::get_id();\n"
         "  n = std::thread::hardware_concurrency();\n"),
        (lambda t: list(check_detached_thread("tests/x.cc", t, False)),
         "  worker.detach();\n",
         "  std::thread t([] {});\n  t.join();\n"),
    ]
    failures = 0
    for i, (checker, bad, good) in enumerate(cases):
        if bad is not None and not checker(bad):
            print(f"self-test case {i}: BAD snippet not flagged:\n{bad}")
            failures += 1
        hits = checker(good) if good is not None else []
        if hits:
            print(f"self-test case {i}: GOOD snippet flagged:\n"
                  + "\n".join(str(h) for h in hits))
            failures += 1
    if failures:
        print(f"orx_lint self-test: {failures} failure(s)")
        return 1
    print(f"orx_lint self-test: {len(cases)} cases OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: the linter's "
                             "grandparent directory)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allowlist = load_allowlist(root)
    findings = [f for f in lint_tree(root) if not allowed(f, allowlist)]
    for finding in findings:
        print(finding)
    if findings:
        print(f"orx_lint: {len(findings)} finding(s)")
        sys.exit(1)
    print("orx_lint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
