#ifndef ORX_TOOLS_DATASET_SPEC_H_
#define ORX_TOOLS_DATASET_SPEC_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/status.h"
#include "datasets/dblp_generator.h"
#include "io/snapshot_io.h"
#include "serve/snapshot.h"
#include "text/corpus.h"

namespace orx::tools {

/// The dataset orx_serve and orx_client agree on. Two ways to get one:
///  * BuildServingDataset(scale): a deterministic scaled DblpTop
///    generation with ground-truth transfer rates. Generation is seeded,
///    so a client started with the same --scale as the server reproduces
///    the server's snapshot exactly — the e2e mode leans on that to
///    compare wire responses against in-process golden results.
///  * BuildServingDatasetFromContainer(path): zero-copy attach of an
///    ORXD2 container (plus an optional ORXC2 rank cache). A client
///    pointed at the same files reproduces the snapshot the same way.
struct ServingDataset {
  /// Set by the generated path (the snapshot aliases it).
  std::shared_ptr<datasets::DblpDataset> dblp;
  /// Set by the container path (the snapshot aliases this instead).
  std::shared_ptr<const io::MappedDataset> mapped;
  std::shared_ptr<serve::ServeSnapshot> snapshot;
  std::string description;
  /// Highest-document-frequency terms, most frequent first: the load
  /// generator's Zipf query universe, and the default interactive
  /// suggestions.
  std::vector<std::string> head_terms;
};

inline std::vector<std::string> HeadTerms(const text::Corpus& corpus,
                                          size_t max_head_terms) {
  std::vector<std::pair<uint32_t, std::string>> by_df;
  by_df.reserve(corpus.vocab_size());
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::string> head;
  for (size_t i = 0; i < by_df.size() && head.size() < max_head_terms; ++i) {
    head.push_back(std::move(by_df[i].second));
  }
  return head;
}

inline ServingDataset BuildServingDataset(double scale,
                                          size_t max_head_terms = 64) {
  ServingDataset out;
  out.dblp = std::make_shared<datasets::DblpDataset>(
      datasets::GenerateDblp(bench::ScaledDblp(
          datasets::DblpGeneratorConfig::DblpTop(), scale)));
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      out.dblp->dataset.schema(), out.dblp->types);
  out.snapshot = std::make_shared<serve::ServeSnapshot>(
      serve::SnapshotFromOwner(out.dblp, out.dblp->dataset.data(),
                               out.dblp->dataset.authority(),
                               out.dblp->dataset.corpus(), rates));
  out.description =
      std::to_string(out.dblp->dataset.data().num_nodes()) + " nodes, " +
      std::to_string(out.dblp->dataset.authority().num_edges()) + " edges";
  out.head_terms = HeadTerms(out.dblp->dataset.corpus(), max_head_terms);
  return out;
}

/// Attaches an ORXD2 container (and optionally an ORXC2 rank cache) as
/// the serving dataset. The snapshot's graph components alias the
/// mapping; nothing large is copied. The rank cache must have been built
/// for this dataset — node count and rates fingerprint are cross-checked
/// so a stale cache fails the attach instead of serving wrong scores.
inline StatusOr<ServingDataset> BuildServingDatasetFromContainer(
    const std::string& dataset_path, const std::string& rank_cache_path,
    size_t max_head_terms = 64) {
  ServingDataset out;
  auto mapped = io::OpenMappedDataset(dataset_path);
  if (!mapped.ok()) return mapped.status();
  out.mapped = *mapped;
  out.snapshot = std::make_shared<serve::ServeSnapshot>(
      io::SnapshotFromMapped(*mapped));
  if (!rank_cache_path.empty()) {
    auto cache = io::OpenMappedRankCache(rank_cache_path);
    if (!cache.ok()) return cache.status();
    if (cache->num_nodes() != out.mapped->authority().num_nodes()) {
      return InvalidArgumentError(
          "rank cache " + rank_cache_path + " covers " +
          std::to_string(cache->num_nodes()) + " nodes but dataset " +
          dataset_path + " has " +
          std::to_string(out.mapped->authority().num_nodes()));
    }
    if (cache->rates_fingerprint() != out.mapped->rates().Fingerprint()) {
      return InvalidArgumentError(
          "rank cache " + rank_cache_path +
          " was built for different transfer rates than dataset " +
          dataset_path + " serves (fingerprint mismatch)");
    }
    out.snapshot->rank_cache =
        std::make_shared<const core::RankCache>(std::move(*cache));
  }
  out.description =
      out.mapped->name() + ": " +
      std::to_string(out.mapped->data().num_nodes()) + " nodes, " +
      std::to_string(out.mapped->authority().num_edges()) +
      " edges (mmap " + dataset_path + ")";
  out.head_terms = HeadTerms(out.mapped->corpus(), max_head_terms);
  return out;
}

}  // namespace orx::tools

#endif  // ORX_TOOLS_DATASET_SPEC_H_
