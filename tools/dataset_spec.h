#ifndef ORX_TOOLS_DATASET_SPEC_H_
#define ORX_TOOLS_DATASET_SPEC_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "datasets/dblp_generator.h"
#include "serve/snapshot.h"
#include "text/corpus.h"

namespace orx::tools {

/// The dataset orx_serve and orx_client agree on: a deterministic scaled
/// DblpTop generation with ground-truth transfer rates. Generation is
/// seeded, so a client started with the same --scale as the server
/// reproduces the server's snapshot exactly — the e2e mode leans on that
/// to compare wire responses against in-process golden results.
struct ServingDataset {
  std::shared_ptr<datasets::DblpDataset> dblp;
  std::shared_ptr<serve::ServeSnapshot> snapshot;
  std::string description;
  /// Highest-document-frequency terms, most frequent first: the load
  /// generator's Zipf query universe, and the default interactive
  /// suggestions.
  std::vector<std::string> head_terms;
};

inline ServingDataset BuildServingDataset(double scale,
                                          size_t max_head_terms = 64) {
  ServingDataset out;
  out.dblp = std::make_shared<datasets::DblpDataset>(
      datasets::GenerateDblp(bench::ScaledDblp(
          datasets::DblpGeneratorConfig::DblpTop(), scale)));
  graph::TransferRates rates = datasets::DblpGroundTruthRates(
      out.dblp->dataset.schema(), out.dblp->types);
  out.snapshot = std::make_shared<serve::ServeSnapshot>(
      serve::SnapshotFromOwner(out.dblp, out.dblp->dataset.data(),
                               out.dblp->dataset.authority(),
                               out.dblp->dataset.corpus(), rates));
  out.description =
      std::to_string(out.dblp->dataset.data().num_nodes()) + " nodes, " +
      std::to_string(out.dblp->dataset.authority().num_edges()) + " edges";

  const text::Corpus& corpus = out.dblp->dataset.corpus();
  std::vector<std::pair<uint32_t, std::string>> by_df;
  by_df.reserve(corpus.vocab_size());
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    by_df.emplace_back(corpus.Df(t), corpus.TermString(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < by_df.size() && out.head_terms.size() < max_head_terms;
       ++i) {
    out.head_terms.push_back(by_df[i].second);
  }
  return out;
}

}  // namespace orx::tools

#endif  // ORX_TOOLS_DATASET_SPEC_H_
