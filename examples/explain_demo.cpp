// Result explanation demo — the paper's Example 1 (Section 4).
//
// Runs Q = [OLAP] on the Figure 1 graph, then explains why the
// "Range Queries in OLAP Data Cubes" paper (v4) received its score: the
// explaining subgraph G_v^Q is built, the flow-adjustment fixpoint is run,
// and the annotated flows are printed. Note that the "Data Cube" paper
// (v7) is NOT part of the subgraph: with the Figure 3 rates no authority
// flows from v7 to v4, exactly as the paper observes.

#include <cstdio>

#include "core/searcher.h"
#include "datasets/figure1.h"
#include "explain/explainer.h"
#include "text/query.h"

int main() {
  using namespace orx;

  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  const graph::DataGraph& data = fig.dataset.data();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);

  // 1. Run the query.
  core::Searcher searcher(data, fig.dataset.authority(),
                          fig.dataset.corpus());
  text::QueryVector query(text::ParseQuery("OLAP"));
  core::SearchOptions options;
  auto search = searcher.Search(query, rates, options);
  if (!search.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 search.status().ToString().c_str());
    return 1;
  }

  // 2. Explain the target object v4.
  auto base = core::BuildBaseSet(fig.dataset.corpus(), query);
  explain::Explainer explainer(data, fig.dataset.authority());
  explain::ExplainOptions explain_options;
  explain_options.radius = 5;  // Example 1 uses the unbounded subgraph
  auto explanation = explainer.Explain(
      fig.v4_range_queries, *base, search->scores, rates,
      options.objectrank.damping, explain_options);
  if (!explanation.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 explanation.status().ToString().c_str());
    return 1;
  }

  const explain::ExplainingSubgraph& sub = explanation->subgraph;
  std::printf("Explaining \"%s\" for Q=[olap]\n\n",
              data.DisplayLabel(fig.v4_range_queries).c_str());
  std::printf("%s\n", sub.ToString(data).c_str());

  std::printf("Reduction factors h(v) (converged in %d iterations):\n",
              explanation->iterations);
  for (explain::LocalId v = 0; v < sub.num_nodes(); ++v) {
    std::printf("  h(%-45.45s) = %.6g%s\n",
                data.DisplayLabel(sub.GlobalId(v)).c_str(),
                sub.ReductionFactor(v),
                v == sub.target_local() ? "   <- target (pinned to 1)" : "");
  }

  std::printf("\n\"Data Cube\" (v7) in subgraph: %s (paper: excluded — no "
              "authority path to v4)\n",
              sub.Contains(fig.v7_data_cube) ? "YES (unexpected!)" : "no");
  return 0;
}
