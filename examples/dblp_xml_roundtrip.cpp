// DBLP XML ingestion demo: generates a small bibliography, serializes it
// to the DBLP XML subset format, parses it back (the "shredding" of
// Section 6), and shows that the round-tripped graph answers queries
// identically. Pass a path to parse your own dblp.xml subset instead.

#include <cstdio>

#include "core/searcher.h"
#include "datasets/dblp_generator.h"
#include "datasets/dblp_xml.h"
#include "text/query.h"

namespace {

void PrintTop(const orx::graph::DataGraph& data,
              const std::vector<orx::core::ScoredNode>& top) {
  int rank = 1;
  for (const auto& r : top) {
    std::printf("%2d. [%.5f] %s\n", rank++, r.score,
                data.DisplayLabel(r.node).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orx;

  if (argc > 1) {
    auto parsed = datasets::ParseDblpXmlFile(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    std::printf("Parsed %s: %zu papers, %zu authors, %zu conferences, "
                "%zu years, %zu/%zu citations resolved\n",
                argv[1], parsed->papers, parsed->authors,
                parsed->conferences, parsed->years,
                parsed->citations_resolved,
                parsed->citations_resolved + parsed->citations_unresolved);
    return 0;
  }

  // 1. Generate and serialize.
  datasets::DblpDataset generated = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/500));
  const std::string xml =
      datasets::WriteDblpXml(generated.dataset.data(), generated.types);
  std::printf("Serialized %zu nodes to %zu bytes of DBLP XML\n",
              generated.dataset.data().num_nodes(), xml.size());

  // 2. Parse back.
  auto parsed = datasets::ParseDblpXml(xml);
  if (!parsed.ok()) {
    std::fprintf(stderr, "round-trip parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("Round-trip: %zu papers, %zu authors, %zu conferences, "
              "%zu years, %zu citations\n\n",
              parsed->papers, parsed->authors, parsed->conferences,
              parsed->years, parsed->citations_resolved);

  // 3. Same query on both graphs.
  graph::TransferRates rates_a = datasets::DblpGroundTruthRates(
      generated.dataset.schema(), generated.types);
  graph::TransferRates rates_b = datasets::DblpGroundTruthRates(
      parsed->dataset.schema(), parsed->types);
  text::QueryVector query(text::ParseQuery("query optimization"));
  core::SearchOptions options;
  options.k = 5;

  core::Searcher searcher_a(generated.dataset.data(),
                            generated.dataset.authority(),
                            generated.dataset.corpus());
  core::Searcher searcher_b(parsed->dataset.data(),
                            parsed->dataset.authority(),
                            parsed->dataset.corpus());
  auto top_a = searcher_a.Search(query, rates_a, options);
  auto top_b = searcher_b.Search(query, rates_b, options);
  if (!top_a.ok() || !top_b.ok()) {
    std::fprintf(stderr, "search failed\n");
    return 1;
  }
  std::printf("[query optimization] on the generated graph:\n");
  PrintTop(generated.dataset.data(), top_a->top);
  std::printf("\n[query optimization] on the round-tripped graph:\n");
  PrintTop(parsed->dataset.data(), top_b->top);
  return 0;
}
