// Personalized-search session demo (Sections 5-6): a user whose private
// notion of authority is the hand-tuned [BHP04] rates interacts with a
// system that starts from uniform rates. Each round the user marks
// relevant results; structure-based reformulation retrains the transfer
// rates, and the printout shows precision improving and the learned rate
// vector converging toward the user's — the paper's "automatically train
// the authority flow rates" result, in ~60 lines of API use.

#include <cstdio>

#include "datasets/dblp_generator.h"
#include "eval/metrics.h"
#include "eval/simulated_user.h"
#include "eval/survey.h"
#include "text/query.h"

int main() {
  using namespace orx;

  datasets::DblpDataset dblp = datasets::GenerateDblp(
      datasets::DblpGeneratorConfig::Tiny(/*papers=*/4000, /*seed=*/2008));
  std::printf("dataset: %zu nodes, %zu edges\n\n",
              dblp.dataset.data().num_nodes(),
              dblp.dataset.data().num_edges());

  // The user's hidden ground truth.
  graph::TransferRates ground_truth =
      datasets::DblpGroundTruthRates(dblp.dataset.schema(), dblp.types);
  eval::SimulatedUserOptions user_options;
  user_options.relevant_pool = 30;
  user_options.search.result_type = dblp.types.paper;
  eval::SimulatedUser user(dblp.dataset.data(), dblp.dataset.authority(),
                           dblp.dataset.corpus(), ground_truth,
                           user_options);

  text::QueryVector query(text::ParseQuery("query optimization"));
  if (!user.SetIntent(query)) {
    std::fprintf(stderr, "user intent failed (keyword missing)\n");
    return 1;
  }

  // The system starts from uninformed uniform rates.
  eval::SurveyConfig config;
  config.feedback_iterations = 5;
  config.max_feedback_objects = 2;
  config.reform.structure.adjustment = 0.5;  // structure-only
  config.reform.content.expansion = 0.0;
  config.search.result_type = dblp.types.paper;
  config.user = user_options;
  graph::TransferRates initial =
      datasets::DblpUniformRates(dblp.dataset.schema(), 0.3);

  eval::SurveyResult session = eval::RunFeedbackSession(
      dblp.dataset.data(), dblp.dataset.authority(), dblp.dataset.corpus(),
      query, initial, user, config);
  if (!session.ok) {
    std::fprintf(stderr, "session failed\n");
    return 1;
  }

  const auto gt_vector = datasets::DblpRateVector(ground_truth, dblp.types);
  const auto names = datasets::DblpRateVectorNames();
  std::printf("%-9s %-10s %-8s  rate vector [", "round", "precision",
              "cos(GT)");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%s%s", names[i].c_str(),
                i + 1 < names.size() ? " " : "]\n");
  }
  int round = 0;
  for (const eval::SurveyIteration& it : session.iterations) {
    const auto learned = datasets::DblpRateVector(it.rates, dblp.types);
    std::printf("%-9s %-10.3f %-8.4f  [", round == 0
                    ? "initial"
                    : ("reform" + std::to_string(round)).c_str(),
                it.precision, eval::CosineSimilarity(learned, gt_vector));
    for (size_t i = 0; i < learned.size(); ++i) {
      std::printf("%.2f%s", learned[i], i + 1 < learned.size() ? " " : "]\n");
    }
    ++round;
  }
  std::printf("\nground truth (the user's hidden rates):          [");
  for (size_t i = 0; i < gt_vector.size(); ++i) {
    std::printf("%.2f%s", gt_vector[i],
                i + 1 < gt_vector.size() ? " " : "]\n");
  }
  return 0;
}
