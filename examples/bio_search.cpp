// Biological authority-flow search demo (the paper's second domain,
// Section 1 and Figure 4): generates a small Entrez-style collection,
// searches for a gene-related keyword, and explains why a protein with no
// obvious connection to the query ranks highly — "this is even more
// critical in complex biological databases" (Section 1).

#include <cstdio>

#include "core/searcher.h"
#include "datasets/bio_generator.h"
#include "explain/explainer.h"
#include "text/query.h"

int main() {
  using namespace orx;

  // 1. Generate a small DS7-style collection.
  datasets::BioGeneratorConfig config = datasets::BioGeneratorConfig::Tiny(
      /*pubs=*/3000, /*seed=*/20080701);
  datasets::BioDataset bio = datasets::GenerateBio(config);
  const graph::DataGraph& data = bio.dataset.data();
  std::printf("Generated %zu nodes / %zu data edges\n\n", data.num_nodes(),
              data.num_edges());

  graph::TransferRates rates =
      datasets::BioGroundTruthRates(bio.dataset.schema(), bio.types);

  // 2. Search for "kinase" over every object type.
  core::Searcher searcher(data, bio.dataset.authority(),
                          bio.dataset.corpus());
  text::QueryVector query(text::ParseQuery("kinase signaling"));
  core::SearchOptions options;
  options.k = 10;
  auto search = searcher.Search(query, rates, options);
  if (!search.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 search.status().ToString().c_str());
    return 1;
  }

  std::printf("Top results for [kinase signaling] (%d iterations):\n",
              search->iterations);
  graph::NodeId protein_hit = graph::kInvalidNodeId;
  int rank = 1;
  for (const core::ScoredNode& r : search->top) {
    const auto& type_label =
        data.schema().NodeTypeLabel(data.NodeType(r.node));
    std::printf("%2d. [%.5f] %-16s %s\n", rank++, r.score,
                type_label.c_str(), data.DisplayLabel(r.node).c_str());
    if (protein_hit == graph::kInvalidNodeId &&
        data.NodeType(r.node) == bio.types.protein) {
      protein_hit = r.node;
    }
  }

  // 3. Explain the best-ranked protein (an object type that rarely
  //    contains the query keywords itself).
  if (protein_hit == graph::kInvalidNodeId) {
    std::printf("\n(no protein in the top-10 for this seed)\n");
    return 0;
  }
  auto base = core::BuildBaseSet(bio.dataset.corpus(), query);
  explain::Explainer explainer(data, bio.dataset.authority());
  explain::ExplainOptions explain_options;
  explain_options.radius = 3;  // the paper's production setting L=3
  auto explanation = explainer.Explain(protein_hit, *base, search->scores,
                                       rates, options.objectrank.damping,
                                       explain_options);
  if (!explanation.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 explanation.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWhy does %s rank highly? Explaining subgraph "
              "(%zu nodes, %zu edges, %d fixpoint iterations); strongest "
              "flows first:\n\n",
              data.DisplayLabel(protein_hit).c_str(),
              explanation->subgraph.num_nodes(),
              explanation->subgraph.num_edges(), explanation->iterations);
  std::printf("%s", explanation->subgraph.ToString(data).c_str());
  return 0;
}
