// Quickstart: build the paper's Figure 1 DBLP excerpt, run the query
// "OLAP" with ObjectRank2, and print the ranking — reproducing the worked
// example of Sections 1-3 (the "Data Cube" paper ranks first even though
// it does not contain the keyword).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/searcher.h"
#include "datasets/figure1.h"
#include "text/query.h"

int main() {
  using namespace orx;

  // 1. The dataset: schema (Figure 2) + data graph (Figure 1), finalized
  //    into an authority transfer graph (Figure 5) and a text corpus.
  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  const graph::DataGraph& data = fig.dataset.data();

  // 2. The hand-tuned authority transfer rates of Figure 3.
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);

  // 3. Search: Q = [OLAP], damping d = 0.85 (the paper's defaults).
  core::Searcher searcher(data, fig.dataset.authority(),
                          fig.dataset.corpus());
  text::QueryVector query(text::ParseQuery("OLAP"));
  core::SearchOptions options;
  options.k = 7;

  auto result = searcher.Search(query, rates, options);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Query \"OLAP\" over the Figure 1 graph "
              "(%d ObjectRank2 iterations):\n\n",
              result->iterations);
  int rank = 1;
  for (const core::ScoredNode& r : result->top) {
    std::printf("%2d. [%.4f] %-10s %s\n", rank++, r.score,
                data.schema().NodeTypeLabel(data.NodeType(r.node)).c_str(),
                data.DisplayLabel(r.node).c_str());
  }

  std::printf("\nFull score vector [v1..v7] "
              "(paper: 0.076 0.002 0.009 0.076 0.017 0.025 0.083):\n  ");
  for (double s : result->scores) std::printf("%.3f ", s);
  std::printf("\n");
  return 0;
}
