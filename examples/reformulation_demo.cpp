// Query reformulation demo — the paper's Example 2 (Section 5).
//
// The user runs Q = [OLAP] over the Figure 1 graph and marks the
// "Range Queries in OLAP Data Cubes" paper as relevant. The demo prints:
//  * the content-based reformulation: expansion terms mined from the
//    explaining subgraph (olap, cubes, range, ... in the paper) and the
//    reformulated query vector of Equation 12;
//  * the structure-based reformulation: the adjusted authority transfer
//    rates of Equation 13 — PA rises and AP falls, as in the paper.

#include <cstdio>

#include "core/searcher.h"
#include "datasets/figure1.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

int main() {
  using namespace orx;

  datasets::Figure1Dataset fig = datasets::MakeFigure1Dataset();
  const graph::DataGraph& data = fig.dataset.data();
  graph::TransferRates rates =
      datasets::DblpGroundTruthRates(fig.dataset.schema(), fig.types);

  core::Searcher searcher(data, fig.dataset.authority(),
                          fig.dataset.corpus());
  text::QueryVector query(text::ParseQuery("OLAP"));
  core::SearchOptions options;
  auto search = searcher.Search(query, rates, options);
  if (!search.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 search.status().ToString().c_str());
    return 1;
  }

  auto base = core::BuildBaseSet(fig.dataset.corpus(), query);
  reform::Reformulator reformulator(data, fig.dataset.authority(),
                                    fig.dataset.corpus());
  reform::ReformulationOptions reform_options;
  reform_options.content.decay = 0.5;      // C_d
  reform_options.content.expansion = 1.0;  // C_e (the printed Example 2
                                           // vector adds raw weights)
  reform_options.structure.adjustment = 0.5;  // C_f
  reform_options.explain.radius = 5;

  const graph::NodeId feedback[] = {fig.v4_range_queries};
  auto reformulated = reformulator.Reformulate(
      query, rates, *base, search->scores, feedback, reform_options);
  if (!reformulated.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 reformulated.status().ToString().c_str());
    return 1;
  }

  std::printf("Feedback object: %s\n\n",
              data.DisplayLabel(fig.v4_range_queries).c_str());

  std::printf("Top expansion terms (normalized; paper: olap 1.0, cubes "
              "0.99, range 0.99, multidimensional 0.05, modeling 0.05):\n");
  for (const auto& [term, weight] : reformulated->top_expansion_terms) {
    std::printf("  %-18s %.3f\n", term.c_str(), weight);
  }

  std::printf("\nReformulated query vector (Equation 12):\n  %s\n",
              reformulated->query.ToString().c_str());

  auto before = datasets::DblpRateVector(rates, fig.types);
  auto after = datasets::DblpRateVector(reformulated->rates, fig.types);
  auto names = datasets::DblpRateVectorNames();
  std::printf("\nAuthority transfer rates (Equation 13; paper: "
              "[0.67, 0.00, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08]):\n");
  std::printf("  %-6s %-8s %-8s\n", "slot", "before", "after");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-6s %-8.2f %-8.2f\n", names[i].c_str(), before[i],
                after[i]);
  }
  return 0;
}
