# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "bash" "-c" "printf 'figure1
query olap
explain 3
feedback 3
save-tsv /root/repo/build/cli_smoke.tsv
load-tsv /root/repo/build/cli_smoke.tsv
quit
' | /root/repo/build/tools/orx_cli | grep -q 'Data Cube'")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
