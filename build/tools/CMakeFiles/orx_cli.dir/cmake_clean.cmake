file(REMOVE_RECURSE
  "CMakeFiles/orx_cli.dir/orx_cli.cpp.o"
  "CMakeFiles/orx_cli.dir/orx_cli.cpp.o.d"
  "orx_cli"
  "orx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
