# Empty compiler generated dependencies file for orx_cli.
# This may be replaced when dependencies are built.
