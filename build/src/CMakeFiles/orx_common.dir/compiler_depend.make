# Empty compiler generated dependencies file for orx_common.
# This may be replaced when dependencies are built.
