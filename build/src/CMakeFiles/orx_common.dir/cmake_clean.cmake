file(REMOVE_RECURSE
  "CMakeFiles/orx_common.dir/common/logging.cc.o"
  "CMakeFiles/orx_common.dir/common/logging.cc.o.d"
  "CMakeFiles/orx_common.dir/common/rng.cc.o"
  "CMakeFiles/orx_common.dir/common/rng.cc.o.d"
  "CMakeFiles/orx_common.dir/common/status.cc.o"
  "CMakeFiles/orx_common.dir/common/status.cc.o.d"
  "CMakeFiles/orx_common.dir/common/strings.cc.o"
  "CMakeFiles/orx_common.dir/common/strings.cc.o.d"
  "CMakeFiles/orx_common.dir/common/table.cc.o"
  "CMakeFiles/orx_common.dir/common/table.cc.o.d"
  "CMakeFiles/orx_common.dir/common/timer.cc.o"
  "CMakeFiles/orx_common.dir/common/timer.cc.o.d"
  "liborx_common.a"
  "liborx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
