file(REMOVE_RECURSE
  "liborx_common.a"
)
