file(REMOVE_RECURSE
  "CMakeFiles/orx_graph.dir/graph/authority_graph.cc.o"
  "CMakeFiles/orx_graph.dir/graph/authority_graph.cc.o.d"
  "CMakeFiles/orx_graph.dir/graph/conformance.cc.o"
  "CMakeFiles/orx_graph.dir/graph/conformance.cc.o.d"
  "CMakeFiles/orx_graph.dir/graph/data_graph.cc.o"
  "CMakeFiles/orx_graph.dir/graph/data_graph.cc.o.d"
  "CMakeFiles/orx_graph.dir/graph/schema_graph.cc.o"
  "CMakeFiles/orx_graph.dir/graph/schema_graph.cc.o.d"
  "CMakeFiles/orx_graph.dir/graph/transfer_rates.cc.o"
  "CMakeFiles/orx_graph.dir/graph/transfer_rates.cc.o.d"
  "liborx_graph.a"
  "liborx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
