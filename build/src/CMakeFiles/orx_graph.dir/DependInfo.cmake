
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/authority_graph.cc" "src/CMakeFiles/orx_graph.dir/graph/authority_graph.cc.o" "gcc" "src/CMakeFiles/orx_graph.dir/graph/authority_graph.cc.o.d"
  "/root/repo/src/graph/conformance.cc" "src/CMakeFiles/orx_graph.dir/graph/conformance.cc.o" "gcc" "src/CMakeFiles/orx_graph.dir/graph/conformance.cc.o.d"
  "/root/repo/src/graph/data_graph.cc" "src/CMakeFiles/orx_graph.dir/graph/data_graph.cc.o" "gcc" "src/CMakeFiles/orx_graph.dir/graph/data_graph.cc.o.d"
  "/root/repo/src/graph/schema_graph.cc" "src/CMakeFiles/orx_graph.dir/graph/schema_graph.cc.o" "gcc" "src/CMakeFiles/orx_graph.dir/graph/schema_graph.cc.o.d"
  "/root/repo/src/graph/transfer_rates.cc" "src/CMakeFiles/orx_graph.dir/graph/transfer_rates.cc.o" "gcc" "src/CMakeFiles/orx_graph.dir/graph/transfer_rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
