# Empty compiler generated dependencies file for orx_graph.
# This may be replaced when dependencies are built.
