file(REMOVE_RECURSE
  "liborx_graph.a"
)
