file(REMOVE_RECURSE
  "liborx_datasets.a"
)
