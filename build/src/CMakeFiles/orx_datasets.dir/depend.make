# Empty dependencies file for orx_datasets.
# This may be replaced when dependencies are built.
