
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/bio_generator.cc" "src/CMakeFiles/orx_datasets.dir/datasets/bio_generator.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/bio_generator.cc.o.d"
  "/root/repo/src/datasets/bio_schema.cc" "src/CMakeFiles/orx_datasets.dir/datasets/bio_schema.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/bio_schema.cc.o.d"
  "/root/repo/src/datasets/dataset.cc" "src/CMakeFiles/orx_datasets.dir/datasets/dataset.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/dataset.cc.o.d"
  "/root/repo/src/datasets/dblp_generator.cc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_generator.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_generator.cc.o.d"
  "/root/repo/src/datasets/dblp_schema.cc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_schema.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_schema.cc.o.d"
  "/root/repo/src/datasets/dblp_xml.cc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_xml.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/dblp_xml.cc.o.d"
  "/root/repo/src/datasets/figure1.cc" "src/CMakeFiles/orx_datasets.dir/datasets/figure1.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/figure1.cc.o.d"
  "/root/repo/src/datasets/vocabulary.cc" "src/CMakeFiles/orx_datasets.dir/datasets/vocabulary.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/vocabulary.cc.o.d"
  "/root/repo/src/datasets/zipf.cc" "src/CMakeFiles/orx_datasets.dir/datasets/zipf.cc.o" "gcc" "src/CMakeFiles/orx_datasets.dir/datasets/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
