file(REMOVE_RECURSE
  "CMakeFiles/orx_datasets.dir/datasets/bio_generator.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/bio_generator.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/bio_schema.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/bio_schema.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/dataset.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/dataset.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_generator.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_generator.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_schema.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_schema.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_xml.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/dblp_xml.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/figure1.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/figure1.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/vocabulary.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/vocabulary.cc.o.d"
  "CMakeFiles/orx_datasets.dir/datasets/zipf.cc.o"
  "CMakeFiles/orx_datasets.dir/datasets/zipf.cc.o.d"
  "liborx_datasets.a"
  "liborx_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
