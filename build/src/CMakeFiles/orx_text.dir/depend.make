# Empty dependencies file for orx_text.
# This may be replaced when dependencies are built.
