file(REMOVE_RECURSE
  "liborx_text.a"
)
