
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bm25.cc" "src/CMakeFiles/orx_text.dir/text/bm25.cc.o" "gcc" "src/CMakeFiles/orx_text.dir/text/bm25.cc.o.d"
  "/root/repo/src/text/corpus.cc" "src/CMakeFiles/orx_text.dir/text/corpus.cc.o" "gcc" "src/CMakeFiles/orx_text.dir/text/corpus.cc.o.d"
  "/root/repo/src/text/query.cc" "src/CMakeFiles/orx_text.dir/text/query.cc.o" "gcc" "src/CMakeFiles/orx_text.dir/text/query.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/orx_text.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/orx_text.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/orx_text.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/orx_text.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
