file(REMOVE_RECURSE
  "CMakeFiles/orx_text.dir/text/bm25.cc.o"
  "CMakeFiles/orx_text.dir/text/bm25.cc.o.d"
  "CMakeFiles/orx_text.dir/text/corpus.cc.o"
  "CMakeFiles/orx_text.dir/text/corpus.cc.o.d"
  "CMakeFiles/orx_text.dir/text/query.cc.o"
  "CMakeFiles/orx_text.dir/text/query.cc.o.d"
  "CMakeFiles/orx_text.dir/text/stopwords.cc.o"
  "CMakeFiles/orx_text.dir/text/stopwords.cc.o.d"
  "CMakeFiles/orx_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/orx_text.dir/text/tokenizer.cc.o.d"
  "liborx_text.a"
  "liborx_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
