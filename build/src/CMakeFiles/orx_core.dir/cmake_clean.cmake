file(REMOVE_RECURSE
  "CMakeFiles/orx_core.dir/core/base_set.cc.o"
  "CMakeFiles/orx_core.dir/core/base_set.cc.o.d"
  "CMakeFiles/orx_core.dir/core/hits.cc.o"
  "CMakeFiles/orx_core.dir/core/hits.cc.o.d"
  "CMakeFiles/orx_core.dir/core/objectrank.cc.o"
  "CMakeFiles/orx_core.dir/core/objectrank.cc.o.d"
  "CMakeFiles/orx_core.dir/core/rank_cache.cc.o"
  "CMakeFiles/orx_core.dir/core/rank_cache.cc.o.d"
  "CMakeFiles/orx_core.dir/core/searcher.cc.o"
  "CMakeFiles/orx_core.dir/core/searcher.cc.o.d"
  "CMakeFiles/orx_core.dir/core/top_k.cc.o"
  "CMakeFiles/orx_core.dir/core/top_k.cc.o.d"
  "liborx_core.a"
  "liborx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
