
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/base_set.cc" "src/CMakeFiles/orx_core.dir/core/base_set.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/base_set.cc.o.d"
  "/root/repo/src/core/hits.cc" "src/CMakeFiles/orx_core.dir/core/hits.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/hits.cc.o.d"
  "/root/repo/src/core/objectrank.cc" "src/CMakeFiles/orx_core.dir/core/objectrank.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/objectrank.cc.o.d"
  "/root/repo/src/core/rank_cache.cc" "src/CMakeFiles/orx_core.dir/core/rank_cache.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/rank_cache.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/CMakeFiles/orx_core.dir/core/searcher.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/searcher.cc.o.d"
  "/root/repo/src/core/top_k.cc" "src/CMakeFiles/orx_core.dir/core/top_k.cc.o" "gcc" "src/CMakeFiles/orx_core.dir/core/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
