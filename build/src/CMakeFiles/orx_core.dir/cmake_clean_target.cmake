file(REMOVE_RECURSE
  "liborx_core.a"
)
