# Empty compiler generated dependencies file for orx_core.
# This may be replaced when dependencies are built.
