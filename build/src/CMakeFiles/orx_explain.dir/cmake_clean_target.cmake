file(REMOVE_RECURSE
  "liborx_explain.a"
)
