# Empty compiler generated dependencies file for orx_explain.
# This may be replaced when dependencies are built.
