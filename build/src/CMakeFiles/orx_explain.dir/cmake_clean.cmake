file(REMOVE_RECURSE
  "CMakeFiles/orx_explain.dir/explain/explainer.cc.o"
  "CMakeFiles/orx_explain.dir/explain/explainer.cc.o.d"
  "CMakeFiles/orx_explain.dir/explain/explaining_subgraph.cc.o"
  "CMakeFiles/orx_explain.dir/explain/explaining_subgraph.cc.o.d"
  "CMakeFiles/orx_explain.dir/explain/flow_adjuster.cc.o"
  "CMakeFiles/orx_explain.dir/explain/flow_adjuster.cc.o.d"
  "liborx_explain.a"
  "liborx_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
