
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/explainer.cc" "src/CMakeFiles/orx_explain.dir/explain/explainer.cc.o" "gcc" "src/CMakeFiles/orx_explain.dir/explain/explainer.cc.o.d"
  "/root/repo/src/explain/explaining_subgraph.cc" "src/CMakeFiles/orx_explain.dir/explain/explaining_subgraph.cc.o" "gcc" "src/CMakeFiles/orx_explain.dir/explain/explaining_subgraph.cc.o.d"
  "/root/repo/src/explain/flow_adjuster.cc" "src/CMakeFiles/orx_explain.dir/explain/flow_adjuster.cc.o" "gcc" "src/CMakeFiles/orx_explain.dir/explain/flow_adjuster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
