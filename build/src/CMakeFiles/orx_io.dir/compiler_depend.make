# Empty compiler generated dependencies file for orx_io.
# This may be replaced when dependencies are built.
