file(REMOVE_RECURSE
  "CMakeFiles/orx_io.dir/io/dataset_io.cc.o"
  "CMakeFiles/orx_io.dir/io/dataset_io.cc.o.d"
  "CMakeFiles/orx_io.dir/io/graph_tsv.cc.o"
  "CMakeFiles/orx_io.dir/io/graph_tsv.cc.o.d"
  "liborx_io.a"
  "liborx_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
