file(REMOVE_RECURSE
  "liborx_io.a"
)
