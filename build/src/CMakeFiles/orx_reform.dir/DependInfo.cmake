
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reformulate/content_reformulator.cc" "src/CMakeFiles/orx_reform.dir/reformulate/content_reformulator.cc.o" "gcc" "src/CMakeFiles/orx_reform.dir/reformulate/content_reformulator.cc.o.d"
  "/root/repo/src/reformulate/reformulator.cc" "src/CMakeFiles/orx_reform.dir/reformulate/reformulator.cc.o" "gcc" "src/CMakeFiles/orx_reform.dir/reformulate/reformulator.cc.o.d"
  "/root/repo/src/reformulate/structure_reformulator.cc" "src/CMakeFiles/orx_reform.dir/reformulate/structure_reformulator.cc.o" "gcc" "src/CMakeFiles/orx_reform.dir/reformulate/structure_reformulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orx_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
