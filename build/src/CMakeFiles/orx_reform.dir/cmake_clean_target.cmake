file(REMOVE_RECURSE
  "liborx_reform.a"
)
