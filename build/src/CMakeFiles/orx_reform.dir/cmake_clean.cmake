file(REMOVE_RECURSE
  "CMakeFiles/orx_reform.dir/reformulate/content_reformulator.cc.o"
  "CMakeFiles/orx_reform.dir/reformulate/content_reformulator.cc.o.d"
  "CMakeFiles/orx_reform.dir/reformulate/reformulator.cc.o"
  "CMakeFiles/orx_reform.dir/reformulate/reformulator.cc.o.d"
  "CMakeFiles/orx_reform.dir/reformulate/structure_reformulator.cc.o"
  "CMakeFiles/orx_reform.dir/reformulate/structure_reformulator.cc.o.d"
  "liborx_reform.a"
  "liborx_reform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_reform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
