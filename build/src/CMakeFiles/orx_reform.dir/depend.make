# Empty dependencies file for orx_reform.
# This may be replaced when dependencies are built.
