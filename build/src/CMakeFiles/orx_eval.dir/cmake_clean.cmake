file(REMOVE_RECURSE
  "CMakeFiles/orx_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/orx_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/orx_eval.dir/eval/residual_collection.cc.o"
  "CMakeFiles/orx_eval.dir/eval/residual_collection.cc.o.d"
  "CMakeFiles/orx_eval.dir/eval/simulated_user.cc.o"
  "CMakeFiles/orx_eval.dir/eval/simulated_user.cc.o.d"
  "CMakeFiles/orx_eval.dir/eval/survey.cc.o"
  "CMakeFiles/orx_eval.dir/eval/survey.cc.o.d"
  "liborx_eval.a"
  "liborx_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
