file(REMOVE_RECURSE
  "liborx_eval.a"
)
