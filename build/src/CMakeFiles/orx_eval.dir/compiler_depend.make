# Empty compiler generated dependencies file for orx_eval.
# This may be replaced when dependencies are built.
