file(REMOVE_RECURSE
  "CMakeFiles/reformulation_demo.dir/reformulation_demo.cpp.o"
  "CMakeFiles/reformulation_demo.dir/reformulation_demo.cpp.o.d"
  "reformulation_demo"
  "reformulation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reformulation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
