# Empty compiler generated dependencies file for reformulation_demo.
# This may be replaced when dependencies are built.
