file(REMOVE_RECURSE
  "CMakeFiles/explain_demo.dir/explain_demo.cpp.o"
  "CMakeFiles/explain_demo.dir/explain_demo.cpp.o.d"
  "explain_demo"
  "explain_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
