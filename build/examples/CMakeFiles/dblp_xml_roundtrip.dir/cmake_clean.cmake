file(REMOVE_RECURSE
  "CMakeFiles/dblp_xml_roundtrip.dir/dblp_xml_roundtrip.cpp.o"
  "CMakeFiles/dblp_xml_roundtrip.dir/dblp_xml_roundtrip.cpp.o.d"
  "dblp_xml_roundtrip"
  "dblp_xml_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_xml_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
