# Empty compiler generated dependencies file for dblp_xml_roundtrip.
# This may be replaced when dependencies are built.
