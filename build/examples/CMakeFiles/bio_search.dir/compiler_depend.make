# Empty compiler generated dependencies file for bio_search.
# This may be replaced when dependencies are built.
