file(REMOVE_RECURSE
  "CMakeFiles/bio_search.dir/bio_search.cpp.o"
  "CMakeFiles/bio_search.dir/bio_search.cpp.o.d"
  "bio_search"
  "bio_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
