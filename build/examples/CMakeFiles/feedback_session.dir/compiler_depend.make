# Empty compiler generated dependencies file for feedback_session.
# This may be replaced when dependencies are built.
