file(REMOVE_RECURSE
  "CMakeFiles/feedback_session.dir/feedback_session.cpp.o"
  "CMakeFiles/feedback_session.dir/feedback_session.cpp.o.d"
  "feedback_session"
  "feedback_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
