file(REMOVE_RECURSE
  "CMakeFiles/reformulate_test.dir/reformulate_test.cc.o"
  "CMakeFiles/reformulate_test.dir/reformulate_test.cc.o.d"
  "reformulate_test"
  "reformulate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reformulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
