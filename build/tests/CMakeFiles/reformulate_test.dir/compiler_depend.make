# Empty compiler generated dependencies file for reformulate_test.
# This may be replaced when dependencies are built.
