file(REMOVE_RECURSE
  "CMakeFiles/objectrank_test.dir/objectrank_test.cc.o"
  "CMakeFiles/objectrank_test.dir/objectrank_test.cc.o.d"
  "objectrank_test"
  "objectrank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objectrank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
