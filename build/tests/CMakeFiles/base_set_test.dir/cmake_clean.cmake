file(REMOVE_RECURSE
  "CMakeFiles/base_set_test.dir/base_set_test.cc.o"
  "CMakeFiles/base_set_test.dir/base_set_test.cc.o.d"
  "base_set_test"
  "base_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
