# Empty dependencies file for base_set_test.
# This may be replaced when dependencies are built.
