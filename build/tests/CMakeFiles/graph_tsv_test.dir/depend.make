# Empty dependencies file for graph_tsv_test.
# This may be replaced when dependencies are built.
