file(REMOVE_RECURSE
  "CMakeFiles/graph_tsv_test.dir/graph_tsv_test.cc.o"
  "CMakeFiles/graph_tsv_test.dir/graph_tsv_test.cc.o.d"
  "graph_tsv_test"
  "graph_tsv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tsv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
