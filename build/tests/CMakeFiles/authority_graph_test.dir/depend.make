# Empty dependencies file for authority_graph_test.
# This may be replaced when dependencies are built.
