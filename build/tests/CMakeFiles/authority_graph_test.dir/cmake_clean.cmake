file(REMOVE_RECURSE
  "CMakeFiles/authority_graph_test.dir/authority_graph_test.cc.o"
  "CMakeFiles/authority_graph_test.dir/authority_graph_test.cc.o.d"
  "authority_graph_test"
  "authority_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authority_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
