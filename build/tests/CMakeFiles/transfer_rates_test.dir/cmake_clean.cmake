file(REMOVE_RECURSE
  "CMakeFiles/transfer_rates_test.dir/transfer_rates_test.cc.o"
  "CMakeFiles/transfer_rates_test.dir/transfer_rates_test.cc.o.d"
  "transfer_rates_test"
  "transfer_rates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_rates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
