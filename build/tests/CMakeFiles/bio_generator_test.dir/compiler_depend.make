# Empty compiler generated dependencies file for bio_generator_test.
# This may be replaced when dependencies are built.
