file(REMOVE_RECURSE
  "CMakeFiles/bio_generator_test.dir/bio_generator_test.cc.o"
  "CMakeFiles/bio_generator_test.dir/bio_generator_test.cc.o.d"
  "bio_generator_test"
  "bio_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
