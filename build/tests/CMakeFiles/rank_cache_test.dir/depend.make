# Empty dependencies file for rank_cache_test.
# This may be replaced when dependencies are built.
