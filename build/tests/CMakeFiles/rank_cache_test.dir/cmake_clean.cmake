file(REMOVE_RECURSE
  "CMakeFiles/rank_cache_test.dir/rank_cache_test.cc.o"
  "CMakeFiles/rank_cache_test.dir/rank_cache_test.cc.o.d"
  "rank_cache_test"
  "rank_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
