file(REMOVE_RECURSE
  "CMakeFiles/explain_conservation_test.dir/explain_conservation_test.cc.o"
  "CMakeFiles/explain_conservation_test.dir/explain_conservation_test.cc.o.d"
  "explain_conservation_test"
  "explain_conservation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
