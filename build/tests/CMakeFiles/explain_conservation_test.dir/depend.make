# Empty dependencies file for explain_conservation_test.
# This may be replaced when dependencies are built.
