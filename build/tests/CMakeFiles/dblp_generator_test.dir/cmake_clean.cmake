file(REMOVE_RECURSE
  "CMakeFiles/dblp_generator_test.dir/dblp_generator_test.cc.o"
  "CMakeFiles/dblp_generator_test.dir/dblp_generator_test.cc.o.d"
  "dblp_generator_test"
  "dblp_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
