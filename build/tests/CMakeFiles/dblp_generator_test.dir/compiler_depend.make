# Empty compiler generated dependencies file for dblp_generator_test.
# This may be replaced when dependencies are built.
