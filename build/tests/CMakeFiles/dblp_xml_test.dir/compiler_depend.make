# Empty compiler generated dependencies file for dblp_xml_test.
# This may be replaced when dependencies are built.
