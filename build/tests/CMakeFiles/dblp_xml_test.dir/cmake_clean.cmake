file(REMOVE_RECURSE
  "CMakeFiles/dblp_xml_test.dir/dblp_xml_test.cc.o"
  "CMakeFiles/dblp_xml_test.dir/dblp_xml_test.cc.o.d"
  "dblp_xml_test"
  "dblp_xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
