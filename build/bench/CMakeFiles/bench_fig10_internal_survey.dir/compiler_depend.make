# Empty compiler generated dependencies file for bench_fig10_internal_survey.
# This may be replaced when dependencies are built.
