# Empty compiler generated dependencies file for bench_fig12_external_survey.
# This may be replaced when dependencies are built.
