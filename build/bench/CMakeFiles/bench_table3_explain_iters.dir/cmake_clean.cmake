file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_explain_iters.dir/bench_table3_explain_iters.cc.o"
  "CMakeFiles/bench_table3_explain_iters.dir/bench_table3_explain_iters.cc.o.d"
  "bench_table3_explain_iters"
  "bench_table3_explain_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_explain_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
