# Empty dependencies file for bench_table3_explain_iters.
# This may be replaced when dependencies are built.
