# Empty compiler generated dependencies file for bench_table2_or2_vs_or.
# This may be replaced when dependencies are built.
