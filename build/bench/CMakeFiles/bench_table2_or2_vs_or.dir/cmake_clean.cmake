file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_or2_vs_or.dir/bench_table2_or2_vs_or.cc.o"
  "CMakeFiles/bench_table2_or2_vs_or.dir/bench_table2_or2_vs_or.cc.o.d"
  "bench_table2_or2_vs_or"
  "bench_table2_or2_vs_or.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_or2_vs_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
