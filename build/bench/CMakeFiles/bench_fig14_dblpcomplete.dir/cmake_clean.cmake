file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dblpcomplete.dir/bench_fig14_dblpcomplete.cc.o"
  "CMakeFiles/bench_fig14_dblpcomplete.dir/bench_fig14_dblpcomplete.cc.o.d"
  "bench_fig14_dblpcomplete"
  "bench_fig14_dblpcomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dblpcomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
