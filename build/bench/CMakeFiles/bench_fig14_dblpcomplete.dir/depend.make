# Empty dependencies file for bench_fig14_dblpcomplete.
# This may be replaced when dependencies are built.
