file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dblptop.dir/bench_fig15_dblptop.cc.o"
  "CMakeFiles/bench_fig15_dblptop.dir/bench_fig15_dblptop.cc.o.d"
  "bench_fig15_dblptop"
  "bench_fig15_dblptop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dblptop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
