file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ds7.dir/bench_fig16_ds7.cc.o"
  "CMakeFiles/bench_fig16_ds7.dir/bench_fig16_ds7.cc.o.d"
  "bench_fig16_ds7"
  "bench_fig16_ds7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ds7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
