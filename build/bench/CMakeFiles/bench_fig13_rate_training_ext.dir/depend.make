# Empty dependencies file for bench_fig13_rate_training_ext.
# This may be replaced when dependencies are built.
