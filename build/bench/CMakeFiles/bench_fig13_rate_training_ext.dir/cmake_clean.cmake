file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_rate_training_ext.dir/bench_fig13_rate_training_ext.cc.o"
  "CMakeFiles/bench_fig13_rate_training_ext.dir/bench_fig13_rate_training_ext.cc.o.d"
  "bench_fig13_rate_training_ext"
  "bench_fig13_rate_training_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rate_training_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
