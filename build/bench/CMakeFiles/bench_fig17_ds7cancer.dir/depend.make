# Empty dependencies file for bench_fig17_ds7cancer.
# This may be replaced when dependencies are built.
