file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_ds7cancer.dir/bench_fig17_ds7cancer.cc.o"
  "CMakeFiles/bench_fig17_ds7cancer.dir/bench_fig17_ds7cancer.cc.o.d"
  "bench_fig17_ds7cancer"
  "bench_fig17_ds7cancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_ds7cancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
