file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggregate.dir/bench_ablation_aggregate.cc.o"
  "CMakeFiles/bench_ablation_aggregate.dir/bench_ablation_aggregate.cc.o.d"
  "bench_ablation_aggregate"
  "bench_ablation_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
