file(REMOVE_RECURSE
  "CMakeFiles/orx_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/orx_bench_util.dir/bench_util.cc.o.d"
  "liborx_bench_util.a"
  "liborx_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orx_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
