# Empty compiler generated dependencies file for orx_bench_util.
# This may be replaced when dependencies are built.
