file(REMOVE_RECURSE
  "liborx_bench_util.a"
)
