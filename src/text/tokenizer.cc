#include "text/tokenizer.h"

#include <cctype>

#include "text/stopwords.h"

namespace orx::text {
namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char ToLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsTokenChar(c)) {
      current.push_back(ToLower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> TokenizeForIndex(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (auto& t : tokens) {
    if (t.size() <= 1) continue;
    if (IsStopword(t)) continue;
    kept.push_back(std::move(t));
  }
  return kept;
}

std::string NormalizeTerm(std::string_view term) {
  std::string out;
  for (char c : term) {
    if (IsTokenChar(c)) out.push_back(ToLower(c));
  }
  return out;
}

}  // namespace orx::text
