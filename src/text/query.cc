#include "text/query.h"

#include "common/strings.h"
#include "text/tokenizer.h"

namespace orx::text {

Query ParseQuery(std::string_view text) {
  Query query;
  for (const std::string& token : Tokenize(text)) query.push_back(token);
  return query;
}

QueryVector::QueryVector(const Query& query) {
  for (const std::string& raw : query) {
    std::string term = NormalizeTerm(raw);
    if (term.empty()) continue;
    if (Contains(term)) continue;  // duplicate keywords collapse to one slot
    terms_.push_back(std::move(term));
    weights_.push_back(1.0);
  }
}

int QueryVector::IndexOf(std::string_view term) const {
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i] == term) return static_cast<int>(i);
  }
  return -1;
}

void QueryVector::AddWeight(const std::string& term, double delta) {
  int idx = IndexOf(term);
  if (idx >= 0) {
    weights_[idx] += delta;
  } else {
    terms_.push_back(term);
    weights_.push_back(delta);
  }
}

void QueryVector::SetWeight(const std::string& term, double weight) {
  int idx = IndexOf(term);
  if (idx >= 0) {
    weights_[idx] = weight;
  } else {
    terms_.push_back(term);
    weights_.push_back(weight);
  }
}

double QueryVector::Weight(std::string_view term) const {
  int idx = IndexOf(term);
  return idx >= 0 ? weights_[idx] : 0.0;
}

bool QueryVector::Contains(std::string_view term) const {
  return IndexOf(term) >= 0;
}

double QueryVector::AverageWeight() const {
  if (weights_.empty()) return 0.0;
  double sum = 0.0;
  for (double w : weights_) sum += w;
  return sum / static_cast<double>(weights_.size());
}

void QueryVector::Scale(double factor) {
  for (double& w : weights_) w *= factor;
}

std::string QueryVector::ToString() const {
  std::string out = "[" + StrJoin(terms_, ", ") + "] = [";
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(weights_[i], 2);
  }
  out += "]";
  return out;
}

}  // namespace orx::text
