#ifndef ORX_TEXT_STOPWORDS_H_
#define ORX_TEXT_STOPWORDS_H_

#include <string_view>

namespace orx::text {

/// True if `term` (already lowercased) is an English stopword. The list is
/// the classic short IR stopword list; Section 5.1 of the paper ignores
/// stopwords when selecting expansion terms, and the corpus drops them at
/// indexing time.
bool IsStopword(std::string_view term);

/// Number of entries in the built-in stopword list (for tests).
int StopwordCount();

}  // namespace orx::text

#endif  // ORX_TEXT_STOPWORDS_H_
