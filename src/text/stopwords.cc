#include "text/stopwords.h"

#include <string_view>
#include <unordered_set>

namespace orx::text {
namespace {

constexpr std::string_view kStopwords[] = {
    "a",     "about", "above", "after",  "again", "all",   "an",    "and",
    "any",   "are",   "as",    "at",     "be",    "been",  "before", "being",
    "below", "between", "both", "but",   "by",    "can",   "did",   "do",
    "does",  "doing", "down",  "during", "each",  "few",   "for",   "from",
    "further", "had", "has",   "have",   "having", "he",   "her",   "here",
    "hers",  "him",   "his",   "how",    "i",     "if",    "in",    "into",
    "is",    "it",    "its",   "just",   "me",    "more",  "most",  "my",
    "no",    "nor",   "not",   "now",    "of",    "off",   "on",    "once",
    "only",  "or",    "other", "our",    "ours",  "out",   "over",  "own",
    "same",  "she",   "so",    "some",   "such",  "than",  "that",  "the",
    "their", "them",  "then",  "there",  "these", "they",  "this",  "those",
    "through", "to",  "too",   "under",  "until", "up",    "very",  "was",
    "we",    "were",  "what",  "when",   "where", "which", "while", "who",
    "whom",  "why",   "will",  "with",   "you",   "your",  "yours",
};

const std::unordered_set<std::string_view>& StopwordSet() {
  static const auto& set = *new std::unordered_set<std::string_view>(
      std::begin(kStopwords), std::end(kStopwords));
  return set;
}

}  // namespace

bool IsStopword(std::string_view term) {
  return StopwordSet().count(term) > 0;
}

int StopwordCount() {
  return static_cast<int>(std::size(kStopwords));
}

}  // namespace orx::text
