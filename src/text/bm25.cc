#include "text/bm25.h"

#include <algorithm>
#include <cmath>

namespace orx::text {
namespace {

double Idf(const Corpus& corpus, TermId t) {
  // Smoothed RSJ idf (the BM25+ style ln(1 + .) form): strictly positive
  // and monotone decreasing in df, so every base-set member keeps a valid
  // jump probability even for terms occurring in most documents.
  const double n = static_cast<double>(corpus.num_docs());
  const double df = static_cast<double>(corpus.Df(t));
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double TfFactor(const Corpus& corpus, graph::NodeId v, uint32_t tf,
                const Bm25Params& params) {
  const double dl = static_cast<double>(corpus.DocLengthChars(v));
  const double avdl = std::max(corpus.avdl(), 1.0);
  const double k = params.k1 * ((1.0 - params.b) + params.b * dl / avdl);
  return ((params.k1 + 1.0) * tf) / (k + tf);
}

}  // namespace

double DocTermWeight(const Corpus& corpus, graph::NodeId v, TermId t,
                     const Bm25Params& params) {
  const uint32_t tf = corpus.Tf(v, t);
  if (tf == 0) return 0.0;
  return Idf(corpus, t) * TfFactor(corpus, v, tf, params);
}

double QueryTermFactor(double qtf, const Bm25Params& params) {
  if (qtf <= 0.0) return 0.0;
  return ((params.k3 + 1.0) * qtf) / (params.k3 + qtf);
}

double IRScore(const Corpus& corpus, graph::NodeId v, const QueryVector& query,
               const Bm25Params& params) {
  double score = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    auto term = corpus.TermIdOf(query.terms()[i]);
    if (!term.has_value()) continue;
    score += QueryTermFactor(query.weights()[i], params) *
             DocTermWeight(corpus, v, *term, params);
  }
  return score;
}

std::vector<std::pair<graph::NodeId, double>> ScoreBaseSet(
    const Corpus& corpus, const QueryVector& query, const Bm25Params& params) {
  // Accumulate scores term-at-a-time over the inverted lists; documents are
  // deduplicated with a sort-merge at the end (base sets are small relative
  // to the corpus, so a dense accumulator would waste the common case).
  std::vector<std::pair<graph::NodeId, double>> acc;
  for (size_t i = 0; i < query.size(); ++i) {
    auto term = corpus.TermIdOf(query.terms()[i]);
    if (!term.has_value()) continue;
    const double qfactor = QueryTermFactor(query.weights()[i], params);
    const double idf = Idf(corpus, *term);
    for (const Posting& p : corpus.Postings(*term)) {
      acc.emplace_back(p.doc, qfactor * idf * TfFactor(corpus, p.doc, p.tf,
                                                       params));
    }
  }
  std::sort(acc.begin(), acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<graph::NodeId, double>> out;
  out.reserve(acc.size());
  for (size_t i = 0; i < acc.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < acc.size() && acc[j].first == acc[i].first) {
      sum += acc[j].second;
      ++j;
    }
    out.emplace_back(acc[i].first, sum);
    i = j;
  }
  return out;
}

}  // namespace orx::text
