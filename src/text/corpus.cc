#include "text/corpus.h"

#include <algorithm>

#include "common/check.h"
#include "text/tokenizer.h"

namespace orx::text {

Corpus Corpus::Build(const graph::DataGraph& data,
                     const CorpusOptions& options) {
  Corpus corpus;
  const size_t n = data.num_nodes();
  std::vector<uint32_t>& doc_lengths = corpus.doc_lengths_.mut();
  std::vector<uint64_t>& doc_terms_offsets = corpus.doc_terms_offsets_.mut();
  std::vector<DocTerm>& doc_terms = corpus.doc_terms_.mut();
  std::vector<uint64_t>& postings_offsets = corpus.postings_offsets_.mut();
  std::vector<Posting>& postings = corpus.postings_.mut();
  doc_lengths.resize(n, 0);
  doc_terms_offsets.assign(n + 1, 0);

  // Pass 1: tokenize every document, assign term ids, build the forward
  // index, and accumulate document frequencies.
  std::vector<uint32_t> dfs;
  uint64_t total_chars = 0;
  std::vector<std::pair<TermId, uint32_t>> doc_counts;
  for (graph::NodeId v = 0; v < n; ++v) {
    std::string text = data.Text(v);
    if (options.include_attribute_names) {
      for (const graph::AttributeView a : data.Attributes(v)) {
        if (a.name.empty()) continue;
        if (!text.empty()) text += ' ';
        text += a.name;
      }
    }
    doc_lengths[v] = static_cast<uint32_t>(text.size());
    total_chars += text.size();

    doc_counts.clear();
    for (const std::string& token : TokenizeForIndex(text)) {
      auto [it, inserted] = corpus.term_ids_.try_emplace(
          token, static_cast<TermId>(corpus.term_strings_.size()));
      if (inserted) {
        corpus.term_strings_.push_back(token);
        dfs.push_back(0);
      }
      doc_counts.emplace_back(it->second, 1);
    }
    // Collapse duplicate terms into (term, tf) pairs.
    std::sort(doc_counts.begin(), doc_counts.end());
    size_t unique = 0;
    for (size_t i = 0; i < doc_counts.size();) {
      size_t j = i;
      uint32_t tf = 0;
      while (j < doc_counts.size() &&
             doc_counts[j].first == doc_counts[i].first) {
        tf += doc_counts[j].second;
        ++j;
      }
      doc_counts[unique++] = {doc_counts[i].first, tf};
      i = j;
    }
    doc_counts.resize(unique);

    for (const auto& [term, tf] : doc_counts) {
      doc_terms.push_back(DocTerm{term, tf});
      ++dfs[term];
    }
    doc_terms_offsets[v + 1] = doc_terms.size();
  }
  corpus.avdl_ =
      n == 0 ? 0.0 : static_cast<double>(total_chars) / static_cast<double>(n);

  // Pass 2: invert the forward index into per-term postings (CSR).
  const size_t vocab = corpus.term_strings_.size();
  postings_offsets.assign(vocab + 1, 0);
  for (TermId t = 0; t < vocab; ++t) {
    postings_offsets[t + 1] = postings_offsets[t] + dfs[t];
  }
  postings.resize(doc_terms.size());
  std::vector<uint64_t> cursor(postings_offsets.begin(),
                               postings_offsets.end() - 1);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (const DocTerm& dt : corpus.DocTerms(v)) {
      postings[cursor[dt.term]++] = Posting{v, dt.tf};
    }
  }
  for (TermId t = 0; t < vocab; ++t) {
    ORX_DCHECK(cursor[t] == postings_offsets[t + 1]);
  }
  return corpus;
}

StatusOr<Corpus> Corpus::FromParts(
    double avdl, std::span<const char> term_heap,
    std::span<const uint64_t> term_offsets,
    std::span<const uint32_t> doc_lengths,
    std::span<const uint64_t> postings_offsets,
    std::span<const Posting> postings,
    std::span<const uint64_t> doc_terms_offsets,
    std::span<const DocTerm> doc_terms,
    std::shared_ptr<const void> keepalive) {
  const size_t n = doc_lengths.size();
  if (doc_terms_offsets.size() != n + 1 || term_offsets.empty() ||
      postings_offsets.size() != term_offsets.size()) {
    return DataLossError("corpus section shapes are inconsistent");
  }
  if (postings_offsets.front() != 0 ||
      postings_offsets.back() != postings.size() ||
      doc_terms_offsets.front() != 0 ||
      doc_terms_offsets.back() != doc_terms.size() ||
      term_offsets.front() != 0 || term_offsets.back() != term_heap.size()) {
    return DataLossError("corpus CSR offsets do not cover their arrays");
  }
  for (size_t i = 0; i + 1 < postings_offsets.size(); ++i) {
    if (postings_offsets[i] > postings_offsets[i + 1] ||
        term_offsets[i] > term_offsets[i + 1]) {
      return DataLossError("corpus term offsets are not monotonic");
    }
  }
  for (size_t i = 0; i + 1 < doc_terms_offsets.size(); ++i) {
    if (doc_terms_offsets[i] > doc_terms_offsets[i + 1]) {
      return DataLossError("corpus doc-term offsets are not monotonic");
    }
  }
  Corpus corpus;
  corpus.avdl_ = avdl;
  const size_t vocab = term_offsets.size() - 1;
  corpus.term_strings_.reserve(vocab);
  corpus.term_ids_.reserve(vocab);
  for (size_t t = 0; t < vocab; ++t) {
    corpus.term_strings_.emplace_back(
        term_heap.data() + term_offsets[t],
        static_cast<size_t>(term_offsets[t + 1] - term_offsets[t]));
    auto [it, inserted] = corpus.term_ids_.try_emplace(
        corpus.term_strings_.back(), static_cast<TermId>(t));
    if (!inserted) return DataLossError("corpus term heap has duplicates");
  }
  corpus.doc_lengths_ = ArrayRef<uint32_t>::Borrowed(doc_lengths, keepalive);
  corpus.postings_offsets_ =
      ArrayRef<uint64_t>::Borrowed(postings_offsets, keepalive);
  corpus.postings_ = ArrayRef<Posting>::Borrowed(postings, keepalive);
  corpus.doc_terms_offsets_ =
      ArrayRef<uint64_t>::Borrowed(doc_terms_offsets, keepalive);
  corpus.doc_terms_ =
      ArrayRef<DocTerm>::Borrowed(doc_terms, std::move(keepalive));
  return corpus;
}

Corpus::PackedTerms Corpus::PackTerms() const {
  PackedTerms out;
  out.offsets.reserve(term_strings_.size() + 1);
  out.offsets.push_back(0);
  size_t total = 0;
  for (const std::string& s : term_strings_) total += s.size();
  out.heap.reserve(total);
  for (const std::string& s : term_strings_) {
    out.heap += s;
    out.offsets.push_back(out.heap.size());
  }
  return out;
}

std::optional<TermId> Corpus::TermIdOf(std::string_view term) const {
  auto it = term_ids_.find(std::string(term));
  if (it == term_ids_.end()) return std::nullopt;
  return it->second;
}

uint32_t Corpus::Tf(graph::NodeId v, TermId t) const {
  for (const DocTerm& dt : DocTerms(v)) {
    if (dt.term == t) return dt.tf;
  }
  return 0;
}

size_t Corpus::MemoryFootprintBytes() const {
  size_t bytes = doc_lengths_.size() * sizeof(uint32_t) +
                 postings_.size() * sizeof(Posting) +
                 doc_terms_.size() * sizeof(DocTerm) +
                 (postings_offsets_.size() + doc_terms_offsets_.size()) *
                     sizeof(uint64_t);
  for (const std::string& s : term_strings_) bytes += s.size() + sizeof(s);
  return bytes;
}

}  // namespace orx::text
