#include "text/corpus.h"

#include <algorithm>

#include "common/check.h"
#include "text/tokenizer.h"

namespace orx::text {

Corpus Corpus::Build(const graph::DataGraph& data,
                     const CorpusOptions& options) {
  Corpus corpus;
  const size_t n = data.num_nodes();
  corpus.doc_lengths_.resize(n, 0);
  corpus.doc_terms_offsets_.assign(n + 1, 0);

  // Pass 1: tokenize every document, assign term ids, build the forward
  // index, and accumulate document frequencies.
  std::vector<uint32_t> dfs;
  uint64_t total_chars = 0;
  std::vector<std::pair<TermId, uint32_t>> doc_counts;
  for (graph::NodeId v = 0; v < n; ++v) {
    std::string text = data.Text(v);
    if (options.include_attribute_names) {
      for (const graph::Attribute& a : data.Attributes(v)) {
        if (a.name.empty()) continue;
        if (!text.empty()) text += ' ';
        text += a.name;
      }
    }
    corpus.doc_lengths_[v] = static_cast<uint32_t>(text.size());
    total_chars += text.size();

    doc_counts.clear();
    for (const std::string& token : TokenizeForIndex(text)) {
      auto [it, inserted] = corpus.term_ids_.try_emplace(
          token, static_cast<TermId>(corpus.term_strings_.size()));
      if (inserted) {
        corpus.term_strings_.push_back(token);
        dfs.push_back(0);
      }
      doc_counts.emplace_back(it->second, 1);
    }
    // Collapse duplicate terms into (term, tf) pairs.
    std::sort(doc_counts.begin(), doc_counts.end());
    size_t unique = 0;
    for (size_t i = 0; i < doc_counts.size();) {
      size_t j = i;
      uint32_t tf = 0;
      while (j < doc_counts.size() &&
             doc_counts[j].first == doc_counts[i].first) {
        tf += doc_counts[j].second;
        ++j;
      }
      doc_counts[unique++] = {doc_counts[i].first, tf};
      i = j;
    }
    doc_counts.resize(unique);

    for (const auto& [term, tf] : doc_counts) {
      corpus.doc_terms_.push_back(DocTerm{term, tf});
      ++dfs[term];
    }
    corpus.doc_terms_offsets_[v + 1] = corpus.doc_terms_.size();
  }
  corpus.avdl_ =
      n == 0 ? 0.0 : static_cast<double>(total_chars) / static_cast<double>(n);

  // Pass 2: invert the forward index into per-term postings (CSR).
  const size_t vocab = corpus.term_strings_.size();
  corpus.postings_offsets_.assign(vocab + 1, 0);
  for (TermId t = 0; t < vocab; ++t) {
    corpus.postings_offsets_[t + 1] = corpus.postings_offsets_[t] + dfs[t];
  }
  corpus.postings_.resize(corpus.doc_terms_.size());
  std::vector<uint64_t> cursor(corpus.postings_offsets_.begin(),
                               corpus.postings_offsets_.end() - 1);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (const DocTerm& dt : corpus.DocTerms(v)) {
      corpus.postings_[cursor[dt.term]++] = Posting{v, dt.tf};
    }
  }
  for (TermId t = 0; t < vocab; ++t) {
    ORX_DCHECK(cursor[t] == corpus.postings_offsets_[t + 1]);
  }
  return corpus;
}

std::optional<TermId> Corpus::TermIdOf(std::string_view term) const {
  auto it = term_ids_.find(std::string(term));
  if (it == term_ids_.end()) return std::nullopt;
  return it->second;
}

uint32_t Corpus::Tf(graph::NodeId v, TermId t) const {
  for (const DocTerm& dt : DocTerms(v)) {
    if (dt.term == t) return dt.tf;
  }
  return 0;
}

size_t Corpus::MemoryFootprintBytes() const {
  size_t bytes = doc_lengths_.size() * sizeof(uint32_t) +
                 postings_.size() * sizeof(Posting) +
                 doc_terms_.size() * sizeof(DocTerm) +
                 (postings_offsets_.size() + doc_terms_offsets_.size()) *
                     sizeof(uint64_t);
  for (const std::string& s : term_strings_) bytes += s.size() + sizeof(s);
  return bytes;
}

}  // namespace orx::text
