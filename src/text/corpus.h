#ifndef ORX_TEXT_CORPUS_H_
#define ORX_TEXT_CORPUS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/array_ref.h"
#include "common/status.h"
#include "graph/data_graph.h"

namespace orx::text {

/// Identifier of an indexed term.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// One inverted-list entry: document (data-graph node) and term frequency.
struct Posting {
  graph::NodeId doc;
  uint32_t tf;
};

/// One forward-index entry: term of a document and its frequency.
struct DocTerm {
  TermId term;
  uint32_t tf;
};

/// Indexing options.
struct CorpusOptions {
  /// Include attribute *names* in each node's keyword set, the richer
  /// semantics Section 2 mentions ("the metadata 'Forum', 'Year',
  /// 'Location' could be included in the keywords of a node"): a query
  /// for [location birmingham] then matches Year nodes by metadata.
  bool include_attribute_names = false;
};

/// Full-text statistics over a data graph, treating every node as a
/// document (its concatenated attribute values, per Section 2). Provides
/// everything Okapi BM25 (Equation 3) needs — tf, df, dl (in characters,
/// as the paper specifies), avdl, n — plus:
///  * an inverted index term -> postings, used to enumerate the base set
///    S(Q) (nodes containing at least one query keyword), and
///  * a forward index node -> terms, used by content-based reformulation
///    to collect expansion terms from explaining-subgraph nodes.
///
/// Corpus is immutable after Build().
class Corpus {
 public:
  /// Indexes every node of `data`. O(total text size).
  static Corpus Build(const graph::DataGraph& data,
                      const CorpusOptions& options = CorpusOptions());

  /// Wraps pre-built index arrays zero-copy (the ORXD2 mmap path). The
  /// CSR arrays are borrowed; only the vocabulary (term strings and the
  /// term -> id hash) is rebuilt owned from `term_heap` /
  /// `term_offsets` — it is orders of magnitude smaller than the
  /// postings. Checks shapes and offset monotonicity; per-posting doc
  /// bounds are the caller's deep-validation step.
  static StatusOr<Corpus> FromParts(
      double avdl, std::span<const char> term_heap,
      std::span<const uint64_t> term_offsets,
      std::span<const uint32_t> doc_lengths,
      std::span<const uint64_t> postings_offsets,
      std::span<const Posting> postings,
      std::span<const uint64_t> doc_terms_offsets,
      std::span<const DocTerm> doc_terms,
      std::shared_ptr<const void> keepalive);

  /// Number of indexed documents n (== data.num_nodes()).
  size_t num_docs() const { return doc_lengths_.size(); }

  /// Number of distinct indexed terms.
  size_t vocab_size() const { return term_strings_.size(); }

  /// Average document length in characters (avdl of Equation 3).
  double avdl() const { return avdl_; }

  /// Length of document `v` in characters (dl of Equation 3).
  uint32_t DocLengthChars(graph::NodeId v) const { return doc_lengths_[v]; }

  /// TermId of `term` (already normalized/lowercased), or nullopt if the
  /// term does not occur in the corpus.
  std::optional<TermId> TermIdOf(std::string_view term) const;

  /// The string of a term id. Pre: valid id.
  const std::string& TermString(TermId t) const { return term_strings_[t]; }

  /// Document frequency of a term (df of Equation 3). Pre: valid id.
  uint32_t Df(TermId t) const {
    return postings_offsets_[t + 1] - postings_offsets_[t];
  }

  /// Inverted list of `t`, ordered by ascending document id.
  std::span<const Posting> Postings(TermId t) const {
    return {postings_.data() + postings_offsets_[t],
            postings_offsets_[t + 1] - postings_offsets_[t]};
  }

  /// Terms of document `v` with frequencies (forward index).
  std::span<const DocTerm> DocTerms(graph::NodeId v) const {
    return {doc_terms_.data() + doc_terms_offsets_[v],
            doc_terms_offsets_[v + 1] - doc_terms_offsets_[v]};
  }

  /// Term frequency of `t` in `v`; 0 if absent. O(|DocTerms(v)|).
  uint32_t Tf(graph::NodeId v, TermId t) const;

  /// True if document `v` contains term `t`.
  bool DocContains(graph::NodeId v, TermId t) const { return Tf(v, t) > 0; }

  /// Approximate in-memory footprint in bytes.
  size_t MemoryFootprintBytes() const;

  /// Raw views of the index arrays for the ORXD2 container writer.
  std::span<const uint32_t> doc_lengths() const { return doc_lengths_; }
  std::span<const uint64_t> postings_offsets() const {
    return postings_offsets_;
  }
  std::span<const Posting> all_postings() const { return postings_; }
  std::span<const uint64_t> doc_terms_offsets() const {
    return doc_terms_offsets_;
  }
  std::span<const DocTerm> all_doc_terms() const { return doc_terms_; }

  /// The vocabulary flattened for the container writer: vocab_size() + 1
  /// cumulative offsets into a concatenated term heap.
  struct PackedTerms {
    std::vector<uint64_t> offsets;
    std::string heap;
  };
  PackedTerms PackTerms() const;

 private:
  Corpus() = default;

  ArrayRef<uint32_t> doc_lengths_;
  double avdl_ = 0.0;

  // The vocabulary is always owned (rebuilt from the heap on mmap
  // attach); the large CSR arrays below may borrow file-backed storage.
  std::vector<std::string> term_strings_;
  std::unordered_map<std::string, TermId> term_ids_;

  // Inverted index (CSR): postings of term t live in
  // [postings_offsets_[t], postings_offsets_[t+1]).
  ArrayRef<uint64_t> postings_offsets_;
  ArrayRef<Posting> postings_;

  // Forward index (CSR): terms of doc v live in
  // [doc_terms_offsets_[v], doc_terms_offsets_[v+1]).
  ArrayRef<uint64_t> doc_terms_offsets_;
  ArrayRef<DocTerm> doc_terms_;
};

}  // namespace orx::text

#endif  // ORX_TEXT_CORPUS_H_
