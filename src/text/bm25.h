#ifndef ORX_TEXT_BM25_H_
#define ORX_TEXT_BM25_H_

#include <vector>

#include "text/corpus.h"
#include "text/query.h"

namespace orx::text {

/// Okapi BM25 constants (Equation 3). The paper's stated ranges: k1 in
/// [1.0, 2.0], b usually 0.75, k3 in [0, 1000].
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
  double k3 = 8.0;
};

/// The Okapi document-side term weight W(v, t) of Equation 3 (without the
/// query-frequency factor, which QueryVector supplies):
///
///   W(v,t) = ln(1 + (n - df + 0.5) / (df + 0.5)) * ((k1 + 1) tf) / (K + tf)
///   K      = k1 * ((1 - b) + b * dl / avdl)
///
/// The idf factor uses the smoothed ln(1 + .) form so weights are strictly
/// positive for any matching term — base set entries must be valid jump
/// probabilities (Section 3 normalizes them to sum to one), which the raw
/// RSJ idf (negative for terms in more than half the documents) would
/// break.
double DocTermWeight(const Corpus& corpus, graph::NodeId v, TermId t,
                     const Bm25Params& params = {});

/// The query-side factor ((k3 + 1) qtf) / (k3 + qtf) of Equation 3, where
/// `qtf` is the query-vector weight of the term. For the initial query
/// (all weights 1) this is 1.
double QueryTermFactor(double qtf, const Bm25Params& params = {});

/// IRScore(v, Q) = v . Q (Equation 2): the dot product of the document
/// vector [W(v,t1), ...] with the query vector, with each term scaled by
/// its query factor. Terms absent from the corpus or the document add 0.
double IRScore(const Corpus& corpus, graph::NodeId v, const QueryVector& query,
               const Bm25Params& params = {});

/// Scores every document containing at least one query term; the result
/// has one entry per such document (the base set S(Q)), unordered.
/// Documents whose score is 0 (e.g. all idfs clamped) are still included,
/// matching the paper's definition of S(Q) by containment.
std::vector<std::pair<graph::NodeId, double>> ScoreBaseSet(
    const Corpus& corpus, const QueryVector& query,
    const Bm25Params& params = {});

}  // namespace orx::text

#endif  // ORX_TEXT_BM25_H_
