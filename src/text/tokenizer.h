#ifndef ORX_TEXT_TOKENIZER_H_
#define ORX_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace orx::text {

/// Splits `text` into lowercase keyword tokens. A token is a maximal run
/// of ASCII alphanumeric characters; everything else separates tokens.
/// "Data Cube: A Relational..." -> {"data", "cube", "a", "relational", ...}.
std::vector<std::string> Tokenize(std::string_view text);

/// Like Tokenize but drops stopwords (see stopwords.h) and single-character
/// tokens; this is what the corpus indexes.
std::vector<std::string> TokenizeForIndex(std::string_view text);

/// Normalizes a single query keyword: lowercased, non-alphanumerics
/// stripped. Returns "" if nothing remains.
std::string NormalizeTerm(std::string_view term);

}  // namespace orx::text

#endif  // ORX_TEXT_TOKENIZER_H_
