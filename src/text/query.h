#ifndef ORX_TEXT_QUERY_H_
#define ORX_TEXT_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

namespace orx::text {

/// A keyword query Q = [t1, ..., tm] (Section 3). The paper uses a tuple,
/// not a set: order matters once the weighted base set is introduced.
using Query = std::vector<std::string>;

/// Parses "olap data cube" into a normalized Query (lowercased, empties
/// dropped).
Query ParseQuery(std::string_view text);

/// The query vector Q = [w1, ..., wm]: each query keyword paired with a
/// weight (Section 3). The initial vector for a fresh query has all
/// weights 1; content-based reformulation (Section 5.1, Equation 12)
/// appends expansion terms and rescales weights.
class QueryVector {
 public:
  QueryVector() = default;

  /// Builds the initial vector for `query` with every weight = 1.
  explicit QueryVector(const Query& query);

  /// Adds `delta` to the weight of `term`, inserting it (at the back, so
  /// term order is preserved) if absent.
  void AddWeight(const std::string& term, double delta);

  /// Sets the weight of `term`, inserting if absent.
  void SetWeight(const std::string& term, double weight);

  /// Weight of `term`; 0 if absent.
  double Weight(std::string_view term) const;

  /// True if the term has an entry.
  bool Contains(std::string_view term) const;

  /// Average of the present term weights; 0 for an empty vector. Used by
  /// the Section 5.1 expansion-weight normalization.
  double AverageWeight() const;

  /// Multiplies every weight by `factor`.
  void Scale(double factor);

  const std::vector<std::string>& terms() const { return terms_; }
  const std::vector<double>& weights() const { return weights_; }
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Renders "[olap, cubes] = [2.00, 0.99]" for diagnostics/examples.
  std::string ToString() const;

 private:
  int IndexOf(std::string_view term) const;

  std::vector<std::string> terms_;
  std::vector<double> weights_;
};

}  // namespace orx::text

#endif  // ORX_TEXT_QUERY_H_
