#ifndef ORX_GRAPH_SPMV_LAYOUT_H_
#define ORX_GRAPH_SPMV_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "graph/authority_graph.h"
#include "graph/transfer_rates.h"

namespace orx::graph {

/// The rates-independent half of the fused SpMV layout: the graph's
/// in-adjacency resliced into SELL-8 (sliced ELLPACK) form, shareable
/// across every TransferRates vector of the same graph.
///
/// Nodes are stably sorted by descending in-degree (row_order) and taken
/// in chunks of kChunkRows rows. Each chunk is stored column-major and
/// padded to its longest row:
///
///   slot(c, j, r) = chunk_offsets[c] + j * kChunkRows + r
///
/// holds in-edge j of row r's node (row_order[c * kChunkRows + r]), so a
/// pull pass walks j with one independent accumulator per row — full
/// 8-way instruction-level parallelism no matter how short the rows are,
/// where a CSR row loop serializes on each node's sum. The degree sort
/// keeps rows of a chunk similar, so padding is ~1% on authority graphs.
/// Padding slots hold source 0 with weight 0.0: they add exactly +0.0 in
/// edge order, leaving per-node sums identical to a sequential
/// per-node accumulation.
struct SellStructure {
  /// Rows per chunk == accumulator lanes in the pull kernel.
  static constexpr size_t kChunkRows = 8;

  /// Node ids in processing order; row i of the layout is node
  /// row_order[i]. Stable descending-in-degree sort of [0, n).
  ArrayRef<uint32_t> row_order;
  /// Inverse of row_order: node v is row node_row[v].
  ArrayRef<uint32_t> node_row;
  /// Cumulative padded slot counts per chunk (num_chunks() + 1 entries).
  ArrayRef<uint64_t> chunk_offsets;
  /// Edge sources in SELL order; padding slots are 0.
  ArrayRef<uint32_t> sources;
  /// Edge sources as row indices (node_row[sources[slot]]): the SpMM
  /// block pass keeps its iterates in row order so its writeback is a
  /// sequential stream, and gathers through this array instead of
  /// sources. Padding slots are node_row[0].
  ArrayRef<uint32_t> sources_row;
  /// Number of real rows (== the graph's node count).
  size_t num_rows = 0;

  SellStructure() = default;
  explicit SellStructure(const AuthorityGraph& graph);

  /// Wraps a pre-built SELL structure zero-copy (the ORXD2 mmap path).
  /// Checks array shapes and chunk_offsets monotonicity/alignment; the
  /// per-slot bijection and source-bounds checks live in the structural
  /// validator (graph/validate.h), which deep validation runs in full.
  static StatusOr<SellStructure> FromParts(
      size_t num_rows, std::span<const uint32_t> row_order,
      std::span<const uint32_t> node_row,
      std::span<const uint64_t> chunk_offsets,
      std::span<const uint32_t> sources,
      std::span<const uint32_t> sources_row,
      std::shared_ptr<const void> keepalive);

  size_t num_chunks() const { return chunk_offsets.size() - 1; }
  uint64_t padded_slots() const { return chunk_offsets.back(); }
};

/// Rate-resolved structure-of-arrays view of an AuthorityGraph's
/// in-adjacency — the layout the fused pull SpMV of the power iteration
/// streams (docs/power_iteration.md). For the SELL slot holding in-edge
/// e of node v:
///
///   structure().sources[slot] = u, the source node of the edge u -> v
///   weights()[slot]           = alpha(rate_index) * inv_out_deg  (Eq. 1)
///
/// i.e. the per-edge coefficient is materialized once per TransferRates
/// vector instead of being re-resolved (slot gather + float conversion)
/// per edge per iteration. Weights are stored as double so the fused
/// kernel is interchangeable with the push/pull reference kernels to
/// <= 1e-12 L-inf; with 4-byte sources a layout adds ~12 B/edge, and the
/// structure half (sources + row order + chunk offsets) is shared across
/// layouts of the same graph — only the weight array is per-rates.
///
/// A layout references nothing inside the graph after construction, but
/// the cache binding below still requires the graph to outlive the cache.
class FusedLayout {
 public:
  /// Builds the layout for (graph, rates). `structure` may share the
  /// SELL structure of a previous layout of the same graph; pass nullptr
  /// to build it.
  FusedLayout(const AuthorityGraph& graph, const TransferRates& rates,
              std::shared_ptr<const SellStructure> structure = nullptr);

  /// Wraps a pre-built weight array zero-copy against an existing
  /// structure (the ORXD2 mmap path). `fingerprint` must be the
  /// Fingerprint() of the TransferRates the weights were resolved with —
  /// it is the FusedWeightCache key, so a mismatch would serve wrong
  /// weights forever.
  static StatusOr<FusedLayout> FromParts(
      std::shared_ptr<const SellStructure> structure,
      std::span<const double> weights, uint64_t fingerprint,
      std::shared_ptr<const void> keepalive);

  /// Fingerprint of the TransferRates baked into weights().
  uint64_t rates_fingerprint() const { return rates_fingerprint_; }

  size_t num_nodes() const { return structure_->num_rows; }

  const SellStructure& structure() const { return *structure_; }
  /// Fused edge coefficients in SELL order; padding slots are 0.0.
  const double* weights() const { return weights_.data(); }
  /// weights() with its extent (== structure().padded_slots() for a
  /// well-formed layout — the structural validator checks exactly that).
  std::span<const double> weight_span() const { return weights_; }

  /// The structure half of the layout, shareable across rate vectors.
  const std::shared_ptr<const SellStructure>& shared_structure() const {
    return structure_;
  }

  size_t MemoryFootprintBytes() const {
    return structure_->sources.size() * sizeof(uint32_t) +
           structure_->sources_row.size() * sizeof(uint32_t) +
           structure_->row_order.size() * sizeof(uint32_t) +
           structure_->node_row.size() * sizeof(uint32_t) +
           structure_->chunk_offsets.size() * sizeof(uint64_t) +
           weights_.size() * sizeof(double);
  }

 private:
  FusedLayout() = default;

  std::shared_ptr<const SellStructure> structure_;
  ArrayRef<double> weights_;
  uint64_t rates_fingerprint_ = 0;
};

/// Minimal C++17 allocator that over-aligns every allocation to kAlign
/// bytes via the aligned operator new. BlockVector uses it to pin its
/// storage to cache-line alignment: with 8 lanes a row's block is
/// exactly 64 bytes, so an aligned base makes every gather in the SpMM
/// pass touch one cache line instead of straddling two (measured ~1.5x
/// on the block pass — std::allocator only guarantees 16 bytes).
template <class T, size_t kAlign>
struct AlignedAllocator {
  static_assert(kAlign >= alignof(T) && (kAlign & (kAlign - 1)) == 0);
  using value_type = T;
  // Spelled out because allocator_traits' default rebind only rewrites
  // type parameters, and kAlign is a non-type one.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(kAlign));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, kAlign>&) const {
    return true;
  }
};

/// A dense block of B power-iteration iterates stored lane-major per row
/// in SELL *row order*: lane l of row r lives at values[r * lanes + l],
/// where row r holds node row_order[r]. The B scores of one row are
/// contiguous, so a gather of a source row's scores is one
/// cache-line-friendly read serving all B lanes (B separate vectors
/// would gather B scattered lines per edge), and keeping rows — not
/// nodes — as the major index makes the SpMM writeback a purely
/// sequential stream. CopyLaneOut/SetLane apply the row permutation at
/// the block boundary. Used by ObjectRankEngine::ComputeBatch to run B
/// queries through one streaming read of structure + weights per pass.
struct BlockVector {
  using Storage = std::vector<double, AlignedAllocator<double, 64>>;

  size_t num_nodes = 0;
  size_t lanes = 0;
  /// num_nodes * lanes values, row-major (SELL row order), base
  /// cache-line aligned.
  Storage values;

  BlockVector() = default;
  BlockVector(size_t num_nodes, size_t lanes)
      : num_nodes(num_nodes), lanes(lanes), values(num_nodes * lanes, 0.0) {}

  double* data() { return values.data(); }
  const double* data() const { return values.data(); }

  double& At(size_t row, size_t lane) { return values[row * lanes + lane]; }
  double At(size_t row, size_t lane) const {
    return values[row * lanes + lane];
  }

  /// Copies lane `lane` out into a node-indexed vector of num_nodes
  /// entries: out[row_order[r]] = At(r, lane).
  void CopyLaneOut(size_t lane, std::span<const uint32_t> row_order,
                   std::vector<double>& out) const;
  /// Fills lane `lane` from a node-indexed array of num_nodes entries:
  /// At(r, lane) = in[row_order[r]].
  void SetLane(size_t lane, std::span<const uint32_t> row_order,
               const double* in);
};

/// One fused pull SpMM pass over the SELL chunk range [begin, end) of a
/// `lanes`-wide block: for every row r in the range and every lane l,
///
///   next[r*lanes + l] = d * sum_j cur[src_j*lanes + l] * w_j
///                       + bvec[r*lanes + l]
///
/// with per-lane L1 residuals |next - cur| summed into l1_out[0..lanes).
/// `sources` must be SellStructure::sources_row (row-space), and `cur`,
/// `next`, and `bvec` are row-major BlockVector storage (bvec = the
/// per-lane dense jump vectors (1-d)*s-hat, permuted into row order).
/// `bvec_rowmask` is an optional per-row byte mask: rows whose mask byte
/// is 0 must have bvec == +0.0 in every lane, and the kernel skips their
/// bvec load — since power iterates are non-negative, d*sum is never
/// -0.0 and dropping "+ 0.0" cannot change a bit. Pass nullptr to load
/// bvec unconditionally (required if iterates may be negative).
///
/// Lane l's sum accumulates the same operands in the same SELL edge
/// order as the single-vector pull pass, and its residual partial covers
/// the same chunks in the same order, so each lane of a block solve is
/// bit-identical to the corresponding single-vector solve — the batch
/// guarantee tests/batch_kernel_test.cc pins down. To keep that promise
/// across instruction sets, every code path (scalar tiles, and the
/// runtime-dispatched AVX-512/AVX2 kernels on x86-64) performs plain
/// IEEE mul-then-add: spmv_layout.cc is compiled with -ffp-contract=off
/// so the compiler cannot fuse those into FMAs.
void FusedPullBlockRange(const uint64_t* chunk_offsets,
                         const uint32_t* sources, const double* weights,
                         const double* bvec, const uint8_t* bvec_rowmask,
                         double d, const double* cur, double* next,
                         size_t lanes, size_t begin, size_t end,
                         size_t num_rows, double* l1_out);

/// Splits [0, num_items) into `parts` contiguous ranges balanced by
/// cumulative weight (`offsets` is any CSR-style cumulative array with
/// num_items + 1 entries). Returns parts + 1 ascending boundaries with
/// front() == 0 and back() == num_items; range t is
/// [result[t], result[t+1]). O(parts * log n).
std::vector<size_t> BalancedPartition(std::span<const uint64_t> offsets,
                                      size_t parts);

/// Rate-resolved outgoing authority mass per node: mass[u] is the sum of
/// a(e) over u's out-edges under one TransferRates vector, and max_mass
/// is its maximum over all nodes. This is the push-side companion of the
/// pull-side FusedLayout — the approximate kernel (core/approx.h) turns
/// d * max_mass into its contraction factor, so its certified error
/// bounds need exactly this reduction and nothing else from the layout.
struct PushMass {
  std::vector<double> mass;
  double max_mass = 0.0;

  /// Fused per-edge scatter weights a(e) = rate(e) * inv_out_deg(e) in
  /// out-CSR order (parallel to AuthorityGraph::out_offsets). The push
  /// inner loop runs every round over the same edges; resolving the rate
  /// slot once here instead of per edge per round is the out-adjacency
  /// mirror of what FusedLayout does for the pull SpMV.
  std::vector<double> out_weight;

  /// Builds the reduction from the out-adjacency. O(|E|).
  static PushMass Build(const AuthorityGraph& graph,
                        const TransferRates& rates);
};

/// Thread-safe memo of FusedLayouts keyed by TransferRates fingerprint,
/// plus the graph-level state every layout shares: the SELL structure and
/// the balanced chunk partitions. One cache serves one graph (bound on
/// first use; rebinding is a programming error and CHECK-fails).
///
/// Lifecycle: steady-state serving runs one rates vector, so Get() is a
/// lock + hash lookup after the first call; reformulation retraining
/// produces a new rates vector per feedback round, whose layout replaces
/// the least-recently-used entry once the small capacity is reached —
/// stale weights can never be returned because the fingerprint is the
/// key. The cache is logically immutable (a memo of pure functions of
/// graph + rates), so sharing it from an otherwise-immutable
/// ServeSnapshot is safe.
class FusedWeightCache {
 public:
  /// Layouts retained before the least-recently-used one is evicted.
  static constexpr size_t kMaxLayouts = 4;

  /// Returns the layout for (graph, rates), building and memoizing it on
  /// first use for this rates fingerprint.
  std::shared_ptr<const FusedLayout> Get(const AuthorityGraph& graph,
                                         const TransferRates& rates);

  /// Pre-populates the cache with an externally built layout (the ORXD2
  /// mmap path): binds `graph`, adopts the layout's SELL structure as the
  /// shared one, and memoizes the layout under its rates fingerprint.
  /// The first Get() for the serving rates then returns the mmap-backed
  /// layout instead of rebuilding seconds of SELL + weight resolution.
  void Seed(const AuthorityGraph& graph,
            std::shared_ptr<const FusedLayout> layout);

  /// Returns the `parts`-way balanced partition of the graph's SELL
  /// chunks (boundaries in chunk indices), computed once per
  /// (graph, parts).
  std::shared_ptr<const std::vector<size_t>> Partition(
      const AuthorityGraph& graph, size_t parts);

  /// Returns the per-node outgoing-mass reduction for (graph, rates),
  /// building and memoizing it on first use for this rates fingerprint.
  /// Deliberately independent of Get(): the approximate tier must not
  /// pay a SELL materialization just to learn its contraction factor.
  std::shared_ptr<const PushMass> Masses(const AuthorityGraph& graph,
                                         const TransferRates& rates);

  /// Number of resident layouts.
  size_t size() const;

  /// Drops every memoized layout, structure, and partition (keeps the
  /// graph binding).
  void Clear();

 private:
  struct Slot {
    uint64_t fingerprint = 0;
    uint64_t last_used = 0;
    std::shared_ptr<const FusedLayout> layout;
  };

  void BindLocked(const AuthorityGraph& graph) ORX_REQUIRES(mu_);
  const std::shared_ptr<const SellStructure>& StructureLocked(
      const AuthorityGraph& graph) ORX_REQUIRES(mu_);

  mutable Mutex mu_{"fused_cache.mu"};
  const AuthorityGraph* graph_ ORX_GUARDED_BY(mu_) = nullptr;  // first use
  uint64_t tick_ ORX_GUARDED_BY(mu_) = 0;
  std::vector<Slot> layouts_ ORX_GUARDED_BY(mu_);
  std::shared_ptr<const SellStructure> structure_ ORX_GUARDED_BY(mu_);
  std::vector<std::pair<size_t, std::shared_ptr<const std::vector<size_t>>>>
      partitions_ ORX_GUARDED_BY(mu_);
  /// (fingerprint, last_used, masses) — same LRU discipline as layouts_.
  std::vector<std::tuple<uint64_t, uint64_t, std::shared_ptr<const PushMass>>>
      masses_ ORX_GUARDED_BY(mu_);
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_SPMV_LAYOUT_H_
