#ifndef ORX_GRAPH_SPMV_LAYOUT_H_
#define ORX_GRAPH_SPMV_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/authority_graph.h"
#include "graph/transfer_rates.h"

namespace orx::graph {

/// The rates-independent half of the fused SpMV layout: the graph's
/// in-adjacency resliced into SELL-8 (sliced ELLPACK) form, shareable
/// across every TransferRates vector of the same graph.
///
/// Nodes are stably sorted by descending in-degree (row_order) and taken
/// in chunks of kChunkRows rows. Each chunk is stored column-major and
/// padded to its longest row:
///
///   slot(c, j, r) = chunk_offsets[c] + j * kChunkRows + r
///
/// holds in-edge j of row r's node (row_order[c * kChunkRows + r]), so a
/// pull pass walks j with one independent accumulator per row — full
/// 8-way instruction-level parallelism no matter how short the rows are,
/// where a CSR row loop serializes on each node's sum. The degree sort
/// keeps rows of a chunk similar, so padding is ~1% on authority graphs.
/// Padding slots hold source 0 with weight 0.0: they add exactly +0.0 in
/// edge order, leaving per-node sums identical to a sequential
/// per-node accumulation.
struct SellStructure {
  /// Rows per chunk == accumulator lanes in the pull kernel.
  static constexpr size_t kChunkRows = 8;

  /// Node ids in processing order; row i of the layout is node
  /// row_order[i]. Stable descending-in-degree sort of [0, n).
  std::vector<uint32_t> row_order;
  /// Cumulative padded slot counts per chunk (num_chunks() + 1 entries).
  std::vector<uint64_t> chunk_offsets;
  /// Edge sources in SELL order; padding slots are 0.
  std::vector<uint32_t> sources;
  /// Number of real rows (== the graph's node count).
  size_t num_rows = 0;

  explicit SellStructure(const AuthorityGraph& graph);

  size_t num_chunks() const { return chunk_offsets.size() - 1; }
  uint64_t padded_slots() const { return chunk_offsets.back(); }
};

/// Rate-resolved structure-of-arrays view of an AuthorityGraph's
/// in-adjacency — the layout the fused pull SpMV of the power iteration
/// streams (docs/power_iteration.md). For the SELL slot holding in-edge
/// e of node v:
///
///   structure().sources[slot] = u, the source node of the edge u -> v
///   weights()[slot]           = alpha(rate_index) * inv_out_deg  (Eq. 1)
///
/// i.e. the per-edge coefficient is materialized once per TransferRates
/// vector instead of being re-resolved (slot gather + float conversion)
/// per edge per iteration. Weights are stored as double so the fused
/// kernel is interchangeable with the push/pull reference kernels to
/// <= 1e-12 L-inf; with 4-byte sources a layout adds ~12 B/edge, and the
/// structure half (sources + row order + chunk offsets) is shared across
/// layouts of the same graph — only the weight array is per-rates.
///
/// A layout references nothing inside the graph after construction, but
/// the cache binding below still requires the graph to outlive the cache.
class FusedLayout {
 public:
  /// Builds the layout for (graph, rates). `structure` may share the
  /// SELL structure of a previous layout of the same graph; pass nullptr
  /// to build it.
  FusedLayout(const AuthorityGraph& graph, const TransferRates& rates,
              std::shared_ptr<const SellStructure> structure = nullptr);

  /// Fingerprint of the TransferRates baked into weights().
  uint64_t rates_fingerprint() const { return rates_fingerprint_; }

  size_t num_nodes() const { return structure_->num_rows; }

  const SellStructure& structure() const { return *structure_; }
  /// Fused edge coefficients in SELL order; padding slots are 0.0.
  const double* weights() const { return weights_.data(); }

  /// The structure half of the layout, shareable across rate vectors.
  const std::shared_ptr<const SellStructure>& shared_structure() const {
    return structure_;
  }

  size_t MemoryFootprintBytes() const {
    return structure_->sources.size() * sizeof(uint32_t) +
           structure_->row_order.size() * sizeof(uint32_t) +
           structure_->chunk_offsets.size() * sizeof(uint64_t) +
           weights_.size() * sizeof(double);
  }

 private:
  std::shared_ptr<const SellStructure> structure_;
  std::vector<double> weights_;
  uint64_t rates_fingerprint_ = 0;
};

/// Splits [0, num_items) into `parts` contiguous ranges balanced by
/// cumulative weight (`offsets` is any CSR-style cumulative array with
/// num_items + 1 entries). Returns parts + 1 ascending boundaries with
/// front() == 0 and back() == num_items; range t is
/// [result[t], result[t+1]). O(parts * log n).
std::vector<size_t> BalancedPartition(std::span<const uint64_t> offsets,
                                      size_t parts);

/// Thread-safe memo of FusedLayouts keyed by TransferRates fingerprint,
/// plus the graph-level state every layout shares: the SELL structure and
/// the balanced chunk partitions. One cache serves one graph (bound on
/// first use; rebinding is a programming error and CHECK-fails).
///
/// Lifecycle: steady-state serving runs one rates vector, so Get() is a
/// lock + hash lookup after the first call; reformulation retraining
/// produces a new rates vector per feedback round, whose layout replaces
/// the least-recently-used entry once the small capacity is reached —
/// stale weights can never be returned because the fingerprint is the
/// key. The cache is logically immutable (a memo of pure functions of
/// graph + rates), so sharing it from an otherwise-immutable
/// ServeSnapshot is safe.
class FusedWeightCache {
 public:
  /// Layouts retained before the least-recently-used one is evicted.
  static constexpr size_t kMaxLayouts = 4;

  /// Returns the layout for (graph, rates), building and memoizing it on
  /// first use for this rates fingerprint.
  std::shared_ptr<const FusedLayout> Get(const AuthorityGraph& graph,
                                         const TransferRates& rates);

  /// Returns the `parts`-way balanced partition of the graph's SELL
  /// chunks (boundaries in chunk indices), computed once per
  /// (graph, parts).
  std::shared_ptr<const std::vector<size_t>> Partition(
      const AuthorityGraph& graph, size_t parts);

  /// Number of resident layouts.
  size_t size() const;

  /// Drops every memoized layout, structure, and partition (keeps the
  /// graph binding).
  void Clear();

 private:
  struct Slot {
    uint64_t fingerprint = 0;
    uint64_t last_used = 0;
    std::shared_ptr<const FusedLayout> layout;
  };

  void BindLocked(const AuthorityGraph& graph);
  const std::shared_ptr<const SellStructure>& StructureLocked(
      const AuthorityGraph& graph);

  mutable std::mutex mu_;
  const AuthorityGraph* graph_ = nullptr;  // bound on first use
  uint64_t tick_ = 0;
  std::vector<Slot> layouts_;
  std::shared_ptr<const SellStructure> structure_;
  std::vector<std::pair<size_t, std::shared_ptr<const std::vector<size_t>>>>
      partitions_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_SPMV_LAYOUT_H_
