#ifndef ORX_GRAPH_CONFORMANCE_H_
#define ORX_GRAPH_CONFORMANCE_H_

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

namespace orx::graph {

/// Verifies that a data graph conforms to its schema graph (Section 2):
/// every node maps to a registered type and every edge's endpoint types
/// match its schema edge type. DataGraph enforces this on insertion; this
/// full re-check exists for graphs deserialized from external sources
/// (e.g. the DBLP XML parser) and as a test oracle.
///
/// Returns OK, or the first violation found with a descriptive message.
Status CheckConformance(const DataGraph& data, const SchemaGraph& schema);

}  // namespace orx::graph

#endif  // ORX_GRAPH_CONFORMANCE_H_
