#ifndef ORX_GRAPH_AUTHORITY_GRAPH_H_
#define ORX_GRAPH_AUTHORITY_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/array_ref.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "graph/transfer_rates.h"

namespace orx::graph {

/// One authority-transfer edge in the authority transfer data graph D^A.
///
/// The *rate* of the edge (Equation 1) is
///     a(e) = alpha(rate_index) * inv_out_deg
/// where alpha comes from the TransferRates vector supplied at query time.
/// Storing inv_out_deg (1 / OutDeg(u, e_G^d)) instead of the final rate
/// lets the reformulator change alpha every feedback iteration without
/// rebuilding this index.
struct AuthorityEdge {
  /// Head node of the edge (the node authority flows to).
  NodeId target;
  /// 1 / OutDeg(source, edge type+direction); see Equation 1.
  float inv_out_deg;
  /// RateIndex(etype, dir) into a TransferRates vector.
  uint32_t rate_index;
};

/// The authority transfer data graph D^A(V_D, E_D^A) of Section 2 in CSR
/// form. Every data edge (u -> v, etype) contributes two authority edges:
/// the forward edge u -> v with slot (etype, kForward) and the backward
/// edge v -> u with slot (etype, kBackward). Both out-adjacency (power
/// iteration) and in-adjacency (explaining-subgraph construction, which
/// walks edges in reverse) are materialized.
///
/// The structure depends only on the data graph; rates are resolved lazily
/// against a TransferRates vector.
class AuthorityGraph {
 public:
  /// Builds the CSR index from a finalized data graph. O(|V| + |E|).
  static AuthorityGraph Build(const DataGraph& data);

  /// Wraps pre-built CSR halves zero-copy (the ORXD2 mmap path).
  /// `keepalive` owns the storage behind the spans. Checks shapes and
  /// offset monotonicity (O(|V|)); per-edge bounds and cross-consistency
  /// are the caller's deep-validation step (graph/validate.h).
  static StatusOr<AuthorityGraph> FromParts(
      std::span<const uint64_t> out_offsets,
      std::span<const AuthorityEdge> out_edges,
      std::span<const uint64_t> in_offsets,
      std::span<const AuthorityEdge> in_edges,
      std::shared_ptr<const void> keepalive);

  /// Outgoing authority edges of `v` (edges carrying v's authority away).
  std::span<const AuthorityEdge> OutEdges(NodeId v) const {
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Incoming authority edges of `v`; each entry's `target` is the *source*
  /// node u of an edge u -> v, and `inv_out_deg`/`rate_index` describe that
  /// edge u -> v (i.e. u's out-degree normalization).
  std::span<const AuthorityEdge> InEdges(NodeId v) const {
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// The rate a(e) of an authority edge under the given rates (Equation 1).
  static double EdgeRate(const AuthorityEdge& e, const TransferRates& rates) {
    return rates.slot(e.rate_index) * static_cast<double>(e.inv_out_deg);
  }

  size_t num_nodes() const { return out_offsets_.size() - 1; }
  size_t num_edges() const { return out_edges_.size(); }

  /// Raw CSR in-adjacency: cumulative in-edge counts (num_nodes() + 1
  /// entries) and the flat edge array they index. Consumed by the fused
  /// SpMV layout (graph/spmv_layout.h), which re-materializes the edges
  /// rate-resolved, and by its edge-balanced node partition.
  std::span<const uint64_t> in_offsets() const { return in_offsets_; }
  std::span<const AuthorityEdge> in_edges() const { return in_edges_; }

  /// Raw CSR out-adjacency, mirroring in_offsets()/in_edges(). Consumed
  /// by the structural validator (graph/validate.h), which checks both
  /// halves and their cross-consistency.
  std::span<const uint64_t> out_offsets() const { return out_offsets_; }
  std::span<const AuthorityEdge> out_edges() const { return out_edges_; }

  /// Approximate in-memory footprint in bytes.
  size_t MemoryFootprintBytes() const {
    return (out_edges_.size() + in_edges_.size()) * sizeof(AuthorityEdge) +
           (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t);
  }

 private:
  AuthorityGraph() = default;

  ArrayRef<uint64_t> out_offsets_;
  ArrayRef<AuthorityEdge> out_edges_;
  ArrayRef<uint64_t> in_offsets_;
  ArrayRef<AuthorityEdge> in_edges_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_AUTHORITY_GRAPH_H_
