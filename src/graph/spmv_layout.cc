#include "graph/spmv_layout.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "common/numa.h"
#include "graph/validate.h"

namespace orx::graph {
namespace {

/// Build-time storage for the large streamed arrays (SELL sources and
/// fused weights): an owned vector on single-node machines, a NUMA
/// first-touch buffer on multi-socket ones — the zeroing pass places
/// each contiguous node-major block of pages on the socket whose pinned
/// SpMV workers will stream it (common/numa.h). Small arrays always stay
/// owned; the threshold matches AllocateFirstTouch's.
template <typename T>
class BuildArray {
 public:
  void AssignZero(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (Topology().num_nodes() > 1 && bytes >= (size_t{1} << 20)) {
      buffer_ = AllocateFirstTouch(bytes);
      data_ = static_cast<T*>(buffer_.get());
    } else {
      vec_.assign(n, T{});
      data_ = vec_.data();
    }
    size_ = n;
  }

  T& operator[](size_t i) { return data_[i]; }
  size_t size() const { return size_; }

  /// Moves the storage into an ArrayRef (borrowing the first-touch
  /// buffer, owning the vector). The BuildArray is spent afterwards.
  ArrayRef<T> Finish() {
    if (buffer_ != nullptr) {
      return ArrayRef<T>::Borrowed(std::span<const T>(data_, size_),
                                   std::move(buffer_));
    }
    return ArrayRef<T>(std::move(vec_));
  }

 private:
  std::vector<T> vec_;
  std::shared_ptr<void> buffer_;
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace

SellStructure::SellStructure(const AuthorityGraph& graph)
    : num_rows(graph.num_nodes()) {
  const std::span<const uint64_t> offsets = graph.in_offsets();
  const std::span<const AuthorityEdge> edges = graph.in_edges();
  const auto degree = [&](uint32_t v) {
    return offsets[v + 1] - offsets[v];
  };

  // The small per-row arrays build into owned vectors directly; the big
  // streamed slot arrays go through BuildArray for NUMA first-touch
  // placement (no-op on single-node machines).
  std::vector<uint32_t>& order = row_order.mut();
  std::vector<uint32_t>& rows = node_row.mut();
  std::vector<uint64_t>& coff = chunk_offsets.mut();
  BuildArray<uint32_t> srcs;
  BuildArray<uint32_t> srcs_row;

  order.resize(num_rows);
  std::iota(order.begin(), order.end(), 0u);
  // Full-range degree sort (SELL "sigma = n"): chunks group rows of
  // similar length, which keeps the column padding negligible. Stable,
  // so the layout is deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return degree(a) > degree(b);
                   });

  const size_t chunks = (num_rows + kChunkRows - 1) / kChunkRows;
  coff.assign(chunks + 1, 0);
  for (size_t c = 0; c < chunks; ++c) {
    uint64_t longest = 0;
    for (size_t r = 0; r < kChunkRows && c * kChunkRows + r < num_rows; ++r) {
      longest = std::max<uint64_t>(longest,
                                   degree(order[c * kChunkRows + r]));
    }
    coff[c + 1] = coff[c] + longest * kChunkRows;
  }

  srcs.AssignZero(coff[chunks]);
  for (size_t c = 0; c < chunks; ++c) {
    for (size_t r = 0; r < kChunkRows && c * kChunkRows + r < num_rows; ++r) {
      const uint32_t v = order[c * kChunkRows + r];
      const uint64_t begin = offsets[v];
      for (uint64_t j = 0; j < degree(v); ++j) {
        // e.target of an in-edge is the *source* u of the edge u -> v.
        srcs[coff[c] + j * kChunkRows + r] = edges[begin + j].target;
      }
    }
  }

  rows.resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) rows[order[r]] = r;
  srcs_row.AssignZero(srcs.size());
  for (size_t i = 0; i < srcs.size(); ++i) {
    srcs_row[i] = rows[srcs[i]];
  }
  sources = srcs.Finish();
  sources_row = srcs_row.Finish();
  ORX_DCHECK_OK(ValidateInvariants(*this));
}

StatusOr<SellStructure> SellStructure::FromParts(
    size_t num_rows, std::span<const uint32_t> row_order,
    std::span<const uint32_t> node_row,
    std::span<const uint64_t> chunk_offsets,
    std::span<const uint32_t> sources, std::span<const uint32_t> sources_row,
    std::shared_ptr<const void> keepalive) {
  const size_t want_chunks =
      (num_rows + kChunkRows - 1) / kChunkRows;
  if (row_order.size() != num_rows || node_row.size() != num_rows ||
      chunk_offsets.size() != want_chunks + 1) {
    return DataLossError("SELL section shapes are inconsistent");
  }
  if (chunk_offsets.front() != 0 ||
      chunk_offsets.back() != sources.size() ||
      sources.size() != sources_row.size()) {
    return DataLossError("SELL chunk offsets do not cover the slots");
  }
  for (size_t c = 0; c + 1 < chunk_offsets.size(); ++c) {
    const uint64_t lo = chunk_offsets[c];
    const uint64_t hi = chunk_offsets[c + 1];
    if (hi < lo || (hi - lo) % kChunkRows != 0) {
      return DataLossError("SELL chunk offsets are not monotone multiples "
                           "of the chunk width");
    }
  }
  SellStructure s;
  s.num_rows = num_rows;
  s.row_order = ArrayRef<uint32_t>::Borrowed(row_order, keepalive);
  s.node_row = ArrayRef<uint32_t>::Borrowed(node_row, keepalive);
  s.chunk_offsets = ArrayRef<uint64_t>::Borrowed(chunk_offsets, keepalive);
  s.sources = ArrayRef<uint32_t>::Borrowed(sources, keepalive);
  s.sources_row =
      ArrayRef<uint32_t>::Borrowed(sources_row, std::move(keepalive));
  return s;
}

FusedLayout::FusedLayout(const AuthorityGraph& graph,
                         const TransferRates& rates,
                         std::shared_ptr<const SellStructure> structure)
    : rates_fingerprint_(rates.Fingerprint()) {
  if (structure != nullptr) {
    ORX_CHECK_MSG(structure->num_rows == graph.num_nodes(),
                  "shared SELL structure does not match the graph");
    structure_ = std::move(structure);
  } else {
    structure_ = std::make_shared<const SellStructure>(graph);
  }

  const std::span<const uint64_t> offsets = graph.in_offsets();
  const std::span<const AuthorityEdge> edges = graph.in_edges();
  const SellStructure& s = *structure_;
  BuildArray<double> weights;
  weights.AssignZero(s.padded_slots());
  for (size_t c = 0; c < s.num_chunks(); ++c) {
    for (size_t r = 0;
         r < SellStructure::kChunkRows &&
         c * SellStructure::kChunkRows + r < s.num_rows;
         ++r) {
      const uint32_t v = s.row_order[c * SellStructure::kChunkRows + r];
      const uint64_t begin = offsets[v];
      const uint64_t deg = offsets[v + 1] - begin;
      for (uint64_t j = 0; j < deg; ++j) {
        weights[s.chunk_offsets[c] + j * SellStructure::kChunkRows + r] =
            AuthorityGraph::EdgeRate(edges[begin + j], rates);
      }
    }
  }
  weights_ = weights.Finish();
  ORX_DCHECK_OK(ValidateInvariants(*this));
}

StatusOr<FusedLayout> FusedLayout::FromParts(
    std::shared_ptr<const SellStructure> structure,
    std::span<const double> weights, uint64_t fingerprint,
    std::shared_ptr<const void> keepalive) {
  if (structure == nullptr) {
    return DataLossError("fused layout needs a SELL structure");
  }
  if (weights.size() != structure->padded_slots()) {
    return DataLossError("fused weight array does not match the structure");
  }
  FusedLayout layout;
  layout.structure_ = std::move(structure);
  layout.weights_ = ArrayRef<double>::Borrowed(weights, std::move(keepalive));
  layout.rates_fingerprint_ = fingerprint;
  return layout;
}

void BlockVector::CopyLaneOut(size_t lane,
                              std::span<const uint32_t> row_order,
                              std::vector<double>& out) const {
  out.resize(num_nodes);
  for (size_t r = 0; r < num_nodes; ++r) {
    out[row_order[r]] = values[r * lanes + lane];
  }
}

void BlockVector::SetLane(size_t lane, std::span<const uint32_t> row_order,
                          const double* in) {
  for (size_t r = 0; r < num_nodes; ++r) {
    values[r * lanes + lane] = in[row_order[r]];
  }
}

namespace {

constexpr size_t kRows = SellStructure::kChunkRows;

// How many columns ahead of the arithmetic the scalar/vector kernels
// prefetch the gathered `cur` rows. The block's gather working set
// (num_rows x lanes doubles) spills L2 on serving-size graphs — unlike
// the single-vector pass, whose 8-byte-per-node iterate stays resident,
// which is why that kernel deliberately carries no prefetches — so
// hiding part of the gather miss latency is worth the extra load-port
// traffic here (measured: ~10-20% on a 49k-node / 537k-edge block pass,
// with distance 4 a further ~8% over distance 2 once the block storage
// is cache-line aligned).
constexpr uint64_t kGatherPrefetchCols = 4;

// Portable chunk-range tile of the SpMM pass: kPair rows x kTile lanes
// of accumulators per group (kPair * kTile <= 32 doubles fits the SSE2
// register file), remainder rows one at a time. Grouping rows multiplies
// the number of independent gather chains, which is what hides gather
// latency when the block spills L2; a full kChunkRows x kTile block
// would spill the accumulators instead and turn every inner mul-add into
// a stack round-trip. Per (row, lane) the sum visits edges in the same
// ascending order j as the single-vector pass — see
// FusedPullBlockRange's contract.
template <size_t kPair, size_t kTile>
void BlockPullTile(const uint64_t* chunk_offsets, const uint32_t* sources,
                   const double* weights, const double* bvec,
                   const uint8_t* bvec_rowmask, double d, const double* cur,
                   double* next, size_t lanes, size_t l0, size_t begin,
                   size_t end, size_t num_rows, double* l1_out) {
  double l1[kTile] = {};
  for (size_t c = begin; c < end; ++c) {
    const uint64_t base = chunk_offsets[c];
    const uint64_t len = (chunk_offsets[c + 1] - base) / kRows;
    const size_t row0 = c * kRows;
    const size_t rows = std::min(kRows, num_rows - row0);
    size_t r = 0;
    for (; r + kPair <= rows; r += kPair) {
      const uint32_t* s = sources + base + r;
      const double* w = weights + base + r;
      double sum[kPair][kTile] = {};
      for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
        if (j + kGatherPrefetchCols < len) {
          for (size_t p = 0; p < kPair; ++p) {
            __builtin_prefetch(
                cur + static_cast<size_t>(s[p + kRows * kGatherPrefetchCols]) *
                          lanes + l0, 0, 1);
          }
        }
        for (size_t p = 0; p < kPair; ++p) {
          const double* cu = cur + static_cast<size_t>(s[p]) * lanes + l0;
          const double wp = w[p];
          for (size_t l = 0; l < kTile; ++l) sum[p][l] += cu[l] * wp;
        }
      }
      for (size_t p = 0; p < kPair; ++p) {
        const size_t v = row0 + r + p;
        const double* cv = cur + v * lanes + l0;
        double* nv = next + v * lanes + l0;
        if (bvec_rowmask == nullptr || bvec_rowmask[v]) {
          const double* bv = bvec + v * lanes + l0;
          for (size_t l = 0; l < kTile; ++l) {
            const double x = d * sum[p][l] + bv[l];
            l1[l] += std::fabs(x - cv[l]);
            nv[l] = x;
          }
        } else {
          for (size_t l = 0; l < kTile; ++l) {
            const double x = d * sum[p][l];
            l1[l] += std::fabs(x - cv[l]);
            nv[l] = x;
          }
        }
      }
    }
    for (; r < rows; ++r) {
      const uint32_t* s = sources + base + r;
      const double* w = weights + base + r;
      double sum[kTile] = {};
      for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
        const double* cu = cur + static_cast<size_t>(*s) * lanes + l0;
        const double wr = *w;
        for (size_t l = 0; l < kTile; ++l) sum[l] += cu[l] * wr;
      }
      const size_t v = row0 + r;
      const double* cv = cur + v * lanes + l0;
      double* nv = next + v * lanes + l0;
      for (size_t l = 0; l < kTile; ++l) {
        double x = d * sum[l];
        if (bvec_rowmask == nullptr || bvec_rowmask[v]) {
          x += bvec[v * lanes + l0 + l];
        }
        l1[l] += std::fabs(x - cv[l]);
        nv[l] = x;
      }
    }
  }
  for (size_t l = 0; l < kTile; ++l) l1_out[l] = l1[l];
}

#if defined(__x86_64__) && defined(__GNUC__)
#define ORX_BLOCK_SIMD 1

// AVX-512 8-lane tile: one zmm accumulator per chunk row (8 rows x 8
// lanes = 8 zmm of the 32 available), so the j-inner loop walks the
// chunk's sources and weights exactly once, fully sequentially, with 8
// independent gather chains in flight. All arithmetic is explicit
// mul-then-add (never _mm512_fmadd_pd) and the file is built with
// -ffp-contract=off, so every element rounds exactly like the scalar
// kernel and per-lane bit-identity holds on any dispatch path.
template <bool kUseMask>
__attribute__((target("avx512f"))) void BlockPullZmm8(
    const uint64_t* chunk_offsets, const uint32_t* sources,
    const double* weights, const double* bvec, const uint8_t* bvec_rowmask,
    double d, const double* cur, double* next, size_t lanes, size_t l0,
    size_t begin, size_t end, size_t num_rows, double* l1_out) {
  const __m512d vd = _mm512_set1_pd(d);
  __m512d l1 = _mm512_setzero_pd();
  for (size_t c = begin; c < end; ++c) {
    const uint64_t base = chunk_offsets[c];
    const uint64_t len = (chunk_offsets[c + 1] - base) / kRows;
    const size_t row0 = c * kRows;
    const size_t rows = std::min(kRows, num_rows - row0);
    if (rows == kRows) {
      const uint32_t* s = sources + base;
      const double* w = weights + base;
      __m512d acc[kRows];
      for (size_t r = 0; r < kRows; ++r) acc[r] = _mm512_setzero_pd();
      for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
        if (j + kGatherPrefetchCols < len) {
          for (size_t r = 0; r < kRows; ++r) {
            __builtin_prefetch(
                cur + static_cast<size_t>(s[kRows * kGatherPrefetchCols + r]) *
                          lanes + l0, 0, 1);
          }
        }
        for (size_t r = 0; r < kRows; ++r) {
          const __m512d cu =
              _mm512_loadu_pd(cur + static_cast<size_t>(s[r]) * lanes + l0);
          acc[r] = _mm512_add_pd(acc[r],
                                 _mm512_mul_pd(cu, _mm512_set1_pd(w[r])));
        }
      }
      for (size_t r = 0; r < kRows; ++r) {
        const size_t v = row0 + r;
        const __m512d cv = _mm512_loadu_pd(cur + v * lanes + l0);
        __m512d x = _mm512_mul_pd(vd, acc[r]);
        if (!kUseMask || bvec_rowmask[v]) {
          x = _mm512_add_pd(x, _mm512_loadu_pd(bvec + v * lanes + l0));
        }
        l1 = _mm512_add_pd(l1, _mm512_abs_pd(_mm512_sub_pd(x, cv)));
        _mm512_storeu_pd(next + v * lanes + l0, x);
      }
    } else {
      // The (single) ragged tail chunk falls back to the scalar tile.
      double tail_l1[kRows] = {};
      BlockPullTile<4, kRows>(chunk_offsets, sources, weights, bvec,
                              kUseMask ? bvec_rowmask : nullptr, d, cur, next,
                              lanes, l0, c, c + 1, num_rows, tail_l1);
      l1 = _mm512_add_pd(l1, _mm512_loadu_pd(tail_l1));
    }
  }
  _mm512_storeu_pd(l1_out, l1);
}

// AVX2 4-lane tile, same shape with ymm accumulators (machines without
// AVX-512, and 4-lane remainders of wider blocks). |x| is the sign-bit
// andnot, the exact bit operation std::fabs performs.
template <bool kUseMask>
__attribute__((target("avx2"))) void BlockPullYmm4(
    const uint64_t* chunk_offsets, const uint32_t* sources,
    const double* weights, const double* bvec, const uint8_t* bvec_rowmask,
    double d, const double* cur, double* next, size_t lanes, size_t l0,
    size_t begin, size_t end, size_t num_rows, double* l1_out) {
  constexpr size_t kTile = 4;
  const __m256d vd = _mm256_set1_pd(d);
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d l1 = _mm256_setzero_pd();
  for (size_t c = begin; c < end; ++c) {
    const uint64_t base = chunk_offsets[c];
    const uint64_t len = (chunk_offsets[c + 1] - base) / kRows;
    const size_t row0 = c * kRows;
    const size_t rows = std::min(kRows, num_rows - row0);
    if (rows == kRows) {
      const uint32_t* s = sources + base;
      const double* w = weights + base;
      __m256d acc[kRows];
      for (size_t r = 0; r < kRows; ++r) acc[r] = _mm256_setzero_pd();
      for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
        if (j + kGatherPrefetchCols < len) {
          for (size_t r = 0; r < kRows; ++r) {
            __builtin_prefetch(
                cur + static_cast<size_t>(s[kRows * kGatherPrefetchCols + r]) *
                          lanes + l0, 0, 1);
          }
        }
        for (size_t r = 0; r < kRows; ++r) {
          const __m256d cu =
              _mm256_loadu_pd(cur + static_cast<size_t>(s[r]) * lanes + l0);
          acc[r] = _mm256_add_pd(acc[r],
                                 _mm256_mul_pd(cu, _mm256_set1_pd(w[r])));
        }
      }
      for (size_t r = 0; r < kRows; ++r) {
        const size_t v = row0 + r;
        const __m256d cv = _mm256_loadu_pd(cur + v * lanes + l0);
        __m256d x = _mm256_mul_pd(vd, acc[r]);
        if (!kUseMask || bvec_rowmask[v]) {
          x = _mm256_add_pd(x, _mm256_loadu_pd(bvec + v * lanes + l0));
        }
        l1 = _mm256_add_pd(l1, _mm256_andnot_pd(sign, _mm256_sub_pd(x, cv)));
        _mm256_storeu_pd(next + v * lanes + l0, x);
      }
    } else {
      double tail_l1[kRows] = {};
      BlockPullTile<4, kTile>(chunk_offsets, sources, weights, bvec,
                              kUseMask ? bvec_rowmask : nullptr, d, cur, next,
                              lanes, l0, c, c + 1, num_rows, tail_l1);
      l1 = _mm256_add_pd(l1, _mm256_loadu_pd(tail_l1));
    }
  }
  _mm256_storeu_pd(l1_out, l1);
}

bool CpuHasAvx512() {
  static const bool has = __builtin_cpu_supports("avx512f") != 0;
  return has;
}

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif  // __x86_64__ && __GNUC__

// Scalar tile dispatch for any width in [1, 8].
void BlockPullScalar(const uint64_t* chunk_offsets, const uint32_t* sources,
                     const double* weights, const double* bvec,
                     const uint8_t* bvec_rowmask, double d, const double* cur,
                     double* next, size_t lanes, size_t l0, size_t lt,
                     size_t begin, size_t end, size_t num_rows,
                     double* l1_out) {
  switch (lt) {
#define ORX_BLOCK_TILE(W)                                                  \
  case W:                                                                  \
    BlockPullTile<4, W>(chunk_offsets, sources, weights, bvec,             \
                        bvec_rowmask, d, cur, next, lanes, l0, begin, end, \
                        num_rows, l1_out);                                 \
    break
    ORX_BLOCK_TILE(1);
    ORX_BLOCK_TILE(2);
    ORX_BLOCK_TILE(3);
    ORX_BLOCK_TILE(4);
    ORX_BLOCK_TILE(5);
    ORX_BLOCK_TILE(6);
    ORX_BLOCK_TILE(7);
    ORX_BLOCK_TILE(8);
#undef ORX_BLOCK_TILE
    default:
      break;
  }
}

}  // namespace

void FusedPullBlockRange(const uint64_t* chunk_offsets,
                         const uint32_t* sources, const double* weights,
                         const double* bvec, const uint8_t* bvec_rowmask,
                         double d, const double* cur, double* next,
                         size_t lanes, size_t begin, size_t end,
                         size_t num_rows, double* l1_out) {
  // Lane tiles of 8 (one zmm / one cache line per row), each re-streaming
  // the structure+weights range once; the widest SIMD kernel the CPU has
  // takes each tile, narrower remainders fall down the chain. Every path
  // computes bit-identical results (see the header contract), so dispatch
  // is purely a speed choice.
  size_t l0 = 0;
  while (l0 < lanes) {
    const size_t rem = lanes - l0;
#if defined(ORX_BLOCK_SIMD)
    if (rem >= 8 && CpuHasAvx512()) {
      if (bvec_rowmask != nullptr) {
        BlockPullZmm8<true>(chunk_offsets, sources, weights, bvec,
                            bvec_rowmask, d, cur, next, lanes, l0, begin,
                            end, num_rows, l1_out + l0);
      } else {
        BlockPullZmm8<false>(chunk_offsets, sources, weights, bvec, nullptr,
                             d, cur, next, lanes, l0, begin, end, num_rows,
                             l1_out + l0);
      }
      l0 += 8;
      continue;
    }
    if (rem >= 4 && CpuHasAvx2()) {
      if (bvec_rowmask != nullptr) {
        BlockPullYmm4<true>(chunk_offsets, sources, weights, bvec,
                            bvec_rowmask, d, cur, next, lanes, l0, begin,
                            end, num_rows, l1_out + l0);
      } else {
        BlockPullYmm4<false>(chunk_offsets, sources, weights, bvec, nullptr,
                             d, cur, next, lanes, l0, begin, end, num_rows,
                             l1_out + l0);
      }
      l0 += 4;
      continue;
    }
#endif
    const size_t lt = std::min<size_t>(rem, 8);
    BlockPullScalar(chunk_offsets, sources, weights, bvec, bvec_rowmask, d,
                    cur, next, lanes, l0, lt, begin, end, num_rows,
                    l1_out + l0);
    l0 += lt;
  }
}

std::vector<size_t> BalancedPartition(std::span<const uint64_t> offsets,
                                      size_t parts) {
  ORX_CHECK(!offsets.empty() && parts > 0);
  const size_t n = offsets.size() - 1;
  const uint64_t total = offsets[n];
  std::vector<size_t> bounds(parts + 1, 0);
  for (size_t t = 1; t < parts; ++t) {
    // First item whose prefix covers t/parts of the weight; clamped so
    // boundaries stay monotone when several targets land in one item.
    const uint64_t target = total * t / parts;
    const auto it =
        std::lower_bound(offsets.begin(), offsets.end() - 1, target);
    bounds[t] = std::max<size_t>(
        bounds[t - 1], static_cast<size_t>(it - offsets.begin()));
  }
  bounds[parts] = n;
  return bounds;
}

void FusedWeightCache::BindLocked(const AuthorityGraph& graph) {
  if (graph_ == nullptr) {
    graph_ = &graph;
  } else {
    ORX_CHECK_MSG(graph_ == &graph,
                  "a FusedWeightCache serves exactly one graph");
  }
}

const std::shared_ptr<const SellStructure>& FusedWeightCache::StructureLocked(
    const AuthorityGraph& graph) {
  if (structure_ == nullptr) {
    structure_ = std::make_shared<const SellStructure>(graph);
  }
  return structure_;
}

std::shared_ptr<const FusedLayout> FusedWeightCache::Get(
    const AuthorityGraph& graph, const TransferRates& rates) {
  const uint64_t fingerprint = rates.Fingerprint();
  MutexLock lock(mu_);
  BindLocked(graph);
  for (Slot& slot : layouts_) {
    if (slot.fingerprint == fingerprint) {
      slot.last_used = ++tick_;
      return slot.layout;
    }
  }
  // Miss: build under the lock — concurrent callers need this same
  // layout, so blocking them is cheaper than building it twice.
  auto layout = std::make_shared<const FusedLayout>(graph, rates,
                                                    StructureLocked(graph));
  if (layouts_.size() >= kMaxLayouts) {
    auto lru = std::min_element(layouts_.begin(), layouts_.end(),
                                [](const Slot& a, const Slot& b) {
                                  return a.last_used < b.last_used;
                                });
    *lru = Slot{fingerprint, ++tick_, layout};
  } else {
    layouts_.push_back(Slot{fingerprint, ++tick_, layout});
  }
  return layout;
}

void FusedWeightCache::Seed(const AuthorityGraph& graph,
                            std::shared_ptr<const FusedLayout> layout) {
  ORX_CHECK(layout != nullptr &&
            layout->num_nodes() == graph.num_nodes());
  MutexLock lock(mu_);
  BindLocked(graph);
  if (structure_ == nullptr) structure_ = layout->shared_structure();
  const uint64_t fingerprint = layout->rates_fingerprint();
  for (Slot& slot : layouts_) {
    if (slot.fingerprint == fingerprint) {
      slot.last_used = ++tick_;
      slot.layout = std::move(layout);
      return;
    }
  }
  layouts_.push_back(Slot{fingerprint, ++tick_, std::move(layout)});
}

std::shared_ptr<const std::vector<size_t>> FusedWeightCache::Partition(
    const AuthorityGraph& graph, size_t parts) {
  MutexLock lock(mu_);
  BindLocked(graph);
  for (const auto& [p, bounds] : partitions_) {
    if (p == parts) return bounds;
  }
  auto bounds = std::make_shared<const std::vector<size_t>>(
      BalancedPartition(StructureLocked(graph)->chunk_offsets, parts));
  partitions_.emplace_back(parts, bounds);
  return bounds;
}

PushMass PushMass::Build(const AuthorityGraph& graph,
                         const TransferRates& rates) {
  PushMass result;
  const size_t n = graph.num_nodes();
  result.mass.resize(n, 0.0);
  result.out_weight.resize(graph.num_edges(), 0.0);
  size_t edge = 0;
  for (size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (const AuthorityEdge& e : graph.OutEdges(static_cast<NodeId>(u))) {
      const double a = AuthorityGraph::EdgeRate(e, rates);
      result.out_weight[edge++] = a;
      sum += a;
    }
    result.mass[u] = sum;
    result.max_mass = std::max(result.max_mass, sum);
  }
  return result;
}

std::shared_ptr<const PushMass> FusedWeightCache::Masses(
    const AuthorityGraph& graph, const TransferRates& rates) {
  const uint64_t fingerprint = rates.Fingerprint();
  MutexLock lock(mu_);
  BindLocked(graph);
  for (auto& [fp, last_used, masses] : masses_) {
    if (fp == fingerprint) {
      last_used = ++tick_;
      return masses;
    }
  }
  // Miss: build under the lock, like Get() — concurrent callers need
  // this same reduction, so blocking them beats building it twice.
  auto masses =
      std::make_shared<const PushMass>(PushMass::Build(graph, rates));
  if (masses_.size() >= kMaxLayouts) {
    auto lru = std::min_element(masses_.begin(), masses_.end(),
                                [](const auto& a, const auto& b) {
                                  return std::get<1>(a) < std::get<1>(b);
                                });
    *lru = {fingerprint, ++tick_, masses};
  } else {
    masses_.emplace_back(fingerprint, ++tick_, masses);
  }
  return masses;
}

size_t FusedWeightCache::size() const {
  MutexLock lock(mu_);
  return layouts_.size();
}

void FusedWeightCache::Clear() {
  MutexLock lock(mu_);
  layouts_.clear();
  partitions_.clear();
  masses_.clear();
  structure_.reset();
}

}  // namespace orx::graph
