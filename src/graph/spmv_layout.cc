#include "graph/spmv_layout.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace orx::graph {

SellStructure::SellStructure(const AuthorityGraph& graph)
    : num_rows(graph.num_nodes()) {
  const std::span<const uint64_t> offsets = graph.in_offsets();
  const std::span<const AuthorityEdge> edges = graph.in_edges();
  const auto degree = [&](uint32_t v) {
    return offsets[v + 1] - offsets[v];
  };

  row_order.resize(num_rows);
  std::iota(row_order.begin(), row_order.end(), 0u);
  // Full-range degree sort (SELL "sigma = n"): chunks group rows of
  // similar length, which keeps the column padding negligible. Stable,
  // so the layout is deterministic.
  std::stable_sort(row_order.begin(), row_order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return degree(a) > degree(b);
                   });

  const size_t chunks = (num_rows + kChunkRows - 1) / kChunkRows;
  chunk_offsets.assign(chunks + 1, 0);
  for (size_t c = 0; c < chunks; ++c) {
    uint64_t longest = 0;
    for (size_t r = 0; r < kChunkRows && c * kChunkRows + r < num_rows; ++r) {
      longest = std::max<uint64_t>(longest,
                                   degree(row_order[c * kChunkRows + r]));
    }
    chunk_offsets[c + 1] = chunk_offsets[c] + longest * kChunkRows;
  }

  sources.assign(chunk_offsets[chunks], 0);
  for (size_t c = 0; c < chunks; ++c) {
    for (size_t r = 0; r < kChunkRows && c * kChunkRows + r < num_rows; ++r) {
      const uint32_t v = row_order[c * kChunkRows + r];
      const uint64_t begin = offsets[v];
      for (uint64_t j = 0; j < degree(v); ++j) {
        // e.target of an in-edge is the *source* u of the edge u -> v.
        sources[chunk_offsets[c] + j * kChunkRows + r] =
            edges[begin + j].target;
      }
    }
  }
}

FusedLayout::FusedLayout(const AuthorityGraph& graph,
                         const TransferRates& rates,
                         std::shared_ptr<const SellStructure> structure)
    : rates_fingerprint_(rates.Fingerprint()) {
  if (structure != nullptr) {
    ORX_CHECK_MSG(structure->num_rows == graph.num_nodes(),
                  "shared SELL structure does not match the graph");
    structure_ = std::move(structure);
  } else {
    structure_ = std::make_shared<const SellStructure>(graph);
  }

  const std::span<const uint64_t> offsets = graph.in_offsets();
  const std::span<const AuthorityEdge> edges = graph.in_edges();
  const SellStructure& s = *structure_;
  weights_.assign(s.padded_slots(), 0.0);
  for (size_t c = 0; c < s.num_chunks(); ++c) {
    for (size_t r = 0;
         r < SellStructure::kChunkRows &&
         c * SellStructure::kChunkRows + r < s.num_rows;
         ++r) {
      const uint32_t v = s.row_order[c * SellStructure::kChunkRows + r];
      const uint64_t begin = offsets[v];
      const uint64_t deg = offsets[v + 1] - begin;
      for (uint64_t j = 0; j < deg; ++j) {
        weights_[s.chunk_offsets[c] + j * SellStructure::kChunkRows + r] =
            AuthorityGraph::EdgeRate(edges[begin + j], rates);
      }
    }
  }
}

std::vector<size_t> BalancedPartition(std::span<const uint64_t> offsets,
                                      size_t parts) {
  ORX_CHECK(!offsets.empty() && parts > 0);
  const size_t n = offsets.size() - 1;
  const uint64_t total = offsets[n];
  std::vector<size_t> bounds(parts + 1, 0);
  for (size_t t = 1; t < parts; ++t) {
    // First item whose prefix covers t/parts of the weight; clamped so
    // boundaries stay monotone when several targets land in one item.
    const uint64_t target = total * t / parts;
    const auto it =
        std::lower_bound(offsets.begin(), offsets.end() - 1, target);
    bounds[t] = std::max<size_t>(
        bounds[t - 1], static_cast<size_t>(it - offsets.begin()));
  }
  bounds[parts] = n;
  return bounds;
}

void FusedWeightCache::BindLocked(const AuthorityGraph& graph) {
  if (graph_ == nullptr) {
    graph_ = &graph;
  } else {
    ORX_CHECK_MSG(graph_ == &graph,
                  "a FusedWeightCache serves exactly one graph");
  }
}

const std::shared_ptr<const SellStructure>& FusedWeightCache::StructureLocked(
    const AuthorityGraph& graph) {
  if (structure_ == nullptr) {
    structure_ = std::make_shared<const SellStructure>(graph);
  }
  return structure_;
}

std::shared_ptr<const FusedLayout> FusedWeightCache::Get(
    const AuthorityGraph& graph, const TransferRates& rates) {
  const uint64_t fingerprint = rates.Fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  BindLocked(graph);
  for (Slot& slot : layouts_) {
    if (slot.fingerprint == fingerprint) {
      slot.last_used = ++tick_;
      return slot.layout;
    }
  }
  // Miss: build under the lock — concurrent callers need this same
  // layout, so blocking them is cheaper than building it twice.
  auto layout = std::make_shared<const FusedLayout>(graph, rates,
                                                    StructureLocked(graph));
  if (layouts_.size() >= kMaxLayouts) {
    auto lru = std::min_element(layouts_.begin(), layouts_.end(),
                                [](const Slot& a, const Slot& b) {
                                  return a.last_used < b.last_used;
                                });
    *lru = Slot{fingerprint, ++tick_, layout};
  } else {
    layouts_.push_back(Slot{fingerprint, ++tick_, layout});
  }
  return layout;
}

std::shared_ptr<const std::vector<size_t>> FusedWeightCache::Partition(
    const AuthorityGraph& graph, size_t parts) {
  std::lock_guard<std::mutex> lock(mu_);
  BindLocked(graph);
  for (const auto& [p, bounds] : partitions_) {
    if (p == parts) return bounds;
  }
  auto bounds = std::make_shared<const std::vector<size_t>>(
      BalancedPartition(StructureLocked(graph)->chunk_offsets, parts));
  partitions_.emplace_back(parts, bounds);
  return bounds;
}

size_t FusedWeightCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return layouts_.size();
}

void FusedWeightCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  layouts_.clear();
  partitions_.clear();
  structure_.reset();
}

}  // namespace orx::graph
