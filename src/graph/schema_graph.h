#ifndef ORX_GRAPH_SCHEMA_GRAPH_H_
#define ORX_GRAPH_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace orx::graph {

/// Identifier of a schema node type (e.g. "Paper", "Author").
using TypeId = uint32_t;

/// Identifier of a schema edge type (e.g. Paper-cites->Paper). Each schema
/// edge induces two authority-transfer directions; see Direction.
using EdgeTypeId = uint32_t;

inline constexpr TypeId kInvalidTypeId = static_cast<TypeId>(-1);
inline constexpr EdgeTypeId kInvalidEdgeTypeId = static_cast<EdgeTypeId>(-1);

/// Orientation of an authority-transfer edge relative to its schema edge.
/// For schema edge e_G = (u -> v): kForward is the u->v transfer edge e_G^f,
/// kBackward is the v->u transfer edge e_G^b (paper, Section 2).
enum class Direction : uint8_t { kForward = 0, kBackward = 1 };

/// Flips kForward <-> kBackward.
inline Direction Reverse(Direction d) {
  return d == Direction::kForward ? Direction::kBackward
                                  : Direction::kForward;
}

/// Index of an (edge type, direction) pair into rate vectors; the layout is
/// [e0^f, e0^b, e1^f, e1^b, ...].
inline uint32_t RateIndex(EdgeTypeId etype, Direction dir) {
  return etype * 2 + static_cast<uint32_t>(dir);
}

/// A directed schema edge u -> v with a role label (e.g. "cites").
struct SchemaEdge {
  TypeId from = kInvalidTypeId;
  TypeId to = kInvalidTypeId;
  std::string role;
};

/// The schema graph G(V_G, E_G) of Section 2: node types connected by
/// labeled directed edge types. It describes the structure that data graphs
/// must conform to.
///
/// SchemaGraph is append-only: types can be added but never removed, so
/// TypeId/EdgeTypeId handles stay valid for the lifetime of the object.
class SchemaGraph {
 public:
  SchemaGraph() = default;

  /// Registers a node type. Fails with kAlreadyExists on duplicate labels.
  StatusOr<TypeId> AddNodeType(std::string label);

  /// Registers a directed edge type `from -> to` with the given role label.
  /// Roles must be unique per (from, to) pair; parallel edge types with
  /// distinct roles are allowed. Fails if either endpoint type is unknown.
  StatusOr<EdgeTypeId> AddEdgeType(TypeId from, TypeId to, std::string role);

  /// Looks up a node type by label; kNotFound if absent.
  StatusOr<TypeId> NodeTypeByLabel(std::string_view label) const;

  /// Looks up an edge type by role label. If several edge types share the
  /// role (between different node types), the first registered wins; use
  /// EdgeTypeBetween for full disambiguation.
  StatusOr<EdgeTypeId> EdgeTypeByRole(std::string_view role) const;

  /// Looks up the edge type `from -> to` with the given role (empty role
  /// matches any single edge type between the pair; ambiguous lookups fail).
  StatusOr<EdgeTypeId> EdgeTypeBetween(TypeId from, TypeId to,
                                       std::string_view role = "") const;

  /// Accessors. Pre: the id is valid.
  const std::string& NodeTypeLabel(TypeId id) const;
  const SchemaEdge& EdgeType(EdgeTypeId id) const;

  size_t num_node_types() const { return node_labels_.size(); }
  size_t num_edge_types() const { return edges_.size(); }

  /// Number of (edge type, direction) slots = 2 * num_edge_types(); the
  /// domain of transfer-rate vectors.
  size_t num_rate_slots() const { return edges_.size() * 2; }

  /// Human-readable name of an (edge type, direction) slot, e.g.
  /// "Paper-cites->Paper" or "Paper-cites->Paper (reverse)".
  std::string RateSlotName(EdgeTypeId etype, Direction dir) const;

  /// The node type an authority-transfer edge of (etype, dir) leaves from:
  /// the schema source for forward edges, the schema target for backward.
  TypeId SourceTypeOf(EdgeTypeId etype, Direction dir) const;

  /// The node type an authority-transfer edge of (etype, dir) points to.
  TypeId TargetTypeOf(EdgeTypeId etype, Direction dir) const;

 private:
  std::vector<std::string> node_labels_;
  std::unordered_map<std::string, TypeId> label_to_type_;
  std::vector<SchemaEdge> edges_;
  std::unordered_map<std::string, EdgeTypeId> role_to_edge_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_SCHEMA_GRAPH_H_
