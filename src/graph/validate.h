#ifndef ORX_GRAPH_VALIDATE_H_
#define ORX_GRAPH_VALIDATE_H_

#include <cstddef>
#include <span>

#include "common/status.h"
#include "graph/authority_graph.h"
#include "graph/spmv_layout.h"

namespace orx::graph {

/// Deep structural validators for the graph-side index structures. Each
/// returns a descriptive non-OK Status on the first violated invariant
/// instead of letting corrupt state turn into out-of-bounds reads or
/// NaNs deep inside a kernel. They are pure read-only passes (O(nodes +
/// edges)) over already-materialized memory, so they are safe to call on
/// arbitrarily corrupt *values* — what they protect against is corrupt
/// content, not wild pointers.
///
/// Callers:
///  * the fuzz harnesses (fuzz/) validate every structure they build
///    from untrusted bytes;
///  * debug builds re-validate after construction via ORX_DCHECK_OK
///    (AuthorityGraph::Build, SellStructure/FusedLayout constructors);
///  * `orx_cli validate <file>` exposes them for on-disk artifacts.

/// Validates one CSR adjacency half against the node universe:
/// offsets has num_nodes + 1 monotone entries starting at 0 and ending
/// at edges.size(); every edge's endpoint is < num_nodes, its
/// inv_out_deg is finite and in (0, 1], and its rate_index is
/// < num_rate_slots (pass SIZE_MAX when the rate universe is unknown).
/// `name` tags messages ("out-adjacency", "in-adjacency").
Status ValidateCsr(std::span<const uint64_t> offsets,
                   std::span<const AuthorityEdge> edges, size_t num_nodes,
                   size_t num_rate_slots, const char* name);

/// Validates both CSR halves of an authority graph plus their
/// cross-consistency: equal edge counts, equal per-node degree totals
/// (out-degree(v) == in-degree(v) in D^A by construction), and an
/// order-independent fingerprint match, so an edge present in one half
/// but not the other is caught without materializing an edge multiset.
Status ValidateInvariants(const AuthorityGraph& graph,
                          size_t num_rate_slots = static_cast<size_t>(-1));

/// Validates a SELL-8 structure: row_order a bijection on [0, num_rows)
/// with node_row its exact inverse, chunk_offsets monotone from 0 with
/// every chunk's padded slot count a multiple of kChunkRows, and
/// sources/sources_row consistent ([i] < num_rows and
/// sources_row[i] == node_row[sources[i]] everywhere).
Status ValidateInvariants(const SellStructure& sell);

/// Validates a fused layout: its structure (above), plus a weight array
/// of exactly padded_slots() finite values in [0, 1] (a fused weight is
/// alpha * inv_out_deg with both factors in [0, 1]).
Status ValidateInvariants(const FusedLayout& layout);

/// Validates every data edge of `data` against its schema: endpoints in
/// range and endpoint node types matching the edge type's declaration.
/// Graphs built through AddNode/AddEdge conform by construction; this is
/// the deep-validation pass for graphs attached from packed (ORXD2)
/// storage, whose edge array is untrusted bytes.
Status ValidateDataEdges(const DataGraph& data);

}  // namespace orx::graph

#endif  // ORX_GRAPH_VALIDATE_H_
