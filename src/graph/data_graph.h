#ifndef ORX_GRAPH_DATA_GRAPH_H_
#define ORX_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"

namespace orx::graph {

/// Identifier of a data-graph node (object).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// One attribute (name/value pair) of a data-graph object; e.g.
/// {"Title", "Data Cube: ..."}.
struct Attribute {
  std::string name;
  std::string value;
};

/// A typed directed data edge u -> v (e.g. a "cites" edge between papers).
struct DataEdge {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  EdgeTypeId type = kInvalidEdgeTypeId;
};

/// The labeled data graph D(V_D, E_D) of Section 2: every node is an object
/// with a type (role), attributes, and a keyword set derived from its
/// attribute values; every edge is typed by a schema edge type.
///
/// The graph conforms-by-construction: AddEdge validates endpoint types
/// against the schema. DataGraph owns the schema by const reference; the
/// schema must outlive the graph.
class DataGraph {
 public:
  explicit DataGraph(const SchemaGraph& schema) : schema_(&schema) {}

  /// Adds an object of the given type with its attributes; returns its id.
  /// Node ids are dense and allocated in insertion order.
  StatusOr<NodeId> AddNode(TypeId type, std::vector<Attribute> attributes);

  /// Adds a typed edge. Fails if the endpoints don't exist or their types
  /// don't match the schema edge type's endpoints. Self-loops are allowed
  /// only when the schema edge connects a type to itself; parallel edges
  /// (same endpoints and type) are rejected by Finalize-time dedup being
  /// disabled — callers must not insert duplicates (checked in debug).
  Status AddEdge(NodeId from, NodeId to, EdgeTypeId type);

  /// Removes one edge (from, to, type). Stable: the relative order of the
  /// remaining edges is preserved, so rebuilt CSR layouts keep the same
  /// edge order for untouched rows. kNotFound if no such edge exists.
  Status RemoveEdge(NodeId from, NodeId to, EdgeTypeId type);

  /// Detaches node `v`: removes every incident edge and clears its
  /// attributes. The id itself remains allocated (an empty husk) so node
  /// ids stay dense and stable — authority layouts and cached rank
  /// vectors index by NodeId. kInvalidArgument if `v` does not exist.
  Status DetachNode(NodeId v);

  /// Replaces the attribute set of `v` (the node's indexed "document").
  /// kInvalidArgument if `v` does not exist.
  Status SetAttributes(NodeId v, std::vector<Attribute> attributes);

  /// Accessors. Pre: `v` is a valid node id.
  TypeId NodeType(NodeId v) const { return node_types_[v]; }
  std::span<const Attribute> Attributes(NodeId v) const;

  /// Concatenated attribute values of `v`, separated by single spaces.
  /// This is the "document" the IR engine indexes for the node, per the
  /// paper: "the keywords appearing in the attribute values comprise the
  /// set of keywords associated with the node".
  std::string Text(NodeId v) const;

  /// Value of the first attribute named `name`, or "" if absent.
  std::string AttributeValue(NodeId v, std::string_view name) const;

  /// A short display label: the first attribute value if any, else
  /// "<TypeLabel>#<id>".
  std::string DisplayLabel(NodeId v) const;

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<DataEdge>& edges() const { return edges_; }
  const SchemaGraph& schema() const { return *schema_; }

  /// Approximate in-memory footprint in bytes (Table 1 "Size" column).
  size_t MemoryFootprintBytes() const;

  /// Reserves storage for the generators (performance only).
  void ReserveNodes(size_t n);
  void ReserveEdges(size_t n);

 private:
  const SchemaGraph* schema_;
  std::vector<TypeId> node_types_;
  // Attribute storage: attrs_ is pooled; node v owns the half-open range
  // [attr_offsets_[v], attr_offsets_[v + 1]).
  std::vector<Attribute> attrs_;
  std::vector<uint32_t> attr_offsets_{0};
  std::vector<DataEdge> edges_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_DATA_GRAPH_H_
