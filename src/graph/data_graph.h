#ifndef ORX_GRAPH_DATA_GRAPH_H_
#define ORX_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/array_ref.h"
#include "common/status.h"
#include "graph/schema_graph.h"

namespace orx::graph {

/// Identifier of a data-graph node (object).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// One attribute (name/value pair) of a data-graph object; e.g.
/// {"Title", "Data Cube: ..."}.
struct Attribute {
  std::string name;
  std::string value;
};

/// One attribute of the zero-copy (packed) representation: offsets into
/// the graph's shared text heap. Trivially copyable so an array of these
/// can live verbatim in an ORXD2 container section.
struct PackedAttribute {
  uint64_t name_off = 0;
  uint64_t value_off = 0;
  uint32_t name_len = 0;
  uint32_t value_len = 0;
};
static_assert(sizeof(PackedAttribute) == 24);

/// A non-owning view of one attribute, valid for the life of the graph.
struct AttributeView {
  std::string_view name;
  std::string_view value;
};

/// An indexable, iterable range of a node's attributes that reads either
/// representation (owned Attribute structs, or PackedAttribute entries
/// over a text heap) and yields AttributeView. Values, not references —
/// callers that need owning strings construct them explicitly.
class AttributeRange {
 public:
  AttributeRange(const Attribute* owned, size_t n) : owned_(owned), n_(n) {}
  AttributeRange(const PackedAttribute* packed, const char* heap, size_t n)
      : packed_(packed), heap_(heap), n_(n) {}

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  AttributeView operator[](size_t i) const {
    if (owned_ != nullptr) return {owned_[i].name, owned_[i].value};
    const PackedAttribute& e = packed_[i];
    return {std::string_view(heap_ + e.name_off, e.name_len),
            std::string_view(heap_ + e.value_off, e.value_len)};
  }

  class Iterator {
   public:
    Iterator(const AttributeRange* range, size_t i) : range_(range), i_(i) {}
    AttributeView operator*() const { return (*range_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return i_ != other.i_; }

   private:
    const AttributeRange* range_;
    size_t i_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, n_); }

 private:
  const Attribute* owned_ = nullptr;
  const PackedAttribute* packed_ = nullptr;
  const char* heap_ = nullptr;
  size_t n_ = 0;
};

/// A typed directed data edge u -> v (e.g. a "cites" edge between papers).
struct DataEdge {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  EdgeTypeId type = kInvalidEdgeTypeId;
};

/// The labeled data graph D(V_D, E_D) of Section 2: every node is an object
/// with a type (role), attributes, and a keyword set derived from its
/// attribute values; every edge is typed by a schema edge type.
///
/// The graph conforms-by-construction: AddEdge validates endpoint types
/// against the schema. DataGraph owns the schema by const reference; the
/// schema must outlive the graph.
///
/// Storage is dual-mode: graphs built through AddNode/AddEdge own plain
/// vectors, while graphs attached from an ORXD2 container (FromPacked)
/// borrow file-backed arrays and a shared text heap zero-copy. Mutating
/// a borrowed graph transparently materializes the touched arrays into
/// owned storage first (ArrayRef copy-on-write), so the live write path
/// works identically on mmap-loaded snapshots.
class DataGraph {
 public:
  explicit DataGraph(const SchemaGraph& schema) : schema_(&schema) {}

  /// Wraps the packed zero-copy representation without copying:
  /// `node_types`, `attr_offsets` (num_nodes + 1 cumulative entries into
  /// `attrs`), the packed attributes with their text heap, and the edge
  /// list. `keepalive` owns the storage behind every span (e.g. an
  /// io::MappedContainer). Validates shapes and that every packed
  /// attribute lies inside the heap (O(nodes + attrs)); edge endpoint /
  /// schema conformance is the caller's deep-validation step
  /// (ValidatePackedEdges in graph/validate.h).
  static StatusOr<DataGraph> FromPacked(
      const SchemaGraph& schema, std::span<const TypeId> node_types,
      std::span<const uint64_t> attr_offsets,
      std::span<const PackedAttribute> attrs, std::span<const char> text_heap,
      std::span<const DataEdge> edges, std::shared_ptr<const void> keepalive);

  /// Adds an object of the given type with its attributes; returns its id.
  /// Node ids are dense and allocated in insertion order.
  StatusOr<NodeId> AddNode(TypeId type, std::vector<Attribute> attributes);

  /// Adds a typed edge. Fails if the endpoints don't exist or their types
  /// don't match the schema edge type's endpoints. Self-loops are allowed
  /// only when the schema edge connects a type to itself; parallel edges
  /// (same endpoints and type) are rejected by Finalize-time dedup being
  /// disabled — callers must not insert duplicates (checked in debug).
  Status AddEdge(NodeId from, NodeId to, EdgeTypeId type);

  /// Removes one edge (from, to, type). Stable: the relative order of the
  /// remaining edges is preserved, so rebuilt CSR layouts keep the same
  /// edge order for untouched rows. kNotFound if no such edge exists.
  Status RemoveEdge(NodeId from, NodeId to, EdgeTypeId type);

  /// Detaches node `v`: removes every incident edge and clears its
  /// attributes. The id itself remains allocated (an empty husk) so node
  /// ids stay dense and stable — authority layouts and cached rank
  /// vectors index by NodeId. kInvalidArgument if `v` does not exist.
  Status DetachNode(NodeId v);

  /// Replaces the attribute set of `v` (the node's indexed "document").
  /// kInvalidArgument if `v` does not exist.
  Status SetAttributes(NodeId v, std::vector<Attribute> attributes);

  /// Accessors. Pre: `v` is a valid node id.
  TypeId NodeType(NodeId v) const { return node_types_[v]; }
  AttributeRange Attributes(NodeId v) const;

  /// Concatenated attribute values of `v`, separated by single spaces.
  /// This is the "document" the IR engine indexes for the node, per the
  /// paper: "the keywords appearing in the attribute values comprise the
  /// set of keywords associated with the node".
  std::string Text(NodeId v) const;

  /// Value of the first attribute named `name`, or "" if absent.
  std::string AttributeValue(NodeId v, std::string_view name) const;

  /// A short display label: the first attribute value if any, else
  /// "<TypeLabel>#<id>".
  std::string DisplayLabel(NodeId v) const;

  size_t num_nodes() const { return node_types_.size(); }
  size_t num_edges() const { return edges_.size(); }
  std::span<const DataEdge> edges() const { return edges_; }
  const SchemaGraph& schema() const { return *schema_; }

  /// Raw views of the storage, in packed form, for the ORXD2 container
  /// writer. PackAttributes materializes the packed representation from
  /// owned storage (or returns views of the borrowed one).
  std::span<const TypeId> node_types() const { return node_types_; }
  struct PackedAttributes {
    std::vector<uint64_t> offsets;
    std::vector<PackedAttribute> attrs;
    std::string heap;
    /// Set instead of the vectors above when the graph already borrows a
    /// packed representation (the vectors are then empty).
    std::span<const uint64_t> offsets_view;
    std::span<const PackedAttribute> attrs_view;
    std::span<const char> heap_view;
  };
  PackedAttributes PackAttributes() const;

  /// Approximate in-memory footprint in bytes (Table 1 "Size" column).
  /// Borrowed (mmap-backed) storage counts as resident.
  size_t MemoryFootprintBytes() const;

  /// Reserves storage for the generators (performance only).
  void ReserveNodes(size_t n);
  void ReserveEdges(size_t n);

 private:
  /// Copies a borrowed packed attribute representation into owned
  /// Attribute storage so mutation can proceed; no-op when already owned.
  void EnsureOwnedAttributes();

  const SchemaGraph* schema_;
  ArrayRef<TypeId> node_types_;
  // Owned attribute storage: attrs_ is pooled; node v owns the half-open
  // range [attr_offsets_[v], attr_offsets_[v + 1]).
  std::vector<Attribute> attrs_;
  std::vector<uint32_t> attr_offsets_{0};
  // Packed (borrowed) attribute storage; active iff attrs_packed_.
  bool attrs_packed_ = false;
  std::span<const uint64_t> packed_offsets_;
  std::span<const PackedAttribute> packed_attrs_;
  std::span<const char> heap_;
  std::shared_ptr<const void> keepalive_;
  ArrayRef<DataEdge> edges_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_DATA_GRAPH_H_
