#include "graph/validate.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

namespace orx::graph {
namespace {

Status Violation(const std::string& message) {
  return InternalError("invariant violation: " + message);
}

/// splitmix64 finalizer — mixes one canonical edge tuple into a 64-bit
/// value whose sum over all edges is order-independent.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Commutative fingerprint of an edge (u -> v, inv_out_deg, rate_index),
/// independent of storage order. Both CSR halves describe the same edge
/// multiset in canonical (source, target) form, so their sums must match.
uint64_t EdgeFingerprint(uint64_t u, uint64_t v, float inv, uint32_t rate) {
  uint32_t inv_bits;
  static_assert(sizeof(inv_bits) == sizeof(inv));
  __builtin_memcpy(&inv_bits, &inv, sizeof(inv_bits));
  uint64_t h = Mix(u << 1);
  h ^= Mix((v << 1) | 1);
  h ^= Mix((uint64_t{inv_bits} << 32) | rate);
  return Mix(h);
}

}  // namespace

Status ValidateCsr(std::span<const uint64_t> offsets,
                   std::span<const AuthorityEdge> edges, size_t num_nodes,
                   size_t num_rate_slots, const char* name) {
  std::ostringstream msg;
  if (offsets.size() != num_nodes + 1) {
    msg << name << ": offsets has " << offsets.size() << " entries, want "
        << num_nodes + 1;
    return Violation(msg.str());
  }
  if (offsets[0] != 0) {
    msg << name << ": offsets[0] is " << offsets[0] << ", want 0";
    return Violation(msg.str());
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      msg << name << ": offsets not monotone at node " << v << " ("
          << offsets[v + 1] << " < " << offsets[v] << ")";
      return Violation(msg.str());
    }
  }
  if (offsets[num_nodes] != edges.size()) {
    msg << name << ": offsets end at " << offsets[num_nodes] << " but "
        << edges.size() << " edges are stored";
    return Violation(msg.str());
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    const AuthorityEdge& e = edges[i];
    if (e.target >= num_nodes) {
      msg << name << ": edge " << i << " endpoint " << e.target
          << " out of range (num_nodes " << num_nodes << ")";
      return Violation(msg.str());
    }
    if (!std::isfinite(e.inv_out_deg) || e.inv_out_deg <= 0.0f ||
        e.inv_out_deg > 1.0f) {
      msg << name << ": edge " << i << " inv_out_deg " << e.inv_out_deg
          << " outside (0, 1]";
      return Violation(msg.str());
    }
    if (e.rate_index >= num_rate_slots) {
      msg << name << ": edge " << i << " rate_index " << e.rate_index
          << " out of range (num_rate_slots " << num_rate_slots << ")";
      return Violation(msg.str());
    }
  }
  return Status::OK();
}

Status ValidateInvariants(const AuthorityGraph& graph, size_t num_rate_slots) {
  const size_t n = graph.num_nodes();
  ORX_RETURN_IF_ERROR(ValidateCsr(graph.out_offsets(), graph.out_edges(), n,
                                  num_rate_slots, "out-adjacency"));
  ORX_RETURN_IF_ERROR(ValidateCsr(graph.in_offsets(), graph.in_edges(), n,
                                  num_rate_slots, "in-adjacency"));
  std::ostringstream msg;
  if (graph.out_edges().size() != graph.in_edges().size()) {
    msg << "adjacency halves disagree on edge count ("
        << graph.out_edges().size() << " out vs. " << graph.in_edges().size()
        << " in)";
    return Violation(msg.str());
  }
  // Every data edge (u -> v) contributes one authority out-edge at each
  // endpoint (forward at u, backward at v) and symmetrically one in-edge
  // at each, so out-degree(v) == in-degree(v) == data-degree(v).
  for (size_t v = 0; v < n; ++v) {
    const uint64_t out_deg = graph.out_offsets()[v + 1] - graph.out_offsets()[v];
    const uint64_t in_deg = graph.in_offsets()[v + 1] - graph.in_offsets()[v];
    if (out_deg != in_deg) {
      msg << "node " << v << " has out-degree " << out_deg
          << " but in-degree " << in_deg;
      return Violation(msg.str());
    }
  }
  // Order-independent fingerprint over each half's edge multiset in
  // canonical (source, target) form: an out-edge at u targets v; an
  // in-edge at v names its source u in `target`. An edge present in one
  // half but missing or altered in the other breaks the sums' equality.
  uint64_t out_sum = 0, in_sum = 0;
  for (size_t v = 0; v < n; ++v) {
    for (const AuthorityEdge& e : graph.OutEdges(static_cast<NodeId>(v))) {
      out_sum += EdgeFingerprint(v, e.target, e.inv_out_deg, e.rate_index);
    }
    for (const AuthorityEdge& e : graph.InEdges(static_cast<NodeId>(v))) {
      in_sum += EdgeFingerprint(e.target, v, e.inv_out_deg, e.rate_index);
    }
  }
  if (out_sum != in_sum) {
    return Violation(
        "adjacency halves store different edge multisets "
        "(order-independent fingerprints disagree)");
  }
  return Status::OK();
}

Status ValidateInvariants(const SellStructure& sell) {
  std::ostringstream msg;
  const size_t n = sell.num_rows;
  if (sell.row_order.size() != n || sell.node_row.size() != n) {
    msg << "SELL: row_order/node_row have " << sell.row_order.size() << "/"
        << sell.node_row.size() << " entries, want num_rows " << n;
    return Violation(msg.str());
  }
  // node_row being an exact left inverse of row_order over [0, n) forces
  // row_order to be injective, hence a bijection on [0, n).
  for (size_t r = 0; r < n; ++r) {
    const uint32_t node = sell.row_order[r];
    if (node >= n) {
      msg << "SELL: row_order[" << r << "] = " << node
          << " out of range (num_rows " << n << ")";
      return Violation(msg.str());
    }
    if (sell.node_row[node] != r) {
      msg << "SELL: row_order is not a bijection (node_row[row_order[" << r
          << "]] = " << sell.node_row[node] << ")";
      return Violation(msg.str());
    }
  }
  const size_t want_chunks = (n + SellStructure::kChunkRows - 1) /
                             SellStructure::kChunkRows;
  if (sell.chunk_offsets.size() != want_chunks + 1) {
    msg << "SELL: " << sell.chunk_offsets.size() - 1 << " chunks for " << n
        << " rows, want " << want_chunks;
    return Violation(msg.str());
  }
  if (sell.chunk_offsets[0] != 0) {
    msg << "SELL: chunk_offsets[0] is " << sell.chunk_offsets[0]
        << ", want 0";
    return Violation(msg.str());
  }
  for (size_t c = 0; c < want_chunks; ++c) {
    if (sell.chunk_offsets[c + 1] < sell.chunk_offsets[c]) {
      msg << "SELL: chunk_offsets not monotone at chunk " << c;
      return Violation(msg.str());
    }
    const uint64_t slots = sell.chunk_offsets[c + 1] - sell.chunk_offsets[c];
    if (slots % SellStructure::kChunkRows != 0) {
      msg << "SELL: chunk " << c << " holds " << slots
          << " slots, not a multiple of " << SellStructure::kChunkRows;
      return Violation(msg.str());
    }
  }
  const uint64_t padded = sell.chunk_offsets.back();
  if (sell.sources.size() != padded || sell.sources_row.size() != padded) {
    msg << "SELL: sources/sources_row have " << sell.sources.size() << "/"
        << sell.sources_row.size() << " slots, want padded_slots " << padded;
    return Violation(msg.str());
  }
  for (uint64_t slot = 0; slot < padded; ++slot) {
    const uint32_t src = sell.sources[slot];
    if (src >= n) {
      msg << "SELL: sources[" << slot << "] = " << src
          << " out of range (num_rows " << n << ")";
      return Violation(msg.str());
    }
    if (sell.sources_row[slot] != sell.node_row[src]) {
      msg << "SELL: sources_row[" << slot << "] = " << sell.sources_row[slot]
          << " but node_row[sources[" << slot << "]] = "
          << sell.node_row[src];
      return Violation(msg.str());
    }
  }
  return Status::OK();
}

Status ValidateInvariants(const FusedLayout& layout) {
  ORX_RETURN_IF_ERROR(ValidateInvariants(layout.structure()));
  std::ostringstream msg;
  std::span<const double> weights = layout.weight_span();
  if (weights.size() != layout.structure().padded_slots()) {
    msg << "fused layout: " << weights.size() << " weights for "
        << layout.structure().padded_slots() << " padded slots";
    return Violation(msg.str());
  }
  // A fused weight is alpha(rate_index) * inv_out_deg with alpha in
  // [0, 1] and inv_out_deg in (0, 1]; padding slots hold exactly 0.0.
  for (size_t slot = 0; slot < weights.size(); ++slot) {
    const double w = weights[slot];
    if (!std::isfinite(w) || w < 0.0 || w > 1.0) {
      msg << "fused layout: weight[" << slot << "] = " << w
          << " outside [0, 1]";
      return Violation(msg.str());
    }
  }
  return Status::OK();
}

Status ValidateDataEdges(const DataGraph& data) {
  const SchemaGraph& schema = data.schema();
  const size_t n = data.num_nodes();
  std::ostringstream msg;
  for (NodeId v = 0; v < n; ++v) {
    if (data.NodeType(v) >= schema.num_node_types()) {
      msg << "data graph: node " << v << " has type " << data.NodeType(v)
          << ", schema has " << schema.num_node_types() << " types";
      return Violation(msg.str());
    }
  }
  size_t i = 0;
  for (const DataEdge& e : data.edges()) {
    if (e.from >= n || e.to >= n) {
      msg << "data graph: edge " << i << " endpoint out of range";
      return Violation(msg.str());
    }
    if (e.type >= schema.num_edge_types()) {
      msg << "data graph: edge " << i << " has unknown type " << e.type;
      return Violation(msg.str());
    }
    const SchemaEdge& se = schema.EdgeType(e.type);
    if (data.NodeType(e.from) != se.from || data.NodeType(e.to) != se.to) {
      msg << "data graph: edge " << i << " (" << e.from << " -> " << e.to
          << ", type " << e.type << ") violates the schema declaration";
      return Violation(msg.str());
    }
    ++i;
  }
  return Status::OK();
}

}  // namespace orx::graph
