#include "graph/authority_graph.h"

#include "common/check.h"
#include "graph/validate.h"

namespace orx::graph {

AuthorityGraph AuthorityGraph::Build(const DataGraph& data) {
  const size_t n = data.num_nodes();
  const size_t num_etypes = data.schema().num_edge_types();

  // Per-node, per-edge-type degree counts in each direction.
  //   fwd_deg[v * num_etypes + t] = # data edges v -> * of type t
  //   bwd_deg[v * num_etypes + t] = # data edges * -> v of type t
  // OutDeg(v, (t, kForward)) = fwd_deg; OutDeg(v, (t, kBackward)) = bwd_deg
  // (a backward authority edge leaves the data edge's *head*).
  std::vector<uint32_t> fwd_deg(n * num_etypes, 0);
  std::vector<uint32_t> bwd_deg(n * num_etypes, 0);
  for (const DataEdge& e : data.edges()) {
    ++fwd_deg[static_cast<size_t>(e.from) * num_etypes + e.type];
    ++bwd_deg[static_cast<size_t>(e.to) * num_etypes + e.type];
  }

  AuthorityGraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);

  // Each data edge (u -> v) produces authority edges u -> v (forward slot)
  // and v -> u (backward slot); so in D^A, out-degree(v) == in-degree(v) ==
  // total data-degree(v).
  for (const DataEdge& e : data.edges()) {
    ++g.out_offsets_[e.from + 1];  // forward edge leaves u
    ++g.out_offsets_[e.to + 1];    // backward edge leaves v
    ++g.in_offsets_[e.to + 1];     // forward edge enters v
    ++g.in_offsets_[e.from + 1];   // backward edge enters u
  }
  for (size_t v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_edges_.resize(g.out_offsets_[n]);
  g.in_edges_.resize(g.in_offsets_[n]);

  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);

  for (const DataEdge& e : data.edges()) {
    const uint32_t fdeg =
        fwd_deg[static_cast<size_t>(e.from) * num_etypes + e.type];
    const uint32_t bdeg =
        bwd_deg[static_cast<size_t>(e.to) * num_etypes + e.type];
    ORX_DCHECK(fdeg > 0 && bdeg > 0);
    const float inv_f = 1.0f / static_cast<float>(fdeg);
    const float inv_b = 1.0f / static_cast<float>(bdeg);
    const uint32_t slot_f = RateIndex(e.type, Direction::kForward);
    const uint32_t slot_b = RateIndex(e.type, Direction::kBackward);

    // Forward authority edge u -> v.
    g.out_edges_[out_cursor[e.from]++] = AuthorityEdge{e.to, inv_f, slot_f};
    g.in_edges_[in_cursor[e.to]++] = AuthorityEdge{e.from, inv_f, slot_f};
    // Backward authority edge v -> u.
    g.out_edges_[out_cursor[e.to]++] = AuthorityEdge{e.from, inv_b, slot_b};
    g.in_edges_[in_cursor[e.from]++] = AuthorityEdge{e.to, inv_b, slot_b};
  }

  for (size_t v = 0; v < n; ++v) {
    ORX_DCHECK(out_cursor[v] == g.out_offsets_[v + 1]);
    ORX_DCHECK(in_cursor[v] == g.in_offsets_[v + 1]);
  }
  ORX_DCHECK_OK(ValidateInvariants(g, /*num_rate_slots=*/num_etypes * 2));
  return g;
}

}  // namespace orx::graph
