#include "graph/authority_graph.h"

#include <utility>

#include "common/check.h"
#include "graph/validate.h"

namespace orx::graph {

AuthorityGraph AuthorityGraph::Build(const DataGraph& data) {
  const size_t n = data.num_nodes();
  const size_t num_etypes = data.schema().num_edge_types();

  // Per-node, per-edge-type degree counts in each direction.
  //   fwd_deg[v * num_etypes + t] = # data edges v -> * of type t
  //   bwd_deg[v * num_etypes + t] = # data edges * -> v of type t
  // OutDeg(v, (t, kForward)) = fwd_deg; OutDeg(v, (t, kBackward)) = bwd_deg
  // (a backward authority edge leaves the data edge's *head*).
  std::vector<uint32_t> fwd_deg(n * num_etypes, 0);
  std::vector<uint32_t> bwd_deg(n * num_etypes, 0);
  for (const DataEdge& e : data.edges()) {
    ++fwd_deg[static_cast<size_t>(e.from) * num_etypes + e.type];
    ++bwd_deg[static_cast<size_t>(e.to) * num_etypes + e.type];
  }

  std::vector<uint64_t> out_offsets(n + 1, 0);
  std::vector<uint64_t> in_offsets(n + 1, 0);

  // Each data edge (u -> v) produces authority edges u -> v (forward slot)
  // and v -> u (backward slot); so in D^A, out-degree(v) == in-degree(v) ==
  // total data-degree(v).
  for (const DataEdge& e : data.edges()) {
    ++out_offsets[e.from + 1];  // forward edge leaves u
    ++out_offsets[e.to + 1];    // backward edge leaves v
    ++in_offsets[e.to + 1];     // forward edge enters v
    ++in_offsets[e.from + 1];   // backward edge enters u
  }
  for (size_t v = 0; v < n; ++v) {
    out_offsets[v + 1] += out_offsets[v];
    in_offsets[v + 1] += in_offsets[v];
  }
  std::vector<AuthorityEdge> out_edges(out_offsets[n]);
  std::vector<AuthorityEdge> in_edges(in_offsets[n]);

  std::vector<uint64_t> out_cursor(out_offsets.begin(),
                                   out_offsets.end() - 1);
  std::vector<uint64_t> in_cursor(in_offsets.begin(), in_offsets.end() - 1);

  for (const DataEdge& e : data.edges()) {
    const uint32_t fdeg =
        fwd_deg[static_cast<size_t>(e.from) * num_etypes + e.type];
    const uint32_t bdeg =
        bwd_deg[static_cast<size_t>(e.to) * num_etypes + e.type];
    ORX_DCHECK(fdeg > 0 && bdeg > 0);
    const float inv_f = 1.0f / static_cast<float>(fdeg);
    const float inv_b = 1.0f / static_cast<float>(bdeg);
    const uint32_t slot_f = RateIndex(e.type, Direction::kForward);
    const uint32_t slot_b = RateIndex(e.type, Direction::kBackward);

    // Forward authority edge u -> v.
    out_edges[out_cursor[e.from]++] = AuthorityEdge{e.to, inv_f, slot_f};
    in_edges[in_cursor[e.to]++] = AuthorityEdge{e.from, inv_f, slot_f};
    // Backward authority edge v -> u.
    out_edges[out_cursor[e.to]++] = AuthorityEdge{e.from, inv_b, slot_b};
    in_edges[in_cursor[e.from]++] = AuthorityEdge{e.to, inv_b, slot_b};
  }

  for (size_t v = 0; v < n; ++v) {
    ORX_DCHECK(out_cursor[v] == out_offsets[v + 1]);
    ORX_DCHECK(in_cursor[v] == in_offsets[v + 1]);
  }

  AuthorityGraph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_edges_ = std::move(out_edges);
  g.in_offsets_ = std::move(in_offsets);
  g.in_edges_ = std::move(in_edges);
  ORX_DCHECK_OK(ValidateInvariants(g, /*num_rate_slots=*/num_etypes * 2));
  return g;
}

StatusOr<AuthorityGraph> AuthorityGraph::FromParts(
    std::span<const uint64_t> out_offsets,
    std::span<const AuthorityEdge> out_edges,
    std::span<const uint64_t> in_offsets,
    std::span<const AuthorityEdge> in_edges,
    std::shared_ptr<const void> keepalive) {
  if (out_offsets.empty() || out_offsets.size() != in_offsets.size()) {
    return DataLossError("authority CSR offset arrays are malformed");
  }
  if (out_offsets.front() != 0 || in_offsets.front() != 0 ||
      out_offsets.back() != out_edges.size() ||
      in_offsets.back() != in_edges.size() ||
      out_edges.size() != in_edges.size()) {
    return DataLossError("authority CSR offsets do not cover the edges");
  }
  for (size_t v = 0; v + 1 < out_offsets.size(); ++v) {
    if (out_offsets[v] > out_offsets[v + 1] ||
        in_offsets[v] > in_offsets[v + 1]) {
      return DataLossError("authority CSR offsets are not monotonic");
    }
  }
  AuthorityGraph g;
  g.out_offsets_ = ArrayRef<uint64_t>::Borrowed(out_offsets, keepalive);
  g.out_edges_ = ArrayRef<AuthorityEdge>::Borrowed(out_edges, keepalive);
  g.in_offsets_ = ArrayRef<uint64_t>::Borrowed(in_offsets, keepalive);
  g.in_edges_ = ArrayRef<AuthorityEdge>::Borrowed(in_edges,
                                                  std::move(keepalive));
  return g;
}

}  // namespace orx::graph
