#include "graph/schema_graph.h"

#include "common/check.h"

namespace orx::graph {

StatusOr<TypeId> SchemaGraph::AddNodeType(std::string label) {
  if (label.empty()) {
    return InvalidArgumentError("node type label must be non-empty");
  }
  if (label_to_type_.count(label) > 0) {
    return AlreadyExistsError("node type already registered: " + label);
  }
  TypeId id = static_cast<TypeId>(node_labels_.size());
  label_to_type_.emplace(label, id);
  node_labels_.push_back(std::move(label));
  return id;
}

StatusOr<EdgeTypeId> SchemaGraph::AddEdgeType(TypeId from, TypeId to,
                                              std::string role) {
  if (from >= node_labels_.size() || to >= node_labels_.size()) {
    return InvalidArgumentError("edge type endpoint is not a known node type");
  }
  if (role.empty()) {
    // Default role: "<From>To<To>", unique only if no explicit role exists
    // between the pair; mirrors the paper's "role may be omitted" rule.
    role = node_labels_[from] + "To" + node_labels_[to];
  }
  for (const SchemaEdge& e : edges_) {
    if (e.from == from && e.to == to && e.role == role) {
      return AlreadyExistsError("edge type already registered: " + role);
    }
  }
  EdgeTypeId id = static_cast<EdgeTypeId>(edges_.size());
  edges_.push_back(SchemaEdge{from, to, role});
  role_to_edge_.emplace(std::move(role), id);
  return id;
}

StatusOr<TypeId> SchemaGraph::NodeTypeByLabel(std::string_view label) const {
  auto it = label_to_type_.find(std::string(label));
  if (it == label_to_type_.end()) {
    return NotFoundError("unknown node type: " + std::string(label));
  }
  return it->second;
}

StatusOr<EdgeTypeId> SchemaGraph::EdgeTypeByRole(std::string_view role) const {
  auto it = role_to_edge_.find(std::string(role));
  if (it == role_to_edge_.end()) {
    return NotFoundError("unknown edge role: " + std::string(role));
  }
  return it->second;
}

StatusOr<EdgeTypeId> SchemaGraph::EdgeTypeBetween(TypeId from, TypeId to,
                                                  std::string_view role) const {
  EdgeTypeId found = kInvalidEdgeTypeId;
  for (EdgeTypeId id = 0; id < edges_.size(); ++id) {
    const SchemaEdge& e = edges_[id];
    if (e.from != from || e.to != to) continue;
    if (!role.empty() && e.role != role) continue;
    if (found != kInvalidEdgeTypeId) {
      return InvalidArgumentError(
          "ambiguous edge type lookup; specify a role");
    }
    found = id;
  }
  if (found == kInvalidEdgeTypeId) {
    return NotFoundError("no such edge type between the given node types");
  }
  return found;
}

const std::string& SchemaGraph::NodeTypeLabel(TypeId id) const {
  ORX_CHECK_LT(id, node_labels_.size());
  return node_labels_[id];
}

const SchemaEdge& SchemaGraph::EdgeType(EdgeTypeId id) const {
  ORX_CHECK_LT(id, edges_.size());
  return edges_[id];
}

std::string SchemaGraph::RateSlotName(EdgeTypeId etype, Direction dir) const {
  const SchemaEdge& e = EdgeType(etype);
  std::string name = node_labels_[e.from] + "-" + e.role + "->" +
                     node_labels_[e.to];
  if (dir == Direction::kBackward) name += " (reverse)";
  return name;
}

TypeId SchemaGraph::SourceTypeOf(EdgeTypeId etype, Direction dir) const {
  const SchemaEdge& e = EdgeType(etype);
  return dir == Direction::kForward ? e.from : e.to;
}

TypeId SchemaGraph::TargetTypeOf(EdgeTypeId etype, Direction dir) const {
  const SchemaEdge& e = EdgeType(etype);
  return dir == Direction::kForward ? e.to : e.from;
}

}  // namespace orx::graph
