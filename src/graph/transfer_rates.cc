#include "graph/transfer_rates.h"

#include <cstring>

#include "common/check.h"
#include "common/strings.h"

namespace orx::graph {

TransferRates::TransferRates(const SchemaGraph& schema, double initial)
    : rates_(schema.num_rate_slots(), initial) {
  ORX_CHECK(initial >= 0.0 && initial <= 1.0);
}

Status TransferRates::Set(EdgeTypeId etype, Direction dir, double rate) {
  uint32_t idx = RateIndex(etype, dir);
  if (idx >= rates_.size()) {
    return InvalidArgumentError("unknown edge type");
  }
  if (rate < 0.0 || rate > 1.0) {
    return InvalidArgumentError("transfer rate must be in [0, 1]");
  }
  rates_[idx] = rate;
  return Status::OK();
}

Status TransferRates::SetBoth(EdgeTypeId etype, double forward,
                              double backward) {
  ORX_RETURN_IF_ERROR(Set(etype, Direction::kForward, forward));
  return Set(etype, Direction::kBackward, backward);
}

double TransferRates::OutgoingSum(const SchemaGraph& schema,
                                  TypeId type) const {
  double sum = 0.0;
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    for (Direction dir : {Direction::kForward, Direction::kBackward}) {
      if (schema.SourceTypeOf(e, dir) == type) {
        sum += rates_[RateIndex(e, dir)];
      }
    }
  }
  return sum;
}

int TransferRates::CapOutgoingSums(const SchemaGraph& schema) {
  int scaled = 0;
  for (TypeId t = 0; t < schema.num_node_types(); ++t) {
    double sum = OutgoingSum(schema, t);
    if (sum <= 1.0) continue;
    ++scaled;
    double factor = 1.0 / sum;
    for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
      for (Direction dir : {Direction::kForward, Direction::kBackward}) {
        if (schema.SourceTypeOf(e, dir) == t) {
          rates_[RateIndex(e, dir)] *= factor;
        }
      }
    }
  }
  return scaled;
}

uint64_t TransferRates::Fingerprint() const {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (double rate : rates_) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(rate));
    std::memcpy(&bits, &rate, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      hash ^= (bits >> (8 * i)) & 0xFF;
      hash *= 1099511628211ull;  // FNV prime
    }
  }
  return hash;
}

std::string TransferRates::ToString(const SchemaGraph& schema) const {
  std::vector<std::string> parts;
  for (EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    for (Direction dir : {Direction::kForward, Direction::kBackward}) {
      parts.push_back(schema.RateSlotName(e, dir) + "=" +
                      FormatDouble(rates_[RateIndex(e, dir)], 3));
    }
  }
  return StrJoin(parts, ", ");
}

}  // namespace orx::graph
