#include "graph/data_graph.h"

#include <utility>

#include "common/check.h"

namespace orx::graph {

StatusOr<DataGraph> DataGraph::FromPacked(
    const SchemaGraph& schema, std::span<const TypeId> node_types,
    std::span<const uint64_t> attr_offsets,
    std::span<const PackedAttribute> attrs, std::span<const char> text_heap,
    std::span<const DataEdge> edges, std::shared_ptr<const void> keepalive) {
  if (attr_offsets.size() != node_types.size() + 1) {
    return DataLossError("packed attr_offsets count does not match nodes");
  }
  if (attr_offsets.front() != 0 ||
      attr_offsets.back() != attrs.size()) {
    return DataLossError("packed attr_offsets do not cover the attrs");
  }
  for (size_t i = 0; i + 1 < attr_offsets.size(); ++i) {
    if (attr_offsets[i] > attr_offsets[i + 1]) {
      return DataLossError("packed attr_offsets are not monotonic");
    }
  }
  const uint64_t heap_size = text_heap.size();
  for (const PackedAttribute& a : attrs) {
    // Offsets are checked against the heap with subtraction, not
    // addition, so a hostile off + len cannot wrap around.
    if (a.name_off > heap_size || a.name_len > heap_size - a.name_off ||
        a.value_off > heap_size || a.value_len > heap_size - a.value_off) {
      return DataLossError("packed attribute points outside the text heap");
    }
  }
  for (const TypeId t : node_types) {
    if (t >= schema.num_node_types()) {
      return DataLossError("packed node type out of schema range");
    }
  }
  DataGraph g(schema);
  g.node_types_ =
      ArrayRef<TypeId>::Borrowed(node_types, keepalive);
  g.attrs_packed_ = true;
  g.packed_offsets_ = attr_offsets;
  g.packed_attrs_ = attrs;
  g.heap_ = text_heap;
  g.edges_ = ArrayRef<DataEdge>::Borrowed(edges, keepalive);
  g.keepalive_ = std::move(keepalive);
  return g;
}

void DataGraph::EnsureOwnedAttributes() {
  if (!attrs_packed_) return;
  attrs_.clear();
  attrs_.reserve(packed_attrs_.size());
  attr_offsets_.clear();
  attr_offsets_.reserve(packed_offsets_.size());
  for (const uint64_t off : packed_offsets_) {
    attr_offsets_.push_back(static_cast<uint32_t>(off));
  }
  for (const PackedAttribute& a : packed_attrs_) {
    attrs_.push_back(Attribute{
        std::string(heap_.data() + a.name_off, a.name_len),
        std::string(heap_.data() + a.value_off, a.value_len)});
  }
  attrs_packed_ = false;
  packed_offsets_ = {};
  packed_attrs_ = {};
  heap_ = {};
}

StatusOr<NodeId> DataGraph::AddNode(TypeId type,
                                    std::vector<Attribute> attributes) {
  if (type >= schema_->num_node_types()) {
    return InvalidArgumentError("unknown node type id");
  }
  EnsureOwnedAttributes();
  NodeId id = static_cast<NodeId>(node_types_.size());
  node_types_.mut().push_back(type);
  for (auto& attr : attributes) attrs_.push_back(std::move(attr));
  attr_offsets_.push_back(static_cast<uint32_t>(attrs_.size()));
  return id;
}

Status DataGraph::AddEdge(NodeId from, NodeId to, EdgeTypeId type) {
  if (from >= node_types_.size() || to >= node_types_.size()) {
    return InvalidArgumentError("edge endpoint does not exist");
  }
  if (type >= schema_->num_edge_types()) {
    return InvalidArgumentError("unknown edge type id");
  }
  const SchemaEdge& se = schema_->EdgeType(type);
  if (node_types_[from] != se.from || node_types_[to] != se.to) {
    return InvalidArgumentError(
        "edge endpoints do not conform to schema edge type '" + se.role +
        "'");
  }
  if (from == to) {
    return InvalidArgumentError("self-loop data edges are not supported");
  }
  edges_.mut().push_back(DataEdge{from, to, type});
  return Status::OK();
}

Status DataGraph::RemoveEdge(NodeId from, NodeId to, EdgeTypeId type) {
  std::vector<DataEdge>& edges = edges_.mut();
  for (size_t i = 0; i < edges.size(); ++i) {
    const DataEdge& e = edges[i];
    if (e.from == from && e.to == to && e.type == type) {
      edges.erase(edges.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return NotFoundError("no such edge");
}

Status DataGraph::DetachNode(NodeId v) {
  if (v >= node_types_.size()) {
    return InvalidArgumentError("node does not exist");
  }
  std::erase_if(edges_.mut(),
                [v](const DataEdge& e) { return e.from == v || e.to == v; });
  return SetAttributes(v, {});
}

Status DataGraph::SetAttributes(NodeId v, std::vector<Attribute> attributes) {
  if (v >= node_types_.size()) {
    return InvalidArgumentError("node does not exist");
  }
  EnsureOwnedAttributes();
  const uint32_t begin = attr_offsets_[v];
  const uint32_t end = attr_offsets_[v + 1];
  const int64_t delta =
      static_cast<int64_t>(attributes.size()) - (end - begin);
  attrs_.erase(attrs_.begin() + begin, attrs_.begin() + end);
  attrs_.insert(attrs_.begin() + begin,
                std::make_move_iterator(attributes.begin()),
                std::make_move_iterator(attributes.end()));
  for (size_t i = v + 1; i < attr_offsets_.size(); ++i) {
    attr_offsets_[i] = static_cast<uint32_t>(attr_offsets_[i] + delta);
  }
  return Status::OK();
}

AttributeRange DataGraph::Attributes(NodeId v) const {
  ORX_CHECK_LT(v, node_types_.size());
  if (attrs_packed_) {
    const uint64_t begin = packed_offsets_[v];
    const uint64_t end = packed_offsets_[v + 1];
    return AttributeRange(packed_attrs_.data() + begin, heap_.data(),
                          end - begin);
  }
  uint32_t begin = attr_offsets_[v];
  uint32_t end = attr_offsets_[v + 1];
  return AttributeRange(attrs_.data() + begin, end - begin);
}

std::string DataGraph::Text(NodeId v) const {
  std::string out;
  for (const AttributeView a : Attributes(v)) {
    if (!out.empty()) out += ' ';
    out += a.value;
  }
  return out;
}

std::string DataGraph::AttributeValue(NodeId v, std::string_view name) const {
  for (const AttributeView a : Attributes(v)) {
    if (a.name == name) return std::string(a.value);
  }
  return "";
}

std::string DataGraph::DisplayLabel(NodeId v) const {
  auto attrs = Attributes(v);
  if (!attrs.empty()) return std::string(attrs[0].value);
  return schema_->NodeTypeLabel(node_types_[v]) + "#" + std::to_string(v);
}

DataGraph::PackedAttributes DataGraph::PackAttributes() const {
  PackedAttributes out;
  if (attrs_packed_) {
    out.offsets_view = packed_offsets_;
    out.attrs_view = packed_attrs_;
    out.heap_view = heap_;
    return out;
  }
  out.offsets.reserve(attr_offsets_.size());
  out.attrs.reserve(attrs_.size());
  size_t heap_bytes = 0;
  for (const Attribute& a : attrs_) {
    heap_bytes += a.name.size() + a.value.size();
  }
  out.heap.reserve(heap_bytes);
  for (const uint32_t off : attr_offsets_) out.offsets.push_back(off);
  for (const Attribute& a : attrs_) {
    PackedAttribute p;
    p.name_off = out.heap.size();
    p.name_len = static_cast<uint32_t>(a.name.size());
    out.heap += a.name;
    p.value_off = out.heap.size();
    p.value_len = static_cast<uint32_t>(a.value.size());
    out.heap += a.value;
    out.attrs.push_back(p);
  }
  out.offsets_view = out.offsets;
  out.attrs_view = out.attrs;
  out.heap_view = out.heap;
  return out;
}

size_t DataGraph::MemoryFootprintBytes() const {
  size_t bytes = node_types_.size() * sizeof(TypeId) +
                 edges_.size() * sizeof(DataEdge);
  if (attrs_packed_) {
    bytes += packed_offsets_.size() * sizeof(uint64_t) +
             packed_attrs_.size() * sizeof(PackedAttribute) + heap_.size();
  } else {
    bytes += attr_offsets_.size() * sizeof(uint32_t) +
             attrs_.size() * sizeof(Attribute);
    for (const Attribute& a : attrs_) bytes += a.name.size() + a.value.size();
  }
  return bytes;
}

void DataGraph::ReserveNodes(size_t n) {
  node_types_.mut().reserve(n);
  attr_offsets_.reserve(n + 1);
  attrs_.reserve(n * 3);
}

void DataGraph::ReserveEdges(size_t n) { edges_.mut().reserve(n); }

}  // namespace orx::graph
