#include "graph/data_graph.h"

#include "common/check.h"

namespace orx::graph {

StatusOr<NodeId> DataGraph::AddNode(TypeId type,
                                    std::vector<Attribute> attributes) {
  if (type >= schema_->num_node_types()) {
    return InvalidArgumentError("unknown node type id");
  }
  NodeId id = static_cast<NodeId>(node_types_.size());
  node_types_.push_back(type);
  for (auto& attr : attributes) attrs_.push_back(std::move(attr));
  attr_offsets_.push_back(static_cast<uint32_t>(attrs_.size()));
  return id;
}

Status DataGraph::AddEdge(NodeId from, NodeId to, EdgeTypeId type) {
  if (from >= node_types_.size() || to >= node_types_.size()) {
    return InvalidArgumentError("edge endpoint does not exist");
  }
  if (type >= schema_->num_edge_types()) {
    return InvalidArgumentError("unknown edge type id");
  }
  const SchemaEdge& se = schema_->EdgeType(type);
  if (node_types_[from] != se.from || node_types_[to] != se.to) {
    return InvalidArgumentError(
        "edge endpoints do not conform to schema edge type '" + se.role +
        "'");
  }
  if (from == to) {
    return InvalidArgumentError("self-loop data edges are not supported");
  }
  edges_.push_back(DataEdge{from, to, type});
  return Status::OK();
}

Status DataGraph::RemoveEdge(NodeId from, NodeId to, EdgeTypeId type) {
  for (size_t i = 0; i < edges_.size(); ++i) {
    const DataEdge& e = edges_[i];
    if (e.from == from && e.to == to && e.type == type) {
      edges_.erase(edges_.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return NotFoundError("no such edge");
}

Status DataGraph::DetachNode(NodeId v) {
  if (v >= node_types_.size()) {
    return InvalidArgumentError("node does not exist");
  }
  std::erase_if(edges_,
                [v](const DataEdge& e) { return e.from == v || e.to == v; });
  return SetAttributes(v, {});
}

Status DataGraph::SetAttributes(NodeId v, std::vector<Attribute> attributes) {
  if (v >= node_types_.size()) {
    return InvalidArgumentError("node does not exist");
  }
  const uint32_t begin = attr_offsets_[v];
  const uint32_t end = attr_offsets_[v + 1];
  const int64_t delta =
      static_cast<int64_t>(attributes.size()) - (end - begin);
  attrs_.erase(attrs_.begin() + begin, attrs_.begin() + end);
  attrs_.insert(attrs_.begin() + begin,
                std::make_move_iterator(attributes.begin()),
                std::make_move_iterator(attributes.end()));
  for (size_t i = v + 1; i < attr_offsets_.size(); ++i) {
    attr_offsets_[i] = static_cast<uint32_t>(attr_offsets_[i] + delta);
  }
  return Status::OK();
}

std::span<const Attribute> DataGraph::Attributes(NodeId v) const {
  ORX_CHECK_LT(v, node_types_.size());
  uint32_t begin = attr_offsets_[v];
  uint32_t end = attr_offsets_[v + 1];
  return std::span<const Attribute>(attrs_.data() + begin, end - begin);
}

std::string DataGraph::Text(NodeId v) const {
  std::string out;
  for (const Attribute& a : Attributes(v)) {
    if (!out.empty()) out += ' ';
    out += a.value;
  }
  return out;
}

std::string DataGraph::AttributeValue(NodeId v, std::string_view name) const {
  for (const Attribute& a : Attributes(v)) {
    if (a.name == name) return a.value;
  }
  return "";
}

std::string DataGraph::DisplayLabel(NodeId v) const {
  auto attrs = Attributes(v);
  if (!attrs.empty()) return attrs[0].value;
  return schema_->NodeTypeLabel(node_types_[v]) + "#" + std::to_string(v);
}

size_t DataGraph::MemoryFootprintBytes() const {
  size_t bytes = node_types_.size() * sizeof(TypeId) +
                 attr_offsets_.size() * sizeof(uint32_t) +
                 edges_.size() * sizeof(DataEdge) +
                 attrs_.size() * sizeof(Attribute);
  for (const Attribute& a : attrs_) bytes += a.name.size() + a.value.size();
  return bytes;
}

void DataGraph::ReserveNodes(size_t n) {
  node_types_.reserve(n);
  attr_offsets_.reserve(n + 1);
  attrs_.reserve(n * 3);
}

void DataGraph::ReserveEdges(size_t n) { edges_.reserve(n); }

}  // namespace orx::graph
