#include "graph/conformance.h"

namespace orx::graph {

Status CheckConformance(const DataGraph& data, const SchemaGraph& schema) {
  if (&data.schema() != &schema) {
    return InvalidArgumentError(
        "data graph was built against a different schema instance");
  }
  const size_t n = data.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (data.NodeType(v) >= schema.num_node_types()) {
      return InternalError("node " + std::to_string(v) +
                           " has an unregistered type");
    }
  }
  size_t edge_index = 0;
  for (const DataEdge& e : data.edges()) {
    if (e.from >= n || e.to >= n) {
      return InternalError("edge " + std::to_string(edge_index) +
                           " references a nonexistent node");
    }
    if (e.type >= schema.num_edge_types()) {
      return InternalError("edge " + std::to_string(edge_index) +
                           " has an unregistered edge type");
    }
    const SchemaEdge& se = schema.EdgeType(e.type);
    if (data.NodeType(e.from) != se.from || data.NodeType(e.to) != se.to) {
      return InternalError(
          "edge " + std::to_string(edge_index) +
          " violates schema edge type '" + se.role + "': endpoint types are " +
          schema.NodeTypeLabel(data.NodeType(e.from)) + " -> " +
          schema.NodeTypeLabel(data.NodeType(e.to)));
    }
    ++edge_index;
  }
  return Status::OK();
}

}  // namespace orx::graph
