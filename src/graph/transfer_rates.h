#ifndef ORX_GRAPH_TRANSFER_RATES_H_
#define ORX_GRAPH_TRANSFER_RATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"

namespace orx::graph {

/// The authority transfer rates alpha(e_G^f), alpha(e_G^b) that turn a
/// schema graph into the *authority transfer schema graph* G^A of Section 2.
///
/// TransferRates is a cheap value type (one double per edge-type direction):
/// the structure-based reformulator produces a new instance each feedback
/// iteration, and the ObjectRank engine reads rates at query time, so
/// changing rates never requires rebuilding the data-graph index.
class TransferRates {
 public:
  /// Creates an empty rate vector (no slots); assign a real one before use.
  TransferRates() = default;

  /// Creates a rate vector for `schema` with every slot set to `initial`
  /// (the surveys in Section 6.1 initialize all rates to 0.3).
  explicit TransferRates(const SchemaGraph& schema, double initial = 0.0);

  /// Sets the rate of (etype, dir). Rates must be in [0, 1].
  Status Set(EdgeTypeId etype, Direction dir, double rate);

  /// Convenience: sets forward and backward rates of a schema edge type.
  Status SetBoth(EdgeTypeId etype, double forward, double backward);

  /// Returns the rate of (etype, dir). Pre: the slot exists.
  double Get(EdgeTypeId etype, Direction dir) const {
    return rates_[RateIndex(etype, dir)];
  }

  /// Raw slot accessors used by the inner ObjectRank loop; the layout is
  /// RateIndex-ordered (see schema_graph.h).
  const std::vector<double>& slots() const { return rates_; }
  double slot(uint32_t rate_index) const { return rates_[rate_index]; }
  void set_slot(uint32_t rate_index, double rate) {
    rates_[rate_index] = rate;
  }
  size_t num_slots() const { return rates_.size(); }

  /// Scales the outgoing rates of any schema node type whose sum exceeds
  /// 1.0 down so the sum is exactly 1.0 (required for ObjectRank2
  /// convergence; Section 5.2 normalization step 4). Returns the number of
  /// node types that were scaled.
  int CapOutgoingSums(const SchemaGraph& schema);

  /// Sum of outgoing rates of a node type across every (etype, dir) slot
  /// that leaves it in the authority transfer schema graph.
  double OutgoingSum(const SchemaGraph& schema, TypeId type) const;

  /// Renders "role->0.70, role(rev)->0.20, ..." for diagnostics.
  std::string ToString(const SchemaGraph& schema) const;

  /// A 64-bit fingerprint of the slot values (FNV-1a over the raw
  /// doubles). Precomputed rank caches remember the fingerprint of the
  /// rates they were built with, so stale caches are detected after
  /// structure-based reformulation changes the rates.
  uint64_t Fingerprint() const;

 private:
  std::vector<double> rates_;
};

}  // namespace orx::graph

#endif  // ORX_GRAPH_TRANSFER_RATES_H_
