#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace orx::io {

StatusOr<std::shared_ptr<const MmapFile>> MmapFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("cannot open " + path + ": " + ErrnoString(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return InternalError("fstat " + path + ": " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const std::string err = ErrnoString(errno);
      ::close(fd);
      return InternalError("mmap " + path + ": " + err);
    }
  }
  // The mapping pins the file; the descriptor is no longer needed.
  ::close(fd);
  return std::make_shared<const MmapFile>(MmapFile::Private(), addr, size,
                                          path);
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

void MmapFile::Advise(size_t offset, size_t length, int advice) const {
  if (addr_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // madvise wants a page-aligned base; widen the range to page bounds.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = offset & ~(page - 1);
  const size_t end = offset + length;
  ::madvise(static_cast<char*>(addr_) + begin, end - begin, advice);
}

void MmapFile::AdviseSequential(size_t offset, size_t length) const {
  Advise(offset, length, MADV_SEQUENTIAL);
}

void MmapFile::AdviseWillNeed(size_t offset, size_t length) const {
  Advise(offset, length, MADV_WILLNEED);
}

void MmapFile::AdviseRandom(size_t offset, size_t length) const {
  Advise(offset, length, MADV_RANDOM);
}

}  // namespace orx::io
