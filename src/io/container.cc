#include "io/container.h"

#include <fstream>

#include "common/check.h"

namespace orx::io {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// Writes `n` zero bytes of alignment padding.
void WritePadding(std::ofstream& out, size_t n) {
  static const char zeros[kSectionAlign] = {};
  out.write(zeros, static_cast<std::streamsize>(n));
}

size_t AlignUp(size_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace

uint64_t Fnv1a(std::span<const char> bytes) {
  uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

ContainerWriter::ContainerWriter(const char (&magic)[8]) {
  std::memcpy(magic_, magic, 8);
}

void ContainerWriter::AddView(std::string_view name,
                              std::span<const char> bytes,
                              uint32_t elem_size, uint64_t elem_count) {
  ORX_CHECK(name.size() < 16);
  PendingSection s;
  s.name = std::string(name);
  s.view = bytes;
  s.elem_size = elem_size;
  s.elem_count = elem_count;
  sections_.push_back(std::move(s));
}

void ContainerWriter::AddOwned(std::string_view name, std::string bytes) {
  ORX_CHECK(name.size() < 16);
  PendingSection s;
  s.name = std::string(name);
  s.owned = std::move(bytes);
  s.elem_size = 1;
  s.elem_count = s.owned.size();
  sections_.push_back(std::move(s));
}

Status ContainerWriter::WriteTo(const std::string& path) const {
  // Lay out: header, aligned payloads, aligned TOC.
  std::vector<SectionEntry> toc(sections_.size());
  size_t cursor = sizeof(ContainerHeader);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const PendingSection& s = sections_[i];
    const std::span<const char> bytes = s.bytes();
    cursor = AlignUp(cursor);
    SectionEntry& e = toc[i];
    std::memset(&e, 0, sizeof(e));
    std::memcpy(e.name, s.name.data(), s.name.size());
    e.offset = cursor;
    e.size = bytes.size();
    e.elem_size = s.elem_size;
    e.elem_count = s.elem_count;
    e.hash = Fnv1a(bytes);
    cursor += bytes.size();
  }
  const size_t toc_offset = AlignUp(cursor);
  const size_t file_size = toc_offset + toc.size() * sizeof(SectionEntry);

  ContainerHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, magic_, 8);
  header.version = kContainerVersion;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = file_size;
  header.toc_offset = toc_offset;
  header.endian = kEndianSentinel;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  size_t written = sizeof(header);
  for (size_t i = 0; i < sections_.size(); ++i) {
    WritePadding(out, toc[i].offset - written);
    const std::span<const char> bytes = sections_[i].bytes();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    written = toc[i].offset + bytes.size();
  }
  WritePadding(out, toc_offset - written);
  out.write(reinterpret_cast<const char*>(toc.data()),
            static_cast<std::streamsize>(toc.size() * sizeof(SectionEntry)));
  out.flush();
  if (!out) return InternalError("container write failed: " + path);
  return Status::OK();
}

StatusOr<MappedContainer> MappedContainer::Open(const std::string& path,
                                                const char (&magic)[8]) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();

  MappedContainer c;
  c.file_ = std::move(*file);
  const size_t size = c.file_->size();
  if (size < sizeof(ContainerHeader)) {
    return DataLossError("container too small for a header (" +
                         std::to_string(size) + " bytes): " + path);
  }
  std::memcpy(&c.header_, c.file_->data(), sizeof(ContainerHeader));
  const ContainerHeader& h = c.header_;
  if (std::memcmp(h.magic, magic, 8) != 0) {
    return DataLossError("bad container magic: " + path);
  }
  if (h.endian != kEndianSentinel) {
    return DataLossError("container endianness mismatch: " + path);
  }
  if (h.version != kContainerVersion) {
    return DataLossError("unsupported container version " +
                         std::to_string(h.version) + ": " + path);
  }
  if (h.file_size != size) {
    return DataLossError("container records " + std::to_string(h.file_size) +
                         " bytes but the file has " + std::to_string(size) +
                         ": " + path);
  }
  // TOC bounds, overflow-safe: division first, then subtraction.
  const uint64_t count = h.section_count;
  if (h.toc_offset % kSectionAlign != 0 || h.toc_offset > size ||
      count > (size - h.toc_offset) / sizeof(SectionEntry)) {
    return DataLossError("container TOC out of bounds: " + path);
  }
  c.toc_ = std::span<const SectionEntry>(
      reinterpret_cast<const SectionEntry*>(c.file_->data() + h.toc_offset),
      count);

  for (const SectionEntry& e : c.toc_) {
    if (std::memchr(e.name, 0, sizeof(e.name)) == nullptr) {
      return DataLossError("container section name is not NUL-terminated: " +
                           path);
    }
    const std::string name(e.name);
    if (e.offset % kSectionAlign != 0) {
      return DataLossError("section '" + name + "' is misaligned: " + path);
    }
    // offset + size <= size without overflow.
    if (e.offset > size || e.size > size - e.offset) {
      return DataLossError("section '" + name + "' exceeds the file: " +
                           path);
    }
    if (e.elem_size == 0 ||
        e.elem_count != e.size / e.elem_size ||
        e.size % e.elem_size != 0) {
      return DataLossError("section '" + name +
                           "' element accounting is inconsistent: " + path);
    }
  }
  return c;
}

const SectionEntry* MappedContainer::Find(std::string_view name) const {
  for (const SectionEntry& e : toc_) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

StatusOr<std::span<const char>> MappedContainer::Bytes(
    std::string_view name) const {
  const SectionEntry* e = Find(name);
  if (e == nullptr) {
    return NotFoundError("container has no section '" + std::string(name) +
                         "'");
  }
  return std::span<const char>(file_->data() + e->offset,
                               static_cast<size_t>(e->size));
}

Status MappedContainer::VerifyHashes() const {
  for (const SectionEntry& e : toc_) {
    const uint64_t got = Fnv1a(
        {file_->data() + e.offset, static_cast<size_t>(e.size)});
    if (got != e.hash) {
      return DataLossError("section '" + std::string(e.name) +
                           "' hash mismatch (payload corrupted)");
    }
  }
  return Status::OK();
}

}  // namespace orx::io
