#ifndef ORX_IO_MMAP_FILE_H_
#define ORX_IO_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"

namespace orx::io {

/// A read-only memory-mapped file. The mapping is MAP_PRIVATE: the pages
/// are backed by the file and paged in on demand, so "loading" a
/// multi-gigabyte container is a few syscalls and the data streams
/// through the page cache as it is touched — including structures larger
/// than RAM (the kernel simply evicts cold pages). Borrowed ArrayRefs
/// keep the mapping alive through the shared_ptr returned by Open.
class MmapFile {
 private:
  /// Passkey: makes the public constructor callable only from Open (via
  /// make_shared), keeping construction behind the factory.
  struct Private {};

 public:
  /// Maps `path` read-only. kNotFound if it cannot be opened, kInternal
  /// if the mmap itself fails. An empty file maps to a valid zero-length
  /// instance.
  static StatusOr<std::shared_ptr<const MmapFile>> Open(
      const std::string& path);

  MmapFile(Private, void* addr, size_t size, std::string path)
      : addr_(addr), size_(size), path_(std::move(path)) {}

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  std::span<const char> bytes() const { return {data(), size_}; }
  const std::string& path() const { return path_; }

  /// madvise hints, clamped and page-aligned internally; best-effort
  /// (advice failures are ignored — they only affect readahead).
  /// Sequential: the range will be streamed front to back (double
  /// readahead, drop-behind) — the out-of-core SpMV posture for the big
  /// SELL sections.
  void AdviseSequential(size_t offset, size_t length) const;
  /// WillNeed: fault the range in ahead of first use — small hot
  /// sections (offsets, metadata) a serving process touches immediately.
  void AdviseWillNeed(size_t offset, size_t length) const;
  /// Random: disable readahead — point lookups (attribute heap).
  void AdviseRandom(size_t offset, size_t length) const;

 private:
  void Advise(size_t offset, size_t length, int advice) const;

  void* addr_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace orx::io

#endif  // ORX_IO_MMAP_FILE_H_
