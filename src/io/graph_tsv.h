#ifndef ORX_IO_GRAPH_TSV_H_
#define ORX_IO_GRAPH_TSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "datasets/dataset.h"

namespace orx::io {

/// A human-editable tab-separated graph interchange format, in the spirit
/// of the NCBI Entrez link exports (gene2pubmed & co.) that the paper's
/// DS7 collection was assembled from. One record per line:
///
///   # comment
///   D <TAB> dataset-name
///   S <TAB> NodeTypeLabel
///   E <TAB> FromTypeLabel <TAB> ToTypeLabel <TAB> role
///   N <TAB> node-key <TAB> NodeTypeLabel [<TAB> attr=value]...
///   L <TAB> from-key <TAB> to-key <TAB> role
///
/// Declarations must precede use: S/E lines build the schema, N lines the
/// nodes (keys are free-form strings, unique), L lines the edges. Values
/// may contain anything but tabs and newlines.
///
/// WriteGraphTsv emits keys "n<node-id>"; ParseGraphTsv accepts any keys.
std::string WriteGraphTsv(const datasets::Dataset& dataset);

/// Parses the format; returns a finalized dataset. Errors are kDataLoss
/// with a line number (unknown record tags, undeclared types/roles,
/// duplicate or dangling keys, malformed attributes).
StatusOr<datasets::Dataset> ParseGraphTsv(std::string_view text);

/// File convenience wrappers.
Status SaveGraphTsv(const datasets::Dataset& dataset,
                    const std::string& path);
StatusOr<datasets::Dataset> LoadGraphTsv(const std::string& path);

}  // namespace orx::io

#endif  // ORX_IO_GRAPH_TSV_H_
