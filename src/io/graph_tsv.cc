#include "io/graph_tsv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace orx::io {
namespace {

Status LineError(int line, const std::string& message) {
  return DataLossError("graph TSV, line " + std::to_string(line) + ": " +
                       message);
}

}  // namespace

std::string WriteGraphTsv(const datasets::Dataset& dataset) {
  const graph::SchemaGraph& schema = dataset.schema();
  const graph::DataGraph& data = dataset.data();

  std::string out = "# orx-graph-tsv v1\n";
  out += "D\t" + dataset.name() + "\n";
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    out += "S\t" + schema.NodeTypeLabel(t) + "\n";
  }
  for (graph::EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const graph::SchemaEdge& edge = schema.EdgeType(e);
    out += "E\t" + schema.NodeTypeLabel(edge.from) + "\t" +
           schema.NodeTypeLabel(edge.to) + "\t" + edge.role + "\n";
  }
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    out += "N\tn" + std::to_string(v) + "\t" +
           schema.NodeTypeLabel(data.NodeType(v));
    for (const graph::AttributeView a : data.Attributes(v)) {
      out += '\t';
      out += a.name;
      out += '=';
      out += a.value;
    }
    out += "\n";
  }
  for (const graph::DataEdge& e : data.edges()) {
    out += "L\tn" + std::to_string(e.from) + "\tn" + std::to_string(e.to) +
           "\t" + schema.EdgeType(e.type).role + "\n";
  }
  return out;
}

StatusOr<datasets::Dataset> ParseGraphTsv(std::string_view text) {
  auto schema = std::make_unique<graph::SchemaGraph>();
  graph::SchemaGraph* schema_ptr = schema.get();
  std::string name = "graph-tsv";

  // The dataset is created lazily on the first N line so D/S/E lines can
  // finish the schema first.
  std::unique_ptr<datasets::Dataset> dataset;
  std::unordered_map<std::string, graph::NodeId> node_by_key;
  auto ensure_dataset = [&]() -> datasets::Dataset& {
    if (dataset == nullptr) {
      dataset = std::make_unique<datasets::Dataset>(std::move(schema), name);
    }
    return *dataset;
  };

  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields = StrSplit(line, '\t');
    const std::string& tag = fields[0];
    if (tag == "D") {
      if (fields.size() != 2) return LineError(line_number, "D needs a name");
      if (dataset != nullptr) {
        return LineError(line_number, "D must precede all N lines");
      }
      name = fields[1];
    } else if (tag == "S") {
      if (fields.size() != 2) {
        return LineError(line_number, "S needs a type label");
      }
      if (dataset != nullptr) {
        return LineError(line_number, "S must precede all N lines");
      }
      auto added = schema_ptr->AddNodeType(fields[1]);
      if (!added.ok()) return LineError(line_number, added.status().message());
    } else if (tag == "E") {
      if (fields.size() != 4) {
        return LineError(line_number, "E needs from, to, role");
      }
      if (dataset != nullptr) {
        return LineError(line_number, "E must precede all N lines");
      }
      auto from = schema_ptr->NodeTypeByLabel(fields[1]);
      if (!from.ok()) {
        return LineError(line_number, "unknown node type " + fields[1]);
      }
      auto to = schema_ptr->NodeTypeByLabel(fields[2]);
      if (!to.ok()) {
        return LineError(line_number, "unknown node type " + fields[2]);
      }
      auto added = schema_ptr->AddEdgeType(*from, *to, fields[3]);
      if (!added.ok()) return LineError(line_number, added.status().message());
    } else if (tag == "N") {
      if (fields.size() < 3) {
        return LineError(line_number, "N needs key and type");
      }
      auto type = schema_ptr->NodeTypeByLabel(fields[2]);
      if (!type.ok()) {
        return LineError(line_number, "unknown node type " + fields[2]);
      }
      std::vector<graph::Attribute> attrs;
      for (size_t i = 3; i < fields.size(); ++i) {
        const size_t eq = fields[i].find('=');
        if (eq == std::string::npos) {
          return LineError(line_number,
                           "attribute without '=': " + fields[i]);
        }
        attrs.push_back(graph::Attribute{fields[i].substr(0, eq),
                                         fields[i].substr(eq + 1)});
      }
      datasets::Dataset& ds = ensure_dataset();
      auto node = ds.mutable_data().AddNode(*type, std::move(attrs));
      if (!node.ok()) return LineError(line_number, node.status().message());
      if (!node_by_key.emplace(fields[1], *node).second) {
        return LineError(line_number, "duplicate node key " + fields[1]);
      }
    } else if (tag == "L") {
      if (fields.size() != 4) {
        return LineError(line_number, "L needs from, to, role");
      }
      if (dataset == nullptr) {
        return LineError(line_number, "L before any N line");
      }
      auto from = node_by_key.find(fields[1]);
      auto to = node_by_key.find(fields[2]);
      if (from == node_by_key.end() || to == node_by_key.end()) {
        return LineError(line_number, "dangling node key");
      }
      auto role = dataset->schema().EdgeTypeByRole(fields[3]);
      if (!role.ok()) {
        return LineError(line_number, "unknown edge role " + fields[3]);
      }
      Status added = dataset->mutable_data().AddEdge(from->second,
                                                     to->second, *role);
      if (!added.ok()) return LineError(line_number, added.message());
    } else {
      return LineError(line_number, "unknown record tag '" + tag + "'");
    }
  }

  datasets::Dataset& ds = ensure_dataset();
  ds.Finalize();
  return std::move(ds);
}

Status SaveGraphTsv(const datasets::Dataset& dataset,
                    const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  out << WriteGraphTsv(dataset);
  out.flush();
  if (!out) return InternalError("write failed: " + path);
  return Status::OK();
}

StatusOr<datasets::Dataset> LoadGraphTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open graph TSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseGraphTsv(buffer.str());
}

}  // namespace orx::io
