#include "io/snapshot_io.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "common/byte_io.h"
#include "graph/validate.h"

namespace orx::io {
namespace {

constexpr uint32_t kMetaVersion = 1;
// Sanity bounds for the meta blob's variable-length fields; real values
// are orders of magnitude smaller, anything beyond is corruption.
constexpr uint64_t kNameLimit = 1ull << 12;
constexpr uint64_t kTypeLimit = 1ull << 16;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

// The ORXD2 meta blob: everything the loader cannot borrow as a flat
// array — the dataset name, the schema, the serving rates, and the
// corpus avdl.
std::string BuildDatasetMeta(const datasets::Dataset& dataset,
                             const graph::TransferRates& rates) {
  const graph::SchemaGraph& schema = dataset.schema();
  std::string meta;
  PutU32(meta, kMetaVersion);
  PutString(meta, dataset.name());
  PutU64(meta, dataset.data().num_nodes());
  PutU64(meta, dataset.data().num_edges());
  PutDouble(meta, dataset.corpus().avdl());
  PutU32(meta, static_cast<uint32_t>(schema.num_node_types()));
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    PutString(meta, schema.NodeTypeLabel(t));
  }
  PutU32(meta, static_cast<uint32_t>(schema.num_edge_types()));
  for (graph::EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const graph::SchemaEdge& edge = schema.EdgeType(e);
    PutU32(meta, edge.from);
    PutU32(meta, edge.to);
    PutString(meta, edge.role);
  }
  PutU32(meta, static_cast<uint32_t>(rates.num_slots()));
  for (double slot : rates.slots()) PutDouble(meta, slot);
  PutU64(meta, rates.Fingerprint());
  return meta;
}

struct DatasetMeta {
  std::string name;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avdl = 0.0;
  std::unique_ptr<graph::SchemaGraph> schema;
  graph::TransferRates rates;
  uint64_t rates_fingerprint = 0;
};

StatusOr<DatasetMeta> ParseDatasetMeta(std::span<const char> bytes) {
  std::istringstream in(std::string(bytes.data(), bytes.size()));
  ByteReader reader(in);
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&version, "meta version"));
  if (version != kMetaVersion) {
    return DataLossError("unsupported dataset meta version " +
                         std::to_string(version));
  }
  DatasetMeta meta;
  ORX_RETURN_IF_ERROR(reader.ReadString(&meta.name, kNameLimit, "name"));
  ORX_RETURN_IF_ERROR(reader.ReadU64(&meta.num_nodes, "node count"));
  ORX_RETURN_IF_ERROR(reader.ReadU64(&meta.num_edges, "edge count"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&meta.avdl, "avdl"));

  meta.schema = std::make_unique<graph::SchemaGraph>();
  uint32_t num_types = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_types, "node type count"));
  if (num_types > kTypeLimit) {
    return DataLossError("implausible node type count " +
                         std::to_string(num_types));
  }
  for (uint32_t t = 0; t < num_types; ++t) {
    std::string label;
    ORX_RETURN_IF_ERROR(reader.ReadString(&label, kNameLimit, "type label"));
    auto added = meta.schema->AddNodeType(std::move(label));
    if (!added.ok()) return added.status();
  }
  uint32_t num_edge_types = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_edge_types, "edge type count"));
  if (num_edge_types > kTypeLimit) {
    return DataLossError("implausible edge type count " +
                         std::to_string(num_edge_types));
  }
  for (uint32_t e = 0; e < num_edge_types; ++e) {
    uint32_t from = 0, to = 0;
    std::string role;
    ORX_RETURN_IF_ERROR(reader.ReadU32(&from, "edge type source"));
    ORX_RETURN_IF_ERROR(reader.ReadU32(&to, "edge type target"));
    ORX_RETURN_IF_ERROR(reader.ReadString(&role, kNameLimit, "edge role"));
    if (from >= num_types || to >= num_types) {
      return DataLossError("schema edge type " + std::to_string(e) +
                           " references an unknown node type");
    }
    auto added = meta.schema->AddEdgeType(from, to, std::move(role));
    if (!added.ok()) return added.status();
  }

  uint32_t num_slots = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_slots, "rate slot count"));
  if (num_slots != meta.schema->num_rate_slots()) {
    return DataLossError("meta carries " + std::to_string(num_slots) +
                         " rate slots, schema wants " +
                         std::to_string(meta.schema->num_rate_slots()));
  }
  meta.rates = graph::TransferRates(*meta.schema, 0.0);
  for (uint32_t s = 0; s < num_slots; ++s) {
    double rate = 0.0;
    ORX_RETURN_IF_ERROR(reader.ReadDouble(&rate, "rate slot"));
    meta.rates.set_slot(s, rate);
  }
  ORX_RETURN_IF_ERROR(
      reader.ReadU64(&meta.rates_fingerprint, "rates fingerprint"));
  if (meta.rates.Fingerprint() != meta.rates_fingerprint) {
    return DataLossError("rates fingerprint does not match the slots");
  }
  return meta;
}

// Offset of a section's payload inside the mapping (for madvise).
void AdviseSection(const MappedContainer& container, std::string_view name,
                   void (MmapFile::*advise)(size_t, size_t) const) {
  auto bytes = container.Bytes(name);
  if (!bytes.ok() || bytes->empty()) return;
  const MmapFile& file = *container.file();
  (file.*advise)(static_cast<size_t>(bytes->data() - file.data()),
                 bytes->size());
}

}  // namespace

Status WriteDatasetContainer(const datasets::Dataset& dataset,
                             const graph::TransferRates& rates,
                             const std::string& path) {
  if (!dataset.finalized()) {
    return InvalidArgumentError("dataset must be finalized before packing");
  }
  const graph::DataGraph& data = dataset.data();
  const graph::AuthorityGraph& authority = dataset.authority();
  const text::Corpus& corpus = dataset.corpus();
  if (rates.num_slots() != dataset.schema().num_rate_slots()) {
    return InvalidArgumentError("rates do not match the dataset schema");
  }

  // Packed views; the locals below must outlive WriteTo (the writer
  // stores views, not copies).
  graph::DataGraph::PackedAttributes attrs = data.PackAttributes();
  const std::span<const uint64_t> attr_offsets =
      attrs.offsets.empty() ? attrs.offsets_view
                            : std::span<const uint64_t>(attrs.offsets);
  const std::span<const graph::PackedAttribute> attr_entries =
      attrs.attrs.empty() ? attrs.attrs_view
                          : std::span<const graph::PackedAttribute>(
                                attrs.attrs);
  const std::span<const char> text_heap =
      attrs.heap.empty() ? attrs.heap_view
                         : std::span<const char>(attrs.heap.data(),
                                                 attrs.heap.size());
  const text::Corpus::PackedTerms terms = corpus.PackTerms();

  // The SpMV layout for the serving rates, built once here so every
  // restart skips the SELL reslice and weight resolution.
  const graph::SellStructure sell(authority);
  const graph::FusedLayout layout(
      authority, rates,
      std::shared_ptr<const graph::SellStructure>(&sell, [](const void*) {}));

  ContainerWriter writer(kDatasetMagic);
  writer.AddOwned("meta", BuildDatasetMeta(dataset, rates));
  writer.Add<graph::TypeId>("node_types", data.node_types());
  writer.Add<uint64_t>("attr_offsets", attr_offsets);
  writer.Add<graph::PackedAttribute>("attr_entries", attr_entries);
  writer.Add<char>("text_heap", text_heap);
  writer.Add<graph::DataEdge>("edges", data.edges());
  writer.Add<uint64_t>("out_offsets", authority.out_offsets());
  writer.Add<graph::AuthorityEdge>("out_edges", authority.out_edges());
  writer.Add<uint64_t>("in_offsets", authority.in_offsets());
  writer.Add<graph::AuthorityEdge>("in_edges", authority.in_edges());
  writer.Add<uint32_t>("row_order", sell.row_order);
  writer.Add<uint32_t>("node_row", sell.node_row);
  writer.Add<uint64_t>("chunk_offsets", sell.chunk_offsets);
  writer.Add<uint32_t>("sources", sell.sources);
  writer.Add<uint32_t>("sources_row", sell.sources_row);
  writer.Add<double>("fused_weights", layout.weight_span());
  writer.Add<uint32_t>("doc_lengths", corpus.doc_lengths());
  writer.Add<uint64_t>("post_offsets", corpus.postings_offsets());
  writer.Add<text::Posting>("postings", corpus.all_postings());
  writer.Add<uint64_t>("dt_offsets", corpus.doc_terms_offsets());
  writer.Add<text::DocTerm>("doc_terms", corpus.all_doc_terms());
  writer.Add<uint64_t>("term_offsets", terms.offsets);
  writer.Add<char>("term_heap",
                   std::span<const char>(terms.heap.data(),
                                         terms.heap.size()));
  return writer.WriteTo(path);
}

StatusOr<std::shared_ptr<MappedDataset>> OpenMappedDataset(
    const std::string& path, const MappedDatasetOptions& options) {
  auto container = MappedContainer::Open(path, kDatasetMagic);
  if (!container.ok()) return container.status();

  auto mapped = std::make_shared<MappedDataset>(MappedDataset::Private());
  mapped->container_ = std::move(*container);
  const MappedContainer& c = mapped->container_;
  const std::shared_ptr<const MmapFile> keepalive = c.file();

  auto meta_bytes = c.Bytes("meta");
  if (!meta_bytes.ok()) return meta_bytes.status();
  auto meta = ParseDatasetMeta(*meta_bytes);
  if (!meta.ok()) return meta.status();
  mapped->name_ = std::move(meta->name);
  mapped->schema_ = std::move(meta->schema);
  mapped->rates_ = std::move(meta->rates);

#define ORX_LOAD_SECTION(type, var, name)            \
  auto var##_or = c.Section<type>(name);             \
  if (!var##_or.ok()) return var##_or.status();      \
  const std::span<const type> var = *var##_or

  ORX_LOAD_SECTION(graph::TypeId, node_types, "node_types");
  ORX_LOAD_SECTION(uint64_t, attr_offsets, "attr_offsets");
  ORX_LOAD_SECTION(graph::PackedAttribute, attr_entries, "attr_entries");
  ORX_LOAD_SECTION(char, text_heap, "text_heap");
  ORX_LOAD_SECTION(graph::DataEdge, edges, "edges");
  ORX_LOAD_SECTION(uint64_t, out_offsets, "out_offsets");
  ORX_LOAD_SECTION(graph::AuthorityEdge, out_edges, "out_edges");
  ORX_LOAD_SECTION(uint64_t, in_offsets, "in_offsets");
  ORX_LOAD_SECTION(graph::AuthorityEdge, in_edges, "in_edges");
  ORX_LOAD_SECTION(uint32_t, row_order, "row_order");
  ORX_LOAD_SECTION(uint32_t, node_row, "node_row");
  ORX_LOAD_SECTION(uint64_t, chunk_offsets, "chunk_offsets");
  ORX_LOAD_SECTION(uint32_t, sources, "sources");
  ORX_LOAD_SECTION(uint32_t, sources_row, "sources_row");
  ORX_LOAD_SECTION(double, fused_weights, "fused_weights");
  ORX_LOAD_SECTION(uint32_t, doc_lengths, "doc_lengths");
  ORX_LOAD_SECTION(uint64_t, post_offsets, "post_offsets");
  ORX_LOAD_SECTION(text::Posting, postings, "postings");
  ORX_LOAD_SECTION(uint64_t, dt_offsets, "dt_offsets");
  ORX_LOAD_SECTION(text::DocTerm, doc_terms, "doc_terms");
  ORX_LOAD_SECTION(uint64_t, term_offsets, "term_offsets");
  ORX_LOAD_SECTION(char, term_heap, "term_heap");
#undef ORX_LOAD_SECTION

  if (node_types.size() != meta->num_nodes ||
      edges.size() != meta->num_edges) {
    return DataLossError("section sizes disagree with the meta counts");
  }

  auto data = graph::DataGraph::FromPacked(*mapped->schema_, node_types,
                                           attr_offsets, attr_entries,
                                           text_heap, edges, keepalive);
  if (!data.ok()) return data.status();
  mapped->data_ =
      std::make_unique<graph::DataGraph>(std::move(*data));

  auto authority = graph::AuthorityGraph::FromParts(
      out_offsets, out_edges, in_offsets, in_edges, keepalive);
  if (!authority.ok()) return authority.status();
  if (authority->num_nodes() != mapped->data_->num_nodes()) {
    return DataLossError("authority CSR node count disagrees with the "
                         "data graph");
  }
  mapped->authority_ =
      std::make_unique<graph::AuthorityGraph>(std::move(*authority));

  auto corpus = text::Corpus::FromParts(
      meta->avdl, term_heap, term_offsets, doc_lengths, post_offsets,
      postings, dt_offsets, doc_terms, keepalive);
  if (!corpus.ok()) return corpus.status();
  if (corpus->num_docs() != mapped->data_->num_nodes()) {
    return DataLossError("corpus document count disagrees with the data "
                         "graph");
  }
  mapped->corpus_ = std::make_unique<text::Corpus>(std::move(*corpus));

  auto sell = graph::SellStructure::FromParts(
      mapped->data_->num_nodes(), row_order, node_row, chunk_offsets,
      sources, sources_row, keepalive);
  if (!sell.ok()) return sell.status();
  mapped->structure_ =
      std::make_shared<const graph::SellStructure>(std::move(*sell));
  auto layout = graph::FusedLayout::FromParts(
      mapped->structure_, fused_weights, mapped->rates_.Fingerprint(),
      keepalive);
  if (!layout.ok()) return layout.status();
  mapped->layout_ =
      std::make_shared<const graph::FusedLayout>(std::move(*layout));

  if (options.deep_validate) {
    ORX_RETURN_IF_ERROR(c.VerifyHashes());
    ORX_RETURN_IF_ERROR(graph::ValidateDataEdges(*mapped->data_));
    ORX_RETURN_IF_ERROR(graph::ValidateInvariants(
        *mapped->authority_, mapped->schema_->num_rate_slots()));
    ORX_RETURN_IF_ERROR(graph::ValidateInvariants(*mapped->layout_));
    // Corpus bounds: every posting's document and every forward entry's
    // term must be in range, else BM25 scoring reads out of bounds.
    const size_t n = mapped->corpus_->num_docs();
    const size_t vocab = mapped->corpus_->vocab_size();
    for (const text::Posting& p : postings) {
      if (p.doc >= n) {
        return DataLossError("corpus posting references document " +
                             std::to_string(p.doc) + " of " +
                             std::to_string(n));
      }
    }
    for (const text::DocTerm& dt : doc_terms) {
      if (dt.term >= vocab) {
        return DataLossError("corpus forward index references term " +
                             std::to_string(dt.term) + " of " +
                             std::to_string(vocab));
      }
    }
  }

  if (options.advise) {
    // Hot-on-attach metadata and offsets: fault in ahead of first touch.
    for (const char* name :
         {"meta", "node_types", "attr_offsets", "out_offsets", "in_offsets",
          "chunk_offsets", "doc_lengths", "post_offsets", "dt_offsets",
          "term_offsets", "term_heap"}) {
      AdviseSection(c, name, &MmapFile::AdviseWillNeed);
    }
    // The SpMV streams these front-to-back every iteration; sequential
    // readahead keeps an out-of-core pass at disk bandwidth.
    for (const char* name : {"sources", "sources_row", "fused_weights",
                             "in_edges", "out_edges", "edges"}) {
      AdviseSection(c, name, &MmapFile::AdviseSequential);
    }
    // Attribute lookups are point reads driven by result rendering.
    AdviseSection(c, "text_heap", &MmapFile::AdviseRandom);
    AdviseSection(c, "attr_entries", &MmapFile::AdviseRandom);
  }
  return mapped;
}

serve::ServeSnapshot SnapshotFromMapped(
    std::shared_ptr<const MappedDataset> mapped) {
  serve::ServeSnapshot snapshot;
  snapshot.data = std::shared_ptr<const graph::DataGraph>(mapped,
                                                          &mapped->data());
  snapshot.authority = std::shared_ptr<const graph::AuthorityGraph>(
      mapped, &mapped->authority());
  snapshot.corpus =
      std::shared_ptr<const text::Corpus>(mapped, &mapped->corpus());
  snapshot.rates = mapped->rates();
  // Seed the weight cache with the mmap-backed layout: the first query
  // under the serving rates streams weights from the file instead of
  // re-resolving SELL + rates.
  snapshot.fused_cache->Seed(mapped->authority(), mapped->layout());
  return snapshot;
}

namespace {

/// Rank-cache meta version 2 marks a container that carries the
/// compressed-entry sections (rc_kinds and friends). All-dense caches
/// keep writing version 1, so their containers stay byte-identical to
/// pre-compression builds and old readers still attach them; old readers
/// reject version-2 containers cleanly instead of misreading the score
/// matrix.
constexpr uint32_t kRankCacheCompressedMetaVersion = 2;

std::string BuildRankCacheMeta(const core::RankCache& cache,
                               size_t num_terms, bool compressed) {
  std::string meta;
  PutU32(meta, compressed ? kRankCacheCompressedMetaVersion : kMetaVersion);
  PutU64(meta, cache.num_nodes());
  PutU64(meta, cache.rates_fingerprint());
  PutDouble(meta, cache.bm25_params().k1);
  PutDouble(meta, cache.bm25_params().b);
  PutDouble(meta, cache.bm25_params().k3);
  PutU64(meta, num_terms);
  return meta;
}

}  // namespace

Status WriteRankCacheContainer(const core::RankCache& cache,
                               const std::string& path) {
  const core::RankCache::PackedEntries packed = cache.PackEntries();
  const bool compressed = !packed.kinds.empty();
  ContainerWriter writer(kRankCacheMagic);
  writer.AddOwned("meta",
                  BuildRankCacheMeta(cache, packed.masses.size(), compressed));
  writer.Add<uint64_t>("rc_offsets", packed.offsets);
  writer.Add<char>("rc_heap", std::span<const char>(packed.heap.data(),
                                                    packed.heap.size()));
  writer.Add<double>("rc_masses", packed.masses);
  writer.Add<float>("rc_scores", packed.scores);
  if (compressed) {
    writer.Add<uint8_t>("rc_kinds", packed.kinds);
    writer.Add<core::RankCache::PackedCompressedDesc>("rc_cdesc",
                                                      packed.descs);
    writer.Add<uint32_t>("rc_chead_nodes", packed.head_nodes);
    writer.Add<float>("rc_chead_scores", packed.head_scores);
    writer.Add<uint32_t>("rc_ctail_nodes", packed.tail_nodes);
    writer.Add<uint16_t>("rc_ctail_quants", packed.tail_quants);
  }
  return writer.WriteTo(path);
}

StatusOr<core::RankCache> OpenMappedRankCache(
    const std::string& path, const MappedDatasetOptions& options) {
  auto container = MappedContainer::Open(path, kRankCacheMagic);
  if (!container.ok()) return container.status();
  // The container object dies with this scope, but the sections only
  // alias the mapping, whose lifetime is the shared MmapFile.
  const MappedContainer c = std::move(*container);
  const std::shared_ptr<const MmapFile> keepalive = c.file();

  auto meta_bytes = c.Bytes("meta");
  if (!meta_bytes.ok()) return meta_bytes.status();
  std::istringstream in(std::string(meta_bytes->data(), meta_bytes->size()));
  ByteReader reader(in);
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&version, "meta version"));
  if (version != kMetaVersion &&
      version != kRankCacheCompressedMetaVersion) {
    return DataLossError("unsupported rank cache meta version " +
                         std::to_string(version));
  }
  uint64_t num_nodes = 0, fingerprint = 0, num_terms = 0;
  text::Bm25Params bm25;
  ORX_RETURN_IF_ERROR(reader.ReadU64(&num_nodes, "node count"));
  ORX_RETURN_IF_ERROR(reader.ReadU64(&fingerprint, "rates fingerprint"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&bm25.k1, "BM25 k1"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&bm25.b, "BM25 b"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&bm25.k3, "BM25 k3"));
  ORX_RETURN_IF_ERROR(reader.ReadU64(&num_terms, "term count"));

  auto offsets = c.Section<uint64_t>("rc_offsets");
  if (!offsets.ok()) return offsets.status();
  auto heap = c.Section<char>("rc_heap");
  if (!heap.ok()) return heap.status();
  auto masses = c.Section<double>("rc_masses");
  if (!masses.ok()) return masses.status();
  auto scores = c.Section<float>("rc_scores");
  if (!scores.ok()) return scores.status();
  if (masses->size() != num_terms) {
    return DataLossError("rank cache mass section disagrees with the meta "
                         "term count");
  }

  // Compressed sections are presence-based: a version-1 container simply
  // has none and loads all-dense through the same path.
  core::RankCache::CompressedParts parts;
  if (c.Has("rc_kinds")) {
    auto kinds = c.Section<uint8_t>("rc_kinds");
    if (!kinds.ok()) return kinds.status();
    auto descs = c.Section<core::RankCache::PackedCompressedDesc>("rc_cdesc");
    if (!descs.ok()) return descs.status();
    auto head_nodes = c.Section<uint32_t>("rc_chead_nodes");
    if (!head_nodes.ok()) return head_nodes.status();
    auto head_scores = c.Section<float>("rc_chead_scores");
    if (!head_scores.ok()) return head_scores.status();
    auto tail_nodes = c.Section<uint32_t>("rc_ctail_nodes");
    if (!tail_nodes.ok()) return tail_nodes.status();
    auto tail_quants = c.Section<uint16_t>("rc_ctail_quants");
    if (!tail_quants.ok()) return tail_quants.status();
    parts.kinds = *kinds;
    parts.descs = *descs;
    parts.head_nodes = *head_nodes;
    parts.head_scores = *head_scores;
    parts.tail_nodes = *tail_nodes;
    parts.tail_quants = *tail_quants;
  }

  if (options.deep_validate) {
    ORX_RETURN_IF_ERROR(c.VerifyHashes());
  }
  auto cache = core::RankCache::FromParts(
      static_cast<size_t>(num_nodes), fingerprint, bm25, *heap, *offsets,
      *masses, *scores, parts, keepalive);
  if (!cache.ok()) return cache.status();
  if (options.deep_validate) {
    ORX_RETURN_IF_ERROR(cache->ValidateInvariants());
  }
  return cache;
}

}  // namespace orx::io
