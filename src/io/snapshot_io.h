#ifndef ORX_IO_SNAPSHOT_IO_H_
#define ORX_IO_SNAPSHOT_IO_H_

#include <memory>
#include <string>

#include "core/rank_cache.h"
#include "datasets/dataset.h"
#include "graph/authority_graph.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "graph/spmv_layout.h"
#include "graph/transfer_rates.h"
#include "io/container.h"
#include "serve/snapshot.h"
#include "text/corpus.h"

namespace orx::io {

/// ORXD2: a complete serving dataset as one mmap-friendly container —
/// data graph (packed attributes + text heap), authority CSR (both
/// halves), SELL structure, fused weights for the serving rates, corpus
/// CSR + term heap, and a meta blob (name, schema, rates, avdl). Where
/// io/dataset_io.cc re-parses and re-derives every index on load
/// (seconds at DBLPcomplete scale), an ORXD2 attach is a handful of
/// shape checks over mmap'd arrays — milliseconds, independent of
/// dataset size — and the page cache streams the rest on demand.

/// Writes `dataset` (finalized) with its serving `rates` to `path`.
/// Builds the SELL structure + fused weights so the loader gets them for
/// free. O(|E|) time; the big arrays are written straight from the
/// dataset's storage without duplication.
Status WriteDatasetContainer(const datasets::Dataset& dataset,
                             const graph::TransferRates& rates,
                             const std::string& path);

struct MappedDatasetOptions {
  /// Full O(|E|) validation on attach: section hashes, per-edge schema
  /// conformance, CSR cross-consistency, SELL bijection, corpus bounds.
  /// The fast path (false) does only the O(|V|)-ish shape checks the
  /// factories run — trusted snapshots produced by our own writer.
  /// orx_serve and `orx_cli validate` keep this on; benchmarks measuring
  /// attach latency turn it off.
  bool deep_validate = true;
  /// Apply madvise hints: WILLNEED on the small hot sections (offsets,
  /// meta), SEQUENTIAL on the big SpMV-streamed arrays (SELL sources /
  /// weights / edges) so an out-of-core power iteration streams the file
  /// through the page cache instead of thrashing readahead.
  bool advise = true;
};

/// A dataset attached zero-copy to a mapped ORXD2 container. Owns the
/// mapping plus the small rebuilt-owned pieces (schema, vocabulary);
/// every large array in the graphs/corpus borrows file-backed storage.
/// Immutable; share via shared_ptr (SnapshotFromMapped aliases it).
class MappedDataset {
 private:
  /// Passkey: makes the public constructor callable only from
  /// OpenMappedDataset (via make_shared).
  struct Private {};

 public:
  explicit MappedDataset(Private) {}

  const std::string& name() const { return name_; }
  const graph::SchemaGraph& schema() const { return *schema_; }
  const graph::DataGraph& data() const { return *data_; }
  const graph::AuthorityGraph& authority() const { return *authority_; }
  const text::Corpus& corpus() const { return *corpus_; }
  const graph::TransferRates& rates() const { return rates_; }
  /// The mmap-backed fused layout for rates() (shared SELL structure).
  const std::shared_ptr<const graph::FusedLayout>& layout() const {
    return layout_;
  }
  const MappedContainer& container() const { return container_; }

 private:
  friend StatusOr<std::shared_ptr<MappedDataset>> OpenMappedDataset(
      const std::string& path, const MappedDatasetOptions& options);

  MappedContainer container_;
  std::string name_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  std::unique_ptr<graph::DataGraph> data_;
  std::unique_ptr<graph::AuthorityGraph> authority_;
  std::unique_ptr<text::Corpus> corpus_;
  graph::TransferRates rates_;
  std::shared_ptr<const graph::SellStructure> structure_;
  std::shared_ptr<const graph::FusedLayout> layout_;
};

/// Maps and attaches an ORXD2 container. Fast path: O(shape checks);
/// with options.deep_validate also one full validation pass (see above).
StatusOr<std::shared_ptr<MappedDataset>> OpenMappedDataset(
    const std::string& path,
    const MappedDatasetOptions& options = MappedDatasetOptions());

/// Builds a ServeSnapshot whose graph components alias `mapped` and
/// whose fused-weight cache is pre-seeded with the mmap-backed layout —
/// the first query under the serving rates streams weights straight from
/// the file instead of re-resolving them.
serve::ServeSnapshot SnapshotFromMapped(
    std::shared_ptr<const MappedDataset> mapped);

/// ORXC2: a precomputed RankCache as a container — term heap + offsets,
/// per-term masses, and the dense terms x nodes float score matrix
/// (the dominant payload, attached zero-copy).
Status WriteRankCacheContainer(const core::RankCache& cache,
                               const std::string& path);

/// Maps and attaches an ORXC2 container. With options.deep_validate the
/// cache's full invariant check (every score finite and non-negative)
/// runs on attach; note that pass touches every page of the score
/// matrix.
StatusOr<core::RankCache> OpenMappedRankCache(
    const std::string& path,
    const MappedDatasetOptions& options = MappedDatasetOptions());

}  // namespace orx::io

#endif  // ORX_IO_SNAPSHOT_IO_H_
