#ifndef ORX_IO_DATASET_IO_H_
#define ORX_IO_DATASET_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/status.h"
#include "datasets/dataset.h"

namespace orx::io {

/// Binary serialization of a Dataset (schema + data graph). The derived
/// indexes (authority CSR, corpus) are *not* stored — they are cheap to
/// rebuild relative to their size, and Load() finalizes the dataset
/// before returning it, so a loaded dataset is immediately queryable.
///
/// Format (little-endian, version 1):
///   magic "ORXD", u32 version
///   schema:  u32 #node-types, labels; u32 #edge-types,
///            (u32 from, u32 to, role) each
///   name:    string
///   nodes:   u64 count; (u32 type, u32 #attrs, (name, value) each) each
///   edges:   u64 count; (u32 from, u32 to, u32 etype) each
/// Strings are u32 length + bytes.
///
/// The format is a faithful dump: Save(Load(x)) == x byte-for-byte.
Status SerializeDataset(const datasets::Dataset& dataset, std::ostream& out);

/// Reads a dataset from `in`; returns a finalized Dataset. Errors with
/// kDataLoss on a malformed stream (bad magic/version, truncation,
/// dangling ids).
StatusOr<datasets::Dataset> DeserializeDataset(std::istream& in);

/// File convenience wrappers.
Status SaveDataset(const datasets::Dataset& dataset, const std::string& path);
StatusOr<datasets::Dataset> LoadDataset(const std::string& path);

}  // namespace orx::io

#endif  // ORX_IO_DATASET_IO_H_
