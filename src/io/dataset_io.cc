#include "io/dataset_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace orx::io {
namespace {

constexpr char kMagic[4] = {'O', 'R', 'X', 'D'};
constexpr uint32_t kVersion = 1;
// Sanity bound on any single string/collection size; a corrupt length
// field must not trigger a multi-gigabyte allocation.
constexpr uint64_t kSanityLimit = 1ull << 31;
// Corrupt length fields must not drive large eager allocations: strings
// and per-node attribute lists get tight bounds, and reservations from
// untrusted counts are capped (vectors still grow on demand if a huge
// count turns out to be real).
constexpr uint64_t kStringLimit = 1ull << 27;
constexpr uint64_t kAttrLimit = 1ull << 16;
constexpr uint64_t kReserveLimit = 1ull << 20;

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return DataLossError("truncated dataset stream");
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return Status::OK();
}

Status ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, 8)) return DataLossError("truncated dataset stream");
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return Status::OK();
}

Status ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  ORX_RETURN_IF_ERROR(ReadU32(in, &len));
  if (len > kStringLimit) return DataLossError("implausible string length");
  s->resize(len);
  if (len > 0 && !in.read(s->data(), len)) {
    return DataLossError("truncated string");
  }
  return Status::OK();
}

}  // namespace

Status SerializeDataset(const datasets::Dataset& dataset,
                        std::ostream& out) {
  out.write(kMagic, 4);
  WriteU32(out, kVersion);

  const graph::SchemaGraph& schema = dataset.schema();
  WriteU32(out, static_cast<uint32_t>(schema.num_node_types()));
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    WriteString(out, schema.NodeTypeLabel(t));
  }
  WriteU32(out, static_cast<uint32_t>(schema.num_edge_types()));
  for (graph::EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const graph::SchemaEdge& edge = schema.EdgeType(e);
    WriteU32(out, edge.from);
    WriteU32(out, edge.to);
    WriteString(out, edge.role);
  }

  WriteString(out, dataset.name());

  const graph::DataGraph& data = dataset.data();
  WriteU64(out, data.num_nodes());
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    WriteU32(out, data.NodeType(v));
    auto attrs = data.Attributes(v);
    WriteU32(out, static_cast<uint32_t>(attrs.size()));
    for (const graph::Attribute& a : attrs) {
      WriteString(out, a.name);
      WriteString(out, a.value);
    }
  }
  WriteU64(out, data.num_edges());
  for (const graph::DataEdge& e : data.edges()) {
    WriteU32(out, e.from);
    WriteU32(out, e.to);
    WriteU32(out, e.type);
  }
  if (!out) return InternalError("write failed");
  return Status::OK();
}

StatusOr<datasets::Dataset> DeserializeDataset(std::istream& in) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return DataLossError("not an ORX dataset (bad magic)");
  }
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(ReadU32(in, &version));
  if (version != kVersion) {
    return DataLossError("unsupported dataset version " +
                         std::to_string(version));
  }

  auto schema = std::make_unique<graph::SchemaGraph>();
  uint32_t num_types = 0;
  ORX_RETURN_IF_ERROR(ReadU32(in, &num_types));
  if (num_types > kSanityLimit) return DataLossError("implausible type count");
  for (uint32_t t = 0; t < num_types; ++t) {
    std::string label;
    ORX_RETURN_IF_ERROR(ReadString(in, &label));
    auto added = schema->AddNodeType(std::move(label));
    if (!added.ok()) return added.status();
    if (*added != t) return DataLossError("non-dense node type ids");
  }
  uint32_t num_edge_types = 0;
  ORX_RETURN_IF_ERROR(ReadU32(in, &num_edge_types));
  if (num_edge_types > kSanityLimit) {
    return DataLossError("implausible edge type count");
  }
  for (uint32_t e = 0; e < num_edge_types; ++e) {
    uint32_t from = 0, to = 0;
    std::string role;
    ORX_RETURN_IF_ERROR(ReadU32(in, &from));
    ORX_RETURN_IF_ERROR(ReadU32(in, &to));
    ORX_RETURN_IF_ERROR(ReadString(in, &role));
    auto added = schema->AddEdgeType(from, to, std::move(role));
    if (!added.ok()) return added.status();
    if (*added != e) return DataLossError("non-dense edge type ids");
  }

  std::string name;
  ORX_RETURN_IF_ERROR(ReadString(in, &name));
  datasets::Dataset dataset(std::move(schema), std::move(name));
  graph::DataGraph& data = dataset.mutable_data();

  uint64_t num_nodes = 0;
  ORX_RETURN_IF_ERROR(ReadU64(in, &num_nodes));
  if (num_nodes > kSanityLimit) return DataLossError("implausible node count");
  data.ReserveNodes(std::min(num_nodes, kReserveLimit));
  for (uint64_t v = 0; v < num_nodes; ++v) {
    uint32_t type = 0, num_attrs = 0;
    ORX_RETURN_IF_ERROR(ReadU32(in, &type));
    ORX_RETURN_IF_ERROR(ReadU32(in, &num_attrs));
    if (num_attrs > kAttrLimit) {
      return DataLossError("implausible attribute count");
    }
    std::vector<graph::Attribute> attrs(num_attrs);
    for (graph::Attribute& a : attrs) {
      ORX_RETURN_IF_ERROR(ReadString(in, &a.name));
      ORX_RETURN_IF_ERROR(ReadString(in, &a.value));
    }
    auto added = data.AddNode(type, std::move(attrs));
    if (!added.ok()) return added.status();
  }

  uint64_t num_edges = 0;
  ORX_RETURN_IF_ERROR(ReadU64(in, &num_edges));
  if (num_edges > kSanityLimit) return DataLossError("implausible edge count");
  data.ReserveEdges(std::min(num_edges, kReserveLimit));
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t from = 0, to = 0, type = 0;
    ORX_RETURN_IF_ERROR(ReadU32(in, &from));
    ORX_RETURN_IF_ERROR(ReadU32(in, &to));
    ORX_RETURN_IF_ERROR(ReadU32(in, &type));
    ORX_RETURN_IF_ERROR(data.AddEdge(from, to, type));
  }

  dataset.Finalize();
  return dataset;
}

Status SaveDataset(const datasets::Dataset& dataset,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  ORX_RETURN_IF_ERROR(SerializeDataset(dataset, out));
  out.flush();
  if (!out) return InternalError("flush failed: " + path);
  return Status::OK();
}

StatusOr<datasets::Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open dataset file: " + path);
  return DeserializeDataset(in);
}

}  // namespace orx::io
