#include "io/dataset_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/byte_io.h"

namespace orx::io {
namespace {

constexpr char kMagic[4] = {'O', 'R', 'X', 'D'};
constexpr uint32_t kVersion = 1;
// Sanity bound on any record/collection count; a corrupt count field
// must not drive a near-endless parse loop.
constexpr uint64_t kSanityLimit = 1ull << 31;
// Corrupt length fields must not drive large eager allocations: strings
// and per-node attribute lists get tight bounds, and reservations from
// untrusted counts are capped (vectors still grow on demand if a huge
// count turns out to be real). ByteReader additionally grows string
// payloads chunk-by-chunk, so even an in-bounds length allocates only as
// bytes actually arrive.
constexpr uint64_t kStringLimit = 1ull << 27;
constexpr uint64_t kAttrLimit = 1ull << 16;
constexpr uint64_t kReserveLimit = 1ull << 20;

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

}  // namespace

Status SerializeDataset(const datasets::Dataset& dataset,
                        std::ostream& out) {
  out.write(kMagic, 4);
  WriteU32(out, kVersion);

  const graph::SchemaGraph& schema = dataset.schema();
  WriteU32(out, static_cast<uint32_t>(schema.num_node_types()));
  for (graph::TypeId t = 0; t < schema.num_node_types(); ++t) {
    WriteString(out, schema.NodeTypeLabel(t));
  }
  WriteU32(out, static_cast<uint32_t>(schema.num_edge_types()));
  for (graph::EdgeTypeId e = 0; e < schema.num_edge_types(); ++e) {
    const graph::SchemaEdge& edge = schema.EdgeType(e);
    WriteU32(out, edge.from);
    WriteU32(out, edge.to);
    WriteString(out, edge.role);
  }

  WriteString(out, dataset.name());

  const graph::DataGraph& data = dataset.data();
  WriteU64(out, data.num_nodes());
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    WriteU32(out, data.NodeType(v));
    auto attrs = data.Attributes(v);
    WriteU32(out, static_cast<uint32_t>(attrs.size()));
    for (const graph::AttributeView a : attrs) {
      WriteString(out, std::string(a.name));
      WriteString(out, std::string(a.value));
    }
  }
  WriteU64(out, data.num_edges());
  for (const graph::DataEdge& e : data.edges()) {
    WriteU32(out, e.from);
    WriteU32(out, e.to);
    WriteU32(out, e.type);
  }
  if (!out) return InternalError("write failed");
  return Status::OK();
}

StatusOr<datasets::Dataset> DeserializeDataset(std::istream& in) {
  ByteReader reader(in);
  char magic[4];
  ORX_RETURN_IF_ERROR(reader.ReadBytes(magic, 4, "dataset magic"));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return DataLossError("not an ORX dataset (bad magic)");
  }
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&version, "dataset version"));
  if (version != kVersion) {
    return DataLossError("unsupported dataset version " +
                         std::to_string(version));
  }

  auto schema = std::make_unique<graph::SchemaGraph>();
  uint32_t num_types = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_types, "node type count"));
  if (num_types > kSanityLimit) {
    return DataLossError("implausible type count " +
                         std::to_string(num_types) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  for (uint32_t t = 0; t < num_types; ++t) {
    std::string label;
    ORX_RETURN_IF_ERROR(reader.ReadString(&label, kStringLimit,
                                          "node type label"));
    auto added = schema->AddNodeType(std::move(label));
    if (!added.ok()) return added.status();
    if (*added != t) return DataLossError("non-dense node type ids");
  }
  uint32_t num_edge_types = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_edge_types, "edge type count"));
  if (num_edge_types > kSanityLimit) {
    return DataLossError("implausible edge type count " +
                         std::to_string(num_edge_types) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  for (uint32_t e = 0; e < num_edge_types; ++e) {
    uint32_t from = 0, to = 0;
    std::string role;
    ORX_RETURN_IF_ERROR(reader.ReadU32(&from, "edge type endpoint"));
    ORX_RETURN_IF_ERROR(reader.ReadU32(&to, "edge type endpoint"));
    ORX_RETURN_IF_ERROR(reader.ReadString(&role, kStringLimit,
                                          "edge type role"));
    auto added = schema->AddEdgeType(from, to, std::move(role));
    if (!added.ok()) return added.status();
    if (*added != e) return DataLossError("non-dense edge type ids");
  }

  std::string name;
  ORX_RETURN_IF_ERROR(reader.ReadString(&name, kStringLimit,
                                        "dataset name"));
  datasets::Dataset dataset(std::move(schema), std::move(name));
  graph::DataGraph& data = dataset.mutable_data();

  uint64_t num_nodes = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU64(&num_nodes, "node count"));
  if (num_nodes > kSanityLimit) {
    return DataLossError("implausible node count " +
                         std::to_string(num_nodes) + " at byte " +
                         std::to_string(reader.offset() - 8));
  }
  data.ReserveNodes(std::min(num_nodes, kReserveLimit));
  for (uint64_t v = 0; v < num_nodes; ++v) {
    uint32_t type = 0, num_attrs = 0;
    ORX_RETURN_IF_ERROR(reader.ReadU32(&type, "node type"));
    ORX_RETURN_IF_ERROR(reader.ReadU32(&num_attrs, "attribute count"));
    if (num_attrs > kAttrLimit) {
      return DataLossError("implausible attribute count " +
                           std::to_string(num_attrs) + " at byte " +
                           std::to_string(reader.offset() - 4));
    }
    std::vector<graph::Attribute> attrs(num_attrs);
    for (graph::Attribute& a : attrs) {
      ORX_RETURN_IF_ERROR(reader.ReadString(&a.name, kStringLimit,
                                            "attribute name"));
      ORX_RETURN_IF_ERROR(reader.ReadString(&a.value, kStringLimit,
                                            "attribute value"));
    }
    auto added = data.AddNode(type, std::move(attrs));
    if (!added.ok()) return added.status();
  }

  uint64_t num_edges = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU64(&num_edges, "edge count"));
  if (num_edges > kSanityLimit) {
    return DataLossError("implausible edge count " +
                         std::to_string(num_edges) + " at byte " +
                         std::to_string(reader.offset() - 8));
  }
  data.ReserveEdges(std::min(num_edges, kReserveLimit));
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t from = 0, to = 0, type = 0;
    ORX_RETURN_IF_ERROR(reader.ReadU32(&from, "edge source"));
    ORX_RETURN_IF_ERROR(reader.ReadU32(&to, "edge target"));
    ORX_RETURN_IF_ERROR(reader.ReadU32(&type, "edge type"));
    ORX_RETURN_IF_ERROR(data.AddEdge(from, to, type));
  }

  dataset.Finalize();
  return dataset;
}

Status SaveDataset(const datasets::Dataset& dataset,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  ORX_RETURN_IF_ERROR(SerializeDataset(dataset, out));
  out.flush();
  if (!out) return InternalError("flush failed: " + path);
  return Status::OK();
}

StatusOr<datasets::Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open dataset file: " + path);
  return DeserializeDataset(in);
}

}  // namespace orx::io
