#ifndef ORX_IO_CONTAINER_H_
#define ORX_IO_CONTAINER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/mmap_file.h"

namespace orx::io {

/// The ORX container format: a relocatable, mmap-friendly section file.
/// ORXD2 carries a full dataset (graph + indexes), ORXC2 a precomputed
/// rank cache; both share this layout:
///
///   [ header: 64 bytes ]
///   [ section 0 payload, 64-byte aligned ] ... [ section N-1 payload ]
///   [ TOC: section_count x 64-byte entries, 64-byte aligned ]
///
/// Every structure is fixed-width little-endian with explicit offsets —
/// no pointers — so the file is position-independent: a loader maps it
/// anywhere and reads arrays in place. Section payloads start on 64-byte
/// boundaries, which satisfies the alignment of every element type we
/// store (<= 8 bytes) and puts each section on its own cache line.
///
/// A loader must treat the bytes as hostile until OpenContainer's checks
/// pass: every offset/size is bounds-checked with overflow-safe
/// arithmetic before any section is dereferenced.

/// Bytes 0..63 of every container. Trivially copyable on purpose: the
/// writer memcpy's it out and the loader memcpy's it in.
struct ContainerHeader {
  /// "ORXD2\0\0\0" / "ORXC2\0\0\0" — NUL-padded 8 bytes.
  char magic[8];
  /// Format version; readers reject versions they do not know.
  uint32_t version;
  /// Number of TOC entries.
  uint32_t section_count;
  /// Total file size in bytes; must equal the mapped size exactly.
  uint64_t file_size;
  /// Absolute offset of the TOC (64-byte aligned).
  uint64_t toc_offset;
  /// kEndianSentinel as written by the producer; a byte-swapped value
  /// means the file came from an incompatible (big-endian) machine.
  uint32_t endian;
  char reserved[28];
};
static_assert(sizeof(ContainerHeader) == 64);

/// One TOC entry describing a section payload.
struct SectionEntry {
  /// NUL-padded section name; at most 15 characters.
  char name[16];
  /// Absolute payload offset (64-byte aligned) and size in bytes.
  uint64_t offset;
  uint64_t size;
  /// Element width in bytes and element count; size == elem_size * count.
  uint32_t elem_size;
  uint32_t reserved;
  uint64_t elem_count;
  /// FNV-1a of the payload bytes; checked by deep validation (a full
  /// streaming pass over the section), not on the fast mmap-attach path.
  uint64_t hash;
  uint64_t reserved2;
};
static_assert(sizeof(SectionEntry) == 64);

inline constexpr uint32_t kContainerVersion = 1;
inline constexpr uint32_t kEndianSentinel = 0x0A0B0C0Du;
inline constexpr size_t kSectionAlign = 64;
inline constexpr char kDatasetMagic[8] = {'O', 'R', 'X', 'D', '2', 0, 0, 0};
inline constexpr char kRankCacheMagic[8] = {'O', 'R', 'X', 'C', '2', 0, 0, 0};

/// FNV-1a over a byte range (the section hash).
uint64_t Fnv1a(std::span<const char> bytes);

/// Accumulates named sections and writes them as one container file.
/// Section payloads are stored as *views* — the caller keeps the backing
/// arrays alive until WriteTo returns — so writing a 100M-edge dataset
/// never duplicates the arrays in memory. Small generated payloads (the
/// meta blob) can be handed over by value instead.
class ContainerWriter {
 public:
  /// `magic` is one of kDatasetMagic / kRankCacheMagic.
  explicit ContainerWriter(const char (&magic)[8]);

  /// Adds a section viewing `data`; T must be trivially copyable.
  template <typename T>
  void Add(std::string_view name, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddView(name, {reinterpret_cast<const char*>(data.data()),
                   data.size() * sizeof(T)},
            sizeof(T), data.size());
  }

  /// Adds a section owning `bytes` (elem_size 1).
  void AddOwned(std::string_view name, std::string bytes);

  /// Streams header + sections + TOC to `path` (truncating). O(total
  /// payload) sequential writes.
  Status WriteTo(const std::string& path) const;

 private:
  struct PendingSection {
    std::string name;
    std::span<const char> view;
    std::string owned;
    uint32_t elem_size = 1;
    uint64_t elem_count = 0;
    std::span<const char> bytes() const {
      return owned.empty() && view.data() != nullptr ? view
                                                     : std::span<const char>(
                                                           owned.data(),
                                                           owned.size());
    }
  };

  void AddView(std::string_view name, std::span<const char> bytes,
               uint32_t elem_size, uint64_t elem_count);

  char magic_[8];
  std::vector<PendingSection> sections_;
};

/// A validated, mapped container. Section accessors return spans aliasing
/// the mapping; `file()` is the keepalive that borrowing structures
/// (ArrayRef) must hold.
class MappedContainer {
 public:
  /// Maps `path` and validates header + TOC against hostile input:
  /// magic/version/endian, exact file size, TOC bounds, per-section
  /// 64-byte alignment, overflow-safe payload bounds, elem_size * count
  /// == size, and NUL-terminated names. Does NOT hash payloads — that is
  /// VerifyHashes(), the deep-validation step.
  static StatusOr<MappedContainer> Open(const std::string& path,
                                        const char (&magic)[8]);

  /// True if a section of this name exists.
  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  /// Raw payload bytes of `name`; kNotFound if absent.
  StatusOr<std::span<const char>> Bytes(std::string_view name) const;

  /// Typed payload of `name`; kNotFound if absent, kDataLoss if the
  /// recorded element width disagrees with T.
  template <typename T>
  StatusOr<std::span<const T>> Section(std::string_view name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const SectionEntry* e = Find(name);
    if (e == nullptr) {
      return NotFoundError("container has no section '" + std::string(name) +
                           "'");
    }
    if (e->elem_size != sizeof(T)) {
      return DataLossError("section '" + std::string(name) + "' has " +
                           std::to_string(e->elem_size) +
                           "-byte elements, expected " +
                           std::to_string(sizeof(T)));
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(file_->data() + e->offset),
        static_cast<size_t>(e->elem_count));
  }

  /// Recomputes every section hash against the TOC (one full sequential
  /// read of the file). Deep validation / `orx_cli validate` only.
  Status VerifyHashes() const;

  const std::shared_ptr<const MmapFile>& file() const { return file_; }
  std::span<const SectionEntry> sections() const { return toc_; }
  const ContainerHeader& header() const { return header_; }

 private:
  const SectionEntry* Find(std::string_view name) const;

  std::shared_ptr<const MmapFile> file_;
  ContainerHeader header_{};
  std::span<const SectionEntry> toc_;
};

}  // namespace orx::io

#endif  // ORX_IO_CONTAINER_H_
