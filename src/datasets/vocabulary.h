#ifndef ORX_DATASETS_VOCABULARY_H_
#define ORX_DATASETS_VOCABULARY_H_

#include <string>
#include <string_view>
#include <vector>

namespace orx::datasets {

/// Term pools used by the synthetic dataset generators. The pools are
/// Zipf-ordered: index 0 is the most popular term. The CS pool contains
/// every keyword of the paper's Table 2 queries (olap, query,
/// optimization, xml, mining, proximity, search, indexing, ranked) so the
/// survey benchmarks can issue the paper's exact queries.
const std::vector<std::string>& CsVocabulary();

/// Biomedical term pool for the DS7-like generators; contains "cancer"
/// (DS7cancer is the cancer-focused subset, Section 6).
const std::vector<std::string>& BioVocabulary();

/// Author-name pools.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();

/// Conference name pool (ICDE, SIGMOD, VLDB, ... plus synthetic fillers
/// generated on demand by the DBLP generator).
const std::vector<std::string>& ConferenceNames();

/// City pool for Year-node Location attributes.
const std::vector<std::string>& Locations();

}  // namespace orx::datasets

#endif  // ORX_DATASETS_VOCABULARY_H_
