#ifndef ORX_DATASETS_BIO_GENERATOR_H_
#define ORX_DATASETS_BIO_GENERATOR_H_

#include <cstdint>

#include "datasets/bio_schema.h"
#include "datasets/dataset.h"

namespace orx::datasets {

/// Parameters of the synthetic biological-collection generator (the DS7
/// stand-in; see DESIGN.md substitution #2). Publications carry Zipfian
/// topical titles; genes adopt a topic and associate with same-topic
/// publications; proteins inherit their gene's topic; nucleotides attach
/// to genes. This reproduces the topical clustering that makes the
/// "cancer" subset (DS7cancer) well defined.
struct BioGeneratorConfig {
  uint32_t num_pubmed = 2000;
  uint32_t num_genes = 300;
  uint32_t num_proteins = 800;
  uint32_t num_nucleotides = 1000;

  double avg_pub_citations = 5.2;
  double avg_gene_pubs = 12.0;
  double avg_protein_pubs = 6.0;
  double avg_gene_proteins = 3.0;

  int title_terms_min = 5;
  int title_terms_max = 9;
  double zipf_s = 1.0;
  uint64_t seed = 7;

  /// Preset matching Table 1's DS7 row (699,199 nodes, ~3.53 M edges).
  static BioGeneratorConfig Ds7();
  /// Small graph for unit tests.
  static BioGeneratorConfig Tiny(uint32_t pubs, uint64_t seed = 7);
};

/// A generated biological dataset with its schema handles; finalized.
struct BioDataset {
  Dataset dataset;
  BioTypes types;
};

/// Runs the generator. Deterministic in the config.
BioDataset GenerateBio(const BioGeneratorConfig& config);

/// Derives the DS7cancer-style subset from a generated bio dataset: the
/// PubMed publications containing `keyword` plus every entity within one
/// hop (Section 6: "PubMed publications related to 'cancer' and all
/// biological entities related to these publications"). The returned
/// dataset shares nothing with the input and is finalized. Returns a
/// dataset with zero nodes if the keyword is absent.
BioDataset ExtractBioSubset(const BioDataset& full, const std::string& keyword);

}  // namespace orx::datasets

#endif  // ORX_DATASETS_BIO_GENERATOR_H_
