#include "datasets/dblp_xml.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "datasets/dblp_records.h"

namespace orx::datasets {
namespace {

// ---------------------------------------------------------------------
// Minimal XML scanning for the DBLP subset format.
// ---------------------------------------------------------------------

class XmlScanner {
 public:
  explicit XmlScanner(std::string_view input, int first_line = 1)
      : input_(input), line_(first_line) {}

  int line() const { return line_; }
  bool AtEnd() const { return pos_ >= input_.size(); }

  /// Skips whitespace, comments, the XML declaration and DOCTYPE.
  void SkipNonContent() {
    while (!AtEnd()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (Peek("<!--")) {
        SkipUntil("-->");
      } else if (Peek("<?")) {
        SkipUntil("?>");
      } else if (Peek("<!")) {
        SkipUntil(">");
      } else {
        return;
      }
    }
  }

  /// True if the next characters are exactly `text` (no consumption).
  bool Peek(std::string_view text) const {
    return input_.substr(pos_, text.size()) == text;
  }

  /// Consumes `text` if it is next; false otherwise.
  bool Consume(std::string_view text) {
    if (!Peek(text)) return false;
    for (size_t i = 0; i < text.size(); ++i) Advance();
    return true;
  }

  /// Parses "<name" (already past '<') up to '>' collecting a single
  /// optional key="..." attribute; returns the tag name.
  Status ReadOpenTagRest(std::string* name, std::string* key) {
    name->clear();
    key->clear();
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(
                            input_[pos_])) != 0 ||
                        input_[pos_] == '_')) {
      name->push_back(input_[pos_]);
      Advance();
    }
    if (name->empty()) return Error("expected tag name");
    // Attributes: only key="..." is meaningful; others are skipped.
    while (true) {
      while (!AtEnd() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        Advance();
      }
      if (AtEnd()) return Error("unterminated tag");
      if (Consume(">")) return Status::OK();
      if (Consume("/>")) return Error("self-closing records unsupported");
      std::string attr_name;
      while (!AtEnd() && input_[pos_] != '=' && input_[pos_] != '>' &&
             !std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        attr_name.push_back(input_[pos_]);
        Advance();
      }
      if (!Consume("=")) return Error("expected '=' in attribute");
      if (!Consume("\"")) return Error("expected '\"' in attribute");
      std::string value;
      while (!AtEnd() && input_[pos_] != '"') {
        value.push_back(input_[pos_]);
        Advance();
      }
      if (!Consume("\"")) return Error("unterminated attribute value");
      if (attr_name == "key") *key = value;
    }
  }

  /// Reads text content up to the next '<' (entity-decoded).
  Status ReadText(std::string* out) {
    out->clear();
    while (!AtEnd() && input_[pos_] != '<') {
      if (input_[pos_] == '&') {
        ORX_RETURN_IF_ERROR(DecodeEntity(out));
      } else {
        out->push_back(input_[pos_]);
        Advance();
      }
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return DataLossError("DBLP XML, line " + std::to_string(line_) + ": " +
                         message);
  }

 private:
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && !Peek(terminator)) Advance();
    Consume(terminator);
  }

  Status DecodeEntity(std::string* out) {
    // At '&'.
    const size_t start = pos_;
    Advance();
    std::string entity;
    while (!AtEnd() && input_[pos_] != ';' && pos_ - start < 12) {
      entity.push_back(input_[pos_]);
      Advance();
    }
    if (!Consume(";")) return Error("unterminated XML entity");
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      int code = 0;
      for (size_t i = 1; i < entity.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(entity[i]))) {
          return Error("bad numeric entity");
        }
        code = code * 10 + (entity[i] - '0');
      }
      // Non-ASCII code points degrade to '?'; the corpus is ASCII.
      out->push_back(code > 0 && code < 128 ? static_cast<char>(code) : '?');
    } else {
      return Error("unknown XML entity '&" + entity + ";'");
    }
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_;
};

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

using internal::DblpRawRecord;

/// Parses one <inproceedings>/<article> record, scanner positioned at its
/// opening '<'. Shared by the whole-buffer and fragment record loops.
Status ParseRecord(XmlScanner& scanner, DblpRawRecord* record) {
  if (!scanner.Consume("<")) return scanner.Error("expected a record");
  std::string tag, key;
  ORX_RETURN_IF_ERROR(scanner.ReadOpenTagRest(&tag, &key));
  if (tag != "inproceedings" && tag != "article") {
    return scanner.Error("unsupported record type <" + tag + ">");
  }
  record->key = key;
  // Child elements until the matching close tag.
  while (true) {
    scanner.SkipNonContent();
    if (scanner.Consume("</")) {
      std::string close, ignored;
      ORX_RETURN_IF_ERROR(scanner.ReadOpenTagRest(&close, &ignored));
      if (close != tag) {
        return scanner.Error("mismatched close tag </" + close + ">");
      }
      break;
    }
    if (!scanner.Consume("<")) {
      return scanner.Error("expected a child element");
    }
    std::string child, child_key;
    ORX_RETURN_IF_ERROR(scanner.ReadOpenTagRest(&child, &child_key));
    std::string content;
    ORX_RETURN_IF_ERROR(scanner.ReadText(&content));
    if (!scanner.Consume("</")) {
      return scanner.Error("nested markup in <" + child + "> unsupported");
    }
    std::string close, ignored;
    ORX_RETURN_IF_ERROR(scanner.ReadOpenTagRest(&close, &ignored));
    if (close != child) {
      return scanner.Error("mismatched close tag </" + close + ">");
    }
    std::string value(StripWhitespace(content));
    if (child == "author") {
      record->authors.push_back(value);
    } else if (child == "title") {
      record->title = value;
    } else if (child == "year") {
      record->year = value;
    } else if (child == "booktitle" || child == "journal") {
      record->booktitle = value;
    } else if (child == "cite") {
      record->cites.push_back(value);
    }
    // Other children (pages, ee, url, ...) are ignored.
  }
  return Status::OK();
}

}  // namespace

StatusOr<DblpParseResult> ParseDblpXml(std::string_view xml) {
  XmlScanner scanner(xml);
  scanner.SkipNonContent();
  if (!scanner.Consume("<dblp>")) {
    return scanner.Error("expected <dblp> root element");
  }

  std::vector<DblpRawRecord> records;
  while (true) {
    scanner.SkipNonContent();
    if (scanner.Consume("</dblp>")) break;
    if (scanner.AtEnd()) return scanner.Error("missing </dblp>");
    DblpRawRecord record;
    ORX_RETURN_IF_ERROR(ParseRecord(scanner, &record));
    records.push_back(std::move(record));
  }
  return internal::ShredDblpRecords(std::move(records));
}

StatusOr<std::vector<internal::DblpRawRecord>> internal::ParseDblpRecords(
    std::string_view fragment, int first_line) {
  XmlScanner scanner(fragment, first_line);
  std::vector<DblpRawRecord> records;
  while (true) {
    scanner.SkipNonContent();
    if (scanner.AtEnd()) break;
    DblpRawRecord record;
    ORX_RETURN_IF_ERROR(ParseRecord(scanner, &record));
    records.push_back(std::move(record));
  }
  return records;
}

StatusOr<DblpParseResult> internal::ShredDblpRecords(
    std::vector<DblpRawRecord> records) {
  // Shred into the Figure 2 relational schema.
  DblpTypes types;
  auto schema = MakeDblpSchema(&types);
  DblpParseResult result{Dataset(std::move(schema), "dblp-xml"), types};
  graph::DataGraph& data = result.dataset.mutable_data();

  std::unordered_map<std::string, graph::NodeId> author_nodes;
  std::unordered_map<std::string, graph::NodeId> conference_nodes;
  std::unordered_map<std::string, graph::NodeId> year_nodes;
  std::unordered_map<std::string, graph::NodeId> paper_by_key;
  auto must_node = [](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };

  std::vector<std::pair<graph::NodeId, std::string>> pending_cites;
  for (const DblpRawRecord& record : records) {
    // Incomplete records exist in real DBLP dumps; skip, don't fail.
    if (record.title.empty() || record.booktitle.empty() ||
        record.year.empty()) {
      continue;
    }
    auto conf_it = conference_nodes.find(record.booktitle);
    if (conf_it == conference_nodes.end()) {
      const graph::NodeId conf = must_node(
          data.AddNode(types.conference, {{"Name", record.booktitle}}));
      conf_it = conference_nodes.emplace(record.booktitle, conf).first;
      ++result.conferences;
    }
    const std::string venue = record.booktitle + " " + record.year;
    auto year_it = year_nodes.find(venue);
    if (year_it == year_nodes.end()) {
      const graph::NodeId year = must_node(data.AddNode(
          types.year, {{"Name", record.booktitle}, {"Year", record.year}}));
      ORX_CHECK(
          data.AddEdge(conf_it->second, year, types.has_instance).ok());
      year_it = year_nodes.emplace(venue, year).first;
      ++result.years;
    }

    std::string authors_attr = StrJoin(record.authors, ", ");
    const graph::NodeId paper = must_node(data.AddNode(
        types.paper, {{"Title", record.title},
                      {"Authors", std::move(authors_attr)},
                      {"Year", venue}}));
    ++result.papers;
    ORX_CHECK_OK(data.AddEdge(year_it->second, paper, types.contains));
    if (!record.key.empty()) paper_by_key.emplace(record.key, paper);

    for (const std::string& author_name : record.authors) {
      if (author_name.empty()) continue;
      auto author_it = author_nodes.find(author_name);
      if (author_it == author_nodes.end()) {
        const graph::NodeId author = must_node(
            data.AddNode(types.author, {{"Name", author_name}}));
        author_it = author_nodes.emplace(author_name, author).first;
        ++result.authors;
      }
      ORX_CHECK_OK(data.AddEdge(paper, author_it->second, types.by));
    }
    for (const std::string& cite : record.cites) {
      pending_cites.emplace_back(paper, cite);
    }
  }

  // Second pass: resolve citations (forward references allowed).
  for (const auto& [paper, cite_key] : pending_cites) {
    auto it = paper_by_key.find(cite_key);
    if (it == paper_by_key.end() || it->second == paper) {
      ++result.citations_unresolved;  // includes DBLP's "..." placeholders
      continue;
    }
    ORX_CHECK_OK(data.AddEdge(paper, it->second, types.cites));
    ++result.citations_resolved;
  }

  result.dataset.Finalize();
  return result;
}

StatusOr<DblpParseResult> ParseDblpXmlFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open DBLP XML file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDblpXml(buffer.str());
}

std::string WriteDblpXml(const graph::DataGraph& data,
                         const DblpTypes& types) {
  // Pre-index edges by paper.
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> authors_of;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> cites_of;
  std::unordered_map<graph::NodeId, graph::NodeId> year_of;
  for (const graph::DataEdge& e : data.edges()) {
    if (e.type == types.by) {
      authors_of[e.from].push_back(e.to);
    } else if (e.type == types.cites) {
      cites_of[e.from].push_back(e.to);
    } else if (e.type == types.contains) {
      year_of[e.to] = e.from;
    }
  }

  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<dblp>\n";
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.NodeType(v) != types.paper) continue;
    auto year_it = year_of.find(v);
    if (year_it == year_of.end()) continue;  // venue-less papers round-trip to nothing
    out += "  <inproceedings key=\"paper/" + std::to_string(v) + "\">\n";
    auto authors_it = authors_of.find(v);
    if (authors_it != authors_of.end()) {
      for (graph::NodeId author : authors_it->second) {
        out += "    <author>" +
               EscapeXml(data.AttributeValue(author, "Name")) +
               "</author>\n";
      }
    }
    out += "    <title>" + EscapeXml(data.AttributeValue(v, "Title")) +
           "</title>\n";
    out += "    <year>" +
           EscapeXml(data.AttributeValue(year_it->second, "Year")) +
           "</year>\n";
    out += "    <booktitle>" +
           EscapeXml(data.AttributeValue(year_it->second, "Name")) +
           "</booktitle>\n";
    auto cites_it = cites_of.find(v);
    if (cites_it != cites_of.end()) {
      for (graph::NodeId cited : cites_it->second) {
        out += "    <cite>paper/" + std::to_string(cited) + "</cite>\n";
      }
    }
    out += "  </inproceedings>\n";
  }
  out += "</dblp>\n";
  return out;
}

}  // namespace orx::datasets
