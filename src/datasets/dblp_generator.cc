#include "datasets/dblp_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "datasets/vocabulary.h"
#include "datasets/zipf.h"

namespace orx::datasets {
namespace {

std::string MakeAuthorName(Rng& rng) {
  const auto& first = FirstNames();
  const auto& last = LastNames();
  std::string name = first[rng.UniformInt(first.size())];
  name += ' ';
  name += last[rng.UniformInt(last.size())];
  return name;
}

std::string MakeConferenceName(uint32_t index) {
  const auto& pool = ConferenceNames();
  if (index < pool.size()) return pool[index];
  return "CONF" + std::to_string(index);
}

}  // namespace

DblpGeneratorConfig DblpGeneratorConfig::DblpComplete() {
  DblpGeneratorConfig config;
  config.num_papers = 500'000;
  config.num_authors = 360'000;
  config.num_conferences = 1'200;
  config.years_per_conference = 12;
  config.avg_citations = 4.8;  // tuned to Table 1's ~4.17 M edges
  config.seed = 20080407;
  return config;
}

DblpGeneratorConfig DblpGeneratorConfig::DblpCompleteScaled(uint32_t factor) {
  ORX_CHECK(factor > 0);
  DblpGeneratorConfig config = DblpComplete();
  config.num_papers *= factor;
  config.num_authors *= factor;
  // Venues grow sublinearly with literature size; sqrt keeps per-venue
  // paper counts realistic while papers/authors dominate node growth.
  const auto root = static_cast<uint32_t>(std::lround(std::sqrt(factor)));
  config.num_conferences *= std::max<uint32_t>(root, 1);
  config.seed = config.seed * 1000003 + factor;
  return config;
}

DblpGeneratorConfig DblpGeneratorConfig::DblpTop() {
  DblpGeneratorConfig config;
  config.num_papers = 13'000;
  config.num_authors = 9'000;
  config.num_conferences = 40;
  config.years_per_conference = 15;
  // DBLPtop is a dense intra-community subset: Table 1 gives it 7.4 edges
  // per node vs. 4.8 for the full graph.
  config.avg_citations = 9.3;
  config.seed = 20080514;
  return config;
}

DblpGeneratorConfig DblpGeneratorConfig::Tiny(uint32_t papers,
                                              uint64_t seed) {
  DblpGeneratorConfig config;
  config.num_papers = papers;
  config.num_authors = std::max<uint32_t>(papers / 2, 4);
  config.num_conferences = std::max<uint32_t>(papers / 200, 2);
  config.years_per_conference = 5;
  config.seed = seed;
  return config;
}

DblpDataset GenerateDblp(const DblpGeneratorConfig& config) {
  ORX_CHECK(config.num_papers > 0);
  ORX_CHECK(config.num_authors > 0);
  ORX_CHECK(config.num_conferences > 0);
  ORX_CHECK(config.years_per_conference > 0);

  DblpTypes types;
  auto schema = MakeDblpSchema(&types);
  Dataset dataset(std::move(schema), "dblp-synthetic");
  graph::DataGraph& data = dataset.mutable_data();

  const uint32_t num_years =
      config.num_conferences * config.years_per_conference;
  data.ReserveNodes(config.num_papers + config.num_authors +
                    config.num_conferences + num_years);
  data.ReserveEdges(static_cast<size_t>(
      config.num_papers * (1.0 + config.avg_citations +
                           (config.max_authors_per_paper + 1) / 2.0) +
      num_years));

  Rng root(config.seed);
  Rng conf_rng = root.Fork();
  Rng author_rng = root.Fork();
  Rng paper_rng = root.Fork();
  Rng cite_rng = root.Fork();

  auto must_node = [&](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };

  // Conferences and their year instances.
  std::vector<graph::NodeId> year_nodes;
  std::vector<std::string> year_venue_strings;  // "ICDE 1997"
  year_nodes.reserve(num_years);
  const auto& locations = Locations();
  for (uint32_t c = 0; c < config.num_conferences; ++c) {
    const std::string conf_name = MakeConferenceName(c);
    const graph::NodeId conf_node = must_node(data.AddNode(
        types.conference, {{"Name", conf_name}}));
    for (uint32_t j = 0; j < config.years_per_conference; ++j) {
      const int year_value = 2008 - static_cast<int>(j) - 1;
      const std::string venue =
          conf_name + " " + std::to_string(year_value);
      const graph::NodeId year_node = must_node(data.AddNode(
          types.year,
          {{"Name", conf_name},
           {"Year", std::to_string(year_value)},
           {"Location",
            locations[conf_rng.UniformInt(locations.size())]}}));
      ORX_CHECK_OK(data.AddEdge(conf_node, year_node, types.has_instance));
      year_nodes.push_back(year_node);
      year_venue_strings.push_back(venue);
    }
  }

  // Authors, with Zipfian prolificity (low ids are prolific).
  std::vector<graph::NodeId> author_nodes;
  author_nodes.reserve(config.num_authors);
  for (uint32_t a = 0; a < config.num_authors; ++a) {
    author_nodes.push_back(must_node(
        data.AddNode(types.author, {{"Name", MakeAuthorName(author_rng)}})));
  }
  ZipfSampler author_sampler(config.num_authors, config.author_zipf_s);

  // Papers, generated in chronological order so citations point backwards.
  const auto& vocab = CsVocabulary();
  ZipfSampler title_sampler(vocab.size(), config.title_zipf_s);
  std::vector<graph::NodeId> paper_nodes;
  paper_nodes.reserve(config.num_papers);
  // papers_by_topic[t] = indices (into paper_nodes) of papers whose primary
  // topic is vocab term t; used for topic-affine citations.
  std::vector<std::vector<uint32_t>> papers_by_topic(vocab.size());
  // Preferential-attachment pool: every citation endpoint appended once.
  std::vector<uint32_t> pref_pool;
  pref_pool.reserve(static_cast<size_t>(config.num_papers *
                                        config.avg_citations));
  std::vector<uint32_t> primary_topic(config.num_papers);

  std::unordered_set<uint32_t> targets;
  std::unordered_set<graph::NodeId> paper_authors;
  for (uint32_t i = 0; i < config.num_papers; ++i) {
    // Title: a primary topic term plus Zipf-sampled extras.
    const uint32_t topic =
        static_cast<uint32_t>(title_sampler.Sample(paper_rng));
    primary_topic[i] = topic;
    const int title_len = static_cast<int>(paper_rng.UniformInt(
        config.title_terms_min, config.title_terms_max));
    std::string title = vocab[topic];
    for (int t = 1; t < title_len; ++t) {
      title += ' ';
      title += vocab[title_sampler.Sample(paper_rng)];
    }

    // Venue.
    const uint32_t venue = static_cast<uint32_t>(
        paper_rng.UniformInt(year_nodes.size()));

    // Authors: 1..max, Zipf-skewed, deduplicated.
    const int num_paper_authors =
        1 + static_cast<int>(i % config.max_authors_per_paper);
    paper_authors.clear();
    std::string authors_attr;
    for (int a = 0; a < num_paper_authors; ++a) {
      const graph::NodeId author =
          author_nodes[author_sampler.Sample(paper_rng)];
      if (!paper_authors.insert(author).second) continue;
      if (!authors_attr.empty()) authors_attr += ", ";
      authors_attr += data.AttributeValue(author, "Name");
    }

    const graph::NodeId paper = must_node(data.AddNode(
        types.paper, {{"Title", title},
                      {"Authors", authors_attr},
                      {"Year", year_venue_strings[venue]}}));
    paper_nodes.push_back(paper);
    ORX_CHECK_OK(data.AddEdge(year_nodes[venue], paper, types.contains));
    for (graph::NodeId author : paper_authors) {
      ORX_CHECK_OK(data.AddEdge(paper, author, types.by));
    }

    // Citations to earlier papers: topic-affine / preferential / uniform.
    if (i > 0) {
      const int cites = cite_rng.Poisson(config.avg_citations);
      targets.clear();
      for (int cidx = 0; cidx < cites; ++cidx) {
        const double mix = cite_rng.UniformDouble();
        uint32_t target_index;
        const auto& topic_pool = papers_by_topic[topic];
        if (mix < config.cite_topic_fraction && !topic_pool.empty()) {
          target_index = topic_pool[cite_rng.UniformInt(topic_pool.size())];
        } else if (mix < config.cite_topic_fraction +
                             config.cite_preferential_fraction &&
                   !pref_pool.empty()) {
          target_index = pref_pool[cite_rng.UniformInt(pref_pool.size())];
        } else {
          target_index = static_cast<uint32_t>(cite_rng.UniformInt(i));
        }
        if (!targets.insert(target_index).second) continue;
        ORX_CHECK(data.AddEdge(paper, paper_nodes[target_index],
                               types.cites).ok());
        pref_pool.push_back(target_index);
      }
    }
    papers_by_topic[topic].push_back(i);
  }

  dataset.Finalize();
  return DblpDataset{std::move(dataset), types};
}

}  // namespace orx::datasets
