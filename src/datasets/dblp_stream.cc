#include "datasets/dblp_stream.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <deque>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "datasets/dblp_records.h"

#ifdef ORX_HAVE_ZLIB
#include <zlib.h>
#endif

namespace orx::datasets {
namespace {

// ---------------------------------------------------------------------
// Byte sources: plain stream and (when built with zlib) gzip inflater.
// ---------------------------------------------------------------------

class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads up to `n` bytes into `out`. Returns bytes read; 0 means EOF.
  virtual StatusOr<size_t> Read(char* out, size_t n) = 0;
};

class StreamSource final : public ByteSource {
 public:
  explicit StreamSource(std::istream& in) : in_(in) {}

  StatusOr<size_t> Read(char* out, size_t n) override {
    in_.read(out, static_cast<std::streamsize>(n));
    const std::streamsize got = in_.gcount();
    if (got == 0 && !in_.eof() && in_.fail()) {
      return DataLossError("read error in DBLP XML stream");
    }
    return static_cast<size_t>(got);
  }

 private:
  std::istream& in_;
};

#ifdef ORX_HAVE_ZLIB
class GzipSource final : public ByteSource {
 public:
  explicit GzipSource(std::istream& in) : in_(in) {
    std::memset(&strm_, 0, sizeof(strm_));
    // windowBits 15 + 32: auto-detect gzip or zlib framing.
    init_ok_ = inflateInit2(&strm_, 15 + 32) == Z_OK;
  }
  ~GzipSource() override {
    if (init_ok_) inflateEnd(&strm_);
  }

  StatusOr<size_t> Read(char* out, size_t n) override {
    if (!init_ok_) return InternalError("zlib inflateInit2 failed");
    if (finished_) return size_t{0};
    strm_.next_out = reinterpret_cast<Bytef*>(out);
    strm_.avail_out = static_cast<uInt>(n);
    while (strm_.avail_out > 0) {
      if (strm_.avail_in == 0) {
        in_.read(compressed_, sizeof(compressed_));
        const std::streamsize got = in_.gcount();
        if (got == 0) {
          if (!in_.eof()) return DataLossError("read error in gzip stream");
          // EOF before Z_STREAM_END: the trailer never arrived.
          return DataLossError("truncated gzip stream");
        }
        strm_.next_in = reinterpret_cast<Bytef*>(compressed_);
        strm_.avail_in = static_cast<uInt>(got);
      }
      const int rc = inflate(&strm_, Z_NO_FLUSH);
      if (rc == Z_STREAM_END) {
        finished_ = true;
        break;
      }
      if (rc != Z_OK) {
        return DataLossError(std::string("gzip decompression failed: ") +
                             (strm_.msg != nullptr ? strm_.msg : zError(rc)));
      }
    }
    return n - strm_.avail_out;
  }

 private:
  std::istream& in_;
  z_stream strm_;
  char compressed_[1 << 16];
  bool init_ok_ = false;
  bool finished_ = false;
};
#endif  // ORX_HAVE_ZLIB

// ---------------------------------------------------------------------
// Record-boundary splitting.
// ---------------------------------------------------------------------

/// Earliest top-level record start at or after `from`. Safe to treat any
/// occurrence as a boundary: XML escapes '<' in text and attribute
/// values, records do not nest, and the only other '<' producers between
/// records (comments) are rare enough in DBLP dumps that a record tag
/// inside one is not worth a full tokenizer on the split path.
size_t FindRecordStart(const std::string& buffer, size_t from) {
  const size_t a = buffer.find("<inproceedings", from);
  const size_t b = buffer.find("<article", from);
  return std::min(a, b);
}

size_t CountLines(std::string_view text) {
  return static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
}

/// Validates that the bytes before the <dblp> root are only whitespace,
/// comments, the XML declaration, and DOCTYPE — the same set
/// XmlScanner::SkipNonContent accepts. `*line` advances over newlines.
Status ValidatePrologue(std::string_view prologue, int* line) {
  size_t i = 0;
  auto skip_until = [&](std::string_view term) {
    while (i < prologue.size() &&
           prologue.substr(i, term.size()) != term) {
      if (prologue[i] == '\n') ++*line;
      ++i;
    }
    i += std::min(term.size(), prologue.size() - i);
  };
  while (i < prologue.size()) {
    const char c = prologue[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') ++*line;
      ++i;
    } else if (prologue.substr(i, 4) == "<!--") {
      skip_until("-->");
    } else if (prologue.substr(i, 2) == "<?") {
      skip_until("?>");
    } else if (prologue.substr(i, 2) == "<!") {
      skip_until(">");
    } else {
      return DataLossError("DBLP XML, line " + std::to_string(*line) +
                           ": expected <dblp> root element");
    }
  }
  return Status::OK();
}

/// One splitter work unit: a record-aligned XML fragment plus the slot
/// its worker fills. Units live in a deque so references stay stable
/// while new units are appended behind the workers' backs.
struct ParseUnit {
  std::string xml;
  int first_line = 1;
  Status status = Status::OK();
  std::vector<internal::DblpRawRecord> records;
};

StatusOr<DblpParseResult> ParseStream(ByteSource& source,
                                      const DblpStreamOptions& options) {
  const size_t unit_bytes = std::max<size_t>(options.unit_bytes, 1);
  const size_t read_bytes =
      std::max<size_t>(options.read_chunk_bytes, size_t{4} << 10);

  // `units` must outlive `pool`: the pool's destructor drains tasks that
  // write into unit slots, so it is declared second (destroyed first).
  std::deque<ParseUnit> units;
  ThreadPool pool(options.num_threads);

  std::string buffer;  // bytes not yet handed to a unit
  int next_line = 1;   // original-file line number of buffer[0]
  bool saw_root = false;

  auto dispatch = [&](std::string fragment) {
    if (fragment.empty()) return;
    units.emplace_back();
    ParseUnit& unit = units.back();
    unit.xml = std::move(fragment);
    unit.first_line = next_line;
    next_line += static_cast<int>(CountLines(unit.xml));
    pool.Submit([&unit] {
      auto parsed = internal::ParseDblpRecords(unit.xml, unit.first_line);
      if (parsed.ok()) {
        unit.records = std::move(*parsed);
      } else {
        unit.status = parsed.status();
      }
    });
  };

  std::vector<char> chunk(read_bytes);
  bool closed = false;
  while (!closed) {
    auto got_or = source.Read(chunk.data(), chunk.size());
    if (!got_or.ok()) return got_or.status();
    const size_t got = *got_or;
    if (got > 0) buffer.append(chunk.data(), got);

    if (!saw_root) {
      const size_t root = buffer.find("<dblp>");
      if (root == std::string::npos) {
        // A prologue over a few MB is not a DBLP file.
        if (got > 0 && buffer.size() < (size_t{4} << 20)) continue;
        int line = 1;
        ORX_RETURN_IF_ERROR(ValidatePrologue(buffer, &line));
        return DataLossError("DBLP XML, line " + std::to_string(line) +
                             ": expected <dblp> root element");
      }
      ORX_RETURN_IF_ERROR(
          ValidatePrologue(std::string_view(buffer).substr(0, root),
                           &next_line));
      buffer.erase(0, root + 6);  // consume "<dblp>" too
      saw_root = true;
    }

    // The close tag cannot straddle an erase point (cuts happen at
    // record starts), so scanning the live buffer each round finds it
    // exactly once, possibly after a refill completes a partial tail.
    const size_t close = buffer.find("</dblp>");
    if (close != std::string::npos) {
      dispatch(buffer.substr(0, close));
      // Content after </dblp> is ignored, matching ParseDblpXml.
      closed = true;
      break;
    }
    if (got == 0) {
      return DataLossError(
          "DBLP XML, line " +
          std::to_string(next_line + static_cast<int>(CountLines(buffer))) +
          ": missing </dblp>");
    }

    // Cut record-aligned units while more than one unit is buffered.
    while (buffer.size() > unit_bytes) {
      const size_t cut = FindRecordStart(buffer, unit_bytes);
      if (cut == std::string::npos || cut == 0) break;
      dispatch(buffer.substr(0, cut));
      buffer.erase(0, cut);
    }
  }

  pool.Wait();

  // Deterministic merge: concatenate unit results in input order, so the
  // shred sees the same record sequence ParseDblpXml would.
  size_t total = 0;
  for (const ParseUnit& unit : units) total += unit.records.size();
  std::vector<internal::DblpRawRecord> records;
  records.reserve(total);
  for (ParseUnit& unit : units) {
    ORX_RETURN_IF_ERROR(unit.status);
    std::move(unit.records.begin(), unit.records.end(),
              std::back_inserter(records));
  }
  return internal::ShredDblpRecords(std::move(records));
}

}  // namespace

StatusOr<DblpParseResult> ParseDblpXmlStream(
    std::istream& in, const DblpStreamOptions& options) {
  StreamSource source(in);
  return ParseStream(source, options);
}

StatusOr<DblpParseResult> ParseDblpXmlStreamFile(
    const std::string& path, const DblpStreamOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open DBLP XML file: " + path);
  }
  const int c0 = in.get();
  const int c1 = in.get();
  const bool gzip = c0 == 0x1f && c1 == 0x8b;
  in.clear();
  in.seekg(0);
  if (gzip) {
#ifdef ORX_HAVE_ZLIB
    GzipSource source(in);
    return ParseStream(source, options);
#else
    return UnimplementedError(
        "gzip DBLP input requires a build with zlib: " + path);
#endif
  }
  StreamSource source(in);
  return ParseStream(source, options);
}

}  // namespace orx::datasets
