#include "datasets/vocabulary.h"

namespace orx::datasets {
namespace {

// Zipf rank order: earlier terms are (much) more frequent in titles. The
// Table 2 query terms are deliberately spread across popularity ranks —
// "query"/"search" are popular, "olap"/"proximity" are mid-tail — so base
// sets span realistic sizes.
const char* const kCsTerms[] = {
    "data", "query", "database", "systems", "search", "distributed",
    "processing", "model", "analysis", "web", "efficient", "management",
    "performance", "xml", "mining", "optimization", "parallel", "learning",
    "networks", "algorithms", "scalable", "indexing", "storage", "streams",
    "relational", "knowledge", "information", "retrieval", "semantic",
    "graph", "spatial", "temporal", "transaction", "concurrency", "recovery",
    "views", "warehouse", "olap", "cube", "aggregation", "ranked", "keyword",
    "proximity", "clustering", "classification", "approximate", "sampling",
    "histograms", "cardinality", "join", "selectivity", "estimation",
    "adaptive", "incremental", "materialized", "schema", "integration",
    "mediation", "wrappers", "ontology", "annotation", "provenance",
    "lineage", "workflow", "scientific", "sensor", "mobile", "peer",
    "caching", "replication", "partitioning", "sharding", "consistency",
    "availability", "fault", "tolerance", "byzantine", "consensus",
    "gossip", "epidemic", "multicast", "routing", "overlay", "topology",
    "latency", "throughput", "bandwidth", "congestion", "scheduling",
    "allocation", "fairness", "isolation", "serializability", "snapshot",
    "versioning", "logging", "checkpointing", "compression", "encoding",
    "encryption", "privacy", "anonymization", "security", "access",
    "control", "authentication", "auditing", "compliance", "regulatory",
    "federated", "decentralized", "blockchain", "ledger", "immutable",
    "probabilistic", "uncertain", "fuzzy", "ranking", "scoring", "top",
    "nearest", "neighbor", "similarity", "distance", "metric", "embedding",
    "vector", "dimensionality", "reduction", "projection", "hashing",
    "bloom", "sketch", "synopsis", "wavelet", "fourier", "regression",
    "bayesian", "markov", "hidden", "inference", "belief", "propagation",
    "entropy", "divergence", "likelihood", "gradient", "convex", "stochastic",
    "reinforcement", "supervised", "unsupervised", "ensemble", "boosting",
    "bagging", "forests", "trees", "pruning", "splitting", "hierarchical",
    "agglomerative", "density", "outlier", "anomaly", "detection", "fraud",
    "intrusion", "monitoring", "alerting", "visualization", "interactive",
    "exploratory", "faceted", "browsing", "navigation", "hypertext",
    "hyperlink", "pagerank", "authority", "hubs", "crawling", "deep",
    "surfacing", "extraction", "wrapper", "induction", "segmentation",
    "tokenization", "stemming", "stopwords", "thesaurus", "synonyms",
    "polysemy", "disambiguation", "entity", "resolution", "deduplication",
    "matching", "alignment", "mapping", "transformation", "cleaning",
    "quality", "completeness", "accuracy", "timeliness", "freshness",
    "staleness", "synchronization", "replica", "quorum", "leases",
    "locks", "deadlock", "livelock", "contention", "hotspot", "skew",
    "balancing", "migration", "elasticity", "provisioning", "virtualization",
    "containers", "orchestration", "microservices", "serverless",
    "functions", "triggers", "rules", "active", "events", "subscriptions",
    "publish", "notification", "messaging", "queues", "brokers", "kafka",
    "logs", "batch", "interactive2", "realtime", "offline", "online",
    "hybrid", "transactional", "analytical", "workloads", "benchmarks",
    "tpc", "microbenchmarks", "profiling", "instrumentation", "tracing",
    "debugging", "testing", "verification", "validation", "correctness",
    "soundness", "theory", "complexity", "bounds", "lower", "upper",
    "optimal", "heuristics", "greedy", "dynamic", "programming",
    "enumeration", "pruned", "branch", "bound", "relaxation", "linear",
    "integer", "constraints", "satisfaction", "datalog", "recursion",
    "fixpoint", "evaluation", "rewriting", "unfolding", "magic", "sets",
    "conjunctive", "queries2", "containment", "equivalence", "minimization",
    "decidability", "expressiveness", "calculus", "algebra", "operators",
    "selection", "projection2", "union", "difference", "intersection",
    "grouping", "sorting", "duplicate", "elimination", "pipelining",
    "blocking", "operators2", "iterators", "volcano", "vectorized",
    "compiled", "codegen", "llvm", "simd", "gpu", "fpga", "accelerators",
    "memory", "cache", "buffer", "pool", "eviction", "prefetching",
    "locality", "numa", "persistent", "nonvolatile", "flash", "disk",
    "tiering", "cold", "hot", "archive", "retention", "lifecycle",
};

// "cancer" is deliberately placed in the mid-tail (rank ~36): DS7cancer is
// the ~5% cancer-related subset of DS7 (Table 1), so the keyword must be
// selective rather than ubiquitous.
const char* const kBioTerms[] = {
    "protein", "gene", "expression", "cell", "human", "dna",
    "rna", "binding", "receptor", "kinase", "tumor", "mutation", "sequence",
    "genome", "transcription", "factor", "pathway", "signaling", "apoptosis",
    "regulation", "activation", "inhibition", "enzyme", "antibody",
    "antigen", "immune", "response", "therapy", "treatment", "clinical",
    "patient", "disease", "carcinoma", "leukemia", "lymphoma", "melanoma",
    "cancer",
    "breast", "lung", "colon", "prostate", "ovarian", "pancreatic",
    "metastasis", "proliferation", "differentiation", "growth", "cycle",
    "checkpoint", "repair", "damage", "oxidative", "stress", "inflammation",
    "cytokine", "interleukin", "interferon", "necrosis", "tnf", "p53",
    "brca1", "brca2", "egfr", "her2", "kras", "myc", "ras", "raf", "mek",
    "erk", "akt", "mtor", "pi3k", "wnt", "notch", "hedgehog", "jak",
    "stat", "nfkb", "caspase", "bcl2", "bax", "cyclin", "cdk", "rb",
    "telomerase", "methylation", "acetylation", "phosphorylation",
    "ubiquitination", "proteasome", "autophagy", "angiogenesis", "vegf",
    "hypoxia", "hif", "glycolysis", "metabolism", "mitochondria",
    "membrane", "nucleus", "cytoplasm", "chromatin", "histone", "promoter",
    "enhancer", "exon", "intron", "splicing", "translation", "ribosome",
    "codon", "polymerase", "helicase", "ligase", "nuclease", "primer",
    "amplification", "pcr", "sequencing", "microarray", "proteomics",
    "genomics", "transcriptomics", "bioinformatics", "annotation2",
    "homology", "ortholog", "paralog", "phylogenetic", "evolution",
    "conservation", "domain", "motif", "structure", "folding", "crystal",
    "nmr", "spectrometry", "chromatography", "electrophoresis", "blot",
    "staining", "microscopy", "fluorescence", "imaging", "biomarker",
    "diagnosis", "prognosis", "survival", "recurrence", "resistance",
    "chemotherapy", "radiation", "immunotherapy", "targeted", "inhibitor",
    "agonist", "antagonist", "ligand", "substrate", "cofactor", "vitamin",
    "hormone", "insulin", "glucose", "lipid", "cholesterol", "fatty",
    "amino", "peptide", "polymorphism", "allele", "locus", "chromosome",
    "karyotype", "aneuploidy", "translocation", "deletion", "insertion",
    "duplication", "inversion", "fusion", "oncogene", "suppressor",
    "penetrance", "heritability", "pedigree", "cohort", "epidemiology",
};

const char* const kFirstNames[] = {
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Christopher", "Karen",
    "Charles", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
    "Sandra", "Mark", "Margaret", "Donald", "Ashley", "Steven", "Kimberly",
    "Andrew", "Emily", "Paul", "Donna", "Joshua", "Michelle", "Kenneth",
    "Carol", "Kevin", "Amanda", "Brian", "Melissa", "George", "Deborah",
    "Timothy", "Stephanie", "Ronald", "Rebecca", "Jason", "Laura", "Edward",
    "Helen", "Jeffrey", "Sharon", "Ryan", "Cynthia", "Jacob", "Kathleen",
    "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan",
    "Anna", "Stephen", "Ruth", "Larry", "Brenda", "Justin", "Pamela",
    "Scott", "Nicole", "Brandon", "Katherine", "Benjamin", "Virginia",
    "Samuel", "Catherine", "Gregory", "Christine", "Alexander", "Samantha",
    "Patrick", "Debra", "Frank", "Janet", "Raymond", "Rachel", "Jack",
    "Carolyn", "Dennis", "Emma", "Jerry", "Maria", "Tyler", "Heather",
    "Aaron", "Diane", "Jose", "Julie", "Adam", "Joyce", "Nathan",
    "Victoria", "Henry", "Kelly", "Zachary", "Christina", "Douglas",
    "Lauren", "Peter", "Joan", "Kyle", "Evelyn", "Noah", "Olivia", "Ethan",
    "Judith", "Jeremy", "Megan", "Walter", "Cheryl", "Christian", "Martha",
    "Keith", "Andrea", "Roger", "Frances", "Terry", "Hannah", "Austin",
    "Jacqueline", "Sean", "Ann", "Gerald", "Gloria", "Carl", "Jean",
    "Harold", "Kathryn", "Dylan", "Alice", "Arthur", "Teresa", "Lawrence",
    "Sara", "Jordan", "Janice", "Jesse", "Doris", "Bryan", "Madison",
    "Billy", "Julia", "Bruce", "Grace", "Gabriel", "Judy", "Joe", "Abigail",
    "Logan", "Marie", "Alan", "Denise", "Juan", "Beverly", "Albert",
    "Amber", "Willie", "Theresa", "Elijah", "Marilyn", "Wayne", "Danielle",
    "Randy", "Diana", "Vincent", "Brittany", "Mason", "Natalie", "Roy",
    "Sophia", "Ralph", "Rose", "Bobby", "Isabella", "Russell", "Alexis",
    "Bradley", "Kayla", "Philip", "Charlotte", "Eugene", "Lori",
};

const char* const kLastNames[] = {
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
    "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin",
    "Wallace", "Moreno", "West", "Cole", "Hayes", "Bryant", "Herrera",
    "Gibson", "Ellis", "Tran", "Medina", "Aguilar", "Stevens", "Murray",
    "Ford", "Castro", "Marshall", "Owens", "Harrison", "Fernandez",
    "Mcdonald", "Woods", "Washington", "Kennedy", "Wells", "Vargas",
    "Henry", "Chen", "Freeman", "Webb", "Tucker", "Guzman", "Burns",
    "Crawford", "Olson", "Simpson", "Porter", "Hunter", "Gordon", "Mendez",
    "Silva", "Shaw", "Snyder", "Mason", "Dixon", "Munoz", "Hunt", "Hicks",
    "Holmes", "Palmer", "Wagner", "Black", "Robertson", "Boyd", "Rose",
    "Stone", "Salazar", "Fox", "Warren", "Mills", "Meyer", "Rice",
    "Schmidt", "Garza", "Daniels", "Ferguson", "Nichols", "Stephens",
    "Soto", "Weaver", "Ryan", "Gardner", "Payne", "Grant", "Dunn",
};

const char* const kConferences[] = {
    "ICDE", "SIGMOD", "VLDB", "PODS", "EDBT", "CIKM", "SIGIR", "WWW",
    "KDD", "ICDM", "SDM", "ICML", "NIPS", "AAAI", "IJCAI", "SOSP", "OSDI",
    "NSDI", "SIGCOMM", "INFOCOM", "MOBICOM", "PODC", "SPAA", "STOC",
    "FOCS", "SODA", "ICALP", "CAV", "POPL", "PLDI", "OOPSLA", "ICSE",
    "FSE", "ASE", "ISSTA", "USENIX", "FAST", "EUROSYS", "MIDDLEWARE",
    "ICDCS",
};

const char* const kLocations[] = {
    "Birmingham", "San Diego", "Sydney", "Tokyo", "Paris", "Heidelberg",
    "Bombay", "New York", "Seattle", "San Francisco", "Boston", "Chicago",
    "Atlanta", "Orlando", "Tucson", "Montreal", "Toronto", "Vancouver",
    "London", "Edinburgh", "Cambridge", "Athens", "Rome", "Vienna",
    "Berlin", "Munich", "Zurich", "Amsterdam", "Brussels", "Copenhagen",
    "Stockholm", "Oslo", "Helsinki", "Madrid", "Barcelona", "Lisbon",
    "Istanbul", "Cairo", "Singapore", "Hong Kong", "Beijing", "Shanghai",
    "Seoul", "Taipei", "Melbourne", "Auckland", "Santiago", "Rio de Janeiro",
};

template <size_t N>
std::vector<std::string> ToVector(const char* const (&arr)[N]) {
  return std::vector<std::string>(std::begin(arr), std::end(arr));
}

}  // namespace

const std::vector<std::string>& CsVocabulary() {
  static const auto& v = *new std::vector<std::string>(ToVector(kCsTerms));
  return v;
}

const std::vector<std::string>& BioVocabulary() {
  static const auto& v = *new std::vector<std::string>(ToVector(kBioTerms));
  return v;
}

const std::vector<std::string>& FirstNames() {
  static const auto& v = *new std::vector<std::string>(ToVector(kFirstNames));
  return v;
}

const std::vector<std::string>& LastNames() {
  static const auto& v = *new std::vector<std::string>(ToVector(kLastNames));
  return v;
}

const std::vector<std::string>& ConferenceNames() {
  static const auto& v =
      *new std::vector<std::string>(ToVector(kConferences));
  return v;
}

const std::vector<std::string>& Locations() {
  static const auto& v = *new std::vector<std::string>(ToVector(kLocations));
  return v;
}

}  // namespace orx::datasets
