#include "datasets/bio_generator.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "datasets/vocabulary.h"
#include "datasets/zipf.h"
#include "text/tokenizer.h"

namespace orx::datasets {

BioGeneratorConfig BioGeneratorConfig::Ds7() {
  BioGeneratorConfig config;
  config.num_pubmed = 350'000;
  config.num_genes = 39'000;
  config.num_proteins = 130'000;
  config.num_nucleotides = 180'000;
  config.seed = 20080701;
  return config;
}

BioGeneratorConfig BioGeneratorConfig::Tiny(uint32_t pubs, uint64_t seed) {
  BioGeneratorConfig config;
  config.num_pubmed = pubs;
  config.num_genes = std::max<uint32_t>(pubs / 8, 2);
  config.num_proteins = std::max<uint32_t>(pubs / 3, 2);
  config.num_nucleotides = std::max<uint32_t>(pubs / 2, 2);
  config.seed = seed;
  return config;
}

BioDataset GenerateBio(const BioGeneratorConfig& config) {
  ORX_CHECK(config.num_pubmed > 0);
  ORX_CHECK(config.num_genes > 0);
  ORX_CHECK(config.num_proteins > 0);
  ORX_CHECK(config.num_nucleotides > 0);

  BioTypes types;
  auto schema = MakeBioSchema(&types);
  Dataset dataset(std::move(schema), "bio-synthetic");
  graph::DataGraph& data = dataset.mutable_data();
  data.ReserveNodes(config.num_pubmed + config.num_genes +
                    config.num_proteins + config.num_nucleotides);

  Rng root(config.seed);
  Rng pub_rng = root.Fork();
  Rng gene_rng = root.Fork();
  Rng protein_rng = root.Fork();
  Rng nucleotide_rng = root.Fork();

  const auto& vocab = BioVocabulary();
  ZipfSampler term_sampler(vocab.size(), config.zipf_s);

  auto must_node = [&](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };

  // Publications: Zipf-topical titles; topic-affine + preferential
  // citations to earlier publications.
  std::vector<graph::NodeId> pubs;
  pubs.reserve(config.num_pubmed);
  std::vector<std::vector<uint32_t>> pubs_by_topic(vocab.size());
  std::vector<uint32_t> pref_pool;
  std::unordered_set<uint32_t> targets;
  for (uint32_t i = 0; i < config.num_pubmed; ++i) {
    const uint32_t topic =
        static_cast<uint32_t>(term_sampler.Sample(pub_rng));
    const int title_len = static_cast<int>(pub_rng.UniformInt(
        config.title_terms_min, config.title_terms_max));
    std::string title = vocab[topic];
    for (int t = 1; t < title_len; ++t) {
      title += ' ';
      title += vocab[term_sampler.Sample(pub_rng)];
    }
    const graph::NodeId pub = must_node(data.AddNode(
        types.pubmed, {{"Title", title},
                       {"PMID", "PMID" + std::to_string(1000000 + i)}}));
    pubs.push_back(pub);

    if (i > 0) {
      const int cites = pub_rng.Poisson(config.avg_pub_citations);
      targets.clear();
      const auto& topic_pool = pubs_by_topic[topic];
      for (int c = 0; c < cites; ++c) {
        const double mix = pub_rng.UniformDouble();
        uint32_t target_index;
        if (mix < 0.5 && !topic_pool.empty()) {
          target_index = topic_pool[pub_rng.UniformInt(topic_pool.size())];
        } else if (mix < 0.8 && !pref_pool.empty()) {
          target_index = pref_pool[pub_rng.UniformInt(pref_pool.size())];
        } else {
          target_index = static_cast<uint32_t>(pub_rng.UniformInt(i));
        }
        if (!targets.insert(target_index).second) continue;
        ORX_CHECK(
            data.AddEdge(pub, pubs[target_index], types.pubmed_cites).ok());
        pref_pool.push_back(target_index);
      }
    }
    pubs_by_topic[topic].push_back(i);
  }

  // Genes: adopt a topic, associate with same-topic publications, encode
  // proteins that inherit the topic.
  std::vector<graph::NodeId> genes;
  std::vector<uint32_t> gene_topic;
  genes.reserve(config.num_genes);
  auto sample_topic_pub = [&](Rng& rng, uint32_t topic) -> graph::NodeId {
    const auto& pool = pubs_by_topic[topic];
    if (!pool.empty() && rng.UniformDouble() < 0.7) {
      return pubs[pool[rng.UniformInt(pool.size())]];
    }
    return pubs[rng.UniformInt(pubs.size())];
  };
  for (uint32_t g = 0; g < config.num_genes; ++g) {
    const uint32_t topic =
        static_cast<uint32_t>(term_sampler.Sample(gene_rng));
    gene_topic.push_back(topic);
    const graph::NodeId gene = must_node(data.AddNode(
        types.gene, {{"Symbol", "GENE" + std::to_string(g)},
                     {"Description", vocab[topic] + " associated gene"}}));
    genes.push_back(gene);
    const int pubs_count = gene_rng.Poisson(config.avg_gene_pubs);
    targets.clear();
    for (int p = 0; p < pubs_count; ++p) {
      const graph::NodeId pub = sample_topic_pub(gene_rng, topic);
      if (!targets.insert(pub).second) continue;
      ORX_CHECK_OK(data.AddEdge(gene, pub, types.gene_pubmed));
    }
  }

  // Proteins: each belongs to a gene (round-robin plus Poisson extras via
  // avg_gene_proteins), inherits its topic, references publications.
  std::vector<graph::NodeId> proteins;
  proteins.reserve(config.num_proteins);
  for (uint32_t p = 0; p < config.num_proteins; ++p) {
    const uint32_t gene_index =
        static_cast<uint32_t>(protein_rng.UniformInt(genes.size()));
    const uint32_t topic = gene_topic[gene_index];
    const graph::NodeId protein = must_node(data.AddNode(
        types.protein,
        {{"Accession", "PROT" + std::to_string(p)},
         {"Description", vocab[topic] + " protein product"}}));
    proteins.push_back(protein);
    ORX_CHECK(
        data.AddEdge(genes[gene_index], protein, types.gene_protein).ok());
    const int pubs_count = protein_rng.Poisson(config.avg_protein_pubs);
    targets.clear();
    for (int q = 0; q < pubs_count; ++q) {
      const graph::NodeId pub = sample_topic_pub(protein_rng, topic);
      if (!targets.insert(pub).second) continue;
      ORX_CHECK_OK(data.AddEdge(protein, pub, types.protein_pubmed));
    }
  }
  // avg_gene_proteins governs extra gene->protein links beyond the
  // one-per-protein membership edge.
  const double extra_links =
      std::max(0.0, config.avg_gene_proteins - 1.0) * config.num_genes;
  for (double added = 0; added < extra_links; ++added) {
    const graph::NodeId gene = genes[protein_rng.UniformInt(genes.size())];
    const graph::NodeId protein =
        proteins[protein_rng.UniformInt(proteins.size())];
    // Duplicate (gene, protein) pairs are possible but rare; tolerate them
    // by skipping failures is unnecessary since AddEdge allows parallel
    // edges only across types — it allows duplicates structurally, so we
    // simply add (ObjectRank treats them as extra flow capacity).
    ORX_CHECK_OK(data.AddEdge(gene, protein, types.gene_protein));
  }

  // Nucleotides: attach to a gene and to one of its proteins.
  for (uint32_t u = 0; u < config.num_nucleotides; ++u) {
    const uint32_t gene_index =
        static_cast<uint32_t>(nucleotide_rng.UniformInt(genes.size()));
    const uint32_t topic = gene_topic[gene_index];
    const graph::NodeId nucleotide = must_node(data.AddNode(
        types.nucleotide,
        {{"Accession", "NM" + std::to_string(100000 + u)},
         {"Description", vocab[topic] + " transcript"}}));
    ORX_CHECK(data.AddEdge(nucleotide, genes[gene_index],
                           types.nucleotide_gene).ok());
    const graph::NodeId protein =
        proteins[nucleotide_rng.UniformInt(proteins.size())];
    ORX_CHECK(data.AddEdge(nucleotide, protein,
                           types.nucleotide_protein).ok());
  }

  dataset.Finalize();
  return BioDataset{std::move(dataset), types};
}

BioDataset ExtractBioSubset(const BioDataset& full,
                            const std::string& keyword) {
  BioTypes types;
  auto schema = MakeBioSchema(&types);

  const graph::DataGraph& data = full.dataset.data();
  const text::Corpus& corpus = full.dataset.corpus();
  std::vector<bool> keep(data.num_nodes(), false);
  auto term = corpus.TermIdOf(text::NormalizeTerm(keyword));
  if (term.has_value()) {
    for (const text::Posting& p : corpus.Postings(*term)) {
      if (data.NodeType(p.doc) == full.types.pubmed) keep[p.doc] = true;
    }
  }
  // Section 6: "PubMed publications related to 'cancer' and all
  // biological *entities* related to these publications" — the expansion
  // adds adjacent genes/proteins/nucleotides but NOT neighboring
  // publications (which would snowball the subset).
  std::vector<bool> entity(data.num_nodes(), false);
  for (const graph::DataEdge& e : data.edges()) {
    if (keep[e.to] && data.NodeType(e.from) != full.types.pubmed) {
      entity[e.from] = true;
    }
    if (keep[e.from] && data.NodeType(e.to) != full.types.pubmed) {
      entity[e.to] = true;
    }
  }
  for (graph::NodeId v = 0; v < data.num_nodes(); ++v) {
    if (entity[v]) keep[v] = true;
  }
  auto induced = InducedSubgraph(data, keep, /*expand_hops=*/0, schema.get());

  Dataset dataset(std::move(schema),
                  full.dataset.name() + "-" + keyword + "-subset");
  dataset.ResetData(std::move(induced));
  dataset.Finalize();
  return BioDataset{std::move(dataset), types};
}

}  // namespace orx::datasets
