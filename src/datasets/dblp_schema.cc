#include "datasets/dblp_schema.h"

#include "common/check.h"

namespace orx::datasets {

std::unique_ptr<graph::SchemaGraph> MakeDblpSchema(DblpTypes* types) {
  ORX_CHECK(types != nullptr);
  auto schema = std::make_unique<graph::SchemaGraph>();
  auto must = [](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };
  types->paper = must(schema->AddNodeType("Paper"));
  types->conference = must(schema->AddNodeType("Conference"));
  types->year = must(schema->AddNodeType("Year"));
  types->author = must(schema->AddNodeType("Author"));

  types->cites = must(schema->AddEdgeType(types->paper, types->paper,
                                          "cites"));
  types->has_instance = must(
      schema->AddEdgeType(types->conference, types->year, "hasInstance"));
  types->contains =
      must(schema->AddEdgeType(types->year, types->paper, "contains"));
  types->by = must(schema->AddEdgeType(types->paper, types->author, "by"));
  return schema;
}

StatusOr<DblpTypes> DblpTypesFromSchema(const graph::SchemaGraph& schema) {
  DblpTypes types;
  auto get_type = [&](const char* label, graph::TypeId* out) -> Status {
    auto id = schema.NodeTypeByLabel(label);
    if (!id.ok()) return id.status();
    *out = *id;
    return Status::OK();
  };
  auto get_edge = [&](const char* role, graph::EdgeTypeId* out) -> Status {
    auto id = schema.EdgeTypeByRole(role);
    if (!id.ok()) return id.status();
    *out = *id;
    return Status::OK();
  };
  ORX_RETURN_IF_ERROR(get_type("Paper", &types.paper));
  ORX_RETURN_IF_ERROR(get_type("Conference", &types.conference));
  ORX_RETURN_IF_ERROR(get_type("Year", &types.year));
  ORX_RETURN_IF_ERROR(get_type("Author", &types.author));
  ORX_RETURN_IF_ERROR(get_edge("cites", &types.cites));
  ORX_RETURN_IF_ERROR(get_edge("hasInstance", &types.has_instance));
  ORX_RETURN_IF_ERROR(get_edge("contains", &types.contains));
  ORX_RETURN_IF_ERROR(get_edge("by", &types.by));
  return types;
}

graph::TransferRates DblpGroundTruthRates(const graph::SchemaGraph& schema,
                                          const DblpTypes& types) {
  graph::TransferRates rates(schema, 0.0);
  // Figure 3: PP=0.7 (citing), PF=0 (being cited confers nothing on the
  // citing paper), PA=0.2, AP=0.2, CY=0.3, YC=0.3, YP=0.3, PY=0.1.
  ORX_CHECK_OK(rates.SetBoth(types.cites, 0.7, 0.0));
  ORX_CHECK_OK(rates.SetBoth(types.by, 0.2, 0.2));
  ORX_CHECK_OK(rates.SetBoth(types.has_instance, 0.3, 0.3));
  ORX_CHECK_OK(rates.SetBoth(types.contains, 0.3, 0.1));
  return rates;
}

graph::TransferRates DblpUniformRates(const graph::SchemaGraph& schema,
                                      double value) {
  return graph::TransferRates(schema, value);
}

std::vector<double> DblpRateVector(const graph::TransferRates& rates,
                                   const DblpTypes& types) {
  using graph::Direction;
  return {
      rates.Get(types.cites, Direction::kForward),         // PP
      rates.Get(types.cites, Direction::kBackward),        // PF
      rates.Get(types.by, Direction::kForward),            // PA
      rates.Get(types.by, Direction::kBackward),           // AP
      rates.Get(types.has_instance, Direction::kForward),  // CY
      rates.Get(types.has_instance, Direction::kBackward), // YC
      rates.Get(types.contains, Direction::kForward),      // YP
      rates.Get(types.contains, Direction::kBackward),     // PY
  };
}

std::vector<std::string> DblpRateVectorNames() {
  return {"PP", "PF", "PA", "AP", "CY", "YC", "YP", "PY"};
}

}  // namespace orx::datasets
