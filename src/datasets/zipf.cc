#include "datasets/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orx::datasets {

ZipfSampler::ZipfSampler(size_t n, double s) {
  ORX_CHECK(n > 0);
  ORX_CHECK(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  const double inv_total = 1.0 / acc;
  for (double& c : cdf_) c *= inv_total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t k) const {
  ORX_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace orx::datasets
