#ifndef ORX_DATASETS_DATASET_H_
#define ORX_DATASETS_DATASET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/authority_graph.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "text/corpus.h"

namespace orx::datasets {

/// A ready-to-query dataset: schema + data graph + the derived indexes
/// (authority transfer CSR and text corpus). Owns everything; move-only.
/// Internals live behind unique_ptr so moving a Dataset never invalidates
/// the cross-references (DataGraph holds a pointer to its SchemaGraph).
class Dataset {
 public:
  /// Takes ownership of a schema and creates an empty data graph over it.
  Dataset(std::unique_ptr<graph::SchemaGraph> schema, std::string name);

  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Mutable data graph for generators/parsers; call Finalize() when done.
  graph::DataGraph& mutable_data() { return *data_; }

  /// Builds the authority graph and the corpus from the current data
  /// graph. Must be called once after population, before queries.
  /// `corpus_options` controls text indexing (e.g. metadata keywords).
  void Finalize(const text::CorpusOptions& corpus_options =
                    text::CorpusOptions());

  /// Replaces the data graph (used by subset extraction) and clears the
  /// indexes; call Finalize() again afterwards.
  void ResetData(std::unique_ptr<graph::DataGraph> data);

  bool finalized() const { return authority_ != nullptr; }

  const std::string& name() const { return name_; }
  const graph::SchemaGraph& schema() const { return *schema_; }
  const graph::DataGraph& data() const { return *data_; }

  /// Pre: finalized().
  const graph::AuthorityGraph& authority() const { return *authority_; }
  const text::Corpus& corpus() const { return *corpus_; }

  /// Total in-memory footprint (graph + indexes), the Table 1 "Size"
  /// analogue.
  size_t MemoryFootprintBytes() const;

 private:
  std::string name_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  std::unique_ptr<graph::DataGraph> data_;
  std::unique_ptr<graph::AuthorityGraph> authority_;
  std::unique_ptr<text::Corpus> corpus_;
};

/// Builds the induced data graph over the nodes selected by `seed`,
/// expanded by `expand_hops` breadth-first hops over data edges in either
/// direction, keeping every data edge whose endpoints are both selected.
/// This is how the paper derived its focused subsets: DBLPtop is the
/// databases-related subset of DBLPcomplete, DS7cancer is the subset of
/// DS7 made of PubMed publications about "cancer" plus all biological
/// entities related to them (Section 6).
///
/// The returned graph references `target_schema` if given (which must be
/// structurally identical to data.schema() — same type/edge-type ids, as
/// produced by re-running the same Make*Schema builder), else the same
/// schema instance as `data`.
std::unique_ptr<graph::DataGraph> InducedSubgraph(
    const graph::DataGraph& data, const std::vector<bool>& seed,
    int expand_hops, const graph::SchemaGraph* target_schema = nullptr);

/// Convenience: selects the nodes of `select_type` whose text contains
/// `keyword` (exact token match via the corpus), expands by `expand_hops`,
/// and returns the induced subgraph. Returns nullptr if no node matches.
std::unique_ptr<graph::DataGraph> ExtractKeywordSubset(
    const graph::DataGraph& data, const text::Corpus& corpus,
    const std::string& keyword, graph::TypeId select_type, int expand_hops);

}  // namespace orx::datasets

#endif  // ORX_DATASETS_DATASET_H_
