#ifndef ORX_DATASETS_ZIPF_H_
#define ORX_DATASETS_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace orx::datasets {

/// Samples ranks from a Zipf distribution: P(rank k) proportional to
/// 1 / (k+1)^s for k in [0, n). Term popularity in titles/abstracts and
/// author prolificity are Zipfian in the real DBLP/PubMed collections the
/// paper used; the generators draw from this sampler so base-set sizes and
/// authority concentration have realistic skew.
///
/// Implementation: precomputed CDF + binary search (n is at most a few
/// hundred thousand in our generators).
class ZipfSampler {
 public:
  /// Pre: n > 0, s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability of rank k (for tests).
  double Probability(size_t k) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace orx::datasets

#endif  // ORX_DATASETS_ZIPF_H_
