#include "datasets/bio_schema.h"

#include "common/check.h"

namespace orx::datasets {

std::unique_ptr<graph::SchemaGraph> MakeBioSchema(BioTypes* types) {
  ORX_CHECK(types != nullptr);
  auto schema = std::make_unique<graph::SchemaGraph>();
  auto must = [](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };
  types->gene = must(schema->AddNodeType("EntrezGene"));
  types->nucleotide = must(schema->AddNodeType("EntrezNucleotide"));
  types->protein = must(schema->AddNodeType("EntrezProtein"));
  types->pubmed = must(schema->AddNodeType("PubMed"));

  types->gene_pubmed = must(schema->AddEdgeType(
      types->gene, types->pubmed, "genePubMedAssociates"));
  types->protein_pubmed = must(schema->AddEdgeType(
      types->protein, types->pubmed, "proteinPubMedAssociates"));
  types->nucleotide_gene = must(schema->AddEdgeType(
      types->nucleotide, types->gene, "nucleotideGeneAssociates"));
  types->gene_protein = must(schema->AddEdgeType(
      types->gene, types->protein, "geneProteinEncodes"));
  types->nucleotide_protein = must(schema->AddEdgeType(
      types->nucleotide, types->protein, "nucleotideProteinTranslates"));
  types->pubmed_cites = must(schema->AddEdgeType(
      types->pubmed, types->pubmed, "cites"));
  return schema;
}

StatusOr<BioTypes> BioTypesFromSchema(const graph::SchemaGraph& schema) {
  BioTypes types;
  auto get_type = [&](const char* label, graph::TypeId* out) -> Status {
    auto id = schema.NodeTypeByLabel(label);
    if (!id.ok()) return id.status();
    *out = *id;
    return Status::OK();
  };
  auto get_edge = [&](const char* role, graph::EdgeTypeId* out) -> Status {
    auto id = schema.EdgeTypeByRole(role);
    if (!id.ok()) return id.status();
    *out = *id;
    return Status::OK();
  };
  ORX_RETURN_IF_ERROR(get_type("EntrezGene", &types.gene));
  ORX_RETURN_IF_ERROR(get_type("EntrezNucleotide", &types.nucleotide));
  ORX_RETURN_IF_ERROR(get_type("EntrezProtein", &types.protein));
  ORX_RETURN_IF_ERROR(get_type("PubMed", &types.pubmed));
  ORX_RETURN_IF_ERROR(get_edge("genePubMedAssociates", &types.gene_pubmed));
  ORX_RETURN_IF_ERROR(
      get_edge("proteinPubMedAssociates", &types.protein_pubmed));
  ORX_RETURN_IF_ERROR(
      get_edge("nucleotideGeneAssociates", &types.nucleotide_gene));
  ORX_RETURN_IF_ERROR(get_edge("geneProteinEncodes", &types.gene_protein));
  ORX_RETURN_IF_ERROR(
      get_edge("nucleotideProteinTranslates", &types.nucleotide_protein));
  ORX_RETURN_IF_ERROR(get_edge("cites", &types.pubmed_cites));
  return types;
}

graph::TransferRates BioGroundTruthRates(const graph::SchemaGraph& schema,
                                         const BioTypes& types) {
  graph::TransferRates rates(schema, 0.0);
  ORX_CHECK_OK(rates.SetBoth(types.pubmed_cites, 0.6, 0.0));
  ORX_CHECK_OK(rates.SetBoth(types.gene_pubmed, 0.3, 0.2));
  ORX_CHECK_OK(rates.SetBoth(types.protein_pubmed, 0.3, 0.2));
  ORX_CHECK_OK(rates.SetBoth(types.nucleotide_gene, 0.3, 0.1));
  ORX_CHECK_OK(rates.SetBoth(types.gene_protein, 0.3, 0.2));
  ORX_CHECK_OK(rates.SetBoth(types.nucleotide_protein, 0.2, 0.1));
  return rates;
}

graph::TransferRates BioUniformRates(const graph::SchemaGraph& schema,
                                     double value) {
  return graph::TransferRates(schema, value);
}

std::vector<double> BioRateVector(const graph::TransferRates& rates,
                                  const BioTypes& types) {
  using graph::Direction;
  std::vector<double> out;
  for (graph::EdgeTypeId e :
       {types.pubmed_cites, types.gene_pubmed, types.protein_pubmed,
        types.nucleotide_gene, types.gene_protein,
        types.nucleotide_protein}) {
    out.push_back(rates.Get(e, Direction::kForward));
    out.push_back(rates.Get(e, Direction::kBackward));
  }
  return out;
}

std::vector<std::string> BioRateVectorNames() {
  return {"MM", "MM'", "GM", "MG", "PM", "MP",
          "NG", "GN", "GP", "PG", "NP", "PN"};
}

}  // namespace orx::datasets
