#ifndef ORX_DATASETS_DBLP_STREAM_H_
#define ORX_DATASETS_DBLP_STREAM_H_

#include <cstddef>
#include <istream>
#include <string>

#include "common/status.h"
#include "datasets/dblp_xml.h"

namespace orx::datasets {

/// Tuning for the streaming parallel DBLP shredder.
struct DblpStreamOptions {
  /// Parser worker threads; 0 means the hardware thread count.
  size_t num_threads = 0;
  /// Target bytes of XML handed to each parser task. Smaller units give
  /// better load balance, larger ones less dispatch overhead. The
  /// splitter only cuts at record boundaries, so a unit can exceed this
  /// by one record.
  size_t unit_bytes = size_t{4} << 20;
  /// Bytes read from the source per refill of the split buffer.
  size_t read_chunk_bytes = size_t{1} << 20;
};

/// Streaming, parallel version of ParseDblpXml for paper-scale dumps
/// (the real dblp.xml is multi-GB; buffering it whole triples peak
/// memory). The pipeline:
///
///   chunked reads -> record-boundary splitter -> per-thread record
///   parsing -> deterministic in-order merge -> sequential ID shred
///
/// The splitter scans for top-level <inproceedings>/<article> starts —
/// safe because '<' cannot occur in XML text content — and cuts work
/// units of ~unit_bytes at those boundaries, so no record ever spans two
/// units. Units parse concurrently into DblpRawRecord vectors; the merge
/// concatenates them in input order, which makes the result (node ids,
/// edge order, statistics) byte-identical to ParseDblpXml on the same
/// document. Errors carry line numbers in the original file.
///
/// Only the split buffer (a few read chunks) and the parsed records are
/// resident; the raw XML is never materialized in one piece.
StatusOr<DblpParseResult> ParseDblpXmlStream(
    std::istream& in, const DblpStreamOptions& options = {});

/// Opens `path` and streams it through ParseDblpXmlStream. Files starting
/// with the gzip magic (0x1f 0x8b) are decompressed on the fly when the
/// build has zlib (ORX_HAVE_ZLIB); without zlib, gzip files return
/// kUnimplemented. Plain XML always works.
StatusOr<DblpParseResult> ParseDblpXmlStreamFile(
    const std::string& path, const DblpStreamOptions& options = {});

}  // namespace orx::datasets

#endif  // ORX_DATASETS_DBLP_STREAM_H_
