#ifndef ORX_DATASETS_DBLP_XML_H_
#define ORX_DATASETS_DBLP_XML_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "datasets/dataset.h"
#include "datasets/dblp_schema.h"

namespace orx::datasets {

/// Result of parsing a DBLP XML file: the shredded dataset (Figure 2
/// relational schema, per Section 6 "we shredded the downloaded DBLP file
/// into the relational schema of Figure 2") plus parse statistics.
struct DblpParseResult {
  Dataset dataset;
  DblpTypes types;
  size_t papers = 0;
  size_t authors = 0;
  size_t conferences = 0;
  size_t years = 0;
  /// <cite> entries whose key resolved to a parsed paper / did not.
  size_t citations_resolved = 0;
  size_t citations_unresolved = 0;
};

/// Parses the DBLP XML subset format:
///
///   <dblp>
///     <inproceedings key="conf/icde/Gray96">
///       <author>J. Gray</author> ...
///       <title>Data Cube: ...</title>
///       <year>1996</year>
///       <booktitle>ICDE</booktitle>
///       <cite>conf/x/Y97</cite> ...
///     </inproceedings>
///     ...
///   </dblp>
///
/// Supported: <inproceedings> and <article> records (articles' <journal>
/// plays the booktitle role), XML entities (&amp; &lt; &gt; &quot;
/// &apos;), comments, and the XML declaration. Authors, conferences and
/// (conference, year) instances are deduplicated by name; citations are
/// resolved by key in a second pass, so forward references work; <cite>
/// values of "..." (DBLP's unknown-reference marker) and unknown keys
/// count as unresolved and produce no edge.
///
/// The returned dataset is finalized. Errors (kDataLoss with a line
/// number) on malformed XML; records missing a title or booktitle are
/// skipped, not fatal (the real DBLP dump has such records).
StatusOr<DblpParseResult> ParseDblpXml(std::string_view xml);

/// Reads `path` and parses it.
StatusOr<DblpParseResult> ParseDblpXmlFile(const std::string& path);

/// Serializes a DBLP-schema data graph back to the XML subset format
/// (inverse of ParseDblpXml up to record order and key naming). Paper keys
/// are "paper/<node-id>".
std::string WriteDblpXml(const graph::DataGraph& data,
                         const DblpTypes& types);

}  // namespace orx::datasets

#endif  // ORX_DATASETS_DBLP_XML_H_
