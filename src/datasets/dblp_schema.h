#ifndef ORX_DATASETS_DBLP_SCHEMA_H_
#define ORX_DATASETS_DBLP_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "graph/transfer_rates.h"

namespace orx::datasets {

/// Handles into the DBLP schema graph of Figure 2:
///   Paper -cites-> Paper, Conference -hasInstance-> Year,
///   Year -contains-> Paper, Paper -by-> Author.
struct DblpTypes {
  graph::TypeId paper = graph::kInvalidTypeId;
  graph::TypeId conference = graph::kInvalidTypeId;
  graph::TypeId year = graph::kInvalidTypeId;
  graph::TypeId author = graph::kInvalidTypeId;

  graph::EdgeTypeId cites = graph::kInvalidEdgeTypeId;
  graph::EdgeTypeId has_instance = graph::kInvalidEdgeTypeId;
  graph::EdgeTypeId contains = graph::kInvalidEdgeTypeId;
  graph::EdgeTypeId by = graph::kInvalidEdgeTypeId;
};

/// Builds the DBLP schema graph (Figure 2) and fills `types`.
std::unique_ptr<graph::SchemaGraph> MakeDblpSchema(DblpTypes* types);

/// Recovers the type handles from an existing DBLP schema instance (e.g.
/// one deserialized from disk). Fails with kNotFound if `schema` is not a
/// DBLP schema.
StatusOr<DblpTypes> DblpTypesFromSchema(const graph::SchemaGraph& schema);

/// The hand-tuned authority transfer rates of the ObjectRank project
/// (Figure 3 / [BHP04]), used as ground truth by the training experiments:
/// [PP, PF, PA, AP, CY, YC, YP, PY] = [0.7, 0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1].
graph::TransferRates DblpGroundTruthRates(const graph::SchemaGraph& schema,
                                          const DblpTypes& types);

/// Rates with every slot set to `value` (the surveys start from 0.3).
graph::TransferRates DblpUniformRates(const graph::SchemaGraph& schema,
                                      double value = 0.3);

/// Projects a rate vector into the paper's reporting order
/// [PP, PF, PA, AP, CY, YC, YP, PY] (Section 6.1.1 UserVector/ObjVector).
std::vector<double> DblpRateVector(const graph::TransferRates& rates,
                                   const DblpTypes& types);

/// The slot names in the same order, for table headers.
std::vector<std::string> DblpRateVectorNames();

}  // namespace orx::datasets

#endif  // ORX_DATASETS_DBLP_SCHEMA_H_
