#ifndef ORX_DATASETS_FIGURE1_H_
#define ORX_DATASETS_FIGURE1_H_

#include "datasets/dataset.h"
#include "datasets/dblp_schema.h"

namespace orx::datasets {

/// The exact 7-node DBLP excerpt of the paper's Figure 1 / Figure 5, with
/// the node numbering of Figure 6. Used by the worked-example tests and
/// the quickstart/explain examples.
struct Figure1Dataset {
  Dataset dataset;
  DblpTypes types;

  // Node ids (v1..v7 in the paper's Figure 6).
  graph::NodeId v1_index_selection;   // "Index Selection for OLAP" (ICDE 1997)
  graph::NodeId v2_icde;              // Conference "ICDE"
  graph::NodeId v3_icde1997;          // Year "ICDE 1997", Birmingham
  graph::NodeId v4_range_queries;     // "Range Queries in OLAP Data Cubes"
  graph::NodeId v5_modeling;          // "Modeling Multidimensional Databases"
  graph::NodeId v6_agrawal;           // Author "R. Agrawal"
  graph::NodeId v7_data_cube;         // "Data Cube: A Relational Aggregation
                                      //  Operator ..." (ICDE 1996)
};

/// Builds the finalized Figure 1 dataset. Edges (validated against the
/// authority flows printed in Figure 6):
///   cites:       v1->v7, v4->v7, v4->v5, v5->v7
///   by:          v4->v6, v5->v6
///   contains:    v3->v1, v3->v5
///   hasInstance: v2->v3
///
/// Under the Figure 3 rates with d = 0.85 and Q = [OLAP], ObjectRank2
/// converges to r = [0.076, 0.002, 0.009, 0.076, 0.017, 0.025, 0.083] for
/// [v1..v7] — the vector printed in Section 4.
Figure1Dataset MakeFigure1Dataset();

}  // namespace orx::datasets

#endif  // ORX_DATASETS_FIGURE1_H_
