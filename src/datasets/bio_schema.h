#ifndef ORX_DATASETS_BIO_SCHEMA_H_
#define ORX_DATASETS_BIO_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "graph/transfer_rates.h"

namespace orx::datasets {

/// Handles into the biological schema graph of Figure 4: Entrez Gene,
/// Entrez Nucleotide, Entrez Protein and PubMed, linked by association
/// edges. The paper names one role explicitly ("genePubMedAssociates");
/// the remaining associations follow the Entrez link structure the DS7
/// collection was downloaded from: nucleotides are associated with the
/// gene they belong to, genes encode proteins, nucleotides translate to
/// proteins, proteins and genes reference PubMed publications, and
/// publications cite publications.
struct BioTypes {
  graph::TypeId gene = graph::kInvalidTypeId;
  graph::TypeId nucleotide = graph::kInvalidTypeId;
  graph::TypeId protein = graph::kInvalidTypeId;
  graph::TypeId pubmed = graph::kInvalidTypeId;

  graph::EdgeTypeId gene_pubmed = graph::kInvalidEdgeTypeId;      // Gene -> PubMed
  graph::EdgeTypeId protein_pubmed = graph::kInvalidEdgeTypeId;   // Protein -> PubMed
  graph::EdgeTypeId nucleotide_gene = graph::kInvalidEdgeTypeId;  // Nucleotide -> Gene
  graph::EdgeTypeId gene_protein = graph::kInvalidEdgeTypeId;     // Gene -> Protein
  graph::EdgeTypeId nucleotide_protein = graph::kInvalidEdgeTypeId;  // Nucleotide -> Protein
  graph::EdgeTypeId pubmed_cites = graph::kInvalidEdgeTypeId;     // PubMed -> PubMed
};

/// Builds the Figure 4 schema graph and fills `types`.
std::unique_ptr<graph::SchemaGraph> MakeBioSchema(BioTypes* types);

/// Recovers the type handles from an existing biological schema instance.
/// Fails with kNotFound if `schema` is not the Figure 4 schema.
StatusOr<BioTypes> BioTypesFromSchema(const graph::SchemaGraph& schema);

/// Plausible expert-tuned rates for the biological graph, playing the role
/// [BHP04]'s Figure 3 rates play for DBLP: publication citations carry the
/// most authority, entity-to-publication links moderate amounts, and
/// reverse associations less.
graph::TransferRates BioGroundTruthRates(const graph::SchemaGraph& schema,
                                         const BioTypes& types);

/// Rates with every slot set to `value`.
graph::TransferRates BioUniformRates(const graph::SchemaGraph& schema,
                                     double value = 0.3);

/// Rate vector in a fixed reporting order (12 slots, forward/backward per
/// edge type) with matching names, for the training-curve benchmarks.
std::vector<double> BioRateVector(const graph::TransferRates& rates,
                                  const BioTypes& types);
std::vector<std::string> BioRateVectorNames();

}  // namespace orx::datasets

#endif  // ORX_DATASETS_BIO_SCHEMA_H_
