#ifndef ORX_DATASETS_DBLP_GENERATOR_H_
#define ORX_DATASETS_DBLP_GENERATOR_H_

#include <cstdint>

#include "datasets/dataset.h"
#include "datasets/dblp_schema.h"

namespace orx::datasets {

/// Parameters of the synthetic DBLP generator. The generator produces a
/// graph conforming to the Figure 2 schema with realistic skew:
///  * Zipfian title vocabulary (popular terms yield large base sets,
///    tail terms small ones);
///  * topical + preferential-attachment citations (papers cite papers on
///    their primary topic, and highly-cited papers attract more
///    citations — the authority concentration ObjectRank exploits);
///  * Zipfian author prolificity.
struct DblpGeneratorConfig {
  uint32_t num_papers = 2000;
  uint32_t num_authors = 1200;
  uint32_t num_conferences = 10;
  uint32_t years_per_conference = 8;
  /// Mean citations per paper (Poisson).
  double avg_citations = 4.0;
  /// Authors per paper cycle through 1..max_authors_per_paper.
  int max_authors_per_paper = 4;
  int title_terms_min = 4;
  int title_terms_max = 9;
  /// Zipf skew of the title vocabulary / author prolificity.
  double title_zipf_s = 1.0;
  double author_zipf_s = 0.8;
  /// Citation target mix: topic-affine, preferential, uniform (must sum
  /// to <= 1; the remainder goes to uniform).
  double cite_topic_fraction = 0.5;
  double cite_preferential_fraction = 0.3;
  uint64_t seed = 42;

  /// Preset matching Table 1's DBLPcomplete row (876,110 nodes,
  /// ~4.17 M edges).
  static DblpGeneratorConfig DblpComplete();
  /// DBLPcomplete scaled by an integer factor (1x/10x/100x are the
  /// scale-benchmark presets; 100x is ~87 M nodes / ~420 M edges).
  /// Papers and authors scale linearly, conferences by the square root
  /// (venue counts grow much slower than paper counts), so density —
  /// edges per node — stays at the 1x preset's level. Deterministic:
  /// the seed mixes in the factor so scales are distinct but
  /// reproducible.
  static DblpGeneratorConfig DblpCompleteScaled(uint32_t factor);
  /// Preset matching Table 1's DBLPtop row (22,653 nodes, ~167 K edges —
  /// the dense databases-related subset).
  static DblpGeneratorConfig DblpTop();
  /// Small graph for unit tests (~n papers).
  static DblpGeneratorConfig Tiny(uint32_t papers, uint64_t seed = 42);
};

/// A generated DBLP dataset with its schema handles. The dataset is
/// finalized (authority graph + corpus built).
struct DblpDataset {
  Dataset dataset;
  DblpTypes types;
};

/// Runs the generator. Deterministic in the config (including seed).
DblpDataset GenerateDblp(const DblpGeneratorConfig& config);

}  // namespace orx::datasets

#endif  // ORX_DATASETS_DBLP_GENERATOR_H_
