#include "datasets/dataset.h"

#include <deque>

#include "common/check.h"
#include "text/tokenizer.h"

namespace orx::datasets {

Dataset::Dataset(std::unique_ptr<graph::SchemaGraph> schema, std::string name)
    : name_(std::move(name)), schema_(std::move(schema)) {
  ORX_CHECK(schema_ != nullptr);
  data_ = std::make_unique<graph::DataGraph>(*schema_);
}

void Dataset::Finalize(const text::CorpusOptions& corpus_options) {
  authority_ = std::make_unique<graph::AuthorityGraph>(
      graph::AuthorityGraph::Build(*data_));
  corpus_ = std::make_unique<text::Corpus>(
      text::Corpus::Build(*data_, corpus_options));
}

void Dataset::ResetData(std::unique_ptr<graph::DataGraph> data) {
  ORX_CHECK(data != nullptr);
  ORX_CHECK_MSG(&data->schema() == schema_.get(),
                "replacement data graph must use this dataset's schema");
  data_ = std::move(data);
  authority_.reset();
  corpus_.reset();
}

size_t Dataset::MemoryFootprintBytes() const {
  size_t bytes = data_->MemoryFootprintBytes();
  if (authority_ != nullptr) bytes += authority_->MemoryFootprintBytes();
  if (corpus_ != nullptr) bytes += corpus_->MemoryFootprintBytes();
  return bytes;
}

std::unique_ptr<graph::DataGraph> InducedSubgraph(
    const graph::DataGraph& data, const std::vector<bool>& seed,
    int expand_hops, const graph::SchemaGraph* target_schema) {
  const size_t n = data.num_nodes();
  ORX_CHECK(seed.size() == n);
  const graph::SchemaGraph& out_schema =
      target_schema != nullptr ? *target_schema : data.schema();
  ORX_CHECK_MSG(
      out_schema.num_node_types() == data.schema().num_node_types() &&
          out_schema.num_edge_types() == data.schema().num_edge_types(),
      "target schema must be structurally identical");

  // Undirected expansion: precompute per-node neighbor lists once.
  std::vector<bool> keep = seed;
  if (expand_hops > 0) {
    std::vector<uint32_t> degree(n, 0);
    for (const graph::DataEdge& e : data.edges()) {
      ++degree[e.from];
      ++degree[e.to];
    }
    std::vector<uint64_t> offsets(n + 1, 0);
    for (size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];
    std::vector<graph::NodeId> adj(offsets[n]);
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const graph::DataEdge& e : data.edges()) {
      adj[cursor[e.from]++] = e.to;
      adj[cursor[e.to]++] = e.from;
    }

    std::deque<std::pair<graph::NodeId, int>> frontier;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (keep[v]) frontier.emplace_back(v, 0);
    }
    while (!frontier.empty()) {
      auto [v, depth] = frontier.front();
      frontier.pop_front();
      if (depth >= expand_hops) continue;
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const graph::NodeId w = adj[i];
        if (!keep[w]) {
          keep[w] = true;
          frontier.emplace_back(w, depth + 1);
        }
      }
    }
  }

  // Remap kept nodes densely, copying attributes, then re-add the induced
  // edges.
  auto out = std::make_unique<graph::DataGraph>(out_schema);
  std::vector<graph::NodeId> remap(n, graph::kInvalidNodeId);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!keep[v]) continue;
    std::vector<graph::Attribute> attrs;
    for (const graph::AttributeView a : data.Attributes(v)) {
      attrs.push_back({std::string(a.name), std::string(a.value)});
    }
    auto added = out->AddNode(data.NodeType(v), std::move(attrs));
    ORX_CHECK_OK(added);
    remap[v] = *added;
  }
  for (const graph::DataEdge& e : data.edges()) {
    if (remap[e.from] == graph::kInvalidNodeId ||
        remap[e.to] == graph::kInvalidNodeId) {
      continue;
    }
    ORX_CHECK_OK(out->AddEdge(remap[e.from], remap[e.to], e.type));
  }
  return out;
}

std::unique_ptr<graph::DataGraph> ExtractKeywordSubset(
    const graph::DataGraph& data, const text::Corpus& corpus,
    const std::string& keyword, graph::TypeId select_type, int expand_hops) {
  auto term = corpus.TermIdOf(text::NormalizeTerm(keyword));
  if (!term.has_value()) return nullptr;
  std::vector<bool> seed(data.num_nodes(), false);
  size_t selected = 0;
  for (const text::Posting& p : corpus.Postings(*term)) {
    if (data.NodeType(p.doc) == select_type) {
      seed[p.doc] = true;
      ++selected;
    }
  }
  if (selected == 0) return nullptr;
  return InducedSubgraph(data, seed, expand_hops);
}

}  // namespace orx::datasets
