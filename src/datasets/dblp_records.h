#ifndef ORX_DATASETS_DBLP_RECORDS_H_
#define ORX_DATASETS_DBLP_RECORDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "datasets/dblp_xml.h"

namespace orx::datasets::internal {

/// One publication record as it appears in the XML, before shredding.
/// Shared between the whole-buffer parser (dblp_xml.cc) and the streaming
/// parallel shredder (dblp_stream.cc): the streaming splitter hands byte
/// ranges to worker threads that each produce a vector of these, and the
/// deterministic merge concatenates them in input order so both paths
/// shred identical record sequences.
struct DblpRawRecord {
  std::string key;
  std::string title;
  std::vector<std::string> authors;
  std::string year;
  std::string booktitle;
  std::vector<std::string> cites;
};

/// Parses a fragment holding only <inproceedings>/<article> records (no
/// <dblp> root, no prologue). `first_line` seeds the scanner's line
/// counter so errors report positions in the original file, not the
/// fragment. Whitespace and comments between records are fine.
StatusOr<std::vector<DblpRawRecord>> ParseDblpRecords(
    std::string_view fragment, int first_line);

/// Shreds records into the Figure 2 relational schema and finalizes the
/// dataset. Deterministic in record order: authors/conferences/years are
/// deduplicated by first appearance, citations resolve in a second pass.
/// Exactly the back half of ParseDblpXml.
StatusOr<DblpParseResult> ShredDblpRecords(
    std::vector<DblpRawRecord> records);

}  // namespace orx::datasets::internal

#endif  // ORX_DATASETS_DBLP_RECORDS_H_
