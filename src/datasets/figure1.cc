#include "datasets/figure1.h"

#include "common/check.h"

namespace orx::datasets {

Figure1Dataset MakeFigure1Dataset() {
  DblpTypes types;
  auto schema = MakeDblpSchema(&types);
  Dataset dataset(std::move(schema), "figure1");
  graph::DataGraph& data = dataset.mutable_data();

  auto must_node = [&](auto status_or) {
    ORX_CHECK_OK(status_or);
    return *status_or;
  };

  const graph::NodeId v1 = must_node(data.AddNode(
      types.paper,
      {{"Title", "Index Selection for OLAP."},
       {"Authors", "H. Gupta, V. Harinarayan, A. Rajaraman, J. Ullman"},
       {"Year", "ICDE 1997"}}));
  const graph::NodeId v2 =
      must_node(data.AddNode(types.conference, {{"Name", "ICDE"}}));
  const graph::NodeId v3 = must_node(data.AddNode(
      types.year,
      {{"Name", "ICDE"}, {"Year", "1997"}, {"Location", "Birmingham"}}));
  const graph::NodeId v4 = must_node(data.AddNode(
      types.paper,
      {{"Title", "Range Queries in OLAP Data Cubes."},
       {"Authors", "C. Ho, R. Agrawal, N. Megiddo, R. Srikant"},
       {"Year", "SIGMOD 1997"}}));
  const graph::NodeId v5 = must_node(data.AddNode(
      types.paper,
      {{"Title", "Modeling Multidimensional Databases."},
       {"Authors", "R. Agrawal, A. Gupta, S. Sarawagi"},
       {"Year", "ICDE 1997"}}));
  const graph::NodeId v6 =
      must_node(data.AddNode(types.author, {{"Name", "R. Agrawal"}}));
  const graph::NodeId v7 = must_node(data.AddNode(
      types.paper,
      {{"Title",
        "Data Cube: A Relational Aggregation Operator Generalizing "
        "Group-By, Cross-Tab, and Sub-Total."},
       {"Authors", "J. Gray, A. Bosworth, A. Layman, H. Pirahesh"},
       {"Year", "ICDE 1996"}}));

  auto must_edge = [&](graph::NodeId from, graph::NodeId to,
                       graph::EdgeTypeId type) {
    ORX_CHECK_OK(data.AddEdge(from, to, type));
  };
  must_edge(v1, v7, types.cites);
  must_edge(v4, v7, types.cites);
  must_edge(v4, v5, types.cites);
  must_edge(v5, v7, types.cites);
  must_edge(v4, v6, types.by);
  must_edge(v5, v6, types.by);
  must_edge(v3, v1, types.contains);
  must_edge(v3, v5, types.contains);
  must_edge(v2, v3, types.has_instance);

  dataset.Finalize();
  Figure1Dataset out{std::move(dataset), types, v1, v2, v3, v4, v5, v6, v7};
  return out;
}

}  // namespace orx::datasets
