#ifndef ORX_NET_EVENT_LOOP_H_
#define ORX_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace orx::net {

/// One epoll-driven event loop: a thread parks in epoll_wait and
/// dispatches readiness events to per-fd handlers. Registration is
/// edge-triggered (EPOLLET) — a handler must drain its fd to EAGAIN on
/// every callback, or the edge is lost and the connection stalls.
///
/// Threading: Run() is called by exactly one thread (the loop thread);
/// AddFd/ModFd/RemoveFd and the handlers are loop-thread-only. The two
/// cross-thread entry points are RunInLoop() (enqueue a task; an eventfd
/// wakes the epoll_wait) and Stop(). This keeps every connection
/// single-threaded — no per-connection locks anywhere in the server.
///
/// The loop-thread-only contract is *enforced*, not just documented:
/// Run() binds the calling thread's id, and AddFd/ModFd/RemoveFd
/// ORX_CHECK-fail when called from any other thread afterwards. Before
/// Run() the registration calls are allowed from any single thread
/// (Server registers its listen fd from the starting thread).
///
/// The loop also runs a coarse periodic tick (epoll_wait with a bounded
/// timeout) for time-based policies: idle-connection sweeps don't need
/// their own timerfd precision.
class EventLoop {
 public:
  using Handler = std::function<void(uint32_t epoll_events)>;
  using Task = std::function<void()>;

  /// `tick` runs on the loop thread roughly every `tick_interval_ms`
  /// (and possibly more often — after any event batch); may be empty.
  EventLoop(Task tick, int tick_interval_ms);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` edge-triggered for `events` (EPOLLIN and friends;
  /// EPOLLET is added internally). Loop thread only.
  Status AddFd(int fd, uint32_t events, Handler handler);

  /// Rearms `fd` with a new event mask (the handler stays). Loop thread
  /// only.
  Status ModFd(int fd, uint32_t events);

  /// Unregisters `fd`. Does not close it. Loop thread only.
  void RemoveFd(int fd);

  /// Runs the loop until Stop(). Dispatches events, then queued tasks,
  /// then the tick.
  void Run();

  /// Requests exit; safe from any thread (and from handlers).
  void Stop();

  /// Enqueues `task` to run on the loop thread; safe from any thread.
  /// Tasks enqueued from the loop thread itself run in the same
  /// iteration, after event dispatch.
  void RunInLoop(Task task);

  /// Number of fds currently registered (loop thread only; for tests).
  size_t num_fds() const { return handlers_.size(); }

 private:
  void Wakeup();
  void DrainWakeup();
  /// ORX_CHECKs the loop-thread-only contract (no-op before Run()).
  void CheckOnLoopThread(const char* what) const;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: cross-thread RunInLoop/Stop kicks
  const int tick_interval_ms_;
  Task tick_;
  std::atomic<bool> stop_{false};
  /// Loop-thread-only (enforced via loop_thread_), hence no mutex: the
  /// static analysis cannot express thread affinity, so this is exactly
  /// the class of discipline CheckOnLoopThread pins at runtime.
  std::unordered_map<int, Handler> handlers_;
  /// Bound by Run(); default id until then.
  std::atomic<std::thread::id> loop_thread_{};

  Mutex task_mu_{"event_loop.task_mu"};
  std::vector<Task> tasks_ ORX_GUARDED_BY(task_mu_);
};

}  // namespace orx::net

#endif  // ORX_NET_EVENT_LOOP_H_
