#ifndef ORX_NET_FRAME_H_
#define ORX_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mutate/mutation.h"
#include "serve/serve_metrics.h"

namespace orx::net {

/// The ORX wire protocol: length-prefixed binary frames, little-endian
/// throughout (the dataset serializer's conventions — see io/dataset_io
/// and common/byte_io).
///
/// Frame layout:
///   u32  magic        "ORXN" (0x4E58524F little-endian)
///   u8   version      1
///   u8   op           Op below
///   u16  reserved     0 on the wire; receivers ignore it
///   u64  request_id   echoed verbatim in the response; clients pipeline
///                     by matching ids, so responses may arrive out of
///                     submission order
///   u32  payload_size bytes following the header, bounded by
///                     kMaxPayload
///   ...  payload      op-specific, codecs below
///
/// Every request op gets exactly one response frame: the same op on
/// success or kError carrying a status code + message on failure
/// (admission rejection arrives as kError/kUnavailable — load shedding
/// is an answer, not a dropped frame). Decoding is hardened the same way
/// the dataset deserializer is: bounded lengths, and every malformed
/// input yields kDataLoss naming the byte offset, never a crash or an
/// oversized allocation (fuzz/net_frame_fuzz.cc holds the protocol to
/// that).
enum class Op : uint8_t {
  kPing = 0,
  kSearch = 1,
  kExplain = 2,
  kReformulate = 3,
  kValidate = 4,
  kMetrics = 5,
  /// Response-only: status code + message.
  kError = 6,
  /// Append a mutation batch to the server's delta log (the write path).
  kMutate = 7,
};

constexpr uint32_t kMagic = 0x4E58524F;  // "ORXN" read little-endian
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderSize = 20;
/// Per-frame payload bound. Generous for responses (a 10k-result search
/// response is ~1 MB); a hostile length field beyond it is rejected
/// before any allocation happens.
constexpr uint32_t kMaxPayload = 1u << 24;

struct FrameHeader {
  Op op = Op::kPing;
  uint64_t request_id = 0;
  uint32_t payload_size = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Appends a kHeaderSize-byte header to `out`.
void AppendHeader(std::string* out, Op op, uint64_t request_id,
                  uint32_t payload_size);

/// One full frame: header + payload.
std::string EncodeFrame(Op op, uint64_t request_id,
                        const std::string& payload);

/// Decodes a header from exactly kHeaderSize bytes. kDataLoss on a bad
/// magic, unknown version, unknown op, or a payload_size above
/// `max_payload`, naming the offending field.
StatusOr<FrameHeader> DecodeHeader(const char* data,
                                   uint32_t max_payload = kMaxPayload);

// --- Payload codecs --------------------------------------------------------
//
// Encode* appends to a string; Decode* parses a payload and fails with
// kDataLoss (offset-bearing, via ByteReader) on truncation, trailing
// garbage, or implausible lengths.

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendDouble(std::string* out, double v);
void AppendString(std::string* out, const std::string& s);

/// kSearch request.
///
/// `tier` is a trailing optional field: frames from pre-tier clients
/// simply end after `deadline_seconds` and decode as tier 0 (auto).
/// Encoders always write it. Values mirror core::SearchTier — 0 auto,
/// 1 exact, 2 approximate, 3 cached; anything above 3 is rejected at
/// decode (kDataLoss), so handlers can cast without re-checking.
struct SearchRequest {
  std::string query;
  /// 0 = the server snapshot's default k.
  uint32_t k = 0;
  /// 0 = the server's default deadline.
  double deadline_seconds = 0.0;
  /// Requested execution tier (core::SearchTier wire value).
  uint8_t tier = 0;
};
std::string EncodeSearchRequest(const SearchRequest& request);
StatusOr<SearchRequest> DecodeSearchRequest(const std::string& payload);

/// One scored result row of a kSearch response.
struct WireResult {
  uint64_t node = 0;
  double score = 0.0;
  std::string type_label;
  std::string display_label;
};

/// kSearch response.
///
/// The tier block (`tier_used` through `escalated`) is trailing and
/// optional as a group: responses from pre-tier servers end after
/// `total_seconds` and decode to the defaults below (exact, zero error,
/// certified — exactly what those servers computed). Encoders always
/// write the block; a truncated block is kDataLoss, not defaults.
struct SearchResponse {
  std::vector<WireResult> results;
  uint32_t iterations = 0;
  bool from_rank_cache = false;
  bool cache_hit = false;
  bool coalesced = false;
  uint64_t snapshot_version = 0;
  double total_seconds = 0.0;
  /// Tier that actually produced the answer (core::SearchTier wire
  /// value; an escalated approximate request reports 1, exact).
  uint8_t tier_used = 1;
  /// Certified additive L-inf bound on the returned scores (0 = exact).
  double error_bound = 0.0;
  /// Whether the top-k set is certified identical to the exact one.
  bool certified = true;
  /// Whether a non-exact request fell back to the exact kernel.
  bool escalated = false;
};
std::string EncodeSearchResponse(const SearchResponse& response);
StatusOr<SearchResponse> DecodeSearchResponse(const std::string& payload);

/// kExplain request: explain the `target_rank`-th result (1-based) of
/// `query`'s search.
struct ExplainRequest {
  std::string query;
  uint32_t target_rank = 1;
};
std::string EncodeExplainRequest(const ExplainRequest& request);
StatusOr<ExplainRequest> DecodeExplainRequest(const std::string& payload);

/// kExplain response: the rendered explaining subgraph + stage stats.
struct ExplainResponse {
  std::string text;
  uint32_t iterations = 0;
  double construction_seconds = 0.0;
  double adjustment_seconds = 0.0;
};
std::string EncodeExplainResponse(const ExplainResponse& response);
StatusOr<ExplainResponse> DecodeExplainResponse(const std::string& payload);

/// kReformulate request: feed back the listed result ranks (1-based) of
/// `query`'s search as relevant.
struct ReformulateRequest {
  std::string query;
  std::vector<uint32_t> feedback_ranks;
};
std::string EncodeReformulateRequest(const ReformulateRequest& request);
StatusOr<ReformulateRequest> DecodeReformulateRequest(
    const std::string& payload);

/// kReformulate response.
struct ReformulateResponse {
  std::string reformulated_query;
  std::vector<std::pair<std::string, double>> top_expansion_terms;
  double reformulation_seconds = 0.0;
};
std::string EncodeReformulateResponse(const ReformulateResponse& response);
StatusOr<ReformulateResponse> DecodeReformulateResponse(
    const std::string& payload);

/// kValidate response (the request has no payload): a human-readable
/// report of the snapshot's structural validation.
struct ValidateResponse {
  bool ok = false;
  std::string report;
};
std::string EncodeValidateResponse(const ValidateResponse& response);
StatusOr<ValidateResponse> DecodeValidateResponse(
    const std::string& payload);

/// kMetrics response (the request has no payload): the service's
/// consistent-cut ServeMetrics plus the front end's own counters and,
/// when the server runs a write path, the mutation-side counters (all
/// zero on a read-only server). The tier block of ServeMetrics (tier
/// counters, miss reasons, escalations, per-tier percentiles) rides at
/// the end of the payload as one trailing optional group — pre-tier
/// payloads decode with that block zeroed.
struct MetricsResponse {
  serve::ServeMetrics serve;
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t error_frames_sent = 0;
  uint64_t decode_errors = 0;
  uint64_t backpressure_closes = 0;
  uint64_t idle_closes = 0;
  /// Write path (mutate/): delta-log and snapshot-builder counters.
  uint64_t mutate_accepted = 0;
  uint64_t mutate_rejected = 0;
  uint64_t mutate_queued = 0;
  uint64_t snapshots_published = 0;
  uint64_t epochs_live = 0;
  uint64_t rank_terms_reused = 0;
  uint64_t rank_terms_refreshed = 0;
};
std::string EncodeMetricsResponse(const MetricsResponse& response);
StatusOr<MetricsResponse> DecodeMetricsResponse(const std::string& payload);

/// kMutate request: one mutation batch for the server's delta log. A
/// success response acknowledges *acceptance into the log*, not reader
/// visibility — that arrives with the next snapshot publication covering
/// the sequence. Rejections (static validation, log full, read-only
/// server) arrive as kError frames carrying the corresponding status.
struct MutateRequest {
  mutate::MutationBatch batch;
};
std::string EncodeMutateRequest(const MutateRequest& request);
StatusOr<MutateRequest> DecodeMutateRequest(const std::string& payload);

/// kMutate response.
struct MutateResponse {
  /// The delta-log sequence number assigned to the accepted batch.
  uint64_t sequence = 0;
  /// Batches still queued behind the snapshot builder right after this
  /// append — a congestion signal write clients can self-throttle on.
  uint64_t queued = 0;
};
std::string EncodeMutateResponse(const MutateResponse& response);
StatusOr<MutateResponse> DecodeMutateResponse(const std::string& payload);

/// kError response payload.
struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};
std::string EncodeErrorResponse(const Status& status);
StatusOr<ErrorResponse> DecodeErrorResponse(const std::string& payload);

/// Convenience: a complete error frame for `request_id`.
std::string EncodeErrorFrame(uint64_t request_id, const Status& status);

}  // namespace orx::net

#endif  // ORX_NET_FRAME_H_
