#ifndef ORX_NET_SERVE_HANDLER_H_
#define ORX_NET_SERVE_HANDLER_H_

#include <functional>
#include <memory>
#include <utility>

#include "mutate/delta_log.h"
#include "mutate/epoch.h"
#include "mutate/snapshot_builder.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/search_service.h"

namespace orx::net {

/// Binds the ORXN protocol ops to a serve::SearchService (and, through
/// the service's pinned snapshots, to the explainer and reformulator).
/// One instance serves every connection; it owns no mutable state beyond
/// the wiring, so Handle() is safe from any worker loop concurrently.
///
/// Threading: cheap ops (ping, metrics, validate) answer synchronously
/// on the worker loop thread. search/explain/reformulate go through
/// SearchService::SubmitAsync, so the loop thread never blocks on a
/// power iteration — the completion callback (service pool thread) does
/// the explain/reformulate stage work and encodes the response there.
/// Admission rejections surface as kError frames carrying kUnavailable:
/// under overload every frame is still *answered* (load shedding is an
/// answer), which is what the load client's zero-dropped-frames
/// accounting measures.
class ServeHandler {
 public:
  explicit ServeHandler(serve::SearchService* service)
      : service_(service) {}

  /// Optional: lets the kMetrics op report the transport's counters next
  /// to the service's. Set after the Server exists (the server needs the
  /// handler first, so this closes the construction cycle).
  void set_server_stats(std::function<ServerStats()> stats) {
    server_stats_ = std::move(stats);
  }

  /// The write-path wiring the kMutate op appends through; all three
  /// pointers must outlive the handler. A handler without hooks is a
  /// read-only server: kMutate answers kError/kFailedPrecondition.
  struct MutationHooks {
    mutate::DeltaLog* log = nullptr;
    mutate::EpochManager* epochs = nullptr;
    /// Optional: the builder whose stats back the kMetrics write-side
    /// counters (null = log/epoch counters only).
    mutate::SnapshotBuilder* builder = nullptr;
  };
  void set_mutation_hooks(MutationHooks hooks) { mutation_ = hooks; }

  /// The Server::FrameHandler entry point.
  void Handle(Frame frame, ResponderPtr respond);

 private:
  void HandleSearch(Frame frame, ResponderPtr respond);
  void HandleExplain(Frame frame, ResponderPtr respond);
  void HandleReformulate(Frame frame, ResponderPtr respond);
  void HandleValidate(const Frame& frame, const ResponderPtr& respond);
  void HandleMetrics(const Frame& frame, const ResponderPtr& respond);
  void HandleMutate(const Frame& frame, const ResponderPtr& respond);

  serve::SearchService* service_;
  std::function<ServerStats()> server_stats_;
  MutationHooks mutation_;
};

}  // namespace orx::net

#endif  // ORX_NET_SERVE_HANDLER_H_
