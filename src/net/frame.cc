#include "net/frame.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/byte_io.h"

namespace orx::net {
namespace {

// Per-field sanity bounds, in the dataset deserializer's spirit: a
// hostile length field fails fast instead of driving one huge eager
// allocation. Queries and error messages are short; only rendered
// explanation text and result labels get room.
constexpr uint64_t kQueryLimit = 1u << 16;
constexpr uint64_t kLabelLimit = 1u << 16;
constexpr uint64_t kTextLimit = kMaxPayload;
constexpr uint64_t kCountLimit = 1u << 20;
constexpr uint64_t kMutationLimit = 1u << 16;
constexpr uint64_t kAttributeLimit = 1u << 12;

// Highest core::SearchTier wire value (kCached). The tier enum is
// append-only, so a value above this is a malformed frame, not a newer
// peer — newer tiers would bump this constant in lockstep.
constexpr uint8_t kMaxWireTier = 3;

// ByteReader is the hardened offset-tracking reader the binary
// deserializers share; wrapping the payload in a stream reuses it
// verbatim (payloads are already bounded by kMaxPayload, so the copy
// into the stream is bounded too).
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload)
      : stream_(payload), reader_(stream_) {}

  ByteReader& reader() { return reader_; }

  /// Trailing bytes after the last field are a malformed frame, not
  /// padding: flag them so a fuzzer (or an attacker) can't smuggle
  /// unparsed bytes past the codec.
  Status ExpectExhausted(const char* what) {
    stream_.peek();
    if (!stream_.eof()) {
      return DataLossError(std::string("trailing bytes after ") + what +
                           " at byte " + std::to_string(reader_.offset()));
    }
    return Status::OK();
  }

  /// Whether every payload byte has been consumed. Gate for trailing
  /// optional field groups: absent → defaults (a pre-tier peer), present
  /// → the whole group must parse and ExpectExhausted still applies, so
  /// a half-written group is kDataLoss rather than silent defaults.
  bool AtEnd() {
    stream_.peek();
    return stream_.eof();
  }

 private:
  std::istringstream stream_;
  ByteReader reader_;
};

Status ReadU8(ByteReader& reader, uint8_t* v, const char* what) {
  char c;
  ORX_RETURN_IF_ERROR(reader.ReadBytes(&c, 1, what));
  *v = static_cast<uint8_t>(c);
  return Status::OK();
}

Status ReadBoundedCount(ByteReader& reader, uint32_t* count, uint64_t limit,
                        const char* what) {
  ORX_RETURN_IF_ERROR(reader.ReadU32(count, what));
  if (*count > limit) {
    return DataLossError("implausible " + std::string(what) + " count " +
                         std::to_string(*count) + " at byte " +
                         std::to_string(reader.offset()));
  }
  return Status::OK();
}

}  // namespace

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void AppendHeader(std::string* out, Op op, uint64_t request_id,
                  uint32_t payload_size) {
  AppendU32(out, kMagic);
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(op));
  out->push_back(0);  // reserved
  out->push_back(0);
  AppendU64(out, request_id);
  AppendU32(out, payload_size);
}

std::string EncodeFrame(Op op, uint64_t request_id,
                        const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  AppendHeader(&out, op, request_id,
               static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

StatusOr<FrameHeader> DecodeHeader(const char* data, uint32_t max_payload) {
  auto u32_at = [&](size_t off) {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data[off + static_cast<size_t>(i)]);
    }
    return v;
  };
  auto u64_at = [&](size_t off) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data[off + static_cast<size_t>(i)]);
    }
    return v;
  };
  const uint32_t magic = u32_at(0);
  if (magic != kMagic) {
    return DataLossError("bad frame magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + " at byte 0");
  }
  const uint8_t version = static_cast<uint8_t>(data[4]);
  if (version != kVersion) {
    return DataLossError("unsupported frame version " +
                         std::to_string(version) + " at byte 4");
  }
  const uint8_t op = static_cast<uint8_t>(data[5]);
  if (op > static_cast<uint8_t>(Op::kMutate)) {
    return DataLossError("unknown frame op " + std::to_string(op) +
                         " at byte 5");
  }
  FrameHeader header;
  header.op = static_cast<Op>(op);
  header.request_id = u64_at(8);
  header.payload_size = u32_at(16);
  if (header.payload_size > max_payload) {
    return DataLossError("implausible payload size " +
                         std::to_string(header.payload_size) +
                         " at byte 16 (limit " +
                         std::to_string(max_payload) + ")");
  }
  return header;
}

std::string EncodeSearchRequest(const SearchRequest& request) {
  std::string out;
  AppendString(&out, request.query);
  AppendU32(&out, request.k);
  AppendDouble(&out, request.deadline_seconds);
  out.push_back(static_cast<char>(request.tier));
  return out;
}

StatusOr<SearchRequest> DecodeSearchRequest(const std::string& payload) {
  PayloadReader in(payload);
  SearchRequest request;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadString(&request.query, kQueryLimit, "search query"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU32(&request.k, "search k"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadDouble(&request.deadline_seconds, "search deadline"));
  if (!in.AtEnd()) {
    ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &request.tier, "search tier"));
    if (request.tier > kMaxWireTier) {
      return DataLossError("unknown search tier " +
                           std::to_string(request.tier) + " at byte " +
                           std::to_string(in.reader().offset()));
    }
  }
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("search request"));
  return request;
}

std::string EncodeSearchResponse(const SearchResponse& response) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(response.results.size()));
  for (const WireResult& r : response.results) {
    AppendU64(&out, r.node);
    AppendDouble(&out, r.score);
    AppendString(&out, r.type_label);
    AppendString(&out, r.display_label);
  }
  AppendU32(&out, response.iterations);
  out.push_back(response.from_rank_cache ? 1 : 0);
  out.push_back(response.cache_hit ? 1 : 0);
  out.push_back(response.coalesced ? 1 : 0);
  AppendU64(&out, response.snapshot_version);
  AppendDouble(&out, response.total_seconds);
  out.push_back(static_cast<char>(response.tier_used));
  AppendDouble(&out, response.error_bound);
  out.push_back(response.certified ? 1 : 0);
  out.push_back(response.escalated ? 1 : 0);
  return out;
}

StatusOr<SearchResponse> DecodeSearchResponse(const std::string& payload) {
  PayloadReader in(payload);
  SearchResponse response;
  uint32_t count = 0;
  ORX_RETURN_IF_ERROR(
      ReadBoundedCount(in.reader(), &count, kCountLimit, "search result"));
  response.results.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    WireResult r;
    ORX_RETURN_IF_ERROR(in.reader().ReadU64(&r.node, "result node"));
    ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&r.score, "result score"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadString(&r.type_label, kLabelLimit, "result type"));
    ORX_RETURN_IF_ERROR(in.reader().ReadString(&r.display_label, kLabelLimit,
                                               "result label"));
    response.results.push_back(std::move(r));
  }
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU32(&response.iterations, "iterations"));
  uint8_t flag = 0;
  ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &flag, "from_rank_cache"));
  response.from_rank_cache = flag != 0;
  ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &flag, "cache_hit"));
  response.cache_hit = flag != 0;
  ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &flag, "coalesced"));
  response.coalesced = flag != 0;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.snapshot_version, "snapshot version"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadDouble(&response.total_seconds, "total seconds"));
  if (!in.AtEnd()) {
    ORX_RETURN_IF_ERROR(
        ReadU8(in.reader(), &response.tier_used, "tier used"));
    if (response.tier_used > kMaxWireTier) {
      return DataLossError("unknown tier_used " +
                           std::to_string(response.tier_used) + " at byte " +
                           std::to_string(in.reader().offset()));
    }
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&response.error_bound, "error bound"));
    ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &flag, "certified"));
    response.certified = flag != 0;
    ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &flag, "escalated"));
    response.escalated = flag != 0;
  }
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("search response"));
  return response;
}

std::string EncodeExplainRequest(const ExplainRequest& request) {
  std::string out;
  AppendString(&out, request.query);
  AppendU32(&out, request.target_rank);
  return out;
}

StatusOr<ExplainRequest> DecodeExplainRequest(const std::string& payload) {
  PayloadReader in(payload);
  ExplainRequest request;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadString(&request.query, kQueryLimit, "explain query"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU32(&request.target_rank, "explain target rank"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("explain request"));
  return request;
}

std::string EncodeExplainResponse(const ExplainResponse& response) {
  std::string out;
  AppendString(&out, response.text);
  AppendU32(&out, response.iterations);
  AppendDouble(&out, response.construction_seconds);
  AppendDouble(&out, response.adjustment_seconds);
  return out;
}

StatusOr<ExplainResponse> DecodeExplainResponse(const std::string& payload) {
  PayloadReader in(payload);
  ExplainResponse response;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadString(&response.text, kTextLimit, "explain text"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU32(&response.iterations, "explain iterations"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&response.construction_seconds,
                                             "construction seconds"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&response.adjustment_seconds,
                                             "adjustment seconds"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("explain response"));
  return response;
}

std::string EncodeReformulateRequest(const ReformulateRequest& request) {
  std::string out;
  AppendString(&out, request.query);
  AppendU32(&out, static_cast<uint32_t>(request.feedback_ranks.size()));
  for (uint32_t rank : request.feedback_ranks) AppendU32(&out, rank);
  return out;
}

StatusOr<ReformulateRequest> DecodeReformulateRequest(
    const std::string& payload) {
  PayloadReader in(payload);
  ReformulateRequest request;
  ORX_RETURN_IF_ERROR(in.reader().ReadString(&request.query, kQueryLimit,
                                             "reformulate query"));
  uint32_t count = 0;
  ORX_RETURN_IF_ERROR(
      ReadBoundedCount(in.reader(), &count, kCountLimit, "feedback rank"));
  request.feedback_ranks.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&rank, "feedback rank"));
    request.feedback_ranks.push_back(rank);
  }
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("reformulate request"));
  return request;
}

std::string EncodeReformulateResponse(const ReformulateResponse& response) {
  std::string out;
  AppendString(&out, response.reformulated_query);
  AppendU32(&out,
            static_cast<uint32_t>(response.top_expansion_terms.size()));
  for (const auto& [term, weight] : response.top_expansion_terms) {
    AppendString(&out, term);
    AppendDouble(&out, weight);
  }
  AppendDouble(&out, response.reformulation_seconds);
  return out;
}

StatusOr<ReformulateResponse> DecodeReformulateResponse(
    const std::string& payload) {
  PayloadReader in(payload);
  ReformulateResponse response;
  ORX_RETURN_IF_ERROR(in.reader().ReadString(
      &response.reformulated_query, kQueryLimit, "reformulated query"));
  uint32_t count = 0;
  ORX_RETURN_IF_ERROR(
      ReadBoundedCount(in.reader(), &count, kCountLimit, "expansion term"));
  response.top_expansion_terms.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    std::string term;
    double weight = 0.0;
    ORX_RETURN_IF_ERROR(
        in.reader().ReadString(&term, kLabelLimit, "expansion term"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&weight, "expansion weight"));
    response.top_expansion_terms.emplace_back(std::move(term), weight);
  }
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&response.reformulation_seconds,
                                             "reformulation seconds"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("reformulate response"));
  return response;
}

std::string EncodeValidateResponse(const ValidateResponse& response) {
  std::string out;
  out.push_back(response.ok ? 1 : 0);
  AppendString(&out, response.report);
  return out;
}

StatusOr<ValidateResponse> DecodeValidateResponse(
    const std::string& payload) {
  PayloadReader in(payload);
  ValidateResponse response;
  uint8_t ok = 0;
  ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &ok, "validate ok"));
  response.ok = ok != 0;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadString(&response.report, kTextLimit, "validate report"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("validate response"));
  return response;
}

std::string EncodeMetricsResponse(const MetricsResponse& response) {
  std::string out;
  const serve::ServeMetrics& m = response.serve;
  AppendU64(&out, m.submitted);
  AppendU64(&out, m.rejected);
  AppendU64(&out, m.cache_hits);
  AppendU64(&out, m.coalesced);
  AppendU64(&out, m.executed);
  AppendU64(&out, m.deadline_exceeded);
  AppendU64(&out, m.failed);
  AppendU64(&out, m.completed);
  AppendU64(&out, m.batches);
  AppendU64(&out, m.batched_queries);
  AppendU64(&out, m.batch_occupancy_max);
  AppendDouble(&out, m.batch_occupancy_mean);
  AppendDouble(&out, m.uptime_seconds);
  AppendDouble(&out, m.qps);
  AppendDouble(&out, m.latency_mean);
  AppendDouble(&out, m.latency_p50);
  AppendDouble(&out, m.latency_p95);
  AppendDouble(&out, m.latency_p99);
  AppendU64(&out, response.connections_accepted);
  AppendU64(&out, response.connections_open);
  AppendU64(&out, response.frames_received);
  AppendU64(&out, response.frames_sent);
  AppendU64(&out, response.error_frames_sent);
  AppendU64(&out, response.decode_errors);
  AppendU64(&out, response.backpressure_closes);
  AppendU64(&out, response.idle_closes);
  AppendU64(&out, response.mutate_accepted);
  AppendU64(&out, response.mutate_rejected);
  AppendU64(&out, response.mutate_queued);
  AppendU64(&out, response.snapshots_published);
  AppendU64(&out, response.epochs_live);
  AppendU64(&out, response.rank_terms_reused);
  AppendU64(&out, response.rank_terms_refreshed);
  // Trailing optional tier block — pre-tier decoders stop above.
  AppendU64(&out, m.tier_exact);
  AppendU64(&out, m.tier_approximate);
  AppendU64(&out, m.tier_cached);
  AppendU64(&out, m.escalations);
  AppendU64(&out, m.miss_no_cache);
  AppendU64(&out, m.miss_rates_mismatch);
  AppendU64(&out, m.miss_bm25_mismatch);
  AppendU64(&out, m.miss_missing_terms);
  AppendU64(&out, m.miss_error_budget);
  AppendDouble(&out, m.tier_exact_p50);
  AppendDouble(&out, m.tier_exact_p99);
  AppendDouble(&out, m.tier_approximate_p50);
  AppendDouble(&out, m.tier_approximate_p99);
  AppendDouble(&out, m.tier_cached_p50);
  AppendDouble(&out, m.tier_cached_p99);
  return out;
}

StatusOr<MetricsResponse> DecodeMetricsResponse(const std::string& payload) {
  PayloadReader in(payload);
  MetricsResponse response;
  serve::ServeMetrics& m = response.serve;
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.submitted, "submitted"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.rejected, "rejected"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.cache_hits, "cache_hits"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.coalesced, "coalesced"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.executed, "executed"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&m.deadline_exceeded, "deadline_exceeded"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.failed, "failed"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.completed, "completed"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.batches, "batches"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&m.batched_queries, "batched_queries"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&m.batch_occupancy_max, "batch_occupancy_max"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.batch_occupancy_mean,
                                             "batch_occupancy_mean"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadDouble(&m.uptime_seconds, "uptime_seconds"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.qps, "qps"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadDouble(&m.latency_mean, "latency_mean"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.latency_p50, "latency_p50"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.latency_p95, "latency_p95"));
  ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.latency_p99, "latency_p99"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.connections_accepted,
                                          "connections_accepted"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.connections_open, "connections_open"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.frames_received, "frames_received"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.frames_sent, "frames_sent"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.error_frames_sent,
                                          "error_frames_sent"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.decode_errors, "decode_errors"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.backpressure_closes,
                                          "backpressure_closes"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.idle_closes, "idle_closes"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.mutate_accepted, "mutate_accepted"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.mutate_rejected, "mutate_rejected"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.mutate_queued, "mutate_queued"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.snapshots_published,
                                          "snapshots_published"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.epochs_live, "epochs_live"));
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.rank_terms_reused, "rank_terms_reused"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.rank_terms_refreshed,
                                          "rank_terms_refreshed"));
  if (!in.AtEnd()) {
    ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.tier_exact, "tier_exact"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.tier_approximate, "tier_approximate"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.tier_cached, "tier_cached"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU64(&m.escalations, "escalations"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.miss_no_cache, "miss_no_cache"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.miss_rates_mismatch, "miss_rates_mismatch"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.miss_bm25_mismatch, "miss_bm25_mismatch"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.miss_missing_terms, "miss_missing_terms"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadU64(&m.miss_error_budget, "miss_error_budget"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&m.tier_exact_p50, "tier_exact_p50"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&m.tier_exact_p99, "tier_exact_p99"));
    ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.tier_approximate_p50,
                                               "tier_approximate_p50"));
    ORX_RETURN_IF_ERROR(in.reader().ReadDouble(&m.tier_approximate_p99,
                                               "tier_approximate_p99"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&m.tier_cached_p50, "tier_cached_p50"));
    ORX_RETURN_IF_ERROR(
        in.reader().ReadDouble(&m.tier_cached_p99, "tier_cached_p99"));
  }
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("metrics response"));
  return response;
}

std::string EncodeMutateRequest(const MutateRequest& request) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(request.batch.mutations.size()));
  for (const mutate::Mutation& m : request.batch.mutations) {
    out.push_back(static_cast<char>(m.kind));
    AppendU32(&out, m.node_type);
    AppendU32(&out, m.node);
    AppendU32(&out, m.from);
    AppendU32(&out, m.to);
    AppendU32(&out, m.edge_type);
    AppendU32(&out, static_cast<uint32_t>(m.attributes.size()));
    for (const graph::Attribute& a : m.attributes) {
      AppendString(&out, a.name);
      AppendString(&out, a.value);
    }
  }
  return out;
}

StatusOr<MutateRequest> DecodeMutateRequest(const std::string& payload) {
  PayloadReader in(payload);
  MutateRequest request;
  uint32_t count = 0;
  ORX_RETURN_IF_ERROR(
      ReadBoundedCount(in.reader(), &count, kMutationLimit, "mutation"));
  request.batch.mutations.reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    mutate::Mutation m;
    uint8_t kind = 0;
    ORX_RETURN_IF_ERROR(ReadU8(in.reader(), &kind, "mutation kind"));
    if (kind > mutate::kMaxMutationKind) {
      return DataLossError("unknown mutation kind " + std::to_string(kind) +
                           " at byte " + std::to_string(in.reader().offset()));
    }
    m.kind = static_cast<mutate::MutationKind>(kind);
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&m.node_type, "node type"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&m.node, "mutation node"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&m.from, "edge from"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&m.to, "edge to"));
    ORX_RETURN_IF_ERROR(in.reader().ReadU32(&m.edge_type, "edge type"));
    uint32_t attrs = 0;
    ORX_RETURN_IF_ERROR(
        ReadBoundedCount(in.reader(), &attrs, kAttributeLimit, "attribute"));
    m.attributes.reserve(std::min<uint32_t>(attrs, 256));
    for (uint32_t a = 0; a < attrs; ++a) {
      graph::Attribute attribute;
      ORX_RETURN_IF_ERROR(in.reader().ReadString(&attribute.name, kLabelLimit,
                                                 "attribute name"));
      ORX_RETURN_IF_ERROR(in.reader().ReadString(&attribute.value, kLabelLimit,
                                                 "attribute value"));
      m.attributes.push_back(std::move(attribute));
    }
    request.batch.mutations.push_back(std::move(m));
  }
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("mutate request"));
  return request;
}

std::string EncodeMutateResponse(const MutateResponse& response) {
  std::string out;
  AppendU64(&out, response.sequence);
  AppendU64(&out, response.queued);
  return out;
}

StatusOr<MutateResponse> DecodeMutateResponse(const std::string& payload) {
  PayloadReader in(payload);
  MutateResponse response;
  ORX_RETURN_IF_ERROR(
      in.reader().ReadU64(&response.sequence, "mutate sequence"));
  ORX_RETURN_IF_ERROR(in.reader().ReadU64(&response.queued, "mutate queued"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("mutate response"));
  return response;
}

std::string EncodeErrorResponse(const Status& status) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(status.code()));
  AppendString(&out, status.message());
  return out;
}

StatusOr<ErrorResponse> DecodeErrorResponse(const std::string& payload) {
  PayloadReader in(payload);
  ErrorResponse response;
  uint32_t code = 0;
  ORX_RETURN_IF_ERROR(in.reader().ReadU32(&code, "error code"));
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return DataLossError("unknown status code " + std::to_string(code) +
                         " at byte " + std::to_string(in.reader().offset()));
  }
  response.code = static_cast<StatusCode>(code);
  ORX_RETURN_IF_ERROR(in.reader().ReadString(&response.message, kQueryLimit,
                                             "error message"));
  ORX_RETURN_IF_ERROR(in.ExpectExhausted("error response"));
  return response;
}

std::string EncodeErrorFrame(uint64_t request_id, const Status& status) {
  return EncodeFrame(Op::kError, request_id, EncodeErrorResponse(status));
}

}  // namespace orx::net
