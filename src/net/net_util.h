#ifndef ORX_NET_NET_UTIL_H_
#define ORX_NET_NET_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace orx::net {

/// Retries `call` (a lambda wrapping one syscall returning -1 on error)
/// while it fails with EINTR. Signals — SIGTERM for drain, profiler
/// timers — must never surface as phantom I/O errors on the serve path.
template <typename F>
auto RetryEintr(F&& call) -> decltype(call()) {
  decltype(call()) result;
  do {
    result = call();
  } while (result == -1 && errno == EINTR);
  return result;
}

/// kUnavailable carrying strerror(errno) — "<what>: <strerror>".
Status ErrnoError(const std::string& what);

/// Ignores SIGPIPE process-wide, once. Every binary that writes to
/// sockets calls this at startup: a peer that disappears mid-write must
/// surface as EPIPE on that one connection, not kill the process.
void IgnoreSigpipe();

/// Marks the descriptor non-blocking / close-on-exec. Every fd the net
/// layer creates gets CLOEXEC so a fork+exec (e.g. a debug helper) can
/// never leak a client connection into a child process.
Status SetNonBlocking(int fd);
Status SetCloexec(int fd);

/// A bound, listening TCP socket (IPv4 loopback + any). `port` is the
/// actual bound port, so callers may listen on 0 and discover the
/// ephemeral port the kernel picked (the CI smoke test does).
struct ListenSocket {
  int fd = -1;
  uint16_t port = 0;
};

/// Opens a non-blocking, CLOEXEC, SO_REUSEADDR listener on `port` (0 =
/// ephemeral) bound to `host` ("0.0.0.0" or "127.0.0.1").
StatusOr<ListenSocket> ListenTcp(const std::string& host, uint16_t port,
                                 int backlog);

/// Blocking connect to host:port; the returned fd is CLOEXEC and
/// blocking (callers flip it non-blocking if they need to).
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all `n` bytes to a blocking fd, retrying EINTR and short
/// writes.
Status WriteAll(int fd, const char* data, size_t n);

/// Reads exactly `n` bytes from a blocking fd; kDataLoss on EOF
/// mid-read ("peer closed mid-<what>").
Status ReadAll(int fd, char* out, size_t n, const char* what);

}  // namespace orx::net

#endif  // ORX_NET_NET_UTIL_H_
