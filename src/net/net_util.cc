#include "net/net_util.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>

#include "common/strings.h"

namespace orx::net {

Status ErrnoError(const std::string& what) {
  return UnavailableError(what + ": " + ErrnoString(errno));
}

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &action, nullptr);
  });
}

Status SetNonBlocking(int fd) {
  const int flags = RetryEintr([&] { return fcntl(fd, F_GETFL, 0); });
  if (flags == -1) return ErrnoError("fcntl(F_GETFL)");
  if (RetryEintr([&] { return fcntl(fd, F_SETFL, flags | O_NONBLOCK); }) ==
      -1) {
    return ErrnoError("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetCloexec(int fd) {
  if (RetryEintr([&] { return fcntl(fd, F_SETFD, FD_CLOEXEC); }) == -1) {
    return ErrnoError("fcntl(F_SETFD, FD_CLOEXEC)");
  }
  return Status::OK();
}

StatusOr<ListenSocket> ListenTcp(const std::string& host, uint16_t port,
                                 int backlog) {
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd == -1) return ErrnoError("socket");
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) == -1) {
    const Status status = ErrnoError("setsockopt(SO_REUSEADDR)");
    close(fd);
    return status;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgumentError("bad listen address '" + host + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == -1) {
    const Status status = ErrnoError("bind " + host + ":" +
                                     std::to_string(port));
    close(fd);
    return status;
  }
  if (listen(fd, backlog) == -1) {
    const Status status = ErrnoError("listen");
    close(fd);
    return status;
  }
  // Recover the bound port (the caller may have asked for 0 = ephemeral).
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == -1) {
    const Status status = ErrnoError("getsockname");
    close(fd);
    return status;
  }
  ListenSocket result;
  result.fd = fd;
  result.port = ntohs(bound.sin_port);
  return result;
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd == -1) return ErrnoError("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgumentError("bad connect address '" + host + "'");
  }
  if (RetryEintr([&] {
        return connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
      }) == -1) {
    const Status status =
        ErrnoError("connect " + host + ":" + std::to_string(port));
    close(fd);
    return status;
  }
  // Frames are small and latency-sensitive; never sit on a Nagle timer.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = RetryEintr(
        [&] { return write(fd, data + written, n - written); });
    if (rc <= 0) return ErrnoError("write");
    written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* out, size_t n, const char* what) {
  size_t got = 0;
  while (got < n) {
    const ssize_t rc =
        RetryEintr([&] { return read(fd, out + got, n - got); });
    if (rc == 0) {
      return DataLossError(std::string("peer closed mid-") + what +
                           " after " + std::to_string(got) + " bytes");
    }
    if (rc < 0) return ErrnoError(std::string("read ") + what);
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

}  // namespace orx::net
