#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/net_util.h"

namespace orx::net {
namespace {

using Clock = std::chrono::steady_clock;

/// One accepted connection; owned by exactly one worker and touched only
/// on that worker's loop thread.
struct Connection {
  int fd = -1;
  uint64_t id = 0;
  /// Inbound bytes not yet framed. `parse_pos` tracks how far framing
  /// has consumed; the prefix is compacted away once it dominates the
  /// buffer, so a pipelining client never forces quadratic memmoves.
  std::string inbuf;
  size_t parse_pos = 0;
  /// Outbound bytes not yet written. Bounded by
  /// ServerOptions::max_write_buffer_bytes.
  std::string outbuf;
  size_t write_pos = 0;
  Clock::time_point last_active;
  /// Framing is lost (or the server is draining): close as soon as the
  /// outbuf flushes, read nothing more.
  bool closing = false;
};

}  // namespace

/// Per-thread worker: one edge-triggered event loop plus the connections
/// it owns. All mutable state is loop-thread-only; the cross-thread
/// surface is EventLoop::RunInLoop plus a handful of atomics.
struct Server::Worker : std::enable_shared_from_this<Server::Worker> {
  explicit Worker(Server* server)
      : server(server),
        loop([this] { Tick(); }, server->options_.tick_interval_ms) {}

  Server* server;
  EventLoop loop;
  std::thread thread;
  /// Once set, enqueues are dropped: the loop may already be stopped.
  std::atomic<bool> stopped{false};
  /// Sum of unflushed outbuf bytes across this worker's connections;
  /// Shutdown() polls it (with inflight_) to decide the drain is done.
  std::atomic<uint64_t> queued_bytes{0};
  /// Draining: close connections as they go quiet instead of idling.
  std::atomic<bool> draining{false};

  uint64_t next_id = 1;                                  // loop thread
  std::unordered_map<uint64_t, Connection> connections;  // loop thread
  std::unordered_map<int, uint64_t> by_fd;               // loop thread

  void AdoptOnLoop(int fd) {
    if (stopped.load(std::memory_order_acquire)) {
      close(fd);
      return;
    }
    const uint64_t id = next_id++;
    Connection& conn = connections[id];
    conn.fd = fd;
    conn.id = id;
    conn.last_active = Clock::now();
    by_fd[fd] = id;
    const Status added =
        loop.AddFd(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                   [this, id](uint32_t events) { OnEvent(id, events); });
    if (!added.ok()) {
      by_fd.erase(fd);
      connections.erase(id);
      close(fd);
      server->closed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void OnEvent(uint64_t id, uint32_t events) {
    auto it = connections.find(id);
    if (it == connections.end()) return;
    Connection& conn = it->second;
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConn(conn);
      return;
    }
    if (events & EPOLLOUT) {
      if (!FlushWrites(conn)) return;  // closed
    }
    if (events & (EPOLLIN | EPOLLRDHUP)) {
      ReadReady(conn);
    }
  }

  /// Drains the socket to EAGAIN (edge-triggered contract), framing and
  /// dispatching as complete frames appear.
  void ReadReady(Connection& conn) {
    if (conn.closing) return;
    char chunk[16384];
    bool peer_closed = false;
    while (true) {
      const ssize_t n = RetryEintr(
          [&] { return read(conn.fd, chunk, sizeof(chunk)); });
      if (n > 0) {
        conn.inbuf.append(chunk, static_cast<size_t>(n));
        conn.last_active = Clock::now();
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      peer_closed = true;  // ECONNRESET and friends
      break;
    }
    ParseFrames(conn);
    if (peer_closed) {
      // Answers to already-dispatched frames can't reach the peer; just
      // tear down.
      CloseConn(conn);
    }
  }

  void ParseFrames(Connection& conn) {
    while (!conn.closing) {
      const size_t available = conn.inbuf.size() - conn.parse_pos;
      if (available < kHeaderSize) break;
      auto header = DecodeHeader(conn.inbuf.data() + conn.parse_pos,
                                 server->options_.max_payload);
      if (!header.ok()) {
        // Framing is lost: nothing after these bytes can be re-synced.
        // Answer with one error frame (request id 0 — the id field
        // itself is untrusted) and close once it flushes.
        server->decode_errors_.fetch_add(1, std::memory_order_relaxed);
        server->error_frames_sent_.fetch_add(1, std::memory_order_relaxed);
        EnqueueFrame(conn, EncodeErrorFrame(0, header.status()));
        conn.closing = true;
        FlushWrites(conn);  // closes once the error frame is out
        return;
      }
      if (available < kHeaderSize + header->payload_size) break;
      Frame frame;
      frame.header = *header;
      frame.payload.assign(
          conn.inbuf.data() + conn.parse_pos + kHeaderSize,
          header->payload_size);
      conn.parse_pos += kHeaderSize + header->payload_size;
      server->frames_received_.fetch_add(1, std::memory_order_relaxed);
      server->inflight_.fetch_add(1, std::memory_order_acq_rel);
      const uint64_t conn_id = conn.id;  // `conn` may die in the handler
      ResponderPtr respond = std::make_shared<Responder>(
          Responder::Passkey{}, shared_from_this(), conn_id,
          frame.header.request_id);
      server->handler_(std::move(frame), std::move(respond));
      // The handler may have sent synchronously and tripped
      // backpressure, closing the connection under us.
      if (connections.find(conn_id) == connections.end()) return;
    }
    // Compact once the consumed prefix dominates; amortized O(1).
    if (conn.parse_pos > 4096 && conn.parse_pos * 2 > conn.inbuf.size()) {
      conn.inbuf.erase(0, conn.parse_pos);
      conn.parse_pos = 0;
    }
  }

  /// Loop-thread send: append + try to flush. Returns false if the
  /// connection was closed (backpressure or write error).
  void SendOnLoop(uint64_t id, std::string frame) {
    auto it = connections.find(id);
    if (it == connections.end()) return;  // peer already left
    Connection& conn = it->second;
    const size_t queued = conn.outbuf.size() - conn.write_pos;
    if (queued + frame.size() > server->options_.max_write_buffer_bytes) {
      // The peer is not reading its responses; disconnecting it is the
      // bounded-memory answer (the alternative is an unbounded buffer).
      server->backpressure_closes_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
      return;
    }
    // Count error frames at the transport: every path that answers with
    // kError funnels through here (op byte 5 of the header).
    if (frame.size() > 5 &&
        static_cast<uint8_t>(frame[5]) == static_cast<uint8_t>(Op::kError)) {
      server->error_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    server->frames_sent_.fetch_add(1, std::memory_order_relaxed);
    EnqueueFrame(conn, std::move(frame));
    FlushWrites(conn);
  }

  void EnqueueFrame(Connection& conn, std::string frame) {
    queued_bytes.fetch_add(frame.size(), std::memory_order_relaxed);
    if (conn.outbuf.empty()) {
      conn.outbuf = std::move(frame);
      conn.write_pos = 0;
    } else {
      conn.outbuf.append(frame);
    }
  }

  /// Writes until EAGAIN or empty. Returns false if the connection was
  /// closed.
  bool FlushWrites(Connection& conn) {
    while (conn.write_pos < conn.outbuf.size()) {
      const ssize_t n = RetryEintr([&] {
        return write(conn.fd, conn.outbuf.data() + conn.write_pos,
                     conn.outbuf.size() - conn.write_pos);
      });
      if (n > 0) {
        conn.write_pos += static_cast<size_t>(n);
        queued_bytes.fetch_sub(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
        continue;
      }
      if (n == -1 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // EPOLLOUT edge resumes us
      }
      CloseConn(conn);  // EPIPE/ECONNRESET: peer is gone
      return false;
    }
    if (conn.write_pos == conn.outbuf.size() && !conn.outbuf.empty()) {
      conn.outbuf.clear();
      conn.write_pos = 0;
    }
    if (conn.closing) {
      CloseConn(conn);
      return false;
    }
    return true;
  }

  void CloseConn(Connection& conn) {
    queued_bytes.fetch_sub(conn.outbuf.size() - conn.write_pos,
                           std::memory_order_relaxed);
    loop.RemoveFd(conn.fd);
    close(conn.fd);
    by_fd.erase(conn.fd);
    server->closed_.fetch_add(1, std::memory_order_relaxed);
    connections.erase(conn.id);  // invalidates `conn`
  }

  /// Periodic sweep: idle timeouts, and during drain, connections with
  /// nothing left to say.
  void Tick() {
    // During drain a flushed connection is only retired once no frame is
    // awaiting its answer anywhere — a handler may still be computing a
    // response destined for it.
    const bool drain =
        draining.load(std::memory_order_acquire) &&
        server->inflight_.load(std::memory_order_acquire) == 0;
    const double idle_limit = server->options_.idle_timeout_seconds;
    if (idle_limit <= 0.0 && !drain) return;
    const Clock::time_point now = Clock::now();
    std::vector<uint64_t> to_close;
    for (auto& [id, conn] : connections) {
      const bool flushed = conn.write_pos >= conn.outbuf.size();
      if (drain && flushed) {
        to_close.push_back(id);
        continue;
      }
      if (idle_limit > 0.0 && flushed &&
          std::chrono::duration<double>(now - conn.last_active).count() >
              idle_limit) {
        server->idle_closes_.fetch_add(1, std::memory_order_relaxed);
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) {
      if (auto it = connections.find(id); it != connections.end()) {
        CloseConn(it->second);
      }
    }
  }

  /// Called after the loop thread is joined: release whatever is left.
  void CloseAll() {
    for (auto& [id, conn] : connections) {
      close(conn.fd);
      server->closed_.fetch_add(1, std::memory_order_relaxed);
    }
    connections.clear();
    by_fd.clear();
  }
};

Responder::Responder(Passkey, std::shared_ptr<void> worker,
                     uint64_t connection_id, uint64_t request_id)
    : worker_(std::move(worker)),
      connection_id_(connection_id),
      request_id_(request_id) {}

Responder::~Responder() {
  if (!sent_.exchange(true, std::memory_order_acq_rel)) {
    // The handler dropped the frame without answering — a handler bug,
    // but one that must not wedge the drain count.
    auto* worker = static_cast<Server::Worker*>(worker_.get());
    worker->server->unanswered_frames_.fetch_add(1,
                                                 std::memory_order_relaxed);
    worker->server->inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Responder::Send(std::string frame) {
  if (sent_.exchange(true, std::memory_order_acq_rel)) return;
  auto worker =
      std::static_pointer_cast<Server::Worker>(worker_);
  Server* server = worker->server;
  if (worker->stopped.load(std::memory_order_acquire)) {
    // Late send racing shutdown: degrade to a drop, never a UAF.
    server->unanswered_frames_.fetch_add(1, std::memory_order_relaxed);
    server->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  // inflight_ is decremented on the loop thread AFTER the frame's bytes
  // are accounted in queued_bytes, so Shutdown()'s drain predicate
  // (inflight == 0 && queued == 0) can never be transiently true while a
  // response is still sitting in the loop's task queue.
  const uint64_t id = connection_id_;
  worker->loop.RunInLoop(
      [worker, id, frame = std::move(frame)]() mutable {
        worker->SendOnLoop(id, std::move(frame));
        worker->server->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      });
}

Server::Server(ServerOptions options, FrameHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  IgnoreSigpipe();
  auto listener =
      ListenTcp(options_.host, options_.port, options_.backlog);
  ORX_RETURN_IF_ERROR(listener.status());
  listen_fd_ = listener->fd;
  port_ = listener->port;

  for (size_t i = 0; i < std::max<size_t>(1, options_.num_workers); ++i) {
    workers_.push_back(std::make_shared<Worker>(this));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([worker] { worker->loop.Run(); });
  }

  accept_loop_ = std::make_unique<EventLoop>(nullptr, 500);
  const Status added = accept_loop_->AddFd(
      listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); });
  if (!added.ok()) return added;
  accept_thread_ = std::thread([this] { accept_loop_->Run(); });
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::AcceptReady() {
  // Edge-triggered: accept until EAGAIN or the kernel runs us dry.
  while (true) {
    const int fd = RetryEintr([&] {
      return accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    });
    if (fd == -1) {
      // EAGAIN: drained. EMFILE/ENFILE: shed by not accepting; the
      // backlog holds the peer until descriptors free up.
      break;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto& worker = workers_[next_worker_++ % workers_.size()];
    worker->loop.RunInLoop([worker, fd] { worker->AdoptOnLoop(fd); });
  }
}

void Server::Shutdown() {
  // Acquire pairs with Start()'s release store: a signal-watcher thread
  // that observes started_ == true also observes the threads and fds
  // Start() published before setting it.
  if (!started_.load(std::memory_order_acquire) ||
      shut_down_.exchange(true)) {
    return;
  }
  // 1. Stop accepting: no new connections during the drain.
  accept_loop_->Stop();
  accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: every dispatched frame answered and every answer flushed
  //    (or the timeout expires — a hung client can't hold shutdown
  //    hostage).
  for (auto& worker : workers_) {
    worker->draining.store(true, std::memory_order_release);
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.drain_timeout_seconds));
  while (Clock::now() < deadline) {
    // Read inflight_ BEFORE summing queued bytes: a responder's bytes
    // are accounted before its inflight decrement, so this order can't
    // observe {inflight == 0, queued == 0} with a response in between.
    const int64_t inflight = inflight_.load(std::memory_order_acquire);
    uint64_t queued = 0;
    for (const auto& worker : workers_) {
      queued += worker->queued_bytes.load(std::memory_order_relaxed);
    }
    if (inflight == 0 && queued == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 3. Stop the loops and release what remains.
  for (auto& worker : workers_) {
    worker->stopped.store(true, std::memory_order_release);
    worker->loop.Stop();
  }
  for (auto& worker : workers_) {
    worker->thread.join();
    worker->CloseAll();
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.closed = closed_.load(std::memory_order_relaxed);
  stats.open = stats.accepted - stats.closed;
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.error_frames_sent =
      error_frames_sent_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.backpressure_closes =
      backpressure_closes_.load(std::memory_order_relaxed);
  stats.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  stats.unanswered_frames =
      unanswered_frames_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace orx::net
