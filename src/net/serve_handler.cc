#include "net/serve_handler.h"

#include <string>
#include <vector>

#include "core/base_set.h"
#include "explain/explainer.h"
#include "graph/validate.h"
#include "reformulate/reformulator.h"
#include "text/query.h"

namespace orx::net {
namespace {

/// Renders the service's ServeResponse (plus labels resolved against the
/// snapshot) into the wire shape.
SearchResponse ToWire(const serve::ServeResponse& response,
                      const serve::ServeSnapshot& snap) {
  SearchResponse wire;
  wire.results.reserve(response.result.top.size());
  for (const core::ScoredNode& r : response.result.top) {
    WireResult row;
    row.node = r.node;
    row.score = r.score;
    if (r.node < snap.data->num_nodes()) {
      row.type_label =
          snap.data->schema().NodeTypeLabel(snap.data->NodeType(r.node));
      row.display_label = snap.data->DisplayLabel(r.node);
    }
    wire.results.push_back(std::move(row));
  }
  wire.iterations = static_cast<uint32_t>(response.result.iterations);
  wire.from_rank_cache = response.result.from_cache;
  wire.cache_hit = response.cache_hit;
  wire.coalesced = response.coalesced;
  wire.snapshot_version = response.snapshot_version;
  wire.total_seconds = response.total_seconds;
  wire.tier_used = static_cast<uint8_t>(response.result.tier_used);
  wire.error_bound = response.result.error_bound;
  wire.certified = response.result.certified;
  wire.escalated = response.result.escalated;
  return wire;
}

/// Decodes a query string into a QueryVector, mapping emptiness to
/// kInvalidArgument (ParseQuery drops stopwords/garbage silently).
StatusOr<text::QueryVector> ParseWireQuery(const std::string& query) {
  text::QueryVector parsed(text::ParseQuery(query));
  if (parsed.empty()) {
    return InvalidArgumentError("empty query '" + query + "'");
  }
  return parsed;
}

}  // namespace

void ServeHandler::Handle(Frame frame, ResponderPtr respond) {
  switch (frame.header.op) {
    case Op::kPing:
      respond->Send(
          EncodeFrame(Op::kPing, frame.header.request_id, std::string()));
      return;
    case Op::kSearch:
      HandleSearch(std::move(frame), std::move(respond));
      return;
    case Op::kExplain:
      HandleExplain(std::move(frame), std::move(respond));
      return;
    case Op::kReformulate:
      HandleReformulate(std::move(frame), std::move(respond));
      return;
    case Op::kValidate:
      HandleValidate(frame, respond);
      return;
    case Op::kMetrics:
      HandleMetrics(frame, respond);
      return;
    case Op::kMutate:
      HandleMutate(frame, respond);
      return;
    case Op::kError:
      // kError is response-only; a client sending one is a protocol
      // violation answered in kind.
      respond->Send(EncodeErrorFrame(
          frame.header.request_id,
          InvalidArgumentError("kError is a response-only op")));
      return;
  }
  respond->Send(EncodeErrorFrame(
      frame.header.request_id,
      InternalError("unhandled op " +
                    std::to_string(static_cast<int>(frame.header.op)))));
}

void ServeHandler::HandleSearch(Frame frame, ResponderPtr respond) {
  const uint64_t id = frame.header.request_id;
  auto request = DecodeSearchRequest(frame.payload);
  if (!request.ok()) {
    respond->Send(EncodeErrorFrame(id, request.status()));
    return;
  }
  auto query = ParseWireQuery(request->query);
  if (!query.ok()) {
    respond->Send(EncodeErrorFrame(id, query.status()));
    return;
  }
  auto snap = service_->snapshot();
  serve::ServeRequest serve_request;
  serve_request.query = std::move(*query);
  serve_request.deadline_seconds = request->deadline_seconds;
  // DecodeSearchRequest already rejected tiers above kCached, so the
  // cast is total; auto (0) leaves the service's policy in charge.
  serve_request.tier = static_cast<core::SearchTier>(request->tier);
  if (request->k != 0) {
    core::SearchOptions options = snap->default_options;
    options.k = request->k;
    serve_request.options = options;
  }
  service_->SubmitAsync(
      std::move(serve_request),
      [respond = std::move(respond), id,
       snap = std::move(snap)](StatusOr<serve::ServeResponse> response) {
        if (!response.ok()) {
          respond->Send(EncodeErrorFrame(id, response.status()));
          return;
        }
        respond->Send(EncodeFrame(
            Op::kSearch, id,
            EncodeSearchResponse(ToWire(*response, *snap))));
      });
}

void ServeHandler::HandleExplain(Frame frame, ResponderPtr respond) {
  const uint64_t id = frame.header.request_id;
  auto request = DecodeExplainRequest(frame.payload);
  if (!request.ok()) {
    respond->Send(EncodeErrorFrame(id, request.status()));
    return;
  }
  auto query = ParseWireQuery(request->query);
  if (!query.ok()) {
    respond->Send(EncodeErrorFrame(id, query.status()));
    return;
  }
  auto snap = service_->snapshot();
  const uint32_t target_rank = request->target_rank;
  serve::ServeRequest serve_request;
  serve_request.query = *query;
  // The search result (scores + top list) feeds the explainer; repeats
  // of the same query hit the service's result cache, so "search then
  // explain rank 2, then rank 3" pays one power iteration total.
  service_->SubmitAsync(
      std::move(serve_request),
      [respond = std::move(respond), id, snap = std::move(snap),
       query = std::move(*query),
       target_rank](StatusOr<serve::ServeResponse> response) {
        if (!response.ok()) {
          respond->Send(EncodeErrorFrame(id, response.status()));
          return;
        }
        const auto& top = response->result.top;
        if (target_rank == 0 || target_rank > top.size()) {
          respond->Send(EncodeErrorFrame(
              id, InvalidArgumentError(
                      "target rank " + std::to_string(target_rank) +
                      " out of range 1.." + std::to_string(top.size()))));
          return;
        }
        auto base = core::BuildBaseSet(*snap->corpus, query,
                                       core::BaseSetMode::kIrWeighted,
                                       snap->default_options.bm25);
        if (!base.ok()) {
          respond->Send(EncodeErrorFrame(id, base.status()));
          return;
        }
        explain::Explainer explainer(*snap->data, *snap->authority);
        auto explanation = explainer.Explain(
            top[target_rank - 1].node, *base, response->result.scores,
            snap->rates, snap->default_options.objectrank.damping,
            explain::ExplainOptions{});
        if (!explanation.ok()) {
          respond->Send(EncodeErrorFrame(id, explanation.status()));
          return;
        }
        ExplainResponse wire;
        wire.text = explanation->subgraph.ToString(*snap->data);
        wire.iterations = static_cast<uint32_t>(explanation->iterations);
        wire.construction_seconds = explanation->construction_seconds;
        wire.adjustment_seconds = explanation->adjustment_seconds;
        respond->Send(
            EncodeFrame(Op::kExplain, id, EncodeExplainResponse(wire)));
      });
}

void ServeHandler::HandleReformulate(Frame frame, ResponderPtr respond) {
  const uint64_t id = frame.header.request_id;
  auto request = DecodeReformulateRequest(frame.payload);
  if (!request.ok()) {
    respond->Send(EncodeErrorFrame(id, request.status()));
    return;
  }
  if (request->feedback_ranks.empty()) {
    respond->Send(EncodeErrorFrame(
        id, InvalidArgumentError("reformulate needs at least one "
                                 "feedback rank")));
    return;
  }
  auto query = ParseWireQuery(request->query);
  if (!query.ok()) {
    respond->Send(EncodeErrorFrame(id, query.status()));
    return;
  }
  auto snap = service_->snapshot();
  serve::ServeRequest serve_request;
  serve_request.query = *query;
  service_->SubmitAsync(
      std::move(serve_request),
      [respond = std::move(respond), id, snap = std::move(snap),
       query = std::move(*query), ranks = std::move(request->feedback_ranks)](
          StatusOr<serve::ServeResponse> response) {
        if (!response.ok()) {
          respond->Send(EncodeErrorFrame(id, response.status()));
          return;
        }
        const auto& top = response->result.top;
        std::vector<graph::NodeId> feedback;
        feedback.reserve(ranks.size());
        for (uint32_t rank : ranks) {
          if (rank == 0 || rank > top.size()) {
            respond->Send(EncodeErrorFrame(
                id, InvalidArgumentError(
                        "feedback rank " + std::to_string(rank) +
                        " out of range 1.." + std::to_string(top.size()))));
            return;
          }
          feedback.push_back(top[rank - 1].node);
        }
        auto base = core::BuildBaseSet(*snap->corpus, query,
                                       core::BaseSetMode::kIrWeighted,
                                       snap->default_options.bm25);
        if (!base.ok()) {
          respond->Send(EncodeErrorFrame(id, base.status()));
          return;
        }
        reform::Reformulator reformulator(*snap->data, *snap->authority,
                                          *snap->corpus);
        auto result = reformulator.Reformulate(
            query, snap->rates, *base, response->result.scores, feedback,
            reform::ReformulationOptions{});
        if (!result.ok()) {
          respond->Send(EncodeErrorFrame(id, result.status()));
          return;
        }
        ReformulateResponse wire;
        wire.reformulated_query = result->query.ToString();
        wire.top_expansion_terms = result->top_expansion_terms;
        wire.reformulation_seconds = result->reformulation_seconds;
        respond->Send(EncodeFrame(Op::kReformulate, id,
                                  EncodeReformulateResponse(wire)));
      });
}

void ServeHandler::HandleValidate(const Frame& frame,
                                  const ResponderPtr& respond) {
  auto snap = service_->snapshot();
  ValidateResponse wire;
  Status status = graph::ValidateInvariants(
      *snap->authority, snap->rates.num_slots());
  if (status.ok() && snap->fused_cache != nullptr) {
    // Validate the layout requests actually stream (memoized; this does
    // not build a second copy on the serve path).
    auto layout = snap->fused_cache->Get(*snap->authority, snap->rates);
    status = graph::ValidateInvariants(*layout);
  }
  wire.ok = status.ok();
  wire.report = status.ok() ? "snapshot OK" : status.ToString();
  respond->Send(EncodeFrame(Op::kValidate, frame.header.request_id,
                            EncodeValidateResponse(wire)));
}

void ServeHandler::HandleMetrics(const Frame& frame,
                                 const ResponderPtr& respond) {
  MetricsResponse wire;
  wire.serve = service_->Snapshot();
  if (server_stats_) {
    const ServerStats stats = server_stats_();
    wire.connections_accepted = stats.accepted;
    wire.connections_open = stats.open;
    wire.frames_received = stats.frames_received;
    wire.frames_sent = stats.frames_sent;
    wire.error_frames_sent = stats.error_frames_sent;
    wire.decode_errors = stats.decode_errors;
    wire.backpressure_closes = stats.backpressure_closes;
    wire.idle_closes = stats.idle_closes;
  }
  if (mutation_.log != nullptr) {
    const mutate::DeltaLog::Stats log = mutation_.log->stats();
    wire.mutate_accepted = log.appended;
    wire.mutate_rejected = log.rejected;
    wire.mutate_queued = log.queued;
  }
  if (mutation_.epochs != nullptr) {
    wire.epochs_live = mutation_.epochs->live();
  }
  if (mutation_.builder != nullptr) {
    const mutate::SnapshotBuilder::Stats builder = mutation_.builder->stats();
    wire.snapshots_published = builder.publications;
    wire.rank_terms_reused = builder.terms_reused;
    wire.rank_terms_refreshed = builder.terms_refreshed;
  }
  respond->Send(EncodeFrame(Op::kMetrics, frame.header.request_id,
                            EncodeMetricsResponse(wire)));
}

void ServeHandler::HandleMutate(const Frame& frame,
                                const ResponderPtr& respond) {
  const uint64_t id = frame.header.request_id;
  if (mutation_.log == nullptr) {
    respond->Send(EncodeErrorFrame(
        id, FailedPreconditionError(
                "server is read-only (no write path configured)")));
    return;
  }
  auto request = DecodeMutateRequest(frame.payload);
  if (!request.ok()) {
    respond->Send(EncodeErrorFrame(id, request.status()));
    return;
  }
  // Append is cheap (static validation + a queue push), so it runs
  // synchronously on the worker loop; the heavy rebuild work happens on
  // the snapshot builder's thread. kUnavailable on a full log is the
  // same shed-don't-queue contract as search admission.
  auto sequence = mutation_.log->Append(std::move(request->batch));
  if (!sequence.ok()) {
    respond->Send(EncodeErrorFrame(id, sequence.status()));
    return;
  }
  MutateResponse wire;
  wire.sequence = *sequence;
  wire.queued = mutation_.log->stats().queued;
  respond->Send(
      EncodeFrame(Op::kMutate, id, EncodeMutateResponse(wire)));
}

}  // namespace orx::net
