#ifndef ORX_NET_CLIENT_H_
#define ORX_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace orx::net {

/// A simple blocking ORXN client: one connection, synchronous
/// call-response. Used by orx_client's interactive/e2e/bench modes and
/// the loopback tests; the load mode drives many non-blocking
/// connections itself (tools/orx_client.cpp).
///
/// Not thread-safe: one BlockingClient per thread.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ != -1; }

  /// Sends one frame and blocks for its response (matched by request
  /// id — the server may interleave pushes for pipelined ids, but this
  /// client never pipelines, so the next response is ours). A kError
  /// response is surfaced as the Status it carries.
  StatusOr<Frame> Call(Op op, const std::string& payload);

  /// Typed conveniences over Call().
  StatusOr<SearchResponse> Search(const SearchRequest& request);
  StatusOr<ExplainResponse> Explain(const ExplainRequest& request);
  StatusOr<ReformulateResponse> Reformulate(
      const ReformulateRequest& request);
  StatusOr<ValidateResponse> Validate();
  StatusOr<MetricsResponse> Metrics();
  StatusOr<MutateResponse> Mutate(const MutateRequest& request);
  Status Ping();

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace orx::net

#endif  // ORX_NET_CLIENT_H_
