#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

#include "common/check.h"
#include "net/net_util.h"

namespace orx::net {

EventLoop::EventLoop(Task tick, int tick_interval_ms)
    : tick_interval_ms_(tick_interval_ms), tick_(std::move(tick)) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  ORX_CHECK_MSG(epoll_fd_ != -1, "epoll_create1 failed");
  wakeup_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ORX_CHECK_MSG(wakeup_fd_ != -1, "eventfd failed");
  epoll_event event;
  event.events = EPOLLIN | EPOLLET;
  event.data.fd = wakeup_fd_;
  ORX_CHECK_MSG(
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &event) == 0,
      "epoll_ctl(wakeup) failed");
}

EventLoop::~EventLoop() {
  close(wakeup_fd_);
  close(epoll_fd_);
}

void EventLoop::CheckOnLoopThread(const char* what) const {
  const std::thread::id bound = loop_thread_.load(std::memory_order_acquire);
  if (bound == std::thread::id()) return;  // Run() not entered yet
  ORX_CHECK_MSG(std::this_thread::get_id() == bound, what);
}

Status EventLoop::AddFd(int fd, uint32_t events, Handler handler) {
  CheckOnLoopThread("EventLoop::AddFd called off the loop thread");
  epoll_event event;
  event.events = events | EPOLLET;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == -1) {
    return ErrnoError("epoll_ctl(ADD)");
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::ModFd(int fd, uint32_t events) {
  CheckOnLoopThread("EventLoop::ModFd called off the loop thread");
  epoll_event event;
  event.events = events | EPOLLET;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == -1) {
    return ErrnoError("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EventLoop::RemoveFd(int fd) {
  CheckOnLoopThread("EventLoop::RemoveFd called off the loop thread");
  // The fd may already be gone (closed elsewhere implicitly removes it);
  // a failing DEL is not an error worth surfacing.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = RetryEintr([&] {
      return epoll_wait(epoll_fd_, events, kMaxEvents, tick_interval_ms_);
    });
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      // Re-look-up per event: an earlier handler in this batch may have
      // closed this fd (e.g. a drain task tore the connection down).
      if (auto it = handlers_.find(fd); it != handlers_.end()) {
        it->second(events[i].events);
      }
    }
    // Tasks after events: a task enqueued by a handler runs in the same
    // iteration.
    std::vector<Task> tasks;
    {
      MutexLock lock(task_mu_);
      tasks.swap(tasks_);
    }
    for (Task& task : tasks) task();
    if (tick_) tick_();
  }
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::RunInLoop(Task task) {
  {
    MutexLock lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  IgnoreError(WriteAll(wakeup_fd_, reinterpret_cast<const char*>(&one),
                       sizeof(one)));
}

void EventLoop::DrainWakeup() {
  uint64_t value = 0;
  // Edge-triggered: one read clears the eventfd counter entirely.
  while (RetryEintr([&] {
           return read(wakeup_fd_, &value, sizeof(value));
         }) > 0) {
  }
}

}  // namespace orx::net
