#include "net/client.h"

#include <unistd.h>

#include <utility>

#include "net/net_util.h"

namespace orx::net {

BlockingClient::~BlockingClient() { Close(); }

Status BlockingClient::Connect(const std::string& host, uint16_t port) {
  IgnoreSigpipe();
  Close();
  auto fd = ConnectTcp(host, port);
  ORX_RETURN_IF_ERROR(fd.status());
  fd_ = *fd;
  return Status::OK();
}

void BlockingClient::Close() {
  if (fd_ != -1) {
    close(fd_);
    fd_ = -1;
  }
}

StatusOr<Frame> BlockingClient::Call(Op op, const std::string& payload) {
  if (fd_ == -1) return FailedPreconditionError("client not connected");
  const uint64_t id = next_request_id_++;
  const std::string wire = EncodeFrame(op, id, payload);
  Status sent = WriteAll(fd_, wire.data(), wire.size());
  if (!sent.ok()) {
    Close();
    return sent;
  }

  char header_bytes[kHeaderSize];
  Status got = ReadAll(fd_, header_bytes, kHeaderSize, "frame header");
  if (!got.ok()) {
    Close();
    return got;
  }
  auto header = DecodeHeader(header_bytes);
  if (!header.ok()) {
    Close();  // framing lost; the connection is unusable
    return header.status();
  }
  Frame frame;
  frame.header = *header;
  frame.payload.resize(header->payload_size);
  if (header->payload_size > 0) {
    got = ReadAll(fd_, frame.payload.data(), header->payload_size,
                  "frame payload");
    if (!got.ok()) {
      Close();
      return got;
    }
  }
  if (frame.header.request_id != id) {
    Close();
    return DataLossError(
        "response id " + std::to_string(frame.header.request_id) +
        " does not match request id " + std::to_string(id));
  }
  if (frame.header.op == Op::kError) {
    auto error = DecodeErrorResponse(frame.payload);
    ORX_RETURN_IF_ERROR(error.status());
    return Status(error->code, error->message);
  }
  if (frame.header.op != op) {
    Close();
    return DataLossError("response op " +
                         std::to_string(static_cast<int>(frame.header.op)) +
                         " does not match request op " +
                         std::to_string(static_cast<int>(op)));
  }
  return frame;
}

StatusOr<SearchResponse> BlockingClient::Search(
    const SearchRequest& request) {
  auto frame = Call(Op::kSearch, EncodeSearchRequest(request));
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeSearchResponse(frame->payload);
}

StatusOr<ExplainResponse> BlockingClient::Explain(
    const ExplainRequest& request) {
  auto frame = Call(Op::kExplain, EncodeExplainRequest(request));
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeExplainResponse(frame->payload);
}

StatusOr<ReformulateResponse> BlockingClient::Reformulate(
    const ReformulateRequest& request) {
  auto frame = Call(Op::kReformulate, EncodeReformulateRequest(request));
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeReformulateResponse(frame->payload);
}

StatusOr<ValidateResponse> BlockingClient::Validate() {
  auto frame = Call(Op::kValidate, std::string());
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeValidateResponse(frame->payload);
}

StatusOr<MetricsResponse> BlockingClient::Metrics() {
  auto frame = Call(Op::kMetrics, std::string());
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeMetricsResponse(frame->payload);
}

StatusOr<MutateResponse> BlockingClient::Mutate(
    const MutateRequest& request) {
  auto frame = Call(Op::kMutate, EncodeMutateRequest(request));
  ORX_RETURN_IF_ERROR(frame.status());
  return DecodeMutateResponse(frame->payload);
}

Status BlockingClient::Ping() {
  return Call(Op::kPing, std::string()).status();
}

}  // namespace orx::net
