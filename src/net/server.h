#ifndef ORX_NET_SERVER_H_
#define ORX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace orx::net {

/// Counters of the network front end, sampled racily-but-monotonically
/// (each field is one relaxed atomic load; operational metrics, not
/// invariants).
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t open = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t error_frames_sent = 0;
  uint64_t decode_errors = 0;
  uint64_t backpressure_closes = 0;
  uint64_t idle_closes = 0;
  uint64_t unanswered_frames = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the actual port back with port().
  uint16_t port = 0;
  /// Worker event loops (one thread each), fed round-robin by one
  /// acceptor thread.
  size_t num_workers = 2;
  int backlog = 512;
  /// Per-frame payload bound enforced before any payload allocation.
  uint32_t max_payload = kMaxPayload;
  /// Per-connection outbound-buffer bound: a client that stops reading
  /// its responses is disconnected once this many bytes are queued,
  /// instead of growing the buffer without bound (graceful degradation —
  /// the slow client pays, not the process).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Connections with no inbound traffic for this long are closed by the
  /// idle sweep; 0 disables the sweep.
  double idle_timeout_seconds = 300.0;
  /// How long Shutdown() waits for in-flight requests to answer and
  /// outbound buffers to flush before closing what remains.
  double drain_timeout_seconds = 5.0;
  /// Worker tick period (idle sweep / drain checks), milliseconds.
  int tick_interval_ms = 200;
};

class Server;

/// The reply channel for one received frame. Thread-safe; exactly one
/// Send() is expected per frame (the frame handler's contract). Extra
/// sends are dropped; a Responder destroyed without sending counts as an
/// unanswered frame. Holding the pointer keeps the worker alive, so a
/// late completion (e.g. a search callback racing shutdown) degrades to
/// a dropped reply, never a use-after-free.
class Responder {
 private:
  /// Passkey: only Server can name this, so construction stays
  /// Server-only while the constructor itself is public enough for
  /// std::make_shared.
  struct Passkey {
    explicit Passkey() = default;
  };

 public:
  Responder(Passkey, std::shared_ptr<void> worker, uint64_t connection_id,
            uint64_t request_id);
  ~Responder();

  /// Enqueues one complete frame (EncodeFrame output) to the connection.
  /// If the connection is already gone the frame is dropped silently —
  /// the peer left; there is nobody to answer.
  void Send(std::string frame);

  uint64_t request_id() const { return request_id_; }

 private:
  friend class Server;

  std::shared_ptr<void> worker_;  // type-erased Server::Worker
  const uint64_t connection_id_;
  const uint64_t request_id_;
  std::atomic<bool> sent_{false};
};

using ResponderPtr = std::shared_ptr<Responder>;

/// The epoll front end: one acceptor thread plus num_workers
/// edge-triggered event loops, speaking the ORXN framing protocol.
///
/// The server owns transport only — framing, backpressure, idle
/// timeouts, drain. Every structurally valid frame is handed to the
/// FrameHandler on the owning worker's loop thread together with a
/// Responder; the handler must arrange exactly one Send() per frame
/// (from any thread — a SearchService completion callback typically
/// sends from a pool thread). Malformed headers (bad magic/version/op,
/// oversized payload) are answered with one kError frame and the
/// connection is closed: framing is lost, nothing after those bytes can
/// be trusted.
class Server {
 public:
  using FrameHandler = std::function<void(Frame frame, ResponderPtr respond)>;

  Server(ServerOptions options, FrameHandler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and spawns the acceptor + worker threads.
  Status Start();

  /// The bound port (valid after Start(); useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, wait up to drain_timeout_seconds
  /// for in-flight frames to be answered and outbound buffers to flush,
  /// then stop the loops and close everything. Idempotent; called by the
  /// destructor if not called explicitly. Safe to call from a signal
  /// watcher thread (orx_serve's SIGTERM path).
  void Shutdown();

  ServerStats stats() const;

 private:
  struct Worker;
  friend struct Worker;
  friend class Responder;

  void AcceptReady();

  const ServerOptions options_;
  const FrameHandler handler_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<EventLoop> accept_loop_;
  std::thread accept_thread_;
  std::vector<std::shared_ptr<Worker>> workers_;
  size_t next_worker_ = 0;  // acceptor thread only
  /// Atomic because Shutdown() is documented signal-watcher-thread-safe:
  /// it reads this flag from a thread that never synchronized with
  /// Start() (a plain bool here was a latent data race — see
  /// net_test.cc, NetServerTest.ShutdownFromAnotherThreadBeforeStart).
  std::atomic<bool> started_{false};
  std::atomic<bool> shut_down_{false};

  /// Frames dispatched to the handler whose Responder has not sent yet;
  /// Shutdown() drains to zero before stopping the loops.
  std::atomic<int64_t> inflight_{0};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> error_frames_sent_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> backpressure_closes_{0};
  std::atomic<uint64_t> idle_closes_{0};
  std::atomic<uint64_t> unanswered_frames_{0};
};

}  // namespace orx::net

#endif  // ORX_NET_SERVER_H_
