#ifndef ORX_CORE_TOP_K_H_
#define ORX_CORE_TOP_K_H_

#include <optional>
#include <vector>

#include "graph/data_graph.h"

namespace orx::core {

/// One ranked result.
struct ScoredNode {
  graph::NodeId node = graph::kInvalidNodeId;
  double score = 0.0;

  friend bool operator==(const ScoredNode&, const ScoredNode&) = default;
};

/// Returns the k highest-scoring nodes in descending score order; ties
/// break by ascending node id (deterministic). O(n log k).
std::vector<ScoredNode> TopK(const std::vector<double>& scores, size_t k);

/// Like TopK but only considers nodes of `type` in `data` (the surveys
/// rank Paper objects; other node types are scaffolding). If `type` is
/// nullopt this is plain TopK.
std::vector<ScoredNode> TopKOfType(const std::vector<double>& scores,
                                   size_t k, const graph::DataGraph& data,
                                   std::optional<graph::TypeId> type);

/// Like TopKOfType but skips nodes for which `excluded[v]` is true; used
/// by the residual-collection evaluation (Section 6.1.1), which removes
/// already-seen relevant objects from the collection.
std::vector<ScoredNode> TopKOfTypeExcluding(
    const std::vector<double>& scores, size_t k, const graph::DataGraph& data,
    std::optional<graph::TypeId> type, const std::vector<bool>& excluded);

}  // namespace orx::core

#endif  // ORX_CORE_TOP_K_H_
