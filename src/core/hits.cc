#include "core/hits.h"

#include <cmath>
#include <deque>

namespace orx::core {

StatusOr<HitsResult> ComputeHits(const graph::DataGraph& data,
                                 const BaseSet& base,
                                 const HitsOptions& options) {
  if (base.empty()) {
    return InvalidArgumentError("base set is empty");
  }
  const size_t n = data.num_nodes();

  // Focused subgraph: root set expanded over undirected data adjacency.
  std::vector<int16_t> depth(n, -1);
  std::deque<graph::NodeId> frontier;
  for (const auto& [v, w] : base.entries) {
    if (v < n && depth[v] < 0) {
      depth[v] = 0;
      frontier.push_back(v);
    }
  }
  if (options.expansion_hops > 0) {
    // Adjacency on demand: one pass over edges per hop is O(E * hops) but
    // hops is 1 in practice; avoids materializing an undirected CSR.
    for (int hop = 0; hop < options.expansion_hops; ++hop) {
      std::vector<graph::NodeId> next_frontier;
      for (const graph::DataEdge& e : data.edges()) {
        if (depth[e.from] == hop && depth[e.to] < 0) {
          depth[e.to] = static_cast<int16_t>(hop + 1);
          next_frontier.push_back(e.to);
        }
        if (depth[e.to] == hop && depth[e.from] < 0) {
          depth[e.from] = static_cast<int16_t>(hop + 1);
          next_frontier.push_back(e.from);
        }
      }
      if (next_frontier.empty()) break;
    }
  }

  // Edges inside the focused subgraph.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (const graph::DataEdge& e : data.edges()) {
    if (depth[e.from] >= 0 && depth[e.to] >= 0) {
      edges.emplace_back(e.from, e.to);
    }
  }

  HitsResult result;
  result.authorities.assign(n, 0.0);
  result.hubs.assign(n, 0.0);
  size_t members = 0;
  for (size_t v = 0; v < n; ++v) {
    if (depth[v] >= 0) {
      result.authorities[v] = 1.0;
      result.hubs[v] = 1.0;
      ++members;
    }
  }
  result.subgraph_size = members;
  if (members == 0) {
    return InternalError("focused subgraph is empty");
  }

  auto normalize = [&](std::vector<double>& v) {
    double sum = 0.0;
    for (double x : v) sum += x;
    if (sum > 0.0) {
      for (double& x : v) x /= sum;
    }
  };
  normalize(result.authorities);
  normalize(result.hubs);

  std::vector<double> next_auth(n, 0.0), next_hub(n, 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    std::fill(next_auth.begin(), next_auth.end(), 0.0);
    std::fill(next_hub.begin(), next_hub.end(), 0.0);
    for (const auto& [u, v] : edges) {
      next_auth[v] += result.hubs[u];
      next_hub[u] += result.authorities[v];
    }
    normalize(next_auth);
    normalize(next_hub);
    double l1 = 0.0;
    for (size_t v = 0; v < n; ++v) {
      l1 += std::fabs(next_auth[v] - result.authorities[v]);
    }
    result.authorities.swap(next_auth);
    result.hubs.swap(next_hub);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace orx::core
