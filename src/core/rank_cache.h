#ifndef ORX_CORE_RANK_CACHE_H_
#define ORX_CORE_RANK_CACHE_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/array_ref.h"
#include "common/status.h"
#include "core/objectrank.h"
#include "graph/authority_graph.h"
#include "graph/transfer_rates.h"
#include "text/bm25.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::core {

/// Precomputed per-keyword ObjectRank2 vectors, the query-time strategy of
/// the original ObjectRank system that Section 6.2 recommends for the
/// collections too large for on-the-fly execution ("precompute ObjectRank2
/// values as in [BHP04]").
///
/// The fixpoint of Equation 4 is linear in the base-set vector:
/// r(s) = (1-d) (I - dA)^{-1} s. The IR-weighted base set of a query
/// decomposes over its terms, so the exact query scores are a convex
/// combination of per-term rank vectors:
///
///   r^Q = sum_t c_t * r_t,
///   c_t = qf(w_t) * Z_t / sum_t' qf(w_t') * Z_t',
///
/// where r_t is the ObjectRank2 vector of term t's IR-weighted base set,
/// Z_t its unnormalized IR mass, and qf the query-side BM25 factor. A
/// cached query is therefore *exact* up to the per-term solver tolerance,
/// for arbitrary query-vector weights — including content-reformulated
/// queries. Structure-based reformulation changes the rates and
/// invalidates the cache (rates are baked into the precomputed vectors);
/// this is why precomputation alone cannot serve the full reformulation
/// loop, and the paper instead evaluates on focused subsets.
class RankCache {
 public:
  struct Options {
    ObjectRankOptions objectrank;
    text::Bm25Params bm25;
    /// Only terms with document frequency >= min_df are cached (rare
    /// terms are cheap to rank on the fly).
    uint32_t min_df = 1;
    /// Cache at most this many terms, most frequent first.
    size_t max_terms = static_cast<size_t>(-1);
    /// Worker threads for the offline build. Per-term rank vectors are
    /// independent, so the build fans one power iteration per term out to
    /// a pool; entries are merged in term order, making the result (and
    /// its serialization) byte-identical to the sequential build. 0 means
    /// one thread per hardware core.
    int build_threads = 1;
  };

  /// Per-stage counters/timers of one Build/BuildForTerms run. All times
  /// are wall-clock; per-term percentiles are over built terms only.
  struct BuildStats {
    /// Terms requested, including duplicates and unknown terms.
    size_t terms_requested = 0;
    /// Terms with a cached vector at the end of the build.
    size_t terms_built = 0;
    /// Requested terms skipped: duplicates, already cached, or absent
    /// from the corpus.
    size_t terms_skipped = 0;
    /// Power iterations summed across built terms.
    long long total_iterations = 0;
    /// Built terms whose power iteration hit max_iterations.
    size_t terms_not_converged = 0;
    /// Worker threads the build actually used.
    int threads = 1;
    /// End-to-end build time, including scoring and the merge.
    double wall_seconds = 0.0;
    /// Median / 95th-percentile per-term time (score + power iteration).
    double term_seconds_p50 = 0.0;
    double term_seconds_p95 = 0.0;

    /// One-line human-readable rendering for benchmarks and the CLI.
    std::string ToString() const;
  };

  /// Result of a cached query.
  struct QueryResult {
    std::vector<double> scores;
    /// Query terms the combination could not cover: terms with no cached
    /// vector, and cached terms whose combination coefficient is not
    /// positive (e.g. zero or negative query weight — the cache cannot
    /// reproduce the exact scores for those). The combination covers only
    /// the remaining terms; callers typically fall back to the Searcher
    /// when this is non-empty.
    std::vector<std::string> missing_terms;
    /// Certified one-sided additive error bound versus the all-dense
    /// combination: for every node v,
    ///   scores[v] <= dense[v] <= scores[v] + error_bound.
    /// 0 when every contributing term is dense. Callers gate acceptance
    /// on top-k certification against this bound (core/approx.h).
    double error_bound = 0.0;
    /// Contributing terms served from a compressed entry.
    size_t compressed_terms = 0;
  };

  /// Precomputes the rank vector of every eligible corpus term under
  /// `rates`. O(#terms * power-iteration) — an offline index build,
  /// parallel over terms when options.build_threads != 1. If `stats` is
  /// non-null it receives the build's counters and timings.
  static RankCache Build(const graph::AuthorityGraph& graph,
                         const text::Corpus& corpus,
                         const graph::TransferRates& rates,
                         const Options& options,
                         BuildStats* stats = nullptr);

  /// Wraps precomputed per-term vectors zero-copy (the ORXC2 mmap path):
  /// term t's string is term_heap[term_offsets[t], term_offsets[t+1]),
  /// its mass masses[t], and its scores the float subspan
  /// scores[t * num_nodes, (t+1) * num_nodes). The term strings and hash
  /// map are rebuilt owned (small); the score matrix — the dominant
  /// payload — stays file-backed. Checks shapes and heap coverage; the
  /// per-score finiteness check is ValidateInvariants(), which deep
  /// validation runs in full.
  static StatusOr<RankCache> FromParts(
      size_t num_nodes, uint64_t rates_fingerprint,
      const text::Bm25Params& bm25, std::span<const char> term_heap,
      std::span<const uint64_t> term_offsets, std::span<const double> masses,
      std::span<const float> scores, std::shared_ptr<const void> keepalive);

  /// Knobs of Compress(); see docs/rank_cache.md. The representation is
  /// one-sided by construction (truncation drops mass, quantization
  /// floors), so a compressed combination never *over*-estimates a dense
  /// score — the property top-k certification needs.
  struct CompressionOptions {
    /// Exact float head entries kept per term (score-descending).
    size_t head = 64;
    /// Scores below this threshold (and outside the head) are dropped;
    /// the largest dropped score is remembered as the term's drop bound.
    double drop_threshold = 1e-5;
    /// A term stays dense unless its compressed form is at least this
    /// many times smaller — compression must buy memory, not just cost
    /// accuracy.
    double min_ratio = 2.0;
  };

  /// Aggregate outcome of one Compress() run.
  struct CompressionStats {
    size_t terms_compressed = 0;
    /// Terms left dense (failed min_ratio, or already compressed).
    size_t terms_dense = 0;
    /// Entry payload bytes before and after (score vectors only).
    size_t bytes_before = 0;
    size_t bytes_after = 0;
    /// Largest per-term additive error bound introduced.
    double max_epsilon = 0.0;

    std::string ToString() const;
  };

  /// Rewrites every dense entry as a truncated top-k head (exact floats,
  /// score-descending) plus a 16-bit floor-quantized tail, dropping
  /// scores below options.drop_threshold with their maximum and total
  /// mass remembered for error accounting. Entries whose compressed form
  /// is not at least options.min_ratio times smaller stay dense, so
  /// Query() stays exact for them. Idempotent.
  CompressionStats Compress(const CompressionOptions& options);
  CompressionStats Compress() { return Compress(CompressionOptions{}); }

  /// Number of entries held in compressed form.
  size_t num_compressed_terms() const;

  /// Fixed-size descriptor of one compressed entry inside the packed
  /// arrays (the ORXC2 "rc_cdesc" section payload).
  struct PackedCompressedDesc {
    uint64_t head_offset = 0;
    uint64_t tail_offset = 0;
    uint32_t head_count = 0;
    uint32_t tail_count = 0;
    double tail_scale = 0.0;
    double drop_bound = 0.0;
    double dropped_mass = 0.0;
  };
  static_assert(sizeof(PackedCompressedDesc) == 48);

  /// The entry table flattened for the ORXC2 container writer, in sorted
  /// term order (the same deterministic order Serialize uses). `scores`
  /// concatenates only the *dense* entries, in term order among them;
  /// compressed entries land in the side arrays, indexed by one desc per
  /// kinds[t] == 1 term (also in term order).
  struct PackedEntries {
    std::vector<uint64_t> offsets;
    std::string heap;
    std::vector<double> masses;
    std::vector<float> scores;
    /// Per term: 0 = dense, 1 = compressed. All-dense caches leave this
    /// empty (the ORXC2 v1 layout).
    std::vector<uint8_t> kinds;
    std::vector<PackedCompressedDesc> descs;
    std::vector<uint32_t> head_nodes;
    std::vector<float> head_scores;
    std::vector<uint32_t> tail_nodes;
    std::vector<uint16_t> tail_quants;
  };
  PackedEntries PackEntries() const;

  /// The compressed side arrays of FromParts, all empty for an all-dense
  /// (v1) container. When `kinds` is non-empty it has one byte per term
  /// and `scores` covers only the dense terms.
  struct CompressedParts {
    std::span<const uint8_t> kinds;
    std::span<const PackedCompressedDesc> descs;
    std::span<const uint32_t> head_nodes;
    std::span<const float> head_scores;
    std::span<const uint32_t> tail_nodes;
    std::span<const uint16_t> tail_quants;
  };

  /// FromParts for containers carrying compressed entries. Shallow
  /// checks cover shapes, desc ranges, and node-id bounds (Query on an
  /// accepted cache must never index out of range); value-level checks
  /// (finiteness, monotone heads, ordered tails) are ValidateInvariants.
  static StatusOr<RankCache> FromParts(
      size_t num_nodes, uint64_t rates_fingerprint,
      const text::Bm25Params& bm25, std::span<const char> term_heap,
      std::span<const uint64_t> term_offsets, std::span<const double> masses,
      std::span<const float> scores, const CompressedParts& compressed,
      std::shared_ptr<const void> keepalive);

  /// Like Build but only for the given terms (normalized forms).
  static RankCache BuildForTerms(const graph::AuthorityGraph& graph,
                                 const text::Corpus& corpus,
                                 const graph::TransferRates& rates,
                                 const std::vector<std::string>& terms,
                                 const Options& options,
                                 BuildStats* stats = nullptr);

  /// Knobs of IncrementalBuild on top of the regular build options.
  struct IncrementalOptions {
    Options options;
    /// When more than this fraction of the graph's nodes is dirty the
    /// selective path degenerates (almost every term's base set touches
    /// the region and the bookkeeping costs more than it saves), so
    /// IncrementalBuild runs a cold BuildForTerms instead.
    double full_rebuild_threshold = 0.5;
  };

  /// Counters of one IncrementalBuild run.
  struct IncrementalStats {
    /// Build counters for the terms actually recomputed (refreshed or,
    /// on the fallback path, all of them).
    BuildStats build;
    /// Previous entries carried over unchanged.
    size_t terms_reused = 0;
    /// Terms recomputed, warm-started from the previous vector when one
    /// existed.
    size_t terms_refreshed = 0;
    /// True iff the cold-rebuild fallback ran (incompatible previous
    /// cache or dirty fraction past the threshold).
    bool full_rebuild = false;
  };

  /// Rebuilds the cache for `terms` after a graph mutation, reusing
  /// `previous` where the mutation provably cannot have moved a term's
  /// fixpoint. `dirty_nodes` flags (per node of the *new* graph) every
  /// node whose in-edges, out-degree, or text changed, expanded by one
  /// authority-transfer hop; `stats_changed` says the corpus-wide BM25
  /// statistics (N, avdl, df) moved, which perturbs every base set.
  ///
  /// A term is *clean* — its previous entry is reused verbatim — iff the
  /// stats did not change, it is cached in `previous`, and no flagged
  /// node has a strictly positive cached score: authority flow only
  /// crosses a changed edge when the source scores positive, and a
  /// base-set member always scores at least (1-d) times its base weight,
  /// so zero everywhere on the region means no flow in or out of it and
  /// the old vector still satisfies the new fixpoint equations. Every
  /// other term is recomputed, warm-started from its previous vector
  /// (padded with zeros for newly added nodes) per Section 6.2.
  ///
  /// Falls back to a cold BuildForTerms when `previous` is incompatible
  /// (different rates fingerprint or BM25 parameters) or the dirty-node
  /// fraction exceeds options.full_rebuild_threshold.
  static RankCache IncrementalBuild(const RankCache& previous,
                                    const graph::AuthorityGraph& graph,
                                    const text::Corpus& corpus,
                                    const graph::TransferRates& rates,
                                    const std::vector<std::string>& terms,
                                    std::span<const uint8_t> dirty_nodes,
                                    bool stats_changed,
                                    const IncrementalOptions& options,
                                    IncrementalStats* stats = nullptr);

  /// True if `term` (normalized) has a cached vector.
  bool Contains(const std::string& term) const {
    return entries_.count(term) > 0;
  }

  /// Every cached term, sorted (the serialization order).
  std::vector<std::string> Terms() const;

  /// True iff `term` is cached and some node flagged in `dirty` (indexed
  /// by NodeId, value != 0 = dirty) has a strictly positive cached score
  /// — i.e. the term's authority flow reaches the dirty region and its
  /// entry cannot be reused after a mutation there. False for uncached
  /// terms (they have no entry to reuse in the first place).
  bool TermTouchesRegion(const std::string& term,
                         std::span<const uint8_t> dirty) const;

  /// Combines the cached per-term vectors for `query`. Errors:
  /// kInvalidArgument on an empty query, kNotFound if no query term
  /// contributes (none is cached, or every cached term's combination
  /// coefficient is non-positive).
  StatusOr<QueryResult> Query(const text::QueryVector& query) const;

  size_t num_terms() const { return entries_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Fingerprint of the TransferRates this cache was built with; a cache
  /// only answers exactly for those rates. Searcher uses this to fall
  /// back to the power iteration after structure-based reformulation.
  uint64_t rates_fingerprint() const { return rates_fingerprint_; }

  /// The Okapi parameters baked into the cached vectors and masses. A
  /// cache combines exactly only for these parameters; Searcher compares
  /// them against the search's BM25 options before serving a hit.
  const text::Bm25Params& bm25_params() const { return bm25_; }

  /// True iff the cache was built with exactly these Okapi parameters
  /// (the freshness check alongside rates_fingerprint()).
  bool MatchesBm25(const text::Bm25Params& params) const {
    return bm25_.k1 == params.k1 && bm25_.b == params.b &&
           bm25_.k3 == params.k3;
  }

  /// Approximate in-memory footprint (the vectors dominate).
  size_t MemoryFootprintBytes() const;

  /// Binary persistence — [BHP04] stores its per-keyword "ObjectRank
  /// Index" on disk; so does ORX. The stream carries the BM25 parameters
  /// so a loaded cache combines exactly like the one that was saved.
  /// The caller is responsible for using the cache only with the graph
  /// and rates it was built from (the file stores the node count as a
  /// cheap consistency check). Serialize returns kInternal if any entry's
  /// score vector disagrees with num_nodes() — the fixed-width format
  /// cannot represent it, and writing it would corrupt every entry after
  /// it.
  Status Serialize(std::ostream& out) const;
  static StatusOr<RankCache> Deserialize(std::istream& in);
  Status Save(const std::string& path) const;
  static StatusOr<RankCache> Load(const std::string& path);

  /// Deep structural check: every entry has a non-empty term, a finite
  /// non-negative mass, and — dense — exactly num_nodes() finite
  /// non-negative scores, or — compressed — a score-descending finite
  /// head, a strictly node-ascending nonzero-quant tail disjoint from the
  /// head, node ids in range, a finite non-negative quantization scale
  /// (positive when the tail is non-empty), and finite non-negative
  /// drop bound / dropped mass. Returns a descriptive non-OK Status on
  /// the first violation — Query() on a cache that fails this check would
  /// read or combine garbage. Called by the fuzz harnesses on every
  /// deserialized cache and exposed through `orx_cli validate`.
  Status ValidateInvariants() const;

 private:
  struct Entry {
    /// Unnormalized IR mass Z_t of the term's base set.
    double mass = 0.0;
    /// r_t, stored as float (half the memory; combination runs in
    /// double). Owned by builds/Deserialize; a borrowed slice of the
    /// mmap-backed score matrix on the FromParts path. Empty when the
    /// entry is compressed.
    ArrayRef<float> scores;

    /// Compressed representation (docs/rank_cache.md): the top `head`
    /// scores exact, the next tier floor-quantized to 16 bits, the rest
    /// dropped with their max and sum retained. Every stored value is
    /// <= the dense value it stands for, and every unstored value is
    /// <= drop_bound, so per node
    ///   stored(v) <= dense(v) <= stored(v) + max(drop_bound, tail_scale).
    bool compressed = false;
    ArrayRef<uint32_t> head_nodes;   // score-descending, then id-ascending
    ArrayRef<float> head_scores;
    ArrayRef<uint32_t> tail_nodes;   // strictly ascending node ids
    ArrayRef<uint16_t> tail_quants;  // value = quant * tail_scale
    double tail_scale = 0.0;
    double drop_bound = 0.0;
    double dropped_mass = 0.0;

    /// The entry's certified additive per-node error bound.
    double epsilon() const {
      return compressed ? (drop_bound > tail_scale ? drop_bound : tail_scale)
                        : 0.0;
    }
  };

  /// Serialized byte size of one entry's score payload.
  static size_t EntryPayloadBytes(const Entry& entry);
  /// Dense float materialization of an entry (dropped scores become 0);
  /// the warm-start seed for incremental refreshes of compressed entries.
  std::vector<float> DenseScores(const Entry& entry) const;

  RankCache() = default;

  /// Test-only backdoor (tests/rank_cache_test.cc) for forging invalid
  /// internal states that the public API cannot produce.
  friend struct RankCacheTestPeer;

  size_t num_nodes_ = 0;
  uint64_t rates_fingerprint_ = 0;
  text::Bm25Params bm25_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace orx::core

#endif  // ORX_CORE_RANK_CACHE_H_
