#include "core/searcher.h"

#include <cmath>

#include "common/timer.h"

namespace orx::core {
namespace {

// Rejects option combinations the engine would silently turn into
// nonsense: the engine layer stays permissive (tests drive it with
// degenerate epsilons on purpose), so the request boundary is here.
Status ValidateOptions(const SearchOptions& options) {
  if (options.k == 0) {
    return InvalidArgumentError("k must be >= 1");
  }
  const double d = options.objectrank.damping;
  if (!std::isfinite(d) || d < 0.0 || d >= 1.0) {
    return InvalidArgumentError(
        "damping must be finite and in [0, 1); got " + std::to_string(d));
  }
  const double eps = options.objectrank.epsilon;
  if (!(eps > 0.0)) {  // also catches NaN
    return InvalidArgumentError("epsilon must be > 0");
  }
  if (options.objectrank.max_iterations < 0) {
    return InvalidArgumentError("max_iterations must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Searcher::Searcher(const graph::DataGraph& data,
                   const graph::AuthorityGraph& graph,
                   const text::Corpus& corpus)
    : data_(&data), graph_(&graph), corpus_(&corpus), engine_(graph) {}

void Searcher::PrecomputeGlobalRank(const graph::TransferRates& rates,
                                    const ObjectRankOptions& options) {
  global_scores_ = engine_.ComputeGlobal(rates, options).scores;
  has_global_ = true;
}

void Searcher::ResetSession() {
  has_previous_ = false;
  previous_scores_.clear();
  has_global_ = false;
  global_scores_.clear();
}

StatusOr<SearchResult> Searcher::Search(const text::QueryVector& query,
                                        const graph::TransferRates& rates,
                                        const SearchOptions& options) {
  if (query.empty()) {
    return InvalidArgumentError("empty query vector");
  }
  ORX_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.mode == RankMode::kObjectRank2) {
    return SearchObjectRank2(query, rates, options);
  }
  return SearchBaseline(query, rates, options);
}

std::vector<StatusOr<SearchResult>> Searcher::SearchBatch(
    const std::vector<BatchSearchRequest>& requests,
    const graph::TransferRates& rates, const SearchOptions& options) {
  std::vector<StatusOr<SearchResult>> out;
  out.reserve(requests.size());
  if (Status valid = ValidateOptions(options); !valid.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) out.push_back(valid);
    return out;
  }

  if (options.mode == RankMode::kObjectRankBaseline) {
    // The Equation 16 per-keyword product has no block form: run the
    // lanes one by one with each lane's hook chained in.
    for (const BatchSearchRequest& request : requests) {
      if (request.query.empty()) {
        out.push_back(InvalidArgumentError("empty query vector"));
        continue;
      }
      SearchOptions lane_options = options;
      if (request.cancel) {
        std::function<bool()> shared = options.objectrank.cancel;
        std::function<bool()> mine = request.cancel;
        lane_options.objectrank.cancel = [shared, mine] {
          return (shared && shared()) || mine();
        };
      }
      out.push_back(SearchBaseline(request.query, rates, lane_options));
    }
    return out;
  }

  // ObjectRank2: base-set construction and the rank-cache fast path run
  // per lane; the remaining lanes share one block power iteration.
  struct Lane {
    size_t index;
    BaseSet base;
  };
  std::vector<Lane> lanes;
  lanes.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const BatchSearchRequest& request = requests[i];
    out.push_back(Status(StatusCode::kInternal, "unset"));
    if (request.query.empty()) {
      out[i] = InvalidArgumentError("empty query vector");
      continue;
    }
    auto base = BuildBaseSet(*corpus_, request.query,
                             BaseSetMode::kIrWeighted, options.bm25);
    if (!base.ok()) {
      out[i] = base.status();
      continue;
    }
    if (rank_cache_ != nullptr &&
        rank_cache_->rates_fingerprint() == rates.Fingerprint() &&
        rank_cache_->MatchesBm25(options.bm25)) {
      Timer cache_timer;
      auto cached = rank_cache_->Query(request.query);
      if (cached.ok() && cached->missing_terms.empty()) {
        SearchResult result;
        result.from_cache = true;
        result.converged = true;
        result.seconds = cache_timer.ElapsedSeconds();
        result.base_set_size = base->size();
        result.top = TopKOfType(cached->scores, options.k, *data_,
                                options.result_type);
        result.scores = std::move(cached->scores);
        out[i] = std::move(result);
        continue;
      }
    }
    lanes.push_back(Lane{i, *std::move(base)});
  }
  if (lanes.empty()) return out;

  // Every lane gets the session seed Search would use; the batch leaves
  // the session state untouched (see the header contract).
  const std::vector<double>* seed = nullptr;
  if (options.use_warm_start) {
    if (has_previous_) {
      seed = &previous_scores_;
    } else if (has_global_) {
      seed = &global_scores_;
    }
  }

  std::vector<BatchQuery> queries;
  queries.reserve(lanes.size());
  for (const Lane& lane : lanes) {
    BatchQuery query;
    query.base = &lane.base;
    query.warm_start = seed;
    query.cancel = requests[lane.index].cancel;
    queries.push_back(std::move(query));
  }
  Timer timer;
  std::vector<ObjectRankResult> ranks =
      engine_.ComputeBatch(queries, rates, options.objectrank);
  const double seconds = timer.ElapsedSeconds();

  for (size_t k = 0; k < lanes.size(); ++k) {
    if (ranks[k].cancelled) {
      out[lanes[k].index] = DeadlineExceededError(
          "search cancelled after " + std::to_string(ranks[k].iterations) +
          " iterations");
      continue;
    }
    SearchResult result;
    // The block solve is shared, so each lane reports its wall time.
    result.seconds = seconds;
    result.iterations = ranks[k].iterations;
    result.converged = ranks[k].converged;
    result.base_set_size = lanes[k].base.size();
    result.top =
        TopKOfType(ranks[k].scores, options.k, *data_, options.result_type);
    result.scores = std::move(ranks[k].scores);
    out[lanes[k].index] = std::move(result);
  }
  return out;
}

StatusOr<SearchResult> Searcher::SearchObjectRank2(
    const text::QueryVector& query, const graph::TransferRates& rates,
    const SearchOptions& options) {
  auto base = BuildBaseSet(*corpus_, query, BaseSetMode::kIrWeighted,
                           options.bm25);
  if (!base.ok()) return base.status();

  // Answer from the precomputed per-keyword cache when it is attached,
  // fresh (same rates AND same Okapi parameters — both are baked into the
  // cached vectors), and covers every query term.
  if (rank_cache_ != nullptr &&
      rank_cache_->rates_fingerprint() == rates.Fingerprint() &&
      rank_cache_->MatchesBm25(options.bm25)) {
    Timer cache_timer;
    auto cached = rank_cache_->Query(query);
    if (cached.ok() && cached->missing_terms.empty()) {
      SearchResult result;
      result.from_cache = true;
      result.converged = true;
      result.seconds = cache_timer.ElapsedSeconds();
      result.base_set_size = base->size();
      result.top =
          TopKOfType(cached->scores, options.k, *data_, options.result_type);
      result.scores = std::move(cached->scores);
      previous_scores_ = result.scores;
      has_previous_ = true;
      return result;
    }
  }

  const std::vector<double>* seed = nullptr;
  if (options.use_warm_start) {
    // Reformulated queries are close to their predecessor, so the previous
    // fixpoint is a good starting point; the first query starts from the
    // global ObjectRank (Section 6.2).
    if (has_previous_) {
      seed = &previous_scores_;
    } else if (has_global_) {
      seed = &global_scores_;
    }
  }

  Timer timer;
  ObjectRankResult rank =
      engine_.Compute(*base, rates, options.objectrank, seed);
  if (rank.cancelled) {
    // Partial scores are discarded: they are not a valid ranking and must
    // not leak into the next query's warm start.
    return DeadlineExceededError("search cancelled after " +
                                 std::to_string(rank.iterations) +
                                 " iterations");
  }
  SearchResult result;
  result.seconds = timer.ElapsedSeconds();
  result.iterations = rank.iterations;
  result.converged = rank.converged;
  result.base_set_size = base->size();
  result.top = TopKOfType(rank.scores, options.k, *data_, options.result_type);
  result.scores = std::move(rank.scores);

  previous_scores_ = result.scores;
  has_previous_ = true;
  return result;
}

StatusOr<SearchResult> Searcher::SearchBaseline(
    const text::QueryVector& query, const graph::TransferRates& rates,
    const SearchOptions& options) {
  Timer timer;
  const size_t n = graph_->num_nodes();
  std::vector<double> combined(n, 1.0);
  int total_iterations = 0;
  bool all_converged = true;
  size_t matched_terms = 0;
  size_t base_total = 0;

  for (const std::string& term : query.terms()) {
    auto base = SingleTermBaseSet(*corpus_, term);
    if (!base.ok()) continue;  // keywords absent from the corpus contribute nothing
    ++matched_terms;
    base_total += base->size();

    ObjectRankResult rank = engine_.Compute(*base, rates, options.objectrank);
    if (rank.cancelled) {
      return DeadlineExceededError("search cancelled during per-keyword run");
    }
    total_iterations += rank.iterations;
    all_converged = all_converged && rank.converged;

    // Equation 16: r(v) = prod_t r_t(v)^g(t), g(t) = 1/log(|S(t)|). The
    // exponent damps popular keywords so they do not dominate the product.
    const double st = static_cast<double>(base->size());
    const double g = st > M_E ? 1.0 / std::log(st) : 1.0;
    for (size_t v = 0; v < n; ++v) {
      combined[v] *= std::pow(rank.scores[v], g);
    }
  }
  if (matched_terms == 0) {
    return NotFoundError("no query keyword matches any node");
  }

  SearchResult result;
  result.seconds = timer.ElapsedSeconds();
  result.iterations = total_iterations;
  result.converged = all_converged;
  result.base_set_size = base_total;
  result.top = TopKOfType(combined, options.k, *data_, options.result_type);
  result.scores = std::move(combined);

  // Baseline scores are products, not probabilities; they still serve as a
  // warm start only in baseline sessions, so do not overwrite the OR2 seed.
  return result;
}

}  // namespace orx::core
