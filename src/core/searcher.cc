#include "core/searcher.h"

#include <cmath>

#include "common/timer.h"

namespace orx::core {
namespace {

// Rejects option combinations the engine would silently turn into
// nonsense: the engine layer stays permissive (tests drive it with
// degenerate epsilons on purpose), so the request boundary is here.
Status ValidateOptions(const SearchOptions& options) {
  if (options.k == 0) {
    return InvalidArgumentError("k must be >= 1");
  }
  const double d = options.objectrank.damping;
  if (!std::isfinite(d) || d < 0.0 || d >= 1.0) {
    return InvalidArgumentError(
        "damping must be finite and in [0, 1); got " + std::to_string(d));
  }
  const double eps = options.objectrank.epsilon;
  if (!(eps > 0.0)) {  // also catches NaN
    return InvalidArgumentError("epsilon must be > 0");
  }
  if (options.objectrank.max_iterations < 0) {
    return InvalidArgumentError("max_iterations must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Searcher::Searcher(const graph::DataGraph& data,
                   const graph::AuthorityGraph& graph,
                   const text::Corpus& corpus)
    : data_(&data), graph_(&graph), corpus_(&corpus), engine_(graph) {}

void Searcher::PrecomputeGlobalRank(const graph::TransferRates& rates,
                                    const ObjectRankOptions& options) {
  global_scores_ = engine_.ComputeGlobal(rates, options).scores;
  has_global_ = true;
}

void Searcher::ResetSession() {
  has_previous_ = false;
  previous_scores_.clear();
  has_global_ = false;
  global_scores_.clear();
}

StatusOr<SearchResult> Searcher::Search(const text::QueryVector& query,
                                        const graph::TransferRates& rates,
                                        const SearchOptions& options) {
  if (query.empty()) {
    return InvalidArgumentError("empty query vector");
  }
  ORX_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.mode == RankMode::kObjectRank2) {
    return SearchObjectRank2(query, rates, options);
  }
  return SearchBaseline(query, rates, options);
}

std::vector<StatusOr<SearchResult>> Searcher::SearchBatch(
    const std::vector<BatchSearchRequest>& requests,
    const graph::TransferRates& rates, const SearchOptions& options) {
  std::vector<StatusOr<SearchResult>> out;
  out.reserve(requests.size());
  if (Status valid = ValidateOptions(options); !valid.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) out.push_back(valid);
    return out;
  }

  if (options.mode == RankMode::kObjectRankBaseline) {
    // The Equation 16 per-keyword product has no block form: run the
    // lanes one by one with each lane's hook chained in.
    for (const BatchSearchRequest& request : requests) {
      if (request.query.empty()) {
        out.push_back(InvalidArgumentError("empty query vector"));
        continue;
      }
      SearchOptions lane_options = options;
      if (request.cancel) {
        std::function<bool()> shared = options.objectrank.cancel;
        std::function<bool()> mine = request.cancel;
        lane_options.objectrank.cancel = [shared, mine] {
          return (shared && shared()) || mine();
        };
      }
      out.push_back(SearchBaseline(request.query, rates, lane_options));
    }
    return out;
  }

  if (options.tier == SearchTier::kApproximate) {
    // The push kernel drains a per-query frontier — there is no block
    // form — so the approximate tier runs per lane, each with its own
    // escalation decision and its lane hook chained onto the shared one.
    for (const BatchSearchRequest& request : requests) {
      if (request.query.empty()) {
        out.push_back(InvalidArgumentError("empty query vector"));
        continue;
      }
      auto base = BuildBaseSet(*corpus_, request.query,
                               BaseSetMode::kIrWeighted, options.bm25);
      if (!base.ok()) {
        out.push_back(base.status());
        continue;
      }
      SearchOptions lane_options = options;
      if (request.cancel) {
        std::function<bool()> shared = options.objectrank.cancel;
        std::function<bool()> mine = request.cancel;
        lane_options.objectrank.cancel = [shared, mine] {
          return (shared && shared()) || mine();
        };
      }
      out.push_back(SearchApproximate(rates, lane_options, *base));
    }
    return out;
  }

  // ObjectRank2: base-set construction and the rank-cache fast path run
  // per lane; the remaining lanes share one block power iteration.
  struct Lane {
    size_t index;
    BaseSet base;
  };
  std::vector<Lane> lanes;
  lanes.reserve(requests.size());
  std::vector<CacheMissReason> miss(requests.size(), CacheMissReason::kNone);
  for (size_t i = 0; i < requests.size(); ++i) {
    const BatchSearchRequest& request = requests[i];
    out.push_back(Status(StatusCode::kInternal, "unset"));
    if (request.query.empty()) {
      out[i] = InvalidArgumentError("empty query vector");
      continue;
    }
    auto base = BuildBaseSet(*corpus_, request.query,
                             BaseSetMode::kIrWeighted, options.bm25);
    if (!base.ok()) {
      out[i] = base.status();
      continue;
    }
    if (options.tier != SearchTier::kExact) {
      if (std::optional<SearchResult> hit = TryCacheAnswer(
              request.query, rates, options, *base, &miss[i])) {
        out[i] = *std::move(hit);
        continue;
      }
    }
    lanes.push_back(Lane{i, *std::move(base)});
  }
  if (lanes.empty()) return out;

  // Every lane gets the session seed Search would use; the batch leaves
  // the session state untouched (see the header contract).
  const std::vector<double>* seed = nullptr;
  if (options.use_warm_start) {
    if (has_previous_) {
      seed = &previous_scores_;
    } else if (has_global_) {
      seed = &global_scores_;
    }
  }

  std::vector<BatchQuery> queries;
  queries.reserve(lanes.size());
  for (const Lane& lane : lanes) {
    BatchQuery query;
    query.base = &lane.base;
    query.warm_start = seed;
    query.cancel = requests[lane.index].cancel;
    queries.push_back(std::move(query));
  }
  Timer timer;
  std::vector<ObjectRankResult> ranks =
      engine_.ComputeBatch(queries, rates, options.objectrank);
  const double seconds = timer.ElapsedSeconds();

  for (size_t k = 0; k < lanes.size(); ++k) {
    if (ranks[k].cancelled) {
      out[lanes[k].index] = DeadlineExceededError(
          "search cancelled after " + std::to_string(ranks[k].iterations) +
          " iterations");
      continue;
    }
    SearchResult result;
    // The block solve is shared, so each lane reports its wall time.
    result.seconds = seconds;
    result.iterations = ranks[k].iterations;
    result.converged = ranks[k].converged;
    result.base_set_size = lanes[k].base.size();
    result.escalated = options.tier == SearchTier::kCached;
    result.cache_miss_reason = miss[lanes[k].index];
    result.top =
        TopKOfType(ranks[k].scores, options.k, *data_, options.result_type);
    result.scores = std::move(ranks[k].scores);
    out[lanes[k].index] = std::move(result);
  }
  return out;
}

std::optional<SearchResult> Searcher::TryCacheAnswer(
    const text::QueryVector& query, const graph::TransferRates& rates,
    const SearchOptions& options, const BaseSet& base,
    CacheMissReason* reason) const {
  // The cache only speaks for this search when it is attached, fresh
  // (same rates AND same Okapi parameters — both are baked into the
  // cached vectors), and covers every query term.
  if (rank_cache_ == nullptr) {
    *reason = CacheMissReason::kNoCache;
    return std::nullopt;
  }
  if (rank_cache_->rates_fingerprint() != rates.Fingerprint()) {
    *reason = CacheMissReason::kRatesMismatch;
    return std::nullopt;
  }
  if (!rank_cache_->MatchesBm25(options.bm25)) {
    *reason = CacheMissReason::kBm25Mismatch;
    return std::nullopt;
  }
  Timer cache_timer;
  auto cached = rank_cache_->Query(query);
  if (!cached.ok() || !cached->missing_terms.empty()) {
    *reason = CacheMissReason::kMissingTerms;
    return std::nullopt;
  }
  SearchResult result;
  if (cached->error_bound > 0.0) {
    // Compressed entries answered: the combination is one-sided within
    // error_bound, so the hit only stands if the top-k set is provably
    // the exact one under that bound.
    CertifiedTopK certified = CertifyTopK(cached->scores, cached->error_bound,
                                          options.k, *data_,
                                          options.result_type);
    if (!certified.certified) {
      *reason = CacheMissReason::kErrorBudget;
      return std::nullopt;
    }
    result.top = std::move(certified.top);
  } else {
    result.top =
        TopKOfType(cached->scores, options.k, *data_, options.result_type);
  }
  result.from_cache = true;
  result.converged = true;
  result.seconds = cache_timer.ElapsedSeconds();
  result.base_set_size = base.size();
  result.tier_used = SearchTier::kCached;
  result.error_bound = cached->error_bound;
  result.scores = std::move(cached->scores);
  *reason = CacheMissReason::kNone;
  return result;
}

StatusOr<SearchResult> Searcher::SearchApproximate(
    const graph::TransferRates& rates, const SearchOptions& options,
    const BaseSet& base) {
  ApproxOptions approx = options.approx;
  // Both kernels must solve the same fixpoint under the same deadline.
  approx.damping = options.objectrank.damping;
  approx.cancel = options.objectrank.cancel;
  Timer timer;

  // Certification-driven refinement: the push bound shrinks roughly
  // linearly with the residual threshold, so when a run's bound cannot
  // separate the top-k set we jump the threshold straight to what the
  // observed gap demands and re-push. The discarded runs cost a geometric
  // fraction of the final one.
  ApproxResult rank;
  CertifiedTopK certified;
  int rounds_total = 0;
  bool set_is_certified = false;
  for (int attempt = 0;; ++attempt) {
    rank = engine_.ComputeApproximate(base, rates, approx);
    rounds_total += rank.rounds;
    if (rank.cancelled) {
      return DeadlineExceededError("search cancelled after " +
                                   std::to_string(rounds_total) +
                                   " push rounds");
    }
    if (!rank.certified) break;  // rho >= 1: the bound family is invalid
    certified = CertifyTopK(rank.scores, rank.linf_bound, options.k, *data_,
                            options.result_type);
    if (certified.certified) {
      set_is_certified = true;
      break;
    }
    if (attempt + 1 >= approx.max_refinements) break;
    // Aim the next run's bound at half the observed gap. The gap itself
    // moves by at most the (shrinking) bound between runs, so one jump
    // normally lands; the /4 cap guarantees progress when it does not.
    double next = approx.r_max / 4.0;
    if (std::isfinite(certified.gap) && certified.gap > 0.0 &&
        rank.linf_bound > 0.0) {
      next = std::min(next,
                      approx.r_max * certified.gap / (2.0 * rank.linf_bound));
    }
    if (!(next >= approx.r_min)) break;  // gap too small to push for
    approx.r_max = next;
  }

  if (set_is_certified) {
    SearchResult result;
    result.seconds = timer.ElapsedSeconds();
    result.iterations = rounds_total;
    result.converged = true;
    result.base_set_size = base.size();
    result.tier_used = SearchTier::kApproximate;
    result.error_bound = rank.linf_bound;
    result.top = std::move(certified.top);
    result.scores = std::move(rank.scores);
    return result;
  }

  // The bound could not certify the top-k set (or the contraction factor
  // made the bound itself invalid): escalate to the exact kernel. The
  // push estimate is a one-sided approximation of the fixpoint, so it
  // outranks the session seed as a warm start.
  ObjectRankResult exact =
      engine_.Compute(base, rates, options.objectrank, &rank.scores);
  if (exact.cancelled) {
    return DeadlineExceededError("search cancelled after " +
                                 std::to_string(exact.iterations) +
                                 " iterations (escalated)");
  }
  SearchResult result;
  result.seconds = timer.ElapsedSeconds();
  result.iterations = rounds_total + exact.iterations;
  result.converged = exact.converged;
  result.base_set_size = base.size();
  result.tier_used = SearchTier::kExact;
  result.escalated = true;
  result.top =
      TopKOfType(exact.scores, options.k, *data_, options.result_type);
  result.scores = std::move(exact.scores);
  return result;
}

StatusOr<SearchResult> Searcher::SearchObjectRank2(
    const text::QueryVector& query, const graph::TransferRates& rates,
    const SearchOptions& options) {
  auto base = BuildBaseSet(*corpus_, query, BaseSetMode::kIrWeighted,
                           options.bm25);
  if (!base.ok()) return base.status();

  CacheMissReason miss = CacheMissReason::kNone;
  if (options.tier == SearchTier::kAuto ||
      options.tier == SearchTier::kCached) {
    if (std::optional<SearchResult> hit =
            TryCacheAnswer(query, rates, options, *base, &miss)) {
      previous_scores_ = hit->scores;
      has_previous_ = true;
      return *std::move(hit);
    }
  }

  if (options.tier == SearchTier::kApproximate) {
    auto result = SearchApproximate(rates, options, *base);
    if (result.ok()) {
      previous_scores_ = result->scores;
      has_previous_ = true;
    }
    return result;
  }

  const std::vector<double>* seed = nullptr;
  if (options.use_warm_start) {
    // Reformulated queries are close to their predecessor, so the previous
    // fixpoint is a good starting point; the first query starts from the
    // global ObjectRank (Section 6.2).
    if (has_previous_) {
      seed = &previous_scores_;
    } else if (has_global_) {
      seed = &global_scores_;
    }
  }

  Timer timer;
  ObjectRankResult rank =
      engine_.Compute(*base, rates, options.objectrank, seed);
  if (rank.cancelled) {
    // Partial scores are discarded: they are not a valid ranking and must
    // not leak into the next query's warm start.
    return DeadlineExceededError("search cancelled after " +
                                 std::to_string(rank.iterations) +
                                 " iterations");
  }
  SearchResult result;
  result.seconds = timer.ElapsedSeconds();
  result.iterations = rank.iterations;
  result.converged = rank.converged;
  result.base_set_size = base->size();
  // A kCached request that reaches the exact kernel fell back; kAuto's
  // contract is "cache or exact", so that fallback is not an escalation.
  result.escalated = options.tier == SearchTier::kCached;
  result.cache_miss_reason = miss;
  result.top = TopKOfType(rank.scores, options.k, *data_, options.result_type);
  result.scores = std::move(rank.scores);

  previous_scores_ = result.scores;
  has_previous_ = true;
  return result;
}

StatusOr<SearchResult> Searcher::SearchBaseline(
    const text::QueryVector& query, const graph::TransferRates& rates,
    const SearchOptions& options) {
  Timer timer;
  const size_t n = graph_->num_nodes();
  std::vector<double> combined(n, 1.0);
  int total_iterations = 0;
  bool all_converged = true;
  size_t matched_terms = 0;
  size_t base_total = 0;

  for (const std::string& term : query.terms()) {
    auto base = SingleTermBaseSet(*corpus_, term);
    if (!base.ok()) continue;  // keywords absent from the corpus contribute nothing
    ++matched_terms;
    base_total += base->size();

    ObjectRankResult rank = engine_.Compute(*base, rates, options.objectrank);
    if (rank.cancelled) {
      return DeadlineExceededError("search cancelled during per-keyword run");
    }
    total_iterations += rank.iterations;
    all_converged = all_converged && rank.converged;

    // Equation 16: r(v) = prod_t r_t(v)^g(t), g(t) = 1/log(|S(t)|). The
    // exponent damps popular keywords so they do not dominate the product.
    const double st = static_cast<double>(base->size());
    const double g = st > M_E ? 1.0 / std::log(st) : 1.0;
    for (size_t v = 0; v < n; ++v) {
      combined[v] *= std::pow(rank.scores[v], g);
    }
  }
  if (matched_terms == 0) {
    return NotFoundError("no query keyword matches any node");
  }

  SearchResult result;
  result.seconds = timer.ElapsedSeconds();
  result.iterations = total_iterations;
  result.converged = all_converged;
  result.base_set_size = base_total;
  result.top = TopKOfType(combined, options.k, *data_, options.result_type);
  result.scores = std::move(combined);

  // Baseline scores are products, not probabilities; they still serve as a
  // warm start only in baseline sessions, so do not overwrite the OR2 seed.
  return result;
}

}  // namespace orx::core
