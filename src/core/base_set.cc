#include "core/base_set.h"

#include <algorithm>

namespace orx::core {

double BaseSet::WeightSum() const {
  double sum = 0.0;
  for (const auto& [node, w] : entries) sum += w;
  return sum;
}

StatusOr<BaseSet> BuildBaseSet(const text::Corpus& corpus,
                               const text::QueryVector& query,
                               BaseSetMode mode,
                               const text::Bm25Params& params) {
  if (query.empty()) {
    return InvalidArgumentError("query has no terms");
  }
  std::vector<std::pair<graph::NodeId, double>> scored =
      text::ScoreBaseSet(corpus, query, params);
  if (scored.empty()) {
    return NotFoundError("no node contains any query keyword");
  }

  BaseSet base;
  base.entries = std::move(scored);
  double sum = 0.0;
  for (const auto& [node, score] : base.entries) sum += score;
  if (mode == BaseSetMode::kUniform || sum <= 0.0) {
    const double w = 1.0 / static_cast<double>(base.entries.size());
    for (auto& [node, weight] : base.entries) weight = w;
  } else {
    for (auto& [node, weight] : base.entries) weight /= sum;
  }
  return base;
}

BaseSet GlobalBaseSet(size_t num_nodes) {
  BaseSet base;
  base.entries.reserve(num_nodes);
  const double w = num_nodes == 0 ? 0.0 : 1.0 / static_cast<double>(num_nodes);
  for (size_t v = 0; v < num_nodes; ++v) {
    base.entries.emplace_back(static_cast<graph::NodeId>(v), w);
  }
  return base;
}

StatusOr<BaseSet> SingleTermBaseSet(const text::Corpus& corpus,
                                    const std::string& term) {
  auto tid = corpus.TermIdOf(term);
  if (!tid.has_value()) {
    return NotFoundError("keyword not in corpus: " + term);
  }
  auto postings = corpus.Postings(*tid);
  if (postings.empty()) {
    return NotFoundError("keyword has no postings: " + term);
  }
  BaseSet base;
  base.entries.reserve(postings.size());
  const double w = 1.0 / static_cast<double>(postings.size());
  for (const text::Posting& p : postings) base.entries.emplace_back(p.doc, w);
  return base;
}

}  // namespace orx::core
