#include "core/approx.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "common/check.h"
#include "graph/data_graph.h"

namespace orx::core {
namespace {

/// Relative slack multiplied into the certified bounds to absorb the
/// floating-point rounding of the push bookkeeping. The invariant
/// p + solve(r) = solve(s) is exact in real arithmetic; each push
/// introduces O(machine-eps) relative rounding, so a 1e-7 cushion keeps
/// the one-sided guarantee honest without measurable loss of tightness.
constexpr double kBoundSlack = 1.0 + 1e-7;

}  // namespace

ApproxResult ApproximatePush(const graph::AuthorityGraph& graph,
                             const BaseSet& base,
                             const graph::TransferRates& rates,
                             const graph::PushMass& masses,
                             const ApproxOptions& options) {
  const size_t n = graph.num_nodes();
  const double d = options.damping;
  ApproxResult result;
  result.scores.assign(n, 0.0);

  const double rho = d * masses.max_mass;
  if (!(rho < 1.0) || d < 0.0 || d >= 1.0) {
    // The geometric series behind the bound diverges: graph + rates are
    // not a contraction under this damping. Report uncertified with
    // infinite bounds; callers escalate to the exact kernel (which has
    // its own iteration cap).
    result.linf_bound = std::numeric_limits<double>::infinity();
    result.l1_bound = std::numeric_limits<double>::infinity();
    return result;
  }

  // The scatter runs off the fused weights, which PushMass resolved from
  // `rates` once; a hand-assembled PushMass without them would make the
  // hot loop read out of bounds, so fail fast instead.
  (void)rates;
  ORX_CHECK(masses.out_weight.size() == graph.num_edges());

  std::vector<double> residual(n, 0.0);
  std::vector<uint8_t> queued(n, 0);
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next;
  std::vector<graph::NodeId> hubs;
  // Total pushes are bounded by settled-mass / ((1-d) * threshold), so a
  // positive floor keeps every run finite even if a caller passes 0.
  const double threshold = std::max(options.r_max, 1e-12);
  for (const auto& [node, weight] : base.entries) {
    residual[node] += weight;
  }
  for (const auto& [node, weight] : base.entries) {
    if (residual[node] >= threshold && !queued[node]) {
      queued[node] = 1;
      frontier.push_back(node);
    }
  }

  auto out_degree = [&graph](graph::NodeId u) {
    return graph.out_offsets()[u + 1] - graph.out_offsets()[u];
  };
  // Hub pivot for the per-round two-bucket split below: nodes whose
  // out-degree exceeds 4x the average are "hubs" and settle last.
  const uint64_t hub_degree =
      n > 0 ? 1 + 4 * (graph.num_edges() / n) : 1;

  const size_t push_cap = options.max_pushes == 0
                              ? std::numeric_limits<size_t>::max()
                              : options.max_pushes;
  bool capped = false;
  while (!frontier.empty() && !capped) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    ++result.rounds;
    // Hubs-last frontier: settle cheap nodes first so a round's scatters
    // pool residual on the expensive hubs before the hubs push once,
    // instead of a hub pushing once per contribution. A stable two-bucket
    // split captures that effect in O(f) — a full degree sort costs
    // O(f log f) per round, which dominates the O(f * avg_degree) edge
    // work on large frontiers. Insertion order is preserved inside each
    // bucket, so runs stay deterministic.
    hubs.clear();
    size_t keep = 0;
    for (const graph::NodeId u : frontier) {
      if (out_degree(u) >= hub_degree) {
        hubs.push_back(u);
      } else {
        frontier[keep++] = u;
      }
    }
    frontier.resize(keep);
    frontier.insert(frontier.end(), hubs.begin(), hubs.end());
    next.clear();
    for (const graph::NodeId u : frontier) {
      queued[u] = 0;
      const double ru = residual[u];
      if (ru < threshold || ru <= 0.0) continue;
      if (result.pushes >= push_cap) {
        capped = true;
        break;
      }
      ++result.pushes;
      residual[u] = 0.0;
      result.scores[u] += (1.0 - d) * ru;
      const double dru = d * ru;
      // Fused scatter weights: PushMass resolved a(e) once per rates
      // vector, so the hot loop is one multiply per edge instead of a
      // rate-slot load plus a conversion, every round.
      const std::span<const graph::AuthorityEdge> edges = graph.OutEdges(u);
      const double* w = masses.out_weight.data() + graph.out_offsets()[u];
      for (size_t i = 0; i < edges.size(); ++i) {
        const double delta = dru * w[i];
        if (delta <= 0.0) continue;
        const graph::NodeId target = edges[i].target;
        const double rv = residual[target] + delta;
        residual[target] = rv;
        // A target already settled this round (or u itself, through a
        // cycle) re-enters via `next` like any other node.
        if (rv >= threshold && !queued[target]) {
          queued[target] = 1;
          next.push_back(target);
        }
      }
    }
    std::swap(frontier, next);
  }

  // The certified bounds come from *recomputing* the residual mass, not
  // the running total a per-push counter would carry: one O(n) sum (we
  // already hold two O(n) vectors) removes any drift accumulated over
  // millions of incremental updates.
  double residual_mass = 0.0;
  size_t touched = 0;
  for (size_t v = 0; v < n; ++v) {
    residual_mass += residual[v];
    if (result.scores[v] != 0.0 || residual[v] != 0.0) ++touched;
  }
  result.touched_nodes = touched;
  result.l1_bound = kBoundSlack * (1.0 - d) * residual_mass / (1.0 - rho);
  // Unsettled mass is nonnegative everywhere, so the per-node error is
  // bounded by the total: L-inf <= L1.
  result.linf_bound = result.l1_bound;
  result.certified = !result.cancelled;
  return result;
}

CertifiedTopK CertifyTopK(const std::vector<double>& scores,
                          double linf_bound, size_t k,
                          const graph::DataGraph& data,
                          std::optional<graph::TypeId> type) {
  CertifiedTopK out;
  if (k == 0) return out;
  // One extra candidate exposes the best excluded score.
  std::vector<ScoredNode> extended = TopKOfType(scores, k + 1, data, type);
  if (extended.size() <= k) {
    // Fewer than k+1 candidates of this type exist: the "top-k set" is
    // the full candidate set for exact and approximate scores alike.
    out.top = std::move(extended);
    out.gap = std::numeric_limits<double>::infinity();
    out.certified = std::isfinite(linf_bound);
    return out;
  }
  const double excluded = extended.back().score;
  extended.pop_back();
  out.gap = extended.back().score - excluded;
  // Strict inequality: at gap == bound the true scores can tie, and a
  // tie resolves by node id, about which the bound says nothing.
  out.certified = std::isfinite(linf_bound) && out.gap > linf_bound;
  out.top = std::move(extended);
  return out;
}

}  // namespace orx::core
