#ifndef ORX_CORE_BASE_SET_H_
#define ORX_CORE_BASE_SET_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "text/bm25.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::core {

/// How base-set entries are weighted.
enum class BaseSetMode {
  /// ObjectRank2 (Section 3): s_i proportional to IRScore(v_i, Q).
  kIrWeighted,
  /// Original ObjectRank [BHP04]: s_i identical (0/1 membership).
  kUniform,
};

/// The query base set S(Q) with jump weights: the nodes containing at
/// least one query keyword, each with a weight normalized so the weights
/// sum to 1 (they are jump probabilities; Section 3).
struct BaseSet {
  /// (node, normalized weight) pairs, ordered by ascending node id.
  std::vector<std::pair<graph::NodeId, double>> entries;

  size_t size() const { return entries.size(); }
  bool empty() const { return entries.empty(); }

  /// Sum of weights (1 up to rounding; exposed for property tests).
  double WeightSum() const;
};

/// Builds S(Q) for `query` over `corpus`.
///
/// kIrWeighted normalizes the BM25 scores to probabilities; if every score
/// is zero (all idfs clamped) it degrades to uniform weighting, so any
/// query whose keywords occur in the corpus yields a usable base set.
/// Returns kNotFound if no node contains any query keyword.
StatusOr<BaseSet> BuildBaseSet(const text::Corpus& corpus,
                               const text::QueryVector& query,
                               BaseSetMode mode = BaseSetMode::kIrWeighted,
                               const text::Bm25Params& params = {});

/// Builds the global base set: every node, uniform weight 1/n. Used to
/// compute the query-independent global ObjectRank that seeds the first
/// query's power iteration (Section 6.2, "Manipulating Initial ObjectRank
/// values").
BaseSet GlobalBaseSet(size_t num_nodes);

/// Base set of a single keyword (used by the [BHP04]-style per-keyword
/// baseline of Table 2). Returns kNotFound if the keyword is absent.
StatusOr<BaseSet> SingleTermBaseSet(const text::Corpus& corpus,
                                    const std::string& term);

}  // namespace orx::core

#endif  // ORX_CORE_BASE_SET_H_
