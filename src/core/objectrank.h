#ifndef ORX_CORE_OBJECTRANK_H_
#define ORX_CORE_OBJECTRANK_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/approx.h"
#include "core/base_set.h"
#include "graph/authority_graph.h"
#include "graph/spmv_layout.h"
#include "graph/transfer_rates.h"

namespace orx::core {

/// Which inner kernel runs the power iteration. All kernels compute the
/// same fixpoint; they differ in summation order, so converged scores
/// agree to <= 1e-12 L-inf (the equivalence suite in
/// tests/spmv_kernel_test.cc pins this down).
enum class PowerKernel {
  /// Default: the fused SpMV kernel (docs/power_iteration.md). Early
  /// iterations from a sparse start vector run a frontier-aware push;
  /// once the iterate's nonzero density crosses 1/8 the kernel switches
  /// permanently to a pull SpMV over the rate-resolved SELL-8 layout
  /// (graph/spmv_layout.h) with the L1 residual fused into the pass,
  /// partitioned by cumulative in-edge count and executed on a
  /// persistent thread pool (no per-iteration thread spawn).
  kFused,
  /// The pre-fused sequential push loop, ignoring num_threads. Kept as
  /// the reference the equivalence suite compares every kernel against.
  kSequentialPush,
  /// The pre-fused implementation exactly as it shipped: per-iteration
  /// std::thread spawn, per-edge rate resolution, node-count-only thread
  /// clamp. Kept as the baseline bench_spmv_kernel measures against.
  kLegacy,
};

/// Parameters of the ObjectRank2 power iteration (Equation 4).
struct ObjectRankOptions {
  /// Damping factor d: probability of following an edge vs. jumping back
  /// to the base set (paper: 0.85, after PageRank [BP98]).
  double damping = 0.85;

  /// Convergence threshold on the L1 distance between consecutive score
  /// vectors (the performance experiments use 0.001).
  double epsilon = 0.001;

  /// Hard iteration cap; reached only on pathological inputs.
  int max_iterations = 200;

  /// Worker threads for the power iteration. The parallel path is
  /// pull-based (each node gathers over its in-edges), so results are
  /// bit-identical for any thread count — per-node sums always accumulate
  /// in the same edge order. The fused kernel additionally clamps this to
  /// the available work (one worker per ~16K edges), so dense small-node
  /// graphs still parallelize and tiny graphs don't pay dispatch
  /// overhead. <= 1 = sequential.
  int num_threads = 1;

  /// Inner kernel; see PowerKernel. The non-default kernels exist for
  /// the equivalence suite and the old-vs-new benchmark.
  PowerKernel kernel = PowerKernel::kFused;

  /// Cooperative cancellation hook, checked once before each power
  /// iteration. When it returns true the solver stops immediately and
  /// marks the result cancelled; the scores it carries are the last
  /// completed iterate and callers are expected to discard them (the
  /// serving layer maps cancellation to kDeadlineExceeded). Unset = never
  /// cancelled. The hook may be called from whichever thread runs the
  /// solve and must be cheap — it sits on the hot path.
  std::function<bool()> cancel;
};

/// Result of a power-iteration run.
struct ObjectRankResult {
  /// r^Q(v) for every node v.
  std::vector<double> scores;
  /// Number of iterations executed.
  int iterations = 0;
  /// False iff max_iterations was hit before the L1 threshold.
  bool converged = false;
  /// True iff options.cancel stopped the solve early; `scores` then holds
  /// the partial iterate and converged is false.
  bool cancelled = false;
};

/// One query of an ObjectRankEngine::ComputeBatch call: the per-lane
/// inputs that vary across the block (base set, warm start, cancellation),
/// while the numeric options are shared batch-wide.
struct BatchQuery {
  /// Required; must be non-empty (same contract as Compute).
  const BaseSet* base = nullptr;
  /// Optional warm start, used when it has one entry per node — exactly
  /// Compute's warm_start parameter.
  const std::vector<double>* warm_start = nullptr;
  /// Optional per-lane cancellation hook, checked once before each of
  /// this lane's iterations (in addition to the batch-wide options.cancel,
  /// which cancels every lane). A tripped lane retires from the block as
  /// cancelled; the remaining lanes keep iterating — this is how the
  /// serving layer expires one lane's deadline without aborting the batch.
  std::function<bool()> cancel;
};

/// The ObjectRank2 fixpoint solver over an authority transfer data graph.
///
/// Computes r = d * A * r + (1 - d) * s  (Equation 4), where A's entries
/// are the authority transfer rates a(e) of Equation 1 resolved against the
/// TransferRates supplied per call (so reformulated rates need no graph
/// rebuild), and s is the normalized base-set vector.
///
/// Note on Equation 4: the paper inherits the 1/|S(Q)| factor from the
/// original 0/1 ObjectRank, but also states that the base-set weights are
/// normalized to sum to one; with a normalized s the uniform special case
/// s_i = 1/|S(Q)| reproduces [BHP04] exactly, so we implement
/// r = d*A*r + (1-d)*s-hat. This matches the worked example of Figure 6.
///
/// The engine carries no per-query state and is const; callers pass
/// warm-start vectors explicitly (Section 6.2 seeds a query with the
/// previous query's scores). Its only mutable member is a thread-safe
/// FusedWeightCache — a memo of rate-resolved edge layouts shared by
/// every Compute on this engine (and by other engines, when injected:
/// ServeSnapshot owns one cache so all requests against a snapshot reuse
/// one materialized layout).
class ObjectRankEngine {
 public:
  explicit ObjectRankEngine(const graph::AuthorityGraph& graph)
      : ObjectRankEngine(graph,
                         std::make_shared<graph::FusedWeightCache>()) {}

  ObjectRankEngine(const graph::AuthorityGraph& graph,
                   std::shared_ptr<graph::FusedWeightCache> fused_cache)
      : graph_(&graph), fused_cache_(std::move(fused_cache)) {
    if (fused_cache_ == nullptr) {
      fused_cache_ = std::make_shared<graph::FusedWeightCache>();
    }
  }

  /// Runs the power iteration. If `warm_start` is non-null and has one
  /// entry per node it is used as the initial vector; otherwise iteration
  /// starts from the base-set vector itself.
  ObjectRankResult Compute(const BaseSet& base,
                           const graph::TransferRates& rates,
                           const ObjectRankOptions& options = {},
                           const std::vector<double>* warm_start = nullptr) const;

  /// Runs one power iteration per query, sharing every streaming read of
  /// the graph across the batch: dense lanes advance together through one
  /// SpMM pass per iteration (graph::FusedPullBlockRange) over a
  /// node-major BlockVector, so structure + fused weights are read once
  /// per pass for all B iterates instead of once per query.
  ///
  /// Per-lane semantics are exactly Compute's — queries[i]'s scores,
  /// iteration count, and converged/cancelled flags are bit-identical to
  /// Compute(*queries[i].base, rates, options, queries[i].warm_start)
  /// with queries[i].cancel chained onto options.cancel, for any thread
  /// count (tests/batch_kernel_test.cc enforces this on randomized
  /// inputs). That holds because each lane runs the identical scalar
  /// frontier push while sparse, joins the shared block only when it goes
  /// dense, accumulates per-edge sums in the same SELL order inside the
  /// block, and has its convergence checked against its own L1 residual
  /// every iteration. Converged, cancelled, and max_iterations-expired
  /// lanes retire — they compact out of the block and the remaining lanes
  /// keep iterating, so B adapts downward as queries finish.
  ///
  /// options.kernel selects the engine as in Compute; the non-fused
  /// kernels have no block form and fall back to per-lane Compute calls
  /// (same results, no sharing).
  std::vector<ObjectRankResult> ComputeBatch(
      const std::vector<BatchQuery>& queries,
      const graph::TransferRates& rates,
      const ObjectRankOptions& options = {}) const;

  /// Computes the query-independent global ObjectRank (base set = all
  /// nodes, uniform).
  ObjectRankResult ComputeGlobal(const graph::TransferRates& rates,
                                 const ObjectRankOptions& options = {}) const;

  /// Runs the approximate local forward-push kernel (core/approx.h)
  /// instead of the power iteration: cost proportional to touched nodes,
  /// and the result carries a certified one-sided additive error bound
  /// against the fixpoint Compute converges to. The per-node out-mass
  /// reduction the bound needs is memoized in the engine's shared
  /// FusedWeightCache, so serving pays its O(|E|) resolution once per
  /// rates fingerprint, not per request.
  ApproxResult ComputeApproximate(const BaseSet& base,
                                  const graph::TransferRates& rates,
                                  const ApproxOptions& options = {}) const;

  const graph::AuthorityGraph& graph() const { return *graph_; }

  /// Replaces the fused-weight cache (nullptr resets to a private one).
  /// Used by the serving layer to share the snapshot-owned cache.
  void set_fused_cache(std::shared_ptr<graph::FusedWeightCache> cache) {
    fused_cache_ = cache != nullptr
                       ? std::move(cache)
                       : std::make_shared<graph::FusedWeightCache>();
  }
  const std::shared_ptr<graph::FusedWeightCache>& fused_cache() const {
    return fused_cache_;
  }

 private:
  const graph::AuthorityGraph* graph_;
  std::shared_ptr<graph::FusedWeightCache> fused_cache_;
};

}  // namespace orx::core

#endif  // ORX_CORE_OBJECTRANK_H_
