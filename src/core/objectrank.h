#ifndef ORX_CORE_OBJECTRANK_H_
#define ORX_CORE_OBJECTRANK_H_

#include <functional>
#include <vector>

#include "core/base_set.h"
#include "graph/authority_graph.h"
#include "graph/transfer_rates.h"

namespace orx::core {

/// Parameters of the ObjectRank2 power iteration (Equation 4).
struct ObjectRankOptions {
  /// Damping factor d: probability of following an edge vs. jumping back
  /// to the base set (paper: 0.85, after PageRank [BP98]).
  double damping = 0.85;

  /// Convergence threshold on the L1 distance between consecutive score
  /// vectors (the performance experiments use 0.001).
  double epsilon = 0.001;

  /// Hard iteration cap; reached only on pathological inputs.
  int max_iterations = 200;

  /// Worker threads for the power iteration. The parallel path is
  /// pull-based (each node gathers over its in-edges), so results are
  /// bit-identical for any thread count — per-node sums always accumulate
  /// in the same edge order. 1 = sequential push-based loop.
  int num_threads = 1;

  /// Cooperative cancellation hook, checked once before each power
  /// iteration. When it returns true the solver stops immediately and
  /// marks the result cancelled; the scores it carries are the last
  /// completed iterate and callers are expected to discard them (the
  /// serving layer maps cancellation to kDeadlineExceeded). Unset = never
  /// cancelled. The hook may be called from whichever thread runs the
  /// solve and must be cheap — it sits on the hot path.
  std::function<bool()> cancel;
};

/// Result of a power-iteration run.
struct ObjectRankResult {
  /// r^Q(v) for every node v.
  std::vector<double> scores;
  /// Number of iterations executed.
  int iterations = 0;
  /// False iff max_iterations was hit before the L1 threshold.
  bool converged = false;
  /// True iff options.cancel stopped the solve early; `scores` then holds
  /// the partial iterate and converged is false.
  bool cancelled = false;
};

/// The ObjectRank2 fixpoint solver over an authority transfer data graph.
///
/// Computes r = d * A * r + (1 - d) * s  (Equation 4), where A's entries
/// are the authority transfer rates a(e) of Equation 1 resolved against the
/// TransferRates supplied per call (so reformulated rates need no graph
/// rebuild), and s is the normalized base-set vector.
///
/// Note on Equation 4: the paper inherits the 1/|S(Q)| factor from the
/// original 0/1 ObjectRank, but also states that the base-set weights are
/// normalized to sum to one; with a normalized s the uniform special case
/// s_i = 1/|S(Q)| reproduces [BHP04] exactly, so we implement
/// r = d*A*r + (1-d)*s-hat. This matches the worked example of Figure 6.
///
/// The engine is stateless and const; callers pass warm-start vectors
/// explicitly (Section 6.2 seeds a query with the previous query's scores).
class ObjectRankEngine {
 public:
  explicit ObjectRankEngine(const graph::AuthorityGraph& graph)
      : graph_(&graph) {}

  /// Runs the power iteration. If `warm_start` is non-null and has one
  /// entry per node it is used as the initial vector; otherwise iteration
  /// starts from the base-set vector itself.
  ObjectRankResult Compute(const BaseSet& base,
                           const graph::TransferRates& rates,
                           const ObjectRankOptions& options = {},
                           const std::vector<double>* warm_start = nullptr) const;

  /// Computes the query-independent global ObjectRank (base set = all
  /// nodes, uniform).
  ObjectRankResult ComputeGlobal(const graph::TransferRates& rates,
                                 const ObjectRankOptions& options = {}) const;

  const graph::AuthorityGraph& graph() const { return *graph_; }

 private:
  const graph::AuthorityGraph* graph_;
};

}  // namespace orx::core

#endif  // ORX_CORE_OBJECTRANK_H_
