#include "core/objectrank.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/numa.h"
#include "common/thread_pool.h"

namespace orx::core {
namespace {

// Work-based clamp of the fused kernel's parallelism: one worker per this
// many in-edges, so tiny graphs skip dispatch entirely and dense small-n
// graphs (where the old node-count clamp collapsed to one thread) still
// fan out.
constexpr size_t kMinEdgesPerThread = 16384;

// The fused kernel pushes while nnz * kPushDensityDenom < n and switches
// permanently to the pull SpMV once the iterate is denser than 1/8.
constexpr size_t kPushDensityDenom = 8;

// The pool the fused pull pass runs on: spawned once per process, shared
// by every engine. Sized one below the hardware thread count because the
// caller executes the first partition itself. Intentionally leaked so
// exiting threads never race static destruction.
//
// On multi-socket machines each worker is pinned to a NUMA node at
// spawn, in contiguous node-major blocks (common/numa.h). Worker t runs
// partition t + 1 of the edge-balanced SELL partition (the caller keeps
// partition 0), so consecutive partitions — covering consecutive chunk
// ranges of the structure — execute on the same socket across every
// pass: the pages a partition streams are always re-read by the node
// whose first touch placed them. Single-node topologies skip the pin.
ThreadPool& SpmvPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, ThreadPool::HardwareThreads() - 1),
      [](size_t worker) {
        const NumaTopology& topo = Topology();
        if (topo.num_nodes() <= 1) return;
        const size_t total = std::max<size_t>(
            2, ThreadPool::HardwareThreads());  // workers + the caller
        PinCurrentThreadToNode(NodeForWorker(worker + 1, total, topo));
      });
  return *pool;
}

// Per-pass completion latch. Heap-shared with the submitted tasks so the
// notifying task can outlive the waiting stack frame safely; unlike
// ThreadPool::Wait it only waits for THIS pass's tasks, so concurrent
// Computes sharing the pool never wait on each other's work.
struct Completion {
  explicit Completion(size_t n) : remaining(n) {}
  Mutex mu{"objectrank.completion"};
  CondVar cv;
  size_t remaining ORX_GUARDED_BY(mu);

  void Done() ORX_LOCKS_EXCLUDED(mu) {
    bool last;
    {
      MutexLock lock(mu);
      last = (--remaining == 0);
    }
    if (last) cv.Signal();
  }
  void Wait() ORX_LOCKS_EXCLUDED(mu) {
    MutexLock lock(mu);
    while (remaining != 0) cv.Wait(mu);
  }
};

// One fused pull pass over the SELL chunk range [begin, end):
// next = d * (A^T cur) + bvec with the L1 residual computed inline. A
// chunk is 8 rows stored column-major, so the inner loop keeps one
// accumulator per row — 8 independent dependency chains that let the
// score gathers and multiplies overlap, where a CSR row loop serializes
// on each node's running sum (one edge per add latency). No software
// prefetch: the gathers mostly hit L2 and explicit prefetches only steal
// load-port slots (measured slower). Each row's sum accumulates in
// in-edge order with padding contributing exactly +0.0, so scores are
// bit-identical for any partitioning and any thread count.
void FusedPullRange(const uint64_t* chunk_offsets, const uint32_t* row_order,
                    const uint32_t* sources, const double* weights,
                    const double* bvec, double d, const double* cur,
                    double* next, size_t begin, size_t end, size_t num_rows,
                    double* l1_out) {
  constexpr size_t kRows = graph::SellStructure::kChunkRows;
  double l1 = 0.0;
  for (size_t c = begin; c < end; ++c) {
    const uint64_t base = chunk_offsets[c];
    const uint64_t len = (chunk_offsets[c + 1] - base) / kRows;
    const uint32_t* s = sources + base;
    const double* w = weights + base;
    double sum[kRows] = {0.0};
    for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
      sum[0] += cur[s[0]] * w[0];
      sum[1] += cur[s[1]] * w[1];
      sum[2] += cur[s[2]] * w[2];
      sum[3] += cur[s[3]] * w[3];
      sum[4] += cur[s[4]] * w[4];
      sum[5] += cur[s[5]] * w[5];
      sum[6] += cur[s[6]] * w[6];
      sum[7] += cur[s[7]] * w[7];
    }
    const size_t row0 = c * kRows;
    const size_t rows = std::min(kRows, num_rows - row0);
    for (size_t r = 0; r < rows; ++r) {
      const uint32_t v = row_order[row0 + r];
      const double nv = d * sum[r] + bvec[v];
      l1 += std::fabs(nv - cur[v]);
      next[v] = nv;
    }
  }
  *l1_out = l1;
}

// The fused kernel's parallelism for a graph of m edges: the requested
// thread count clamped by available work.
int FusedThreadCount(const ObjectRankOptions& options, size_t m) {
  return static_cast<int>(std::max<size_t>(
      1, std::min<size_t>(
             static_cast<size_t>(std::max(1, options.num_threads)),
             m / kMinEdgesPerThread + 1)));
}

// Counts cur's nonzeros and, when the iterate is sparse enough for the
// push phase, fills `frontier` with them in ascending node order.
// Returns true when the iterate is already dense.
bool InitFrontier(const std::vector<double>& cur,
                  std::vector<uint32_t>& frontier, size_t& nnz) {
  const size_t n = cur.size();
  nnz = 0;
  for (size_t v = 0; v < n; ++v) {
    if (cur[v] != 0.0) ++nnz;
  }
  const bool dense = nnz * kPushDensityDenom >= n;
  if (!dense) {
    frontier.reserve(nnz);
    for (size_t v = 0; v < n; ++v) {
      if (cur[v] != 0.0) frontier.push_back(static_cast<uint32_t>(v));
    }
  }
  return dense;
}

// One frontier-push iteration: next = d * scatter(cur over the frontier's
// out-edges) + jump * s-hat, with the L1 residual computed inline and the
// frontier + nnz rebuilt from next. The frontier is kept in ascending
// node order, so accumulation matches the sequential push reference.
// Shared by the single-query and batch fused kernels, so a batched lane's
// sparse phase is the identical code path (per-lane bit-identity).
double PushIteration(const graph::AuthorityGraph& graph,
                     const std::vector<double>& alpha, const BaseSet& base,
                     double d, double jump, const std::vector<double>& cur,
                     std::vector<double>& next,
                     std::vector<uint32_t>& frontier, size_t& nnz) {
  const size_t n = next.size();
  std::fill(next.begin(), next.end(), 0.0);
  for (const uint32_t u : frontier) {
    const double dru = d * cur[u];
    for (const graph::AuthorityEdge& e : graph.OutEdges(u)) {
      next[e.target] +=
          dru * alpha[e.rate_index] * static_cast<double>(e.inv_out_deg);
    }
  }
  for (const auto& [node, w] : base.entries) next[node] += jump * w;
  double l1 = 0.0;
  nnz = 0;
  frontier.clear();
  for (size_t v = 0; v < n; ++v) {
    l1 += std::fabs(next[v] - cur[v]);
    if (next[v] != 0.0) {
      ++nnz;
      frontier.push_back(static_cast<uint32_t>(v));
    }
  }
  return l1;
}

// The fused power iteration: frontier push while sparse, then the
// rate-resolved pull SpMV on the persistent pool.
void RunFused(const graph::AuthorityGraph& graph,
              graph::FusedWeightCache& cache,
              const graph::TransferRates& rates, const BaseSet& base,
              const ObjectRankOptions& options, std::vector<double>& cur,
              std::vector<double>& next, ObjectRankResult& result) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads = FusedThreadCount(options, m);

  size_t nnz = 0;
  std::vector<uint32_t> frontier;
  bool dense = InitFrontier(cur, frontier, nnz);

  // Pull-phase state, materialized on the first dense iteration: the
  // fused layout + edge-balanced partition (memoized in the cache) and
  // the dense jump vector, which folds the base-set addition into the
  // pass so the residual can be computed inline.
  std::shared_ptr<const graph::FusedLayout> layout;
  std::shared_ptr<const std::vector<size_t>> bounds;
  std::vector<double> bvec;
  std::vector<double> partials;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    double l1 = 0.0;
    if (!dense) {
      // Frontier push: scatter only the active nodes' mass.
      l1 = PushIteration(graph, alpha, base, d, jump, cur, next, frontier,
                         nnz);
      if (nnz * kPushDensityDenom >= n) {
        dense = true;  // sticky: authority mass never re-sparsifies
        frontier = {};
      }
    } else {
      if (layout == nullptr) {
        layout = cache.Get(graph, rates);
        bounds = cache.Partition(graph, static_cast<size_t>(threads));
        partials.assign(static_cast<size_t>(threads), 0.0);
        bvec.assign(n, 0.0);
        for (const auto& [node, w] : base.entries) bvec[node] = jump * w;
      }
      const graph::SellStructure& sell = layout->structure();
      const uint64_t* coff = sell.chunk_offsets.data();
      const uint32_t* order = sell.row_order.data();
      const uint32_t* src = sell.sources.data();
      const double* w = layout->weights();
      const double* c = cur.data();
      double* nx = next.data();
      const std::vector<size_t>& b = *bounds;
      if (threads <= 1) {
        FusedPullRange(coff, order, src, w, bvec.data(), d, c, nx, 0,
                       sell.num_chunks(), n, partials.data());
      } else {
        auto done = std::make_shared<Completion>(
            static_cast<size_t>(threads) - 1);
        for (int t = 1; t < threads; ++t) {
          double* slot = &partials[static_cast<size_t>(t)];
          const size_t begin = b[static_cast<size_t>(t)];
          const size_t end = b[static_cast<size_t>(t) + 1];
          const double* bv = bvec.data();
          SpmvPool().Submit([=] {
            FusedPullRange(coff, order, src, w, bv, d, c, nx, begin, end, n,
                           slot);
            done->Done();
          });
        }
        // The caller works the first partition instead of idling.
        FusedPullRange(coff, order, src, w, bvec.data(), d, c, nx, b[0],
                       b[1], n, partials.data());
        done->Wait();
      }
      for (const double p : partials) l1 += p;
    }
    cur.swap(next);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
}

// One (possibly parallel) SpMM pass over the whole SELL structure:
// next = d * A^T cur + bvec per lane, node-major blocks. Mirrors the
// dispatch of RunFused's single-vector pass exactly — same balanced
// partition, caller runs partition 0, per-pass completion latch — and
// sums each lane's residual partials in partition order, so lane l's
// residual is bit-identical to the single-vector kernel at the same
// thread count. partials must hold threads * lanes doubles.
void RunBlockPass(const graph::FusedLayout& layout,
                  const std::vector<size_t>& bounds, int threads,
                  const double* bvec, const uint8_t* bmask, double d,
                  const double* cur, double* next, size_t lanes, size_t n,
                  std::vector<double>& partials, std::vector<double>& l1) {
  const graph::SellStructure& sell = layout.structure();
  const uint64_t* coff = sell.chunk_offsets.data();
  const uint32_t* src = sell.sources_row.data();
  const double* w = layout.weights();
  if (threads <= 1) {
    graph::FusedPullBlockRange(coff, src, w, bvec, bmask, d, cur, next,
                               lanes, 0, sell.num_chunks(), n,
                               partials.data());
  } else {
    auto done =
        std::make_shared<Completion>(static_cast<size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) {
      double* slot = &partials[static_cast<size_t>(t) * lanes];
      const size_t begin = bounds[static_cast<size_t>(t)];
      const size_t end = bounds[static_cast<size_t>(t) + 1];
      SpmvPool().Submit([=] {
        graph::FusedPullBlockRange(coff, src, w, bvec, bmask, d, cur, next,
                                   lanes, begin, end, n, slot);
        done->Done();
      });
    }
    // The caller works the first partition instead of idling.
    graph::FusedPullBlockRange(coff, src, w, bvec, bmask, d, cur, next,
                               lanes, bounds[0], bounds[1], n,
                               partials.data());
    done->Wait();
  }
  l1.assign(lanes, 0.0);
  for (int t = 0; t < threads; ++t) {
    const double* slot = &partials[static_cast<size_t>(t) * lanes];
    for (size_t l = 0; l < lanes; ++l) l1[l] += slot[l];
  }
}

// The batched fused power iteration: every lane runs the identical scalar
// frontier push while sparse; lanes that cross the density threshold join
// a shared node-major block advanced by one SpMM pass per iteration, so
// structure + weights stream once for all dense lanes. Lanes retire
// (converge / cancel / hit max_iterations) individually and compact out
// of the block; the survivors keep iterating at the narrower width.
void RunFusedBatch(const graph::AuthorityGraph& graph,
                   graph::FusedWeightCache& cache,
                   const graph::TransferRates& rates,
                   const std::vector<BatchQuery>& queries,
                   const ObjectRankOptions& options,
                   std::vector<ObjectRankResult>& results) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads = FusedThreadCount(options, m);

  enum class Phase { kSparse, kDense, kRetired };
  struct Lane {
    Phase phase = Phase::kSparse;
    std::vector<double> cur;  // scalar iterate while sparse
    std::vector<double> next;
    std::vector<uint32_t> frontier;
    size_t nnz = 0;
  };
  std::vector<Lane> lanes(queries.size());
  size_t active = queries.size();

  // Dense-phase state. block_ids maps block column -> lane index (join
  // order); the layout and partition are materialized when the first lane
  // goes dense, exactly like the single-query kernel. Block vectors live
  // in SELL row order (see BlockVector) — the permutation is applied
  // when a lane joins and when its scores are copied back out.
  std::vector<size_t> block_ids;
  graph::BlockVector bcur, bnext, bb;
  std::vector<uint8_t> bmask;  // rows where any lane's jump vector != 0
  std::shared_ptr<const graph::FusedLayout> layout;
  std::shared_ptr<const std::vector<size_t>> bounds;
  std::vector<double> partials, block_l1;

  // Rebuilds the block at a new set of columns: kept columns copy over
  // from the old block, joining lanes seed from their scalar iterate and
  // their base set's jump vector. O(n * L) — paid only when membership
  // changes, small next to the per-iteration SpMM itself.
  auto repack = [&](const std::vector<size_t>& new_ids) {
    if (layout == nullptr) {
      layout = cache.Get(graph, rates);
      bounds = cache.Partition(graph, static_cast<size_t>(threads));
    }
    const graph::SellStructure& sell = layout->structure();
    const size_t width = new_ids.size();
    graph::BlockVector ncur(n, width), nb(n, width);
    for (size_t col = 0; col < width; ++col) {
      const size_t id = new_ids[col];
      const auto old = std::find(block_ids.begin(), block_ids.end(), id);
      if (old != block_ids.end()) {
        const size_t old_col = static_cast<size_t>(old - block_ids.begin());
        for (size_t r = 0; r < n; ++r) {
          ncur.At(r, col) = bcur.At(r, old_col);
          nb.At(r, col) = bb.At(r, old_col);
        }
      } else {
        Lane& lane = lanes[id];
        ncur.SetLane(col, sell.row_order, lane.cur.data());
        lane.cur = {};
        lane.next = {};
        for (const auto& [node, w] : queries[id].base->entries) {
          nb.At(sell.node_row[node], col) = jump * w;
        }
      }
    }
    bcur = std::move(ncur);
    bb = std::move(nb);
    bnext = graph::BlockVector(n, width);
    block_ids = new_ids;
    partials.assign(static_cast<size_t>(threads) * width, 0.0);
    // The jump vectors' nonzero rows are exactly the lanes' base-set
    // entries, so the mask rebuild is O(total base entries), not O(n*L).
    // (An entry with weight 0 marks its row anyway — a conservative 1 is
    // always safe; only mask-0 rows must be all +0.0.)
    bmask.assign(n, 0);
    for (const size_t id : new_ids) {
      for (const auto& [node, w] : queries[id].base->entries) {
        bmask[sell.node_row[node]] = 1;
      }
    }
  };

  auto retire = [&](size_t id, bool converged, bool cancelled,
                    std::vector<double>&& scores) {
    results[id].converged = converged;
    results[id].cancelled = cancelled;
    results[id].scores = std::move(scores);
    lanes[id].phase = Phase::kRetired;
    lanes[id] = Lane{};
    lanes[id].phase = Phase::kRetired;
    --active;
  };

  // Initialize every lane the way Compute does, and put the ones that
  // start dense (typically warm starts) straight into the block.
  std::vector<size_t> joins;
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQuery& q = queries[i];
    ORX_CHECK_MSG(q.base != nullptr && !q.base->empty(),
                  "batch lane needs a non-empty base set");
    Lane& lane = lanes[i];
    if (q.warm_start != nullptr && q.warm_start->size() == n) {
      lane.cur = *q.warm_start;
    } else {
      lane.cur.assign(n, 0.0);
      for (const auto& [node, w] : q.base->entries) lane.cur[node] = w;
    }
    lane.next.assign(n, 0.0);
    if (InitFrontier(lane.cur, lane.frontier, lane.nnz)) {
      lane.phase = Phase::kDense;
      joins.push_back(i);
    }
  }
  if (!joins.empty()) repack(joins);

  for (int iter = 1; iter <= options.max_iterations && active > 0; ++iter) {
    // Cancellation sweep, before the iteration like Compute: the
    // batch-wide hook (checked once per iteration) cancels every
    // remaining lane; a per-lane hook retires only its own lane. A
    // cancelled lane keeps its last completed iterate.
    const bool batch_cancelled = options.cancel && options.cancel();
    std::vector<size_t> keep_after_cancel;
    bool block_changed = false;
    for (size_t col = 0; col < block_ids.size(); ++col) {
      const size_t id = block_ids[col];
      if (batch_cancelled || (queries[id].cancel && queries[id].cancel())) {
        std::vector<double> scores;
        bcur.CopyLaneOut(col, layout->structure().row_order, scores);
        retire(id, /*converged=*/false, /*cancelled=*/true,
               std::move(scores));
        block_changed = true;
      } else {
        keep_after_cancel.push_back(id);
      }
    }
    if (block_changed) repack(keep_after_cancel);
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].phase != Phase::kSparse) continue;
      if (batch_cancelled || (queries[i].cancel && queries[i].cancel())) {
        retire(i, /*converged=*/false, /*cancelled=*/true,
               std::move(lanes[i].cur));
      }
    }
    if (active == 0) break;

    // Sparse lanes: one scalar frontier-push iteration each.
    joins.clear();
    for (size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      if (lane.phase != Phase::kSparse) continue;
      const double l1 = PushIteration(graph, alpha, *queries[i].base, d,
                                      jump, lane.cur, lane.next,
                                      lane.frontier, lane.nnz);
      lane.cur.swap(lane.next);
      results[i].iterations = iter;
      if (l1 < options.epsilon) {
        retire(i, /*converged=*/true, /*cancelled=*/false,
               std::move(lane.cur));
      } else if (lane.nnz * kPushDensityDenom >= n) {
        // Sticky dense switch: the lane joins the block for the next
        // iteration, mirroring the single-query phase transition.
        lane.phase = Phase::kDense;
        lane.frontier = {};
        joins.push_back(i);
      }
    }

    // Dense lanes: one shared SpMM pass advances every block column.
    std::vector<size_t> keep = block_ids;
    if (!block_ids.empty()) {
      RunBlockPass(*layout, *bounds, threads, bb.data(), bmask.data(), d,
                   bcur.data(), bnext.data(), block_ids.size(), n, partials,
                   block_l1);
      std::swap(bcur.values, bnext.values);
      keep.clear();
      for (size_t col = 0; col < block_ids.size(); ++col) {
        const size_t id = block_ids[col];
        results[id].iterations = iter;
        if (block_l1[col] < options.epsilon) {
          std::vector<double> scores;
          bcur.CopyLaneOut(col, layout->structure().row_order, scores);
          retire(id, /*converged=*/true, /*cancelled=*/false,
                 std::move(scores));
        } else {
          keep.push_back(id);
        }
      }
    }
    if (keep.size() != block_ids.size() || !joins.empty()) {
      keep.insert(keep.end(), joins.begin(), joins.end());
      repack(keep);
    }
  }

  // max_iterations exhausted (or all lanes retired): unretired lanes keep
  // their last iterate, converged = false, like Compute.
  for (size_t col = 0; col < block_ids.size(); ++col) {
    const size_t id = block_ids[col];
    if (lanes[id].phase == Phase::kRetired) continue;
    std::vector<double> scores;
    bcur.CopyLaneOut(col, layout->structure().row_order, scores);
    retire(id, /*converged=*/false, /*cancelled=*/false, std::move(scores));
  }
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i].phase == Phase::kRetired) continue;
    retire(i, /*converged=*/false, /*cancelled=*/false,
           std::move(lanes[i].cur));
  }
}

// ---------------------------------------------------------------------
// Pre-fused kernels, kept verbatim: kSequentialPush is the equivalence
// reference, kLegacy the old-vs-new benchmark baseline.

// One pull-based update pass over the node range [begin, end): gathers
// each node's incoming flow.
void PullRange(const graph::AuthorityGraph& graph,
               const std::vector<double>& alpha, double damping,
               const std::vector<double>& cur, std::vector<double>& next,
               size_t begin, size_t end) {
  for (size_t v = begin; v < end; ++v) {
    double sum = 0.0;
    for (const graph::AuthorityEdge& e :
         graph.InEdges(static_cast<graph::NodeId>(v))) {
      // e.target is the *source* u of the edge u -> v.
      sum += cur[e.target] * alpha[e.rate_index] *
             static_cast<double>(e.inv_out_deg);
    }
    next[v] = damping * sum;
  }
}

void RunLegacy(const graph::AuthorityGraph& graph,
               const graph::TransferRates& rates, const BaseSet& base,
               const ObjectRankOptions& options, bool force_sequential,
               std::vector<double>& cur, std::vector<double>& next,
               ObjectRankResult& result) {
  const size_t n = graph.num_nodes();
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads =
      force_sequential
          ? 1
          : std::max(1, std::min<int>(options.num_threads,
                                      static_cast<int>(n / 1024) + 1));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    if (threads == 1) {
      // Sequential push: cheaper than pulling when many scores are zero
      // (typical early iterations of a cold start).
      std::fill(next.begin(), next.end(), 0.0);
      for (size_t u = 0; u < n; ++u) {
        const double ru = cur[u];
        if (ru == 0.0) continue;
        const double dru = d * ru;
        for (const graph::AuthorityEdge& e :
             graph.OutEdges(static_cast<graph::NodeId>(u))) {
          next[e.target] +=
              dru * alpha[e.rate_index] * static_cast<double>(e.inv_out_deg);
        }
      }
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(threads));
      const size_t chunk = (n + threads - 1) / threads;
      for (int t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(PullRange, std::cref(graph), std::cref(alpha), d,
                          std::cref(cur), std::ref(next), begin, end);
      }
      for (std::thread& worker : pool) worker.join();
    }
    for (const auto& [node, w] : base.entries) next[node] += jump * w;

    double l1 = 0.0;
    for (size_t v = 0; v < n; ++v) l1 += std::fabs(next[v] - cur[v]);
    cur.swap(next);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
}

}  // namespace

ObjectRankResult ObjectRankEngine::Compute(
    const BaseSet& base, const graph::TransferRates& rates,
    const ObjectRankOptions& options,
    const std::vector<double>* warm_start) const {
  const size_t n = graph_->num_nodes();
  ORX_CHECK_MSG(!base.empty(), "base set must be non-empty");

  ObjectRankResult result;
  std::vector<double>& cur = result.scores;
  if (warm_start != nullptr && warm_start->size() == n) {
    cur = *warm_start;
  } else {
    cur.assign(n, 0.0);
    for (const auto& [node, w] : base.entries) cur[node] = w;
  }
  std::vector<double> next(n, 0.0);

  switch (options.kernel) {
    case PowerKernel::kFused:
      RunFused(*graph_, *fused_cache_, rates, base, options, cur, next,
               result);
      break;
    case PowerKernel::kSequentialPush:
      RunLegacy(*graph_, rates, base, options, /*force_sequential=*/true,
                cur, next, result);
      break;
    case PowerKernel::kLegacy:
      RunLegacy(*graph_, rates, base, options, /*force_sequential=*/false,
                cur, next, result);
      break;
  }
  return result;
}

std::vector<ObjectRankResult> ObjectRankEngine::ComputeBatch(
    const std::vector<BatchQuery>& queries, const graph::TransferRates& rates,
    const ObjectRankOptions& options) const {
  std::vector<ObjectRankResult> results(queries.size());
  if (queries.empty()) return results;
  if (options.kernel != PowerKernel::kFused || queries.size() == 1) {
    // The reference kernels have no block form, and a single fused lane
    // has nothing to share (the single-vector kernel also skips the
    // block layout's copies): run the lanes one by one with each lane's
    // hook chained onto the batch hook. Per-lane results are
    // bit-identical either way.
    for (size_t i = 0; i < queries.size(); ++i) {
      ObjectRankOptions lane_options = options;
      if (queries[i].cancel) {
        std::function<bool()> batch_cancel = options.cancel;
        std::function<bool()> lane_cancel = queries[i].cancel;
        lane_options.cancel = [batch_cancel, lane_cancel] {
          return (batch_cancel && batch_cancel()) || lane_cancel();
        };
      }
      results[i] = Compute(*queries[i].base, rates, lane_options,
                           queries[i].warm_start);
    }
    return results;
  }
  RunFusedBatch(*graph_, *fused_cache_, rates, queries, options, results);
  return results;
}

ObjectRankResult ObjectRankEngine::ComputeGlobal(
    const graph::TransferRates& rates,
    const ObjectRankOptions& options) const {
  return Compute(GlobalBaseSet(graph_->num_nodes()), rates, options);
}

ApproxResult ObjectRankEngine::ComputeApproximate(
    const BaseSet& base, const graph::TransferRates& rates,
    const ApproxOptions& options) const {
  return ApproximatePush(*graph_, base, rates,
                         *fused_cache_->Masses(*graph_, rates), options);
}

}  // namespace orx::core
