#include "core/objectrank.h"

#include <cmath>
#include <thread>

#include "common/check.h"

namespace orx::core {
namespace {

// One pull-based update pass over the node range [begin, end): gathers
// each node's incoming flow. A node's contributions always accumulate in
// its in-edge order, so the result is bit-identical for any partitioning
// (thread count); it may differ from the push-based pass in the last ulp
// (different floating-point summation order).
void PullRange(const graph::AuthorityGraph& graph,
               const std::vector<double>& alpha, double damping,
               const std::vector<double>& cur, std::vector<double>& next,
               size_t begin, size_t end) {
  for (size_t v = begin; v < end; ++v) {
    double sum = 0.0;
    for (const graph::AuthorityEdge& e :
         graph.InEdges(static_cast<graph::NodeId>(v))) {
      // e.target is the *source* u of the edge u -> v.
      sum += cur[e.target] * alpha[e.rate_index] *
             static_cast<double>(e.inv_out_deg);
    }
    next[v] = damping * sum;
  }
}

}  // namespace

ObjectRankResult ObjectRankEngine::Compute(
    const BaseSet& base, const graph::TransferRates& rates,
    const ObjectRankOptions& options,
    const std::vector<double>* warm_start) const {
  const size_t n = graph_->num_nodes();
  ORX_CHECK_MSG(!base.empty(), "base set must be non-empty");

  ObjectRankResult result;
  std::vector<double>& cur = result.scores;
  if (warm_start != nullptr && warm_start->size() == n) {
    cur = *warm_start;
  } else {
    cur.assign(n, 0.0);
    for (const auto& [node, w] : base.entries) cur[node] = w;
  }

  // Cache the per-slot alphas once; the inner loop resolves each edge's
  // rate as alpha[slot] * inv_out_deg (Equation 1).
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads =
      std::max(1, std::min<int>(options.num_threads,
                                static_cast<int>(n / 1024) + 1));

  std::vector<double> next(n, 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    if (threads == 1) {
      // Sequential push: cheaper than pulling when many scores are zero
      // (typical early iterations of a cold start).
      std::fill(next.begin(), next.end(), 0.0);
      for (size_t u = 0; u < n; ++u) {
        const double ru = cur[u];
        if (ru == 0.0) continue;
        const double dru = d * ru;
        for (const graph::AuthorityEdge& e : graph_->OutEdges(
                 static_cast<graph::NodeId>(u))) {
          next[e.target] +=
              dru * alpha[e.rate_index] * static_cast<double>(e.inv_out_deg);
        }
      }
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(threads));
      const size_t chunk = (n + threads - 1) / threads;
      for (int t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(PullRange, std::cref(*graph_), std::cref(alpha),
                          d, std::cref(cur), std::ref(next), begin, end);
      }
      for (std::thread& worker : pool) worker.join();
    }
    for (const auto& [node, w] : base.entries) next[node] += jump * w;

    double l1 = 0.0;
    for (size_t v = 0; v < n; ++v) l1 += std::fabs(next[v] - cur[v]);
    cur.swap(next);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

ObjectRankResult ObjectRankEngine::ComputeGlobal(
    const graph::TransferRates& rates,
    const ObjectRankOptions& options) const {
  return Compute(GlobalBaseSet(graph_->num_nodes()), rates, options);
}

}  // namespace orx::core
