#include "core/objectrank.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/thread_pool.h"

namespace orx::core {
namespace {

// Work-based clamp of the fused kernel's parallelism: one worker per this
// many in-edges, so tiny graphs skip dispatch entirely and dense small-n
// graphs (where the old node-count clamp collapsed to one thread) still
// fan out.
constexpr size_t kMinEdgesPerThread = 16384;

// The fused kernel pushes while nnz * kPushDensityDenom < n and switches
// permanently to the pull SpMV once the iterate is denser than 1/8.
constexpr size_t kPushDensityDenom = 8;

// The pool the fused pull pass runs on: spawned once per process, shared
// by every engine. Sized one below the hardware thread count because the
// caller executes the first partition itself. Intentionally leaked so
// exiting threads never race static destruction.
ThreadPool& SpmvPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, ThreadPool::HardwareThreads() - 1));
  return *pool;
}

// Per-pass completion latch. Heap-shared with the submitted tasks so the
// notifying task can outlive the waiting stack frame safely; unlike
// ThreadPool::Wait it only waits for THIS pass's tasks, so concurrent
// Computes sharing the pool never wait on each other's work.
struct Completion {
  explicit Completion(size_t n) : remaining(n) {}
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;

  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_one();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
};

// One fused pull pass over the SELL chunk range [begin, end):
// next = d * (A^T cur) + bvec with the L1 residual computed inline. A
// chunk is 8 rows stored column-major, so the inner loop keeps one
// accumulator per row — 8 independent dependency chains that let the
// score gathers and multiplies overlap, where a CSR row loop serializes
// on each node's running sum (one edge per add latency). No software
// prefetch: the gathers mostly hit L2 and explicit prefetches only steal
// load-port slots (measured slower). Each row's sum accumulates in
// in-edge order with padding contributing exactly +0.0, so scores are
// bit-identical for any partitioning and any thread count.
void FusedPullRange(const uint64_t* chunk_offsets, const uint32_t* row_order,
                    const uint32_t* sources, const double* weights,
                    const double* bvec, double d, const double* cur,
                    double* next, size_t begin, size_t end, size_t num_rows,
                    double* l1_out) {
  constexpr size_t kRows = graph::SellStructure::kChunkRows;
  double l1 = 0.0;
  for (size_t c = begin; c < end; ++c) {
    const uint64_t base = chunk_offsets[c];
    const uint64_t len = (chunk_offsets[c + 1] - base) / kRows;
    const uint32_t* s = sources + base;
    const double* w = weights + base;
    double sum[kRows] = {0.0};
    for (uint64_t j = 0; j < len; ++j, s += kRows, w += kRows) {
      sum[0] += cur[s[0]] * w[0];
      sum[1] += cur[s[1]] * w[1];
      sum[2] += cur[s[2]] * w[2];
      sum[3] += cur[s[3]] * w[3];
      sum[4] += cur[s[4]] * w[4];
      sum[5] += cur[s[5]] * w[5];
      sum[6] += cur[s[6]] * w[6];
      sum[7] += cur[s[7]] * w[7];
    }
    const size_t row0 = c * kRows;
    const size_t rows = std::min(kRows, num_rows - row0);
    for (size_t r = 0; r < rows; ++r) {
      const uint32_t v = row_order[row0 + r];
      const double nv = d * sum[r] + bvec[v];
      l1 += std::fabs(nv - cur[v]);
      next[v] = nv;
    }
  }
  *l1_out = l1;
}

// The fused power iteration: frontier push while sparse, then the
// rate-resolved pull SpMV on the persistent pool.
void RunFused(const graph::AuthorityGraph& graph,
              graph::FusedWeightCache& cache,
              const graph::TransferRates& rates, const BaseSet& base,
              const ObjectRankOptions& options, std::vector<double>& cur,
              std::vector<double>& next, ObjectRankResult& result) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads = static_cast<int>(std::max<size_t>(
      1, std::min<size_t>(
             static_cast<size_t>(std::max(1, options.num_threads)),
             m / kMinEdgesPerThread + 1)));

  size_t nnz = 0;
  std::vector<uint32_t> frontier;
  for (size_t v = 0; v < n; ++v) {
    if (cur[v] != 0.0) ++nnz;
  }
  bool dense = nnz * kPushDensityDenom >= n;
  if (!dense) {
    frontier.reserve(nnz);
    for (size_t v = 0; v < n; ++v) {
      if (cur[v] != 0.0) frontier.push_back(static_cast<uint32_t>(v));
    }
  }

  // Pull-phase state, materialized on the first dense iteration: the
  // fused layout + edge-balanced partition (memoized in the cache) and
  // the dense jump vector, which folds the base-set addition into the
  // pass so the residual can be computed inline.
  std::shared_ptr<const graph::FusedLayout> layout;
  std::shared_ptr<const std::vector<size_t>> bounds;
  std::vector<double> bvec;
  std::vector<double> partials;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    double l1 = 0.0;
    if (!dense) {
      // Frontier push: scatter only the active nodes' mass. The frontier
      // is kept in ascending node order, so accumulation matches the
      // sequential push reference.
      std::fill(next.begin(), next.end(), 0.0);
      for (const uint32_t u : frontier) {
        const double dru = d * cur[u];
        for (const graph::AuthorityEdge& e : graph.OutEdges(u)) {
          next[e.target] +=
              dru * alpha[e.rate_index] * static_cast<double>(e.inv_out_deg);
        }
      }
      for (const auto& [node, w] : base.entries) next[node] += jump * w;
      nnz = 0;
      frontier.clear();
      for (size_t v = 0; v < n; ++v) {
        l1 += std::fabs(next[v] - cur[v]);
        if (next[v] != 0.0) {
          ++nnz;
          frontier.push_back(static_cast<uint32_t>(v));
        }
      }
      if (nnz * kPushDensityDenom >= n) {
        dense = true;  // sticky: authority mass never re-sparsifies
        frontier = {};
      }
    } else {
      if (layout == nullptr) {
        layout = cache.Get(graph, rates);
        bounds = cache.Partition(graph, static_cast<size_t>(threads));
        partials.assign(static_cast<size_t>(threads), 0.0);
        bvec.assign(n, 0.0);
        for (const auto& [node, w] : base.entries) bvec[node] = jump * w;
      }
      const graph::SellStructure& sell = layout->structure();
      const uint64_t* coff = sell.chunk_offsets.data();
      const uint32_t* order = sell.row_order.data();
      const uint32_t* src = sell.sources.data();
      const double* w = layout->weights();
      const double* c = cur.data();
      double* nx = next.data();
      const std::vector<size_t>& b = *bounds;
      if (threads <= 1) {
        FusedPullRange(coff, order, src, w, bvec.data(), d, c, nx, 0,
                       sell.num_chunks(), n, partials.data());
      } else {
        auto done = std::make_shared<Completion>(
            static_cast<size_t>(threads) - 1);
        for (int t = 1; t < threads; ++t) {
          double* slot = &partials[static_cast<size_t>(t)];
          const size_t begin = b[static_cast<size_t>(t)];
          const size_t end = b[static_cast<size_t>(t) + 1];
          const double* bv = bvec.data();
          SpmvPool().Submit([=] {
            FusedPullRange(coff, order, src, w, bv, d, c, nx, begin, end, n,
                           slot);
            done->Done();
          });
        }
        // The caller works the first partition instead of idling.
        FusedPullRange(coff, order, src, w, bvec.data(), d, c, nx, b[0],
                       b[1], n, partials.data());
        done->Wait();
      }
      for (const double p : partials) l1 += p;
    }
    cur.swap(next);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Pre-fused kernels, kept verbatim: kSequentialPush is the equivalence
// reference, kLegacy the old-vs-new benchmark baseline.

// One pull-based update pass over the node range [begin, end): gathers
// each node's incoming flow.
void PullRange(const graph::AuthorityGraph& graph,
               const std::vector<double>& alpha, double damping,
               const std::vector<double>& cur, std::vector<double>& next,
               size_t begin, size_t end) {
  for (size_t v = begin; v < end; ++v) {
    double sum = 0.0;
    for (const graph::AuthorityEdge& e :
         graph.InEdges(static_cast<graph::NodeId>(v))) {
      // e.target is the *source* u of the edge u -> v.
      sum += cur[e.target] * alpha[e.rate_index] *
             static_cast<double>(e.inv_out_deg);
    }
    next[v] = damping * sum;
  }
}

void RunLegacy(const graph::AuthorityGraph& graph,
               const graph::TransferRates& rates, const BaseSet& base,
               const ObjectRankOptions& options, bool force_sequential,
               std::vector<double>& cur, std::vector<double>& next,
               ObjectRankResult& result) {
  const size_t n = graph.num_nodes();
  const std::vector<double>& alpha = rates.slots();
  const double d = options.damping;
  const double jump = 1.0 - d;
  const int threads =
      force_sequential
          ? 1
          : std::max(1, std::min<int>(options.num_threads,
                                      static_cast<int>(n / 1024) + 1));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (options.cancel && options.cancel()) {
      result.cancelled = true;
      break;
    }
    if (threads == 1) {
      // Sequential push: cheaper than pulling when many scores are zero
      // (typical early iterations of a cold start).
      std::fill(next.begin(), next.end(), 0.0);
      for (size_t u = 0; u < n; ++u) {
        const double ru = cur[u];
        if (ru == 0.0) continue;
        const double dru = d * ru;
        for (const graph::AuthorityEdge& e :
             graph.OutEdges(static_cast<graph::NodeId>(u))) {
          next[e.target] +=
              dru * alpha[e.rate_index] * static_cast<double>(e.inv_out_deg);
        }
      }
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(threads));
      const size_t chunk = (n + threads - 1) / threads;
      for (int t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(PullRange, std::cref(graph), std::cref(alpha), d,
                          std::cref(cur), std::ref(next), begin, end);
      }
      for (std::thread& worker : pool) worker.join();
    }
    for (const auto& [node, w] : base.entries) next[node] += jump * w;

    double l1 = 0.0;
    for (size_t v = 0; v < n; ++v) l1 += std::fabs(next[v] - cur[v]);
    cur.swap(next);
    result.iterations = iter;
    if (l1 < options.epsilon) {
      result.converged = true;
      break;
    }
  }
}

}  // namespace

ObjectRankResult ObjectRankEngine::Compute(
    const BaseSet& base, const graph::TransferRates& rates,
    const ObjectRankOptions& options,
    const std::vector<double>* warm_start) const {
  const size_t n = graph_->num_nodes();
  ORX_CHECK_MSG(!base.empty(), "base set must be non-empty");

  ObjectRankResult result;
  std::vector<double>& cur = result.scores;
  if (warm_start != nullptr && warm_start->size() == n) {
    cur = *warm_start;
  } else {
    cur.assign(n, 0.0);
    for (const auto& [node, w] : base.entries) cur[node] = w;
  }
  std::vector<double> next(n, 0.0);

  switch (options.kernel) {
    case PowerKernel::kFused:
      RunFused(*graph_, *fused_cache_, rates, base, options, cur, next,
               result);
      break;
    case PowerKernel::kSequentialPush:
      RunLegacy(*graph_, rates, base, options, /*force_sequential=*/true,
                cur, next, result);
      break;
    case PowerKernel::kLegacy:
      RunLegacy(*graph_, rates, base, options, /*force_sequential=*/false,
                cur, next, result);
      break;
  }
  return result;
}

ObjectRankResult ObjectRankEngine::ComputeGlobal(
    const graph::TransferRates& rates,
    const ObjectRankOptions& options) const {
  return Compute(GlobalBaseSet(graph_->num_nodes()), rates, options);
}

}  // namespace orx::core
