#ifndef ORX_CORE_SEARCHER_H_
#define ORX_CORE_SEARCHER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/base_set.h"
#include "core/objectrank.h"
#include "core/rank_cache.h"
#include "core/top_k.h"
#include "graph/authority_graph.h"
#include "graph/data_graph.h"
#include "text/corpus.h"
#include "text/query.h"

namespace orx::core {

/// Which execution tier answers a search. The tiers trade latency for
/// certainty; all of them return sound rankings — the approximate and
/// cached tiers additionally report the certified error bound they
/// carry, and escalate to the exact kernel when the top-k set cannot be
/// certified under it. The numeric values are the wire encoding
/// (net/frame.h) — append only.
enum class SearchTier : uint8_t {
  /// Cache when fresh and certifiable, exact otherwise (the historical
  /// behavior, and the default).
  kAuto = 0,
  /// Always run the power iteration; the cache is not consulted.
  kExact = 1,
  /// Run the local forward-push kernel (core/approx.h) and certify the
  /// top-k set against its error bound; escalate to exact when
  /// certification fails.
  kApproximate = 2,
  /// Prefer the precomputed rank cache; on any miss (reason reported in
  /// SearchResult::cache_miss_reason) fall back to exact.
  kCached = 3,
};

/// Why a search was not answered from the rank cache. Ordered from
/// structural (no cache at all) to marginal (cache answered, but its
/// compression error bound could not certify the top-k set).
enum class CacheMissReason : uint8_t {
  /// Not a miss: the cache answered, or the tier never consulted it.
  kNone = 0,
  /// No cache attached to the searcher.
  kNoCache = 1,
  /// The cache was built under different transfer rates.
  kRatesMismatch = 2,
  /// The cache was built under different Okapi BM25 parameters.
  kBm25Mismatch = 3,
  /// At least one query term is absent from the cache (or contributes no
  /// positive combination weight).
  kMissingTerms = 4,
  /// Compressed entries answered, but their combined error bound was too
  /// large to certify the top-k set.
  kErrorBudget = 5,
};

/// Which ranking semantics Search uses.
enum class RankMode {
  /// ObjectRank2 (Section 3): one power iteration over the IR-weighted
  /// base set of the whole query vector.
  kObjectRank2,
  /// The modified original ObjectRank used as the Table 2 baseline: one
  /// 0/1-base-set run per keyword, combined multiplicatively with the
  /// normalizing exponent g(t) = 1 / log(|S(t)|) (Equation 16).
  kObjectRankBaseline,
};

/// Per-search knobs.
struct SearchOptions {
  ObjectRankOptions objectrank;
  text::Bm25Params bm25;
  RankMode mode = RankMode::kObjectRank2;
  /// If set, only nodes of this type appear in the ranked result list
  /// (the surveys rank Paper / PubMed objects).
  std::optional<graph::TypeId> result_type;
  /// Number of results to return (the paper reports top-10).
  size_t k = 10;
  /// Seed the power iteration with the previous query's converged scores
  /// (Section 6.2: "Manipulating Initial ObjectRank values"). The first
  /// query of a session is seeded with the global ObjectRank if
  /// PrecomputeGlobalRank was called.
  bool use_warm_start = true;
  /// Execution tier; see SearchTier. Only ObjectRank2 mode dispatches on
  /// it — baseline mode always runs its per-keyword exact product.
  SearchTier tier = SearchTier::kAuto;
  /// Knobs of the approximate kernel when tier is kApproximate. Its
  /// damping and cancel hook are overridden from `objectrank` so the two
  /// kernels always solve the same fixpoint under the same deadline.
  ApproxOptions approx;
};

/// One query of a Searcher::SearchBatch call. Options are shared across
/// the batch (the serving layer only batches requests whose numeric
/// options agree); the per-query inputs are the query vector and an
/// optional cancellation hook.
struct BatchSearchRequest {
  text::QueryVector query;
  /// Per-query cooperative cancellation (e.g. this request's serving
  /// deadline), checked once per power iteration of this lane. A tripped
  /// lane fails with kDeadlineExceeded; the other lanes are unaffected.
  std::function<bool()> cancel;
};

/// Outcome of one search.
struct SearchResult {
  /// True if the result came from the precomputed rank cache rather than
  /// a power iteration (then `iterations` is 0).
  bool from_cache = false;
  /// Top-k results, best first.
  std::vector<ScoredNode> top;
  /// Full converged score vector r^Q (needed by the explainer).
  std::vector<double> scores;
  /// Power iterations executed (summed across per-keyword runs in
  /// baseline mode) — the quantity plotted in Figures 14(b)-17(b).
  int iterations = 0;
  bool converged = false;
  /// |S(Q)|.
  size_t base_set_size = 0;
  /// Wall-clock seconds of the ObjectRank execution stage.
  double seconds = 0.0;
  /// The tier that actually produced the scores (never kAuto): kCached
  /// iff from_cache, kApproximate iff the push kernel's bound certified
  /// the top-k set, kExact otherwise.
  SearchTier tier_used = SearchTier::kExact;
  /// Certified additive error bound on `scores` (0 for exact results).
  /// For every node v: scores[v] <= exact[v] <= scores[v] + error_bound.
  double error_bound = 0.0;
  /// True iff `top` provably equals the exact top-k set: exact tiers
  /// trivially, approximate/compressed tiers via the gap test
  /// (CertifyTopK in core/approx.h).
  bool certified = true;
  /// True iff a non-exact tier was requested but could not certify its
  /// answer, so the exact kernel ran instead.
  bool escalated = false;
  /// Why the rank cache did not answer (kNone on a hit, or when the tier
  /// never consulted it).
  CacheMissReason cache_miss_reason = CacheMissReason::kNone;
};

/// High-level query interface tying together the corpus, the authority
/// transfer data graph, and the ObjectRank engine. A Searcher represents
/// one user session: it remembers the last converged score vector and uses
/// it to warm-start the next (typically reformulated) query.
///
/// The referenced graph/corpus objects must outlive the Searcher.
class Searcher {
 public:
  Searcher(const graph::DataGraph& data, const graph::AuthorityGraph& graph,
           const text::Corpus& corpus);

  /// Computes the global ObjectRank under `rates` and stores it as the
  /// warm-start seed for the session's first query.
  void PrecomputeGlobalRank(const graph::TransferRates& rates,
                            const ObjectRankOptions& options = {});

  /// Attaches a precomputed rank cache. Subsequent ObjectRank2 searches
  /// are answered from the cache when (a) the query's terms are all
  /// cached and contribute positive combination weight, (b) the search's
  /// rates match the cache's fingerprint — i.e. until structure-based
  /// reformulation changes the rates — and (c) the search's BM25
  /// parameters equal the ones the cache was built with (they are baked
  /// into the cached vectors and masses). On any mismatch the searcher
  /// silently falls back to the power iteration. Pass nullptr to detach.
  /// The cache must outlive the searcher.
  void AttachRankCache(const RankCache* cache) { rank_cache_ = cache; }

  /// Shares a fused-weight cache (rate-resolved SpMV layouts; see
  /// graph/spmv_layout.h) with this searcher's engine. The serving layer
  /// passes the snapshot-owned cache so every request against a snapshot
  /// reuses one materialized layout instead of building its own.
  void AttachFusedCache(std::shared_ptr<graph::FusedWeightCache> cache) {
    engine_.set_fused_cache(std::move(cache));
  }

  /// Runs a search. Errors: kNotFound if no query keyword matches any
  /// node; kInvalidArgument on an empty query vector or on out-of-range
  /// options (k == 0, damping outside [0, 1) or non-finite, epsilon <= 0,
  /// negative max_iterations); kDeadlineExceeded when
  /// options.objectrank.cancel stopped the power iteration (the partial
  /// scores are discarded and the warm-start state is left untouched).
  StatusOr<SearchResult> Search(const text::QueryVector& query,
                                const graph::TransferRates& rates,
                                const SearchOptions& options = {});

  /// Runs a batch of searches as one block power iteration
  /// (ObjectRankEngine::ComputeBatch): base-set construction, rank-cache
  /// fast path, and top-k extraction run per lane, while the cache-miss
  /// lanes share every streaming read of the graph. requests[i]'s entry
  /// in the returned vector carries exactly the result/status Search
  /// would produce for that query — same errors (kNotFound,
  /// kInvalidArgument, kDeadlineExceeded on a tripped cancel hook) and,
  /// in ObjectRank2 mode, bit-identical scores.
  ///
  /// Session-state contract: every lane is seeded from the session's
  /// current warm-start state (as Search would be), but the batch does
  /// NOT update previous_scores_ — lanes are concurrent, so "the previous
  /// query" is ill-defined. The serving layer constructs a fresh Searcher
  /// per batch, so this only matters for long-lived sessions.
  ///
  /// Baseline-mode batches fall back to per-lane runs (the Equation 16
  /// product has no block form).
  std::vector<StatusOr<SearchResult>> SearchBatch(
      const std::vector<BatchSearchRequest>& requests,
      const graph::TransferRates& rates, const SearchOptions& options = {});

  /// Forgets warm-start state (previous scores and global seed).
  void ResetSession();

  /// Last converged scores, or nullptr before the first search.
  const std::vector<double>* previous_scores() const {
    return has_previous_ ? &previous_scores_ : nullptr;
  }

  const graph::DataGraph& data() const { return *data_; }
  const graph::AuthorityGraph& authority_graph() const { return *graph_; }
  const text::Corpus& corpus() const { return *corpus_; }

 private:
  StatusOr<SearchResult> SearchObjectRank2(const text::QueryVector& query,
                                           const graph::TransferRates& rates,
                                           const SearchOptions& options);
  StatusOr<SearchResult> SearchBaseline(const text::QueryVector& query,
                                        const graph::TransferRates& rates,
                                        const SearchOptions& options);
  /// The approximate tier: forward-push, certify, escalate on failure.
  /// Pure with respect to session state (SearchBatch calls it per lane);
  /// Search updates the warm-start seed from its result.
  StatusOr<SearchResult> SearchApproximate(const graph::TransferRates& rates,
                                           const SearchOptions& options,
                                           const BaseSet& base);
  /// Tries to answer from the rank cache. Returns the result on a
  /// certified hit; otherwise sets *reason and returns nullopt.
  std::optional<SearchResult> TryCacheAnswer(const text::QueryVector& query,
                                             const graph::TransferRates& rates,
                                             const SearchOptions& options,
                                             const BaseSet& base,
                                             CacheMissReason* reason) const;

  const graph::DataGraph* data_;
  const graph::AuthorityGraph* graph_;
  const text::Corpus* corpus_;
  ObjectRankEngine engine_;

  const RankCache* rank_cache_ = nullptr;
  std::vector<double> global_scores_;
  bool has_global_ = false;
  std::vector<double> previous_scores_;
  bool has_previous_ = false;
};

}  // namespace orx::core

#endif  // ORX_CORE_SEARCHER_H_
