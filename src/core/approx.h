#ifndef ORX_CORE_APPROX_H_
#define ORX_CORE_APPROX_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/base_set.h"
#include "core/top_k.h"
#include "graph/authority_graph.h"
#include "graph/spmv_layout.h"
#include "graph/transfer_rates.h"

namespace orx::core {

/// Knobs of the approximate (local forward-push) ObjectRank kernel; see
/// docs/approx_tier.md.
struct ApproxOptions {
  /// Damping factor d, as in ObjectRankOptions (Equation 4).
  double damping = 0.85;

  /// Per-node residual threshold: a node pushes while its residual mass
  /// is >= r_max. Smaller values touch more of the graph and tighten the
  /// certified error bound; the bound reported in ApproxResult is what
  /// actually matters — r_max only steers how hard the kernel works.
  double r_max = 1e-6;

  /// Safety valve on total pushes (0 = no cap). Hitting the cap keeps
  /// the bounds sound — the remaining residual mass is simply larger.
  size_t max_pushes = 0;

  /// Certification-driven refinement (consumed by Searcher's approximate
  /// tier, not by ApproximatePush itself): when the bound at r_max cannot
  /// separate the top-k set, the push is re-run with the threshold scaled
  /// to the observed score gap, at most this many runs total. The bound
  /// shrinks roughly linearly with the threshold, so the first refinement
  /// normally jumps straight to a certifying threshold, and the discarded
  /// runs cost a geometric fraction of the final one.
  int max_refinements = 4;

  /// Refinement floor: once the gap-implied threshold falls below r_min
  /// the tier escalates to the exact kernel instead of pushing further —
  /// a gap that small is cheaper to resolve by power iteration.
  double r_min = 1e-10;

  /// Cooperative cancellation, checked once per frontier round. A
  /// cancelled run returns certified = false.
  std::function<bool()> cancel;
};

/// Result of an approximate run. `scores` is a certified *lower* bound
/// on the exact fixpoint: for every node v,
///     scores[v] <= exact[v] <= scores[v] + linf_bound
/// and the total unaccounted mass satisfies
///     sum_v (exact[v] - scores[v]) <= l1_bound.
struct ApproxResult {
  std::vector<double> scores;
  /// Certified additive L-inf error bound.
  double linf_bound = 0.0;
  /// Certified additive L1 error bound (>= linf_bound by construction).
  double l1_bound = 0.0;
  /// Total push operations executed.
  size_t pushes = 0;
  /// Nodes with a nonzero estimate or residual when the run stopped.
  size_t touched_nodes = 0;
  /// Frontier rounds executed (the analogue of power iterations).
  int rounds = 0;
  /// True iff the bounds are mathematically valid: the contraction
  /// factor rho = d * max_u(out-mass(u)) was < 1 and the run was not
  /// cancelled. When false the caller must escalate to the exact kernel.
  bool certified = false;
  /// True iff options.cancel stopped the run early.
  bool cancelled = false;
};

/// The local forward-push solver for the ObjectRank2 fixpoint
/// r = d*A*r + (1-d)*s-hat (Equation 4). Maintains an estimate p and a
/// residual vector r with the invariant p + solve(r) = solve(s): a push
/// at u settles (1-d)*r[u] into p[u] and scatters d*a(e)*r[u] along u's
/// out-edges, draining a degree-ordered frontier of nodes whose residual
/// exceeds r_max. Work is proportional to the residual mass moved —
/// touched nodes, not |V| — and the remaining ||r||_1 converts into the
/// certified additive bound (1-d)*||r||_1 / (1-rho).
///
/// `masses` is the rate-resolved out-mass reduction for (graph, rates) —
/// FusedWeightCache::Masses memoizes it per rates fingerprint, so serving
/// pays the O(|E|) resolution once, not per request. The convenient
/// entry point is ObjectRankEngine::ComputeApproximate (core/objectrank.h),
/// which threads its snapshot-shared cache through.
ApproxResult ApproximatePush(const graph::AuthorityGraph& graph,
                             const BaseSet& base,
                             const graph::TransferRates& rates,
                             const graph::PushMass& masses,
                             const ApproxOptions& options = {});

/// Top-k set certification: given one-sided approximate scores and their
/// L-inf bound, decides whether the approximate top-k *set* provably
/// equals the exact top-k set (the gap between the k-th kept score and
/// the best excluded score exceeds the bound).
struct CertifiedTopK {
  /// Top-k by approximate score (desc score, asc node id on ties).
  std::vector<ScoredNode> top;
  /// kept_min - excluded_max over approximate scores (+inf when fewer
  /// than k+1 candidates exist, so the set is trivially complete).
  double gap = 0.0;
  /// True iff gap > linf_bound, i.e. the set is provably exact.
  bool certified = false;
};

CertifiedTopK CertifyTopK(const std::vector<double>& scores,
                          double linf_bound, size_t k,
                          const graph::DataGraph& data,
                          std::optional<graph::TypeId> type);

}  // namespace orx::core

#endif  // ORX_CORE_APPROX_H_
