#include "core/top_k.h"

#include <algorithm>

namespace orx::core {
namespace {

// Min-heap ordering: the worst element of the current top-k sits at the
// front. `a < b` means a ranks better than b.
bool RanksBetter(const ScoredNode& a, const ScoredNode& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.node < b.node;
}

std::vector<ScoredNode> HeapTopK(const std::vector<double>& scores, size_t k,
                                 const auto& keep) {
  std::vector<ScoredNode> heap;
  heap.reserve(k + 1);
  auto heap_cmp = [](const ScoredNode& a, const ScoredNode& b) {
    return RanksBetter(a, b);  // makes the *worst* element the heap top
  };
  for (size_t i = 0; i < scores.size(); ++i) {
    const graph::NodeId v = static_cast<graph::NodeId>(i);
    if (!keep(v)) continue;
    ScoredNode cand{v, scores[i]};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    } else if (k > 0 && RanksBetter(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  }
  std::sort(heap.begin(), heap.end(), RanksBetter);
  return heap;
}

}  // namespace

std::vector<ScoredNode> TopK(const std::vector<double>& scores, size_t k) {
  return HeapTopK(scores, k, [](graph::NodeId) { return true; });
}

std::vector<ScoredNode> TopKOfType(const std::vector<double>& scores,
                                   size_t k, const graph::DataGraph& data,
                                   std::optional<graph::TypeId> type) {
  if (!type.has_value()) return TopK(scores, k);
  return HeapTopK(scores, k, [&](graph::NodeId v) {
    return data.NodeType(v) == *type;
  });
}

std::vector<ScoredNode> TopKOfTypeExcluding(
    const std::vector<double>& scores, size_t k, const graph::DataGraph& data,
    std::optional<graph::TypeId> type, const std::vector<bool>& excluded) {
  return HeapTopK(scores, k, [&](graph::NodeId v) {
    if (v < excluded.size() && excluded[v]) return false;
    return !type.has_value() || data.NodeType(v) == *type;
  });
}

}  // namespace orx::core
