#include "core/rank_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <type_traits>
#include <unordered_set>

#include "common/byte_io.h"
#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/base_set.h"

namespace orx::core {
namespace {

RankCache::Options SanitizeOptions(RankCache::Options options) {
  if (options.min_df == 0) options.min_df = 1;
  if (options.build_threads <= 0) {
    options.build_threads = static_cast<int>(ThreadPool::HardwareThreads());
  }
  return options;
}

// Outcome of ranking one term on a worker: the cache entry plus the
// per-term counters the BuildStats aggregation needs.
struct TermBuildResult {
  bool built = false;
  double mass = 0.0;
  std::vector<float> scores;
  int iterations = 0;
  bool converged = true;
  double seconds = 0.0;
};

// Ranks one term: its IR-weighted base set (idf * tf-factor per posting,
// normalized) pushed through the power iteration. Pure function of its
// inputs — safe to run concurrently for distinct output slots.
TermBuildResult RankOneTerm(const ObjectRankEngine& engine,
                            const text::Corpus& corpus,
                            const graph::TransferRates& rates,
                            const std::string& term,
                            const RankCache::Options& options,
                            const std::vector<double>* warm_start = nullptr) {
  TermBuildResult result;
  Timer timer;
  // The term's unnormalized IR scores: a single-term query vector with
  // weight 1 has query factor 1, so ScoreBaseSet yields idf * tf-factor
  // per matching document.
  text::QueryVector unit;
  unit.SetWeight(term, 1.0);
  auto scored = text::ScoreBaseSet(corpus, unit, options.bm25);
  if (scored.empty()) return result;

  double mass = 0.0;
  for (const auto& [doc, score] : scored) mass += score;
  BaseSet base;
  if (mass > 0.0) {
    base.entries.reserve(scored.size());
    for (const auto& [doc, score] : scored) {
      base.entries.emplace_back(doc, score / mass);
    }
  } else {
    // Degenerate all-zero IR scores: uniform, mass = |postings| so the
    // combination still weights the term by its spread.
    mass = static_cast<double>(scored.size());
    const double w = 1.0 / static_cast<double>(scored.size());
    for (const auto& [doc, score] : scored) {
      base.entries.emplace_back(doc, w);
    }
  }

  ObjectRankResult rank =
      engine.Compute(base, rates, options.objectrank, warm_start);
  result.built = true;
  result.mass = mass;
  result.scores.assign(rank.scores.begin(), rank.scores.end());
  result.iterations = rank.iterations;
  result.converged = rank.converged;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

// Percentile over an ascending-sorted sample (nearest-rank); 0 if empty.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * static_cast<double>(
                                              sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::string RankCache::BuildStats::ToString() const {
  std::string out;
  out += "built " + std::to_string(terms_built) + "/" +
         std::to_string(terms_requested) + " terms (" +
         std::to_string(terms_skipped) + " skipped) in " +
         FormatDouble(wall_seconds, 2) + "s on " + std::to_string(threads) +
         (threads == 1 ? " thread" : " threads") + "; " +
         std::to_string(total_iterations) + " power iterations";
  if (terms_not_converged > 0) {
    out += " (" + std::to_string(terms_not_converged) + " not converged)";
  }
  out += ", per-term p50 " + FormatDouble(term_seconds_p50 * 1e3, 1) +
         "ms / p95 " + FormatDouble(term_seconds_p95 * 1e3, 1) + "ms";
  return out;
}

RankCache RankCache::Build(const graph::AuthorityGraph& graph,
                           const text::Corpus& corpus,
                           const graph::TransferRates& rates,
                           const Options& options, BuildStats* stats) {
  // Eligible terms, most frequent first, capped at max_terms.
  std::vector<text::TermId> terms;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    if (corpus.Df(t) >= std::max<uint32_t>(1, options.min_df)) {
      terms.push_back(t);
    }
  }
  std::sort(terms.begin(), terms.end(), [&](text::TermId a, text::TermId b) {
    if (corpus.Df(a) != corpus.Df(b)) return corpus.Df(a) > corpus.Df(b);
    return a < b;
  });
  if (terms.size() > options.max_terms) terms.resize(options.max_terms);

  std::vector<std::string> term_strings;
  term_strings.reserve(terms.size());
  for (text::TermId t : terms) term_strings.push_back(corpus.TermString(t));
  return BuildForTerms(graph, corpus, rates, term_strings, options, stats);
}

RankCache RankCache::BuildForTerms(const graph::AuthorityGraph& graph,
                                   const text::Corpus& corpus,
                                   const graph::TransferRates& rates,
                                   const std::vector<std::string>& terms,
                                   const Options& raw_options,
                                   BuildStats* stats) {
  const Options options = SanitizeOptions(raw_options);
  Timer wall_timer;
  RankCache cache;
  cache.num_nodes_ = graph.num_nodes();
  cache.rates_fingerprint_ = rates.Fingerprint();
  cache.bm25_ = options.bm25;

  // Unique terms in first-appearance order. Every worker writes only its
  // own slot of `results`, and the merge below walks the slots in this
  // fixed order — the parallel build is therefore deterministic and
  // serializes byte-identically to the sequential one.
  std::vector<std::string> unique;
  unique.reserve(terms.size());
  {
    std::unordered_set<std::string> seen;
    for (const std::string& term : terms) {
      if (seen.insert(term).second) unique.push_back(term);
    }
  }

  ObjectRankEngine engine(graph);
  std::vector<TermBuildResult> results(unique.size());
  const int threads =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options.build_threads),
          std::max<size_t>(1, unique.size())));
  if (threads <= 1) {
    for (size_t i = 0; i < unique.size(); ++i) {
      results[i] = RankOneTerm(engine, corpus, rates, unique[i], options);
    }
  } else {
    ThreadPool pool(static_cast<size_t>(threads));
    pool.ParallelFor(unique.size(), [&](size_t i) {
      results[i] = RankOneTerm(engine, corpus, rates, unique[i], options);
    });
  }

  for (size_t i = 0; i < unique.size(); ++i) {
    if (!results[i].built) continue;
    Entry entry;
    entry.mass = results[i].mass;
    entry.scores = std::move(results[i].scores);
    cache.entries_.emplace(unique[i], std::move(entry));
  }

  if (stats != nullptr) {
    *stats = BuildStats{};
    stats->terms_requested = terms.size();
    stats->threads = threads;
    std::vector<double> durations;
    durations.reserve(results.size());
    for (const TermBuildResult& r : results) {
      if (!r.built) continue;
      ++stats->terms_built;
      stats->total_iterations += r.iterations;
      if (!r.converged) ++stats->terms_not_converged;
      durations.push_back(r.seconds);
    }
    stats->terms_skipped = stats->terms_requested - stats->terms_built;
    std::sort(durations.begin(), durations.end());
    stats->term_seconds_p50 = SortedPercentile(durations, 0.50);
    stats->term_seconds_p95 = SortedPercentile(durations, 0.95);
    stats->wall_seconds = wall_timer.ElapsedSeconds();
  }
  return cache;
}

StatusOr<RankCache> RankCache::FromParts(
    size_t num_nodes, uint64_t rates_fingerprint,
    const text::Bm25Params& bm25, std::span<const char> term_heap,
    std::span<const uint64_t> term_offsets, std::span<const double> masses,
    std::span<const float> scores, std::shared_ptr<const void> keepalive) {
  return FromParts(num_nodes, rates_fingerprint, bm25, term_heap,
                   term_offsets, masses, scores, CompressedParts{},
                   std::move(keepalive));
}

StatusOr<RankCache> RankCache::FromParts(
    size_t num_nodes, uint64_t rates_fingerprint,
    const text::Bm25Params& bm25, std::span<const char> term_heap,
    std::span<const uint64_t> term_offsets, std::span<const double> masses,
    std::span<const float> scores, const CompressedParts& compressed,
    std::shared_ptr<const void> keepalive) {
  if (term_offsets.empty() || term_offsets.size() - 1 != masses.size()) {
    return DataLossError("rank cache section shapes are inconsistent");
  }
  const size_t num_terms = masses.size();
  if (term_offsets.front() != 0 || term_offsets.back() != term_heap.size()) {
    return DataLossError("rank cache term offsets do not cover the heap");
  }
  const bool has_kinds = !compressed.kinds.empty();
  if (has_kinds && compressed.kinds.size() != num_terms) {
    return DataLossError("rank cache kinds section is not one per term");
  }
  size_t num_compressed = 0;
  for (const uint8_t kind : compressed.kinds) {
    if (kind > 1) {
      return DataLossError("unknown rank cache entry kind " +
                           std::to_string(kind));
    }
    num_compressed += kind;
  }
  if (compressed.descs.size() != num_compressed) {
    return DataLossError("rank cache compressed descriptor count mismatch");
  }
  const size_t num_dense = num_terms - num_compressed;
  if (scores.size() != num_dense * num_nodes) {
    return DataLossError("rank cache score matrix is not dense-terms x nodes");
  }
  // Node-id bounds are a *shallow* obligation: Query() scatters through
  // these arrays, so an accepted cache must never index out of range.
  for (const uint32_t v : compressed.head_nodes) {
    if (v >= num_nodes) {
      return DataLossError("compressed head node id out of range");
    }
  }
  for (const uint32_t v : compressed.tail_nodes) {
    if (v >= num_nodes) {
      return DataLossError("compressed tail node id out of range");
    }
  }
  if (compressed.head_scores.size() != compressed.head_nodes.size() ||
      compressed.tail_quants.size() != compressed.tail_nodes.size()) {
    return DataLossError("compressed node/value array lengths disagree");
  }
  RankCache cache;
  cache.num_nodes_ = num_nodes;
  cache.rates_fingerprint_ = rates_fingerprint;
  cache.bm25_ = bm25;
  cache.entries_.reserve(num_terms);
  size_t dense_index = 0;
  size_t desc_index = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    if (term_offsets[t] > term_offsets[t + 1]) {
      return DataLossError("rank cache term offsets are not monotonic");
    }
    std::string term(term_heap.data() + term_offsets[t],
                     static_cast<size_t>(term_offsets[t + 1] -
                                         term_offsets[t]));
    if (term.empty()) {
      return DataLossError("empty rank cache term at index " +
                           std::to_string(t));
    }
    Entry entry;
    entry.mass = masses[t];
    if (!has_kinds || compressed.kinds[t] == 0) {
      entry.scores = ArrayRef<float>::Borrowed(
          scores.subspan(dense_index * num_nodes, num_nodes), keepalive);
      ++dense_index;
    } else {
      const PackedCompressedDesc& desc = compressed.descs[desc_index++];
      if (desc.head_offset > compressed.head_nodes.size() ||
          desc.head_count >
              compressed.head_nodes.size() - desc.head_offset ||
          desc.tail_offset > compressed.tail_nodes.size() ||
          desc.tail_count >
              compressed.tail_nodes.size() - desc.tail_offset) {
        return DataLossError("compressed descriptor range out of bounds");
      }
      entry.compressed = true;
      entry.head_nodes = ArrayRef<uint32_t>::Borrowed(
          compressed.head_nodes.subspan(desc.head_offset, desc.head_count),
          keepalive);
      entry.head_scores = ArrayRef<float>::Borrowed(
          compressed.head_scores.subspan(desc.head_offset, desc.head_count),
          keepalive);
      entry.tail_nodes = ArrayRef<uint32_t>::Borrowed(
          compressed.tail_nodes.subspan(desc.tail_offset, desc.tail_count),
          keepalive);
      entry.tail_quants = ArrayRef<uint16_t>::Borrowed(
          compressed.tail_quants.subspan(desc.tail_offset, desc.tail_count),
          keepalive);
      entry.tail_scale = desc.tail_scale;
      entry.drop_bound = desc.drop_bound;
      entry.dropped_mass = desc.dropped_mass;
    }
    if (!cache.entries_.emplace(std::move(term), std::move(entry)).second) {
      return DataLossError("duplicate rank cache term at index " +
                           std::to_string(t));
    }
  }
  return cache;
}

RankCache::PackedEntries RankCache::PackEntries() const {
  PackedEntries out;
  const std::vector<std::string> terms = Terms();
  const bool any_compressed = num_compressed_terms() > 0;
  out.offsets.reserve(terms.size() + 1);
  out.offsets.push_back(0);
  out.masses.reserve(terms.size());
  if (any_compressed) out.kinds.reserve(terms.size());
  for (const std::string& term : terms) {
    const Entry& entry = entries_.at(term);
    out.heap += term;
    out.offsets.push_back(out.heap.size());
    out.masses.push_back(entry.mass);
    if (!entry.compressed) {
      if (any_compressed) out.kinds.push_back(0);
      out.scores.insert(out.scores.end(), entry.scores.begin(),
                        entry.scores.end());
      continue;
    }
    out.kinds.push_back(1);
    PackedCompressedDesc desc;
    desc.head_offset = out.head_nodes.size();
    desc.tail_offset = out.tail_nodes.size();
    desc.head_count = static_cast<uint32_t>(entry.head_nodes.size());
    desc.tail_count = static_cast<uint32_t>(entry.tail_nodes.size());
    desc.tail_scale = entry.tail_scale;
    desc.drop_bound = entry.drop_bound;
    desc.dropped_mass = entry.dropped_mass;
    out.descs.push_back(desc);
    out.head_nodes.insert(out.head_nodes.end(), entry.head_nodes.begin(),
                          entry.head_nodes.end());
    out.head_scores.insert(out.head_scores.end(), entry.head_scores.begin(),
                           entry.head_scores.end());
    out.tail_nodes.insert(out.tail_nodes.end(), entry.tail_nodes.begin(),
                          entry.tail_nodes.end());
    out.tail_quants.insert(out.tail_quants.end(), entry.tail_quants.begin(),
                           entry.tail_quants.end());
  }
  return out;
}

std::vector<std::string> RankCache::Terms() const {
  std::vector<std::string> terms;
  terms.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

bool RankCache::TermTouchesRegion(const std::string& term,
                                  std::span<const uint8_t> dirty) const {
  auto it = entries_.find(term);
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  if (entry.compressed) {
    // Reuse-after-mutation is a proof, and a compressed entry with
    // dropped mass cannot prove a dirty node scored zero — the node may
    // sit in the drop tier with a small positive score. Be conservative:
    // any dirty node at all forces a refresh then; otherwise check the
    // stored nodes (quantized tail values are positive by construction).
    bool any_dirty = false;
    for (const uint8_t flag : dirty) {
      if (flag != 0) {
        any_dirty = true;
        break;
      }
    }
    if (!any_dirty) return false;
    if (entry.dropped_mass > 0.0 || entry.drop_bound > 0.0) return true;
    for (size_t i = 0; i < entry.head_nodes.size(); ++i) {
      const uint32_t v = entry.head_nodes[i];
      if (v < dirty.size() && dirty[v] != 0 && entry.head_scores[i] > 0.0f) {
        return true;
      }
    }
    for (const uint32_t v : entry.tail_nodes) {
      if (v < dirty.size() && dirty[v] != 0) return true;
    }
    return false;
  }
  const std::span<const float> scores = entry.scores;
  const size_t n = std::min(scores.size(), dirty.size());
  for (size_t v = 0; v < n; ++v) {
    if (dirty[v] != 0 && scores[v] > 0.0f) return true;
  }
  return false;
}

RankCache RankCache::IncrementalBuild(
    const RankCache& previous, const graph::AuthorityGraph& graph,
    const text::Corpus& corpus, const graph::TransferRates& rates,
    const std::vector<std::string>& terms,
    std::span<const uint8_t> dirty_nodes, bool stats_changed,
    const IncrementalOptions& incremental_options, IncrementalStats* stats) {
  const Options options = SanitizeOptions(incremental_options.options);
  Timer wall_timer;
  IncrementalStats local;
  IncrementalStats* out = stats != nullptr ? stats : &local;
  *out = IncrementalStats{};

  size_t num_dirty = 0;
  for (uint8_t flag : dirty_nodes) num_dirty += flag != 0 ? 1 : 0;
  const double dirty_fraction =
      graph.num_nodes() == 0
          ? 0.0
          : static_cast<double>(num_dirty) /
                static_cast<double>(graph.num_nodes());

  // The previous cache only speaks for this build's vector space when the
  // rates and Okapi parameters match; a node count that shrank cannot
  // happen under detach-style removal and means the caches are unrelated.
  const bool compatible = previous.rates_fingerprint_ == rates.Fingerprint() &&
                          previous.MatchesBm25(options.bm25) &&
                          previous.num_nodes_ <= graph.num_nodes();
  if (!compatible ||
      dirty_fraction > incremental_options.full_rebuild_threshold) {
    RankCache cold =
        BuildForTerms(graph, corpus, rates, terms, options, &out->build);
    out->full_rebuild = true;
    out->terms_refreshed = cold.entries_.size();
    out->build.wall_seconds = wall_timer.ElapsedSeconds();
    return cold;
  }

  // Unique terms in first-appearance order — the same determinism
  // discipline as BuildForTerms: workers write disjoint slots, the merge
  // walks them in this fixed order.
  std::vector<std::string> unique;
  unique.reserve(terms.size());
  {
    std::unordered_set<std::string> seen;
    for (const std::string& term : terms) {
      if (seen.insert(term).second) unique.push_back(term);
    }
  }

  // Classify: a term is clean iff the corpus statistics held still, it is
  // cached, the node count did not change (new nodes carry new text, so
  // equality is implied by !stats_changed — kept as a guard), and its
  // cached flow never scores positive on the dirty region.
  const bool reusable =
      !stats_changed && previous.num_nodes_ == graph.num_nodes();
  std::vector<uint8_t> dirty_term(unique.size(), 1);
  if (reusable) {
    for (size_t i = 0; i < unique.size(); ++i) {
      const bool cached = previous.Contains(unique[i]);
      dirty_term[i] = static_cast<uint8_t>(
          !cached || previous.TermTouchesRegion(unique[i], dirty_nodes));
    }
  }

  RankCache cache;
  cache.num_nodes_ = graph.num_nodes();
  cache.rates_fingerprint_ = rates.Fingerprint();
  cache.bm25_ = options.bm25;

  std::vector<size_t> work;
  for (size_t i = 0; i < unique.size(); ++i) {
    if (dirty_term[i] != 0) work.push_back(i);
  }

  ObjectRankEngine engine(graph);
  std::vector<TermBuildResult> results(unique.size());
  const auto refresh_one = [&](size_t w) {
    const size_t i = work[w];
    std::vector<double> warm;
    const std::vector<double>* warm_ptr = nullptr;
    auto prev_it = previous.entries_.find(unique[i]);
    if (prev_it != previous.entries_.end()) {
      // Compressed previous entries materialize densely for the warm
      // start (dropped scores seed as 0 — still far closer to the new
      // fixpoint than the base set is).
      const std::vector<float> prev_scores =
          previous.DenseScores(prev_it->second);
      warm.assign(prev_scores.begin(), prev_scores.end());
      warm.resize(graph.num_nodes(), 0.0);
      warm_ptr = &warm;
    }
    results[i] = RankOneTerm(engine, corpus, rates, unique[i], options,
                             warm_ptr);
  };
  const int threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(options.build_threads),
                       std::max<size_t>(1, work.size())));
  if (threads <= 1) {
    for (size_t w = 0; w < work.size(); ++w) refresh_one(w);
  } else {
    ThreadPool pool(static_cast<size_t>(threads));
    pool.ParallelFor(work.size(), refresh_one);
  }

  std::vector<double> durations;
  durations.reserve(work.size());
  for (size_t i = 0; i < unique.size(); ++i) {
    if (dirty_term[i] == 0) {
      cache.entries_.emplace(unique[i], previous.entries_.at(unique[i]));
      ++out->terms_reused;
      continue;
    }
    TermBuildResult& r = results[i];
    if (!r.built) continue;
    Entry entry;
    entry.mass = r.mass;
    entry.scores = std::move(r.scores);
    cache.entries_.emplace(unique[i], std::move(entry));
    ++out->terms_refreshed;
    ++out->build.terms_built;
    out->build.total_iterations += r.iterations;
    if (!r.converged) ++out->build.terms_not_converged;
    durations.push_back(r.seconds);
  }
  out->build.terms_requested = terms.size();
  out->build.terms_skipped = out->build.terms_requested -
                             out->build.terms_built - out->terms_reused;
  out->build.threads = threads;
  std::sort(durations.begin(), durations.end());
  out->build.term_seconds_p50 = SortedPercentile(durations, 0.50);
  out->build.term_seconds_p95 = SortedPercentile(durations, 0.95);
  out->build.wall_seconds = wall_timer.ElapsedSeconds();
  return cache;
}

size_t RankCache::EntryPayloadBytes(const Entry& entry) {
  if (!entry.compressed) return entry.scores.size() * sizeof(float);
  return entry.head_nodes.size() * (sizeof(uint32_t) + sizeof(float)) +
         entry.tail_nodes.size() * (sizeof(uint32_t) + sizeof(uint16_t)) +
         3 * sizeof(double);
}

std::vector<float> RankCache::DenseScores(const Entry& entry) const {
  if (!entry.compressed) {
    return std::vector<float>(entry.scores.begin(), entry.scores.end());
  }
  std::vector<float> dense(num_nodes_, 0.0f);
  for (size_t i = 0; i < entry.head_nodes.size(); ++i) {
    dense[entry.head_nodes[i]] = entry.head_scores[i];
  }
  for (size_t i = 0; i < entry.tail_nodes.size(); ++i) {
    dense[entry.tail_nodes[i]] = static_cast<float>(
        static_cast<double>(entry.tail_quants[i]) * entry.tail_scale);
  }
  return dense;
}

std::string RankCache::CompressionStats::ToString() const {
  const double ratio =
      bytes_after == 0 ? 0.0 : static_cast<double>(bytes_before) /
                                   static_cast<double>(bytes_after);
  return "compressed " + std::to_string(terms_compressed) + " terms (" +
         std::to_string(terms_dense) + " dense), " +
         std::to_string(bytes_before) + " -> " + std::to_string(bytes_after) +
         " bytes (" + FormatDouble(ratio, 1) + "x), max epsilon " +
         FormatDouble(max_epsilon, 8);
}

RankCache::CompressionStats RankCache::Compress(
    const CompressionOptions& options) {
  CompressionStats stats;
  for (auto& [term, entry] : entries_) {
    stats.bytes_before += EntryPayloadBytes(entry);
    if (entry.compressed) {
      ++stats.terms_compressed;
      stats.max_epsilon = std::max(stats.max_epsilon, entry.epsilon());
      stats.bytes_after += EntryPayloadBytes(entry);
      continue;
    }
    const std::span<const float> dense = entry.scores;

    // Candidates kept out of the drop tier: the head (largest scores,
    // wherever they sit) plus every other node above the threshold.
    std::vector<uint32_t> order;
    order.reserve(dense.size() / 16);
    for (uint32_t v = 0; v < dense.size(); ++v) {
      if (dense[v] > 0.0f) order.push_back(v);
    }
    // Score-descending, id-ascending on ties: deterministic, and the
    // head comes out already in its stored order.
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (dense[a] != dense[b]) return dense[a] > dense[b];
      return a < b;
    });

    const size_t head_count = std::min(options.head, order.size());
    std::vector<uint32_t> tail;
    double drop_bound = 0.0;
    double dropped_mass = 0.0;
    double tail_max = 0.0;
    for (size_t i = head_count; i < order.size(); ++i) {
      const double s = static_cast<double>(dense[order[i]]);
      if (s >= options.drop_threshold) {
        tail.push_back(order[i]);
        tail_max = std::max(tail_max, s);
      } else {
        drop_bound = std::max(drop_bound, s);
        dropped_mass += s;
      }
    }
    const double tail_scale = tail_max / 65535.0;

    std::vector<uint32_t> tail_nodes;
    std::vector<uint16_t> tail_quants;
    tail_nodes.reserve(tail.size());
    tail_quants.reserve(tail.size());
    std::sort(tail.begin(), tail.end());
    for (const uint32_t v : tail) {
      const double s = static_cast<double>(dense[v]);
      // Floor quantization keeps the stored value <= the dense one; a
      // quant of 0 stores nothing, so the node moves to the drop tier
      // (its score is < tail_scale, already covered by the bound).
      const uint16_t q = static_cast<uint16_t>(std::min(
          65535.0, tail_scale > 0.0 ? std::floor(s / tail_scale) : 0.0));
      if (q == 0) {
        drop_bound = std::max(drop_bound, s);
        dropped_mass += s;
        continue;
      }
      tail_nodes.push_back(v);
      tail_quants.push_back(q);
    }

    const size_t compressed_bytes =
        head_count * (sizeof(uint32_t) + sizeof(float)) +
        tail_nodes.size() * (sizeof(uint32_t) + sizeof(uint16_t)) +
        3 * sizeof(double);
    const size_t dense_bytes = dense.size() * sizeof(float);
    if (static_cast<double>(compressed_bytes) * options.min_ratio >
        static_cast<double>(dense_bytes)) {
      ++stats.terms_dense;
      stats.bytes_after += dense_bytes;
      continue;
    }

    std::vector<uint32_t> head_nodes(order.begin(),
                                     order.begin() + head_count);
    std::vector<float> head_scores;
    head_scores.reserve(head_count);
    for (const uint32_t v : head_nodes) head_scores.push_back(dense[v]);

    entry.scores = std::vector<float>{};
    entry.compressed = true;
    entry.head_nodes = std::move(head_nodes);
    entry.head_scores = std::move(head_scores);
    entry.tail_nodes = std::move(tail_nodes);
    entry.tail_quants = std::move(tail_quants);
    entry.tail_scale = tail_scale;
    entry.drop_bound = drop_bound;
    entry.dropped_mass = dropped_mass;
    ++stats.terms_compressed;
    stats.max_epsilon = std::max(stats.max_epsilon, entry.epsilon());
    stats.bytes_after += compressed_bytes;
  }
  return stats;
}

size_t RankCache::num_compressed_terms() const {
  size_t count = 0;
  for (const auto& [term, entry] : entries_) count += entry.compressed;
  return count;
}

StatusOr<RankCache::QueryResult> RankCache::Query(
    const text::QueryVector& query) const {
  if (query.empty()) {
    return InvalidArgumentError("empty query vector");
  }
  // Combination coefficients c_t = qf(w_t) * Z_t, normalized.
  struct Part {
    const Entry* entry;
    double coefficient;
  };
  std::vector<Part> parts;
  QueryResult result;
  double total = 0.0;
  size_t cached_terms = 0;
  for (size_t i = 0; i < query.size(); ++i) {
    auto it = entries_.find(query.terms()[i]);
    if (it == entries_.end()) {
      result.missing_terms.push_back(query.terms()[i]);
      continue;
    }
    ++cached_terms;
    const double coefficient =
        text::QueryTermFactor(query.weights()[i], bm25_) * it->second.mass;
    if (coefficient <= 0.0) {
      // A cached term whose coefficient is not positive (zero or negative
      // query weight, or a massless entry) cannot contribute to the
      // convex combination; report it as missing so callers do not
      // mistake the partial combination for the exact answer.
      result.missing_terms.push_back(query.terms()[i]);
      continue;
    }
    parts.push_back(Part{&it->second, coefficient});
    total += coefficient;
  }
  if (parts.empty() || total <= 0.0) {
    return NotFoundError(cached_terms == 0
                             ? "no query term is cached"
                             : "no cached query term has a positive "
                               "combination coefficient");
  }

  result.scores.assign(num_nodes_, 0.0);
  for (const Part& part : parts) {
    const double c = part.coefficient / total;
    const Entry& entry = *part.entry;
    if (!entry.compressed) {
      const std::span<const float> r = entry.scores;
      ORX_CHECK_EQ(r.size(), num_nodes_);
      for (size_t v = 0; v < num_nodes_; ++v) {
        result.scores[v] += c * static_cast<double>(r[v]);
      }
      continue;
    }
    // Compressed entries scatter only their stored nodes — the sparse
    // upside of the representation — and surrender their per-term error
    // bound, scaled by the same normalized coefficient as the scores.
    for (size_t i = 0; i < entry.head_nodes.size(); ++i) {
      result.scores[entry.head_nodes[i]] +=
          c * static_cast<double>(entry.head_scores[i]);
    }
    for (size_t i = 0; i < entry.tail_nodes.size(); ++i) {
      result.scores[entry.tail_nodes[i]] +=
          c * static_cast<double>(entry.tail_quants[i]) * entry.tail_scale;
    }
    result.error_bound += c * entry.epsilon();
    ++result.compressed_terms;
  }
  return result;
}

namespace {

constexpr char kCacheMagic[4] = {'O', 'R', 'X', 'C'};
/// Version 2: dense float vectors only. Version 3 adds a per-entry kind
/// byte and the compressed head+tail representation; Serialize writes 2
/// whenever no entry is compressed, so all-dense caches stay
/// byte-identical to pre-compression builds and old readers still load
/// them.
constexpr uint32_t kCacheVersion = 2;
constexpr uint32_t kCacheVersionCompressed = 3;
constexpr uint64_t kCacheSanityLimit = 1ull << 27;
// A term is a normalized keyword; anything beyond this is corruption.
constexpr uint64_t kTermLimit = 1ull << 16;

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

void PutDouble(std::ostream& out, double v) {
  static_assert(sizeof(double) == 8);
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

template <typename T>
void PutPodArray(std::ostream& out, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

/// Reads `count` raw little-endian PODs, growing in bounded chunks so a
/// truncated stream fails early instead of committing count * sizeof(T)
/// bytes up front on the corrupt file's say-so (same discipline as
/// ByteReader::ReadFloatArray).
template <typename T>
Status ReadPodArray(ByteReader& reader, std::vector<T>* out, size_t count,
                    const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr size_t kChunk = 1 << 16;
  out->clear();
  while (out->size() < count) {
    const size_t n = std::min(kChunk, count - out->size());
    const size_t old = out->size();
    out->resize(old + n);
    ORX_RETURN_IF_ERROR(reader.ReadBytes(
        reinterpret_cast<char*>(out->data() + old), n * sizeof(T), what));
  }
  return Status::OK();
}

}  // namespace

Status RankCache::Serialize(std::ostream& out) const {
  const bool compressed = num_compressed_terms() > 0;
  out.write(kCacheMagic, 4);
  PutU32(out, compressed ? kCacheVersionCompressed : kCacheVersion);
  PutU32(out, static_cast<uint32_t>(num_nodes_));
  PutU32(out, static_cast<uint32_t>(rates_fingerprint_ & 0xFFFFFFFFull));
  PutU32(out, static_cast<uint32_t>(rates_fingerprint_ >> 32));
  PutDouble(out, bm25_.k1);
  PutDouble(out, bm25_.b);
  PutDouble(out, bm25_.k3);
  PutU32(out, static_cast<uint32_t>(entries_.size()));
  // Deterministic order: sorted terms.
  std::vector<const std::string*> terms;
  terms.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) terms.push_back(&term);
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* term : terms) {
    const Entry& entry = entries_.at(*term);
    // Deserialize reads exactly num_nodes_ floats per dense entry;
    // writing a vector of any other length would silently shift every
    // subsequent entry in the stream.
    if (!entry.compressed && entry.scores.size() != num_nodes_) {
      return InternalError(
          "rank cache entry '" + *term + "' has " +
          std::to_string(entry.scores.size()) + " scores, expected " +
          std::to_string(num_nodes_));
    }
    PutU32(out, static_cast<uint32_t>(term->size()));
    out.write(term->data(), static_cast<std::streamsize>(term->size()));
    if (compressed) {
      const char kind = entry.compressed ? 1 : 0;
      out.write(&kind, 1);
    }
    PutDouble(out, entry.mass);
    if (!entry.compressed) {
      out.write(reinterpret_cast<const char*>(entry.scores.data()),
                static_cast<std::streamsize>(entry.scores.size() *
                                             sizeof(float)));
      continue;
    }
    PutU32(out, static_cast<uint32_t>(entry.head_nodes.size()));
    PutU32(out, static_cast<uint32_t>(entry.tail_nodes.size()));
    PutDouble(out, entry.tail_scale);
    PutDouble(out, entry.drop_bound);
    PutDouble(out, entry.dropped_mass);
    PutPodArray<uint32_t>(out, entry.head_nodes);
    PutPodArray<float>(out, entry.head_scores);
    PutPodArray<uint32_t>(out, entry.tail_nodes);
    PutPodArray<uint16_t>(out, entry.tail_quants);
  }
  if (!out) return InternalError("rank cache write failed");
  return Status::OK();
}

StatusOr<RankCache> RankCache::Deserialize(std::istream& in) {
  ByteReader reader(in);
  char magic[4];
  ORX_RETURN_IF_ERROR(reader.ReadBytes(magic, 4, "rank cache magic"));
  if (std::memcmp(magic, kCacheMagic, 4) != 0) {
    return DataLossError("not an ORX rank cache (bad magic)");
  }
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&version, "rank cache version"));
  if (version != kCacheVersion && version != kCacheVersionCompressed) {
    return DataLossError("unsupported rank cache version " +
                         std::to_string(version));
  }
  const bool has_kinds = version == kCacheVersionCompressed;
  RankCache cache;
  uint32_t num_nodes = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_nodes, "rank cache node count"));
  if (num_nodes > kCacheSanityLimit) {
    return DataLossError("implausible rank cache node count " +
                         std::to_string(num_nodes) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  cache.num_nodes_ = num_nodes;
  uint32_t fp_lo = 0, fp_hi = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&fp_lo, "rates fingerprint"));
  ORX_RETURN_IF_ERROR(reader.ReadU32(&fp_hi, "rates fingerprint"));
  cache.rates_fingerprint_ = (static_cast<uint64_t>(fp_hi) << 32) | fp_lo;
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.k1, "BM25 k1"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.b, "BM25 b"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.k3, "BM25 k3"));
  uint32_t num_entries = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_entries, "rank cache entry count"));
  if (num_entries > kCacheSanityLimit) {
    return DataLossError("implausible rank cache entry count " +
                         std::to_string(num_entries) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  for (uint32_t i = 0; i < num_entries; ++i) {
    std::string term;
    ORX_RETURN_IF_ERROR(reader.ReadString(&term, kTermLimit, "term"));
    if (term.empty()) {
      // Serialize never writes one (terms come from the tokenizer, which
      // drops empties), and an empty key would shadow real lookups.
      return DataLossError("empty rank cache term at byte " +
                           std::to_string(reader.offset() - 4));
    }
    char kind = 0;
    if (has_kinds) {
      ORX_RETURN_IF_ERROR(reader.ReadBytes(&kind, 1, "entry kind"));
      if (kind != 0 && kind != 1) {
        return DataLossError("unknown rank cache entry kind " +
                             std::to_string(static_cast<int>(kind)) +
                             " at byte " + std::to_string(reader.offset() - 1));
      }
    }
    Entry entry;
    ORX_RETURN_IF_ERROR(reader.ReadDouble(&entry.mass, "entry mass"));
    if (kind == 0) {
      // ReadFloatArray grows the vector chunk-by-chunk, so a truncated
      // stream fails early instead of committing num_nodes * 4 bytes up
      // front on the corrupt file's say-so.
      std::vector<float> scores;
      ORX_RETURN_IF_ERROR(
          reader.ReadFloatArray(&scores, num_nodes, "score vector"));
      entry.scores = std::move(scores);
    } else {
      uint32_t head_count = 0, tail_count = 0;
      ORX_RETURN_IF_ERROR(reader.ReadU32(&head_count, "head count"));
      ORX_RETURN_IF_ERROR(reader.ReadU32(&tail_count, "tail count"));
      // A compressed entry cannot store more nodes than the cache has;
      // anything larger is corruption, caught before any allocation.
      if (head_count > num_nodes || tail_count > num_nodes) {
        return DataLossError("compressed entry claims more nodes than the "
                             "cache holds, at byte " +
                             std::to_string(reader.offset() - 8));
      }
      ORX_RETURN_IF_ERROR(reader.ReadDouble(&entry.tail_scale, "tail scale"));
      ORX_RETURN_IF_ERROR(reader.ReadDouble(&entry.drop_bound, "drop bound"));
      ORX_RETURN_IF_ERROR(
          reader.ReadDouble(&entry.dropped_mass, "dropped mass"));
      std::vector<uint32_t> head_nodes;
      std::vector<float> head_scores;
      std::vector<uint32_t> tail_nodes;
      std::vector<uint16_t> tail_quants;
      ORX_RETURN_IF_ERROR(
          ReadPodArray(reader, &head_nodes, head_count, "head nodes"));
      ORX_RETURN_IF_ERROR(
          reader.ReadFloatArray(&head_scores, head_count, "head scores"));
      ORX_RETURN_IF_ERROR(
          ReadPodArray(reader, &tail_nodes, tail_count, "tail nodes"));
      ORX_RETURN_IF_ERROR(
          ReadPodArray(reader, &tail_quants, tail_count, "tail quants"));
      // Node-id bounds are checked at load time because Query scatters
      // straight through these arrays (same shallow obligation as
      // FromParts).
      for (const uint32_t v : head_nodes) {
        if (v >= num_nodes) {
          return DataLossError("compressed head node id out of range at "
                               "byte " + std::to_string(reader.offset()));
        }
      }
      for (const uint32_t v : tail_nodes) {
        if (v >= num_nodes) {
          return DataLossError("compressed tail node id out of range at "
                               "byte " + std::to_string(reader.offset()));
        }
      }
      entry.compressed = true;
      entry.head_nodes = std::move(head_nodes);
      entry.head_scores = std::move(head_scores);
      entry.tail_nodes = std::move(tail_nodes);
      entry.tail_quants = std::move(tail_quants);
    }
    if (!cache.entries_.emplace(std::move(term), std::move(entry)).second) {
      return DataLossError("duplicate rank cache term at byte " +
                           std::to_string(reader.offset()));
    }
  }
  return cache;
}

Status RankCache::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  ORX_RETURN_IF_ERROR(Serialize(out));
  out.flush();
  if (!out) return InternalError("flush failed: " + path);
  return Status::OK();
}

StatusOr<RankCache> RankCache::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open rank cache: " + path);
  return Deserialize(in);
}

Status RankCache::ValidateInvariants() const {
  for (const auto& [term, entry] : entries_) {
    if (term.empty()) {
      return InternalError("invariant violation: rank cache holds an entry "
                           "with an empty term");
    }
    if (!std::isfinite(entry.mass) || entry.mass < 0.0) {
      return InternalError("invariant violation: term '" + term +
                           "' has mass " + std::to_string(entry.mass));
    }
    if (!entry.compressed) {
      if (entry.scores.size() != num_nodes_) {
        return InternalError(
            "invariant violation: term '" + term + "' has " +
            std::to_string(entry.scores.size()) + " scores, want num_nodes " +
            std::to_string(num_nodes_));
      }
      for (size_t v = 0; v < entry.scores.size(); ++v) {
        const float s = entry.scores[v];
        if (!std::isfinite(s) || s < 0.0f) {
          return InternalError("invariant violation: term '" + term +
                               "' has score " + std::to_string(s) +
                               " at node " + std::to_string(v));
        }
      }
      continue;
    }
    // Compressed-entry invariants: the value-level checks FromParts and
    // Deserialize deliberately defer. Violating any of them breaks the
    // one-sided error accounting Query's error_bound relies on.
    if (!entry.scores.empty()) {
      return InternalError("invariant violation: compressed term '" + term +
                           "' still carries a dense score vector");
    }
    if (entry.head_nodes.size() != entry.head_scores.size() ||
        entry.tail_nodes.size() != entry.tail_quants.size()) {
      return InternalError("invariant violation: compressed term '" + term +
                           "' has mismatched node/value array lengths");
    }
    float prev_score = std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < entry.head_nodes.size(); ++i) {
      const uint32_t v = entry.head_nodes[i];
      const float s = entry.head_scores[i];
      if (v >= num_nodes_) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' head node " + std::to_string(v) +
                             " out of range");
      }
      if (!std::isfinite(s) || s < 0.0f) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' has head score " + std::to_string(s));
      }
      // The head is the top of the score distribution: descending, so
      // the drop_bound/tail_scale epsilons really do dominate everything
      // below it.
      if (s > prev_score) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' head scores are not descending");
      }
      prev_score = s;
    }
    uint32_t prev_node = 0;
    for (size_t i = 0; i < entry.tail_nodes.size(); ++i) {
      const uint32_t v = entry.tail_nodes[i];
      if (v >= num_nodes_) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' tail node " + std::to_string(v) +
                             " out of range");
      }
      if (i > 0 && v <= prev_node) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' tail nodes are not strictly ascending");
      }
      prev_node = v;
      if (entry.tail_quants[i] == 0) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' stores a zero tail quant at node " +
                             std::to_string(v));
      }
    }
    // Head and tail must be disjoint: a node stored twice would
    // double-count in Query's scatter.
    {
      std::unordered_set<uint32_t> head_set(entry.head_nodes.begin(),
                                            entry.head_nodes.end());
      if (head_set.size() != entry.head_nodes.size()) {
        return InternalError("invariant violation: compressed term '" + term +
                             "' repeats a head node");
      }
      for (const uint32_t v : entry.tail_nodes) {
        if (head_set.count(v) != 0) {
          return InternalError("invariant violation: compressed term '" +
                               term + "' stores node " + std::to_string(v) +
                               " in both head and tail");
        }
      }
    }
    if (!std::isfinite(entry.tail_scale) || entry.tail_scale < 0.0 ||
        (entry.tail_scale == 0.0 && !entry.tail_nodes.empty())) {
      return InternalError("invariant violation: compressed term '" + term +
                           "' has tail scale " +
                           std::to_string(entry.tail_scale) + " with " +
                           std::to_string(entry.tail_nodes.size()) +
                           " tail nodes");
    }
    if (!std::isfinite(entry.drop_bound) || entry.drop_bound < 0.0 ||
        !std::isfinite(entry.dropped_mass) || entry.dropped_mass < 0.0) {
      return InternalError("invariant violation: compressed term '" + term +
                           "' has drop bound " +
                           std::to_string(entry.drop_bound) +
                           ", dropped mass " +
                           std::to_string(entry.dropped_mass));
    }
  }
  return Status::OK();
}

size_t RankCache::MemoryFootprintBytes() const {
  size_t bytes = 0;
  for (const auto& [term, entry] : entries_) {
    bytes += term.size() + sizeof(Entry) + EntryPayloadBytes(entry);
  }
  return bytes;
}

}  // namespace orx::core
