#include "core/rank_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "common/byte_io.h"
#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/base_set.h"

namespace orx::core {
namespace {

RankCache::Options SanitizeOptions(RankCache::Options options) {
  if (options.min_df == 0) options.min_df = 1;
  if (options.build_threads <= 0) {
    options.build_threads = static_cast<int>(ThreadPool::HardwareThreads());
  }
  return options;
}

// Outcome of ranking one term on a worker: the cache entry plus the
// per-term counters the BuildStats aggregation needs.
struct TermBuildResult {
  bool built = false;
  double mass = 0.0;
  std::vector<float> scores;
  int iterations = 0;
  bool converged = true;
  double seconds = 0.0;
};

// Ranks one term: its IR-weighted base set (idf * tf-factor per posting,
// normalized) pushed through the power iteration. Pure function of its
// inputs — safe to run concurrently for distinct output slots.
TermBuildResult RankOneTerm(const ObjectRankEngine& engine,
                            const text::Corpus& corpus,
                            const graph::TransferRates& rates,
                            const std::string& term,
                            const RankCache::Options& options,
                            const std::vector<double>* warm_start = nullptr) {
  TermBuildResult result;
  Timer timer;
  // The term's unnormalized IR scores: a single-term query vector with
  // weight 1 has query factor 1, so ScoreBaseSet yields idf * tf-factor
  // per matching document.
  text::QueryVector unit;
  unit.SetWeight(term, 1.0);
  auto scored = text::ScoreBaseSet(corpus, unit, options.bm25);
  if (scored.empty()) return result;

  double mass = 0.0;
  for (const auto& [doc, score] : scored) mass += score;
  BaseSet base;
  if (mass > 0.0) {
    base.entries.reserve(scored.size());
    for (const auto& [doc, score] : scored) {
      base.entries.emplace_back(doc, score / mass);
    }
  } else {
    // Degenerate all-zero IR scores: uniform, mass = |postings| so the
    // combination still weights the term by its spread.
    mass = static_cast<double>(scored.size());
    const double w = 1.0 / static_cast<double>(scored.size());
    for (const auto& [doc, score] : scored) {
      base.entries.emplace_back(doc, w);
    }
  }

  ObjectRankResult rank =
      engine.Compute(base, rates, options.objectrank, warm_start);
  result.built = true;
  result.mass = mass;
  result.scores.assign(rank.scores.begin(), rank.scores.end());
  result.iterations = rank.iterations;
  result.converged = rank.converged;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

// Percentile over an ascending-sorted sample (nearest-rank); 0 if empty.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * static_cast<double>(
                                              sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::string RankCache::BuildStats::ToString() const {
  std::string out;
  out += "built " + std::to_string(terms_built) + "/" +
         std::to_string(terms_requested) + " terms (" +
         std::to_string(terms_skipped) + " skipped) in " +
         FormatDouble(wall_seconds, 2) + "s on " + std::to_string(threads) +
         (threads == 1 ? " thread" : " threads") + "; " +
         std::to_string(total_iterations) + " power iterations";
  if (terms_not_converged > 0) {
    out += " (" + std::to_string(terms_not_converged) + " not converged)";
  }
  out += ", per-term p50 " + FormatDouble(term_seconds_p50 * 1e3, 1) +
         "ms / p95 " + FormatDouble(term_seconds_p95 * 1e3, 1) + "ms";
  return out;
}

RankCache RankCache::Build(const graph::AuthorityGraph& graph,
                           const text::Corpus& corpus,
                           const graph::TransferRates& rates,
                           const Options& options, BuildStats* stats) {
  // Eligible terms, most frequent first, capped at max_terms.
  std::vector<text::TermId> terms;
  for (text::TermId t = 0; t < corpus.vocab_size(); ++t) {
    if (corpus.Df(t) >= std::max<uint32_t>(1, options.min_df)) {
      terms.push_back(t);
    }
  }
  std::sort(terms.begin(), terms.end(), [&](text::TermId a, text::TermId b) {
    if (corpus.Df(a) != corpus.Df(b)) return corpus.Df(a) > corpus.Df(b);
    return a < b;
  });
  if (terms.size() > options.max_terms) terms.resize(options.max_terms);

  std::vector<std::string> term_strings;
  term_strings.reserve(terms.size());
  for (text::TermId t : terms) term_strings.push_back(corpus.TermString(t));
  return BuildForTerms(graph, corpus, rates, term_strings, options, stats);
}

RankCache RankCache::BuildForTerms(const graph::AuthorityGraph& graph,
                                   const text::Corpus& corpus,
                                   const graph::TransferRates& rates,
                                   const std::vector<std::string>& terms,
                                   const Options& raw_options,
                                   BuildStats* stats) {
  const Options options = SanitizeOptions(raw_options);
  Timer wall_timer;
  RankCache cache;
  cache.num_nodes_ = graph.num_nodes();
  cache.rates_fingerprint_ = rates.Fingerprint();
  cache.bm25_ = options.bm25;

  // Unique terms in first-appearance order. Every worker writes only its
  // own slot of `results`, and the merge below walks the slots in this
  // fixed order — the parallel build is therefore deterministic and
  // serializes byte-identically to the sequential one.
  std::vector<std::string> unique;
  unique.reserve(terms.size());
  {
    std::unordered_set<std::string> seen;
    for (const std::string& term : terms) {
      if (seen.insert(term).second) unique.push_back(term);
    }
  }

  ObjectRankEngine engine(graph);
  std::vector<TermBuildResult> results(unique.size());
  const int threads =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options.build_threads),
          std::max<size_t>(1, unique.size())));
  if (threads <= 1) {
    for (size_t i = 0; i < unique.size(); ++i) {
      results[i] = RankOneTerm(engine, corpus, rates, unique[i], options);
    }
  } else {
    ThreadPool pool(static_cast<size_t>(threads));
    pool.ParallelFor(unique.size(), [&](size_t i) {
      results[i] = RankOneTerm(engine, corpus, rates, unique[i], options);
    });
  }

  for (size_t i = 0; i < unique.size(); ++i) {
    if (!results[i].built) continue;
    Entry entry;
    entry.mass = results[i].mass;
    entry.scores = std::move(results[i].scores);
    cache.entries_.emplace(unique[i], std::move(entry));
  }

  if (stats != nullptr) {
    *stats = BuildStats{};
    stats->terms_requested = terms.size();
    stats->threads = threads;
    std::vector<double> durations;
    durations.reserve(results.size());
    for (const TermBuildResult& r : results) {
      if (!r.built) continue;
      ++stats->terms_built;
      stats->total_iterations += r.iterations;
      if (!r.converged) ++stats->terms_not_converged;
      durations.push_back(r.seconds);
    }
    stats->terms_skipped = stats->terms_requested - stats->terms_built;
    std::sort(durations.begin(), durations.end());
    stats->term_seconds_p50 = SortedPercentile(durations, 0.50);
    stats->term_seconds_p95 = SortedPercentile(durations, 0.95);
    stats->wall_seconds = wall_timer.ElapsedSeconds();
  }
  return cache;
}

StatusOr<RankCache> RankCache::FromParts(
    size_t num_nodes, uint64_t rates_fingerprint,
    const text::Bm25Params& bm25, std::span<const char> term_heap,
    std::span<const uint64_t> term_offsets, std::span<const double> masses,
    std::span<const float> scores, std::shared_ptr<const void> keepalive) {
  if (term_offsets.empty() || term_offsets.size() - 1 != masses.size()) {
    return DataLossError("rank cache section shapes are inconsistent");
  }
  const size_t num_terms = masses.size();
  if (term_offsets.front() != 0 || term_offsets.back() != term_heap.size()) {
    return DataLossError("rank cache term offsets do not cover the heap");
  }
  if (scores.size() != num_terms * num_nodes) {
    return DataLossError("rank cache score matrix is not terms x nodes");
  }
  RankCache cache;
  cache.num_nodes_ = num_nodes;
  cache.rates_fingerprint_ = rates_fingerprint;
  cache.bm25_ = bm25;
  cache.entries_.reserve(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    if (term_offsets[t] > term_offsets[t + 1]) {
      return DataLossError("rank cache term offsets are not monotonic");
    }
    std::string term(term_heap.data() + term_offsets[t],
                     static_cast<size_t>(term_offsets[t + 1] -
                                         term_offsets[t]));
    if (term.empty()) {
      return DataLossError("empty rank cache term at index " +
                           std::to_string(t));
    }
    Entry entry;
    entry.mass = masses[t];
    entry.scores = ArrayRef<float>::Borrowed(
        scores.subspan(t * num_nodes, num_nodes), keepalive);
    if (!cache.entries_.emplace(std::move(term), std::move(entry)).second) {
      return DataLossError("duplicate rank cache term at index " +
                           std::to_string(t));
    }
  }
  return cache;
}

RankCache::PackedEntries RankCache::PackEntries() const {
  PackedEntries out;
  const std::vector<std::string> terms = Terms();
  out.offsets.reserve(terms.size() + 1);
  out.offsets.push_back(0);
  out.masses.reserve(terms.size());
  out.scores.reserve(terms.size() * num_nodes_);
  for (const std::string& term : terms) {
    const Entry& entry = entries_.at(term);
    out.heap += term;
    out.offsets.push_back(out.heap.size());
    out.masses.push_back(entry.mass);
    out.scores.insert(out.scores.end(), entry.scores.begin(),
                      entry.scores.end());
  }
  return out;
}

std::vector<std::string> RankCache::Terms() const {
  std::vector<std::string> terms;
  terms.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

bool RankCache::TermTouchesRegion(const std::string& term,
                                  std::span<const uint8_t> dirty) const {
  auto it = entries_.find(term);
  if (it == entries_.end()) return false;
  const std::span<const float> scores = it->second.scores;
  const size_t n = std::min(scores.size(), dirty.size());
  for (size_t v = 0; v < n; ++v) {
    if (dirty[v] != 0 && scores[v] > 0.0f) return true;
  }
  return false;
}

RankCache RankCache::IncrementalBuild(
    const RankCache& previous, const graph::AuthorityGraph& graph,
    const text::Corpus& corpus, const graph::TransferRates& rates,
    const std::vector<std::string>& terms,
    std::span<const uint8_t> dirty_nodes, bool stats_changed,
    const IncrementalOptions& incremental_options, IncrementalStats* stats) {
  const Options options = SanitizeOptions(incremental_options.options);
  Timer wall_timer;
  IncrementalStats local;
  IncrementalStats* out = stats != nullptr ? stats : &local;
  *out = IncrementalStats{};

  size_t num_dirty = 0;
  for (uint8_t flag : dirty_nodes) num_dirty += flag != 0 ? 1 : 0;
  const double dirty_fraction =
      graph.num_nodes() == 0
          ? 0.0
          : static_cast<double>(num_dirty) /
                static_cast<double>(graph.num_nodes());

  // The previous cache only speaks for this build's vector space when the
  // rates and Okapi parameters match; a node count that shrank cannot
  // happen under detach-style removal and means the caches are unrelated.
  const bool compatible = previous.rates_fingerprint_ == rates.Fingerprint() &&
                          previous.MatchesBm25(options.bm25) &&
                          previous.num_nodes_ <= graph.num_nodes();
  if (!compatible ||
      dirty_fraction > incremental_options.full_rebuild_threshold) {
    RankCache cold =
        BuildForTerms(graph, corpus, rates, terms, options, &out->build);
    out->full_rebuild = true;
    out->terms_refreshed = cold.entries_.size();
    out->build.wall_seconds = wall_timer.ElapsedSeconds();
    return cold;
  }

  // Unique terms in first-appearance order — the same determinism
  // discipline as BuildForTerms: workers write disjoint slots, the merge
  // walks them in this fixed order.
  std::vector<std::string> unique;
  unique.reserve(terms.size());
  {
    std::unordered_set<std::string> seen;
    for (const std::string& term : terms) {
      if (seen.insert(term).second) unique.push_back(term);
    }
  }

  // Classify: a term is clean iff the corpus statistics held still, it is
  // cached, the node count did not change (new nodes carry new text, so
  // equality is implied by !stats_changed — kept as a guard), and its
  // cached flow never scores positive on the dirty region.
  const bool reusable =
      !stats_changed && previous.num_nodes_ == graph.num_nodes();
  std::vector<uint8_t> dirty_term(unique.size(), 1);
  if (reusable) {
    for (size_t i = 0; i < unique.size(); ++i) {
      const bool cached = previous.Contains(unique[i]);
      dirty_term[i] = static_cast<uint8_t>(
          !cached || previous.TermTouchesRegion(unique[i], dirty_nodes));
    }
  }

  RankCache cache;
  cache.num_nodes_ = graph.num_nodes();
  cache.rates_fingerprint_ = rates.Fingerprint();
  cache.bm25_ = options.bm25;

  std::vector<size_t> work;
  for (size_t i = 0; i < unique.size(); ++i) {
    if (dirty_term[i] != 0) work.push_back(i);
  }

  ObjectRankEngine engine(graph);
  std::vector<TermBuildResult> results(unique.size());
  const auto refresh_one = [&](size_t w) {
    const size_t i = work[w];
    std::vector<double> warm;
    const std::vector<double>* warm_ptr = nullptr;
    auto prev_it = previous.entries_.find(unique[i]);
    if (prev_it != previous.entries_.end()) {
      const std::span<const float> prev_scores = prev_it->second.scores;
      warm.assign(prev_scores.begin(), prev_scores.end());
      warm.resize(graph.num_nodes(), 0.0);
      warm_ptr = &warm;
    }
    results[i] = RankOneTerm(engine, corpus, rates, unique[i], options,
                             warm_ptr);
  };
  const int threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(options.build_threads),
                       std::max<size_t>(1, work.size())));
  if (threads <= 1) {
    for (size_t w = 0; w < work.size(); ++w) refresh_one(w);
  } else {
    ThreadPool pool(static_cast<size_t>(threads));
    pool.ParallelFor(work.size(), refresh_one);
  }

  std::vector<double> durations;
  durations.reserve(work.size());
  for (size_t i = 0; i < unique.size(); ++i) {
    if (dirty_term[i] == 0) {
      cache.entries_.emplace(unique[i], previous.entries_.at(unique[i]));
      ++out->terms_reused;
      continue;
    }
    TermBuildResult& r = results[i];
    if (!r.built) continue;
    Entry entry;
    entry.mass = r.mass;
    entry.scores = std::move(r.scores);
    cache.entries_.emplace(unique[i], std::move(entry));
    ++out->terms_refreshed;
    ++out->build.terms_built;
    out->build.total_iterations += r.iterations;
    if (!r.converged) ++out->build.terms_not_converged;
    durations.push_back(r.seconds);
  }
  out->build.terms_requested = terms.size();
  out->build.terms_skipped = out->build.terms_requested -
                             out->build.terms_built - out->terms_reused;
  out->build.threads = threads;
  std::sort(durations.begin(), durations.end());
  out->build.term_seconds_p50 = SortedPercentile(durations, 0.50);
  out->build.term_seconds_p95 = SortedPercentile(durations, 0.95);
  out->build.wall_seconds = wall_timer.ElapsedSeconds();
  return cache;
}

StatusOr<RankCache::QueryResult> RankCache::Query(
    const text::QueryVector& query) const {
  if (query.empty()) {
    return InvalidArgumentError("empty query vector");
  }
  // Combination coefficients c_t = qf(w_t) * Z_t, normalized.
  struct Part {
    const Entry* entry;
    double coefficient;
  };
  std::vector<Part> parts;
  QueryResult result;
  double total = 0.0;
  size_t cached_terms = 0;
  for (size_t i = 0; i < query.size(); ++i) {
    auto it = entries_.find(query.terms()[i]);
    if (it == entries_.end()) {
      result.missing_terms.push_back(query.terms()[i]);
      continue;
    }
    ++cached_terms;
    const double coefficient =
        text::QueryTermFactor(query.weights()[i], bm25_) * it->second.mass;
    if (coefficient <= 0.0) {
      // A cached term whose coefficient is not positive (zero or negative
      // query weight, or a massless entry) cannot contribute to the
      // convex combination; report it as missing so callers do not
      // mistake the partial combination for the exact answer.
      result.missing_terms.push_back(query.terms()[i]);
      continue;
    }
    parts.push_back(Part{&it->second, coefficient});
    total += coefficient;
  }
  if (parts.empty() || total <= 0.0) {
    return NotFoundError(cached_terms == 0
                             ? "no query term is cached"
                             : "no cached query term has a positive "
                               "combination coefficient");
  }

  result.scores.assign(num_nodes_, 0.0);
  for (const Part& part : parts) {
    const double c = part.coefficient / total;
    const std::span<const float> r = part.entry->scores;
    ORX_CHECK_EQ(r.size(), num_nodes_);
    for (size_t v = 0; v < num_nodes_; ++v) {
      result.scores[v] += c * static_cast<double>(r[v]);
    }
  }
  return result;
}

namespace {

constexpr char kCacheMagic[4] = {'O', 'R', 'X', 'C'};
constexpr uint32_t kCacheVersion = 2;
constexpr uint64_t kCacheSanityLimit = 1ull << 27;
// A term is a normalized keyword; anything beyond this is corruption.
constexpr uint64_t kTermLimit = 1ull << 16;

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

void PutDouble(std::ostream& out, double v) {
  static_assert(sizeof(double) == 8);
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

}  // namespace

Status RankCache::Serialize(std::ostream& out) const {
  out.write(kCacheMagic, 4);
  PutU32(out, kCacheVersion);
  PutU32(out, static_cast<uint32_t>(num_nodes_));
  PutU32(out, static_cast<uint32_t>(rates_fingerprint_ & 0xFFFFFFFFull));
  PutU32(out, static_cast<uint32_t>(rates_fingerprint_ >> 32));
  PutDouble(out, bm25_.k1);
  PutDouble(out, bm25_.b);
  PutDouble(out, bm25_.k3);
  PutU32(out, static_cast<uint32_t>(entries_.size()));
  // Deterministic order: sorted terms.
  std::vector<const std::string*> terms;
  terms.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) terms.push_back(&term);
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* term : terms) {
    const Entry& entry = entries_.at(*term);
    // Deserialize reads exactly num_nodes_ floats per entry; writing a
    // vector of any other length would silently shift every subsequent
    // entry in the stream.
    if (entry.scores.size() != num_nodes_) {
      return InternalError(
          "rank cache entry '" + *term + "' has " +
          std::to_string(entry.scores.size()) + " scores, expected " +
          std::to_string(num_nodes_));
    }
    PutU32(out, static_cast<uint32_t>(term->size()));
    out.write(term->data(), static_cast<std::streamsize>(term->size()));
    PutDouble(out, entry.mass);
    out.write(reinterpret_cast<const char*>(entry.scores.data()),
              static_cast<std::streamsize>(entry.scores.size() *
                                           sizeof(float)));
  }
  if (!out) return InternalError("rank cache write failed");
  return Status::OK();
}

StatusOr<RankCache> RankCache::Deserialize(std::istream& in) {
  ByteReader reader(in);
  char magic[4];
  ORX_RETURN_IF_ERROR(reader.ReadBytes(magic, 4, "rank cache magic"));
  if (std::memcmp(magic, kCacheMagic, 4) != 0) {
    return DataLossError("not an ORX rank cache (bad magic)");
  }
  uint32_t version = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&version, "rank cache version"));
  if (version != kCacheVersion) {
    return DataLossError("unsupported rank cache version " +
                         std::to_string(version));
  }
  RankCache cache;
  uint32_t num_nodes = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_nodes, "rank cache node count"));
  if (num_nodes > kCacheSanityLimit) {
    return DataLossError("implausible rank cache node count " +
                         std::to_string(num_nodes) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  cache.num_nodes_ = num_nodes;
  uint32_t fp_lo = 0, fp_hi = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&fp_lo, "rates fingerprint"));
  ORX_RETURN_IF_ERROR(reader.ReadU32(&fp_hi, "rates fingerprint"));
  cache.rates_fingerprint_ = (static_cast<uint64_t>(fp_hi) << 32) | fp_lo;
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.k1, "BM25 k1"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.b, "BM25 b"));
  ORX_RETURN_IF_ERROR(reader.ReadDouble(&cache.bm25_.k3, "BM25 k3"));
  uint32_t num_entries = 0;
  ORX_RETURN_IF_ERROR(reader.ReadU32(&num_entries, "rank cache entry count"));
  if (num_entries > kCacheSanityLimit) {
    return DataLossError("implausible rank cache entry count " +
                         std::to_string(num_entries) + " at byte " +
                         std::to_string(reader.offset() - 4));
  }
  for (uint32_t i = 0; i < num_entries; ++i) {
    std::string term;
    ORX_RETURN_IF_ERROR(reader.ReadString(&term, kTermLimit, "term"));
    if (term.empty()) {
      // Serialize never writes one (terms come from the tokenizer, which
      // drops empties), and an empty key would shadow real lookups.
      return DataLossError("empty rank cache term at byte " +
                           std::to_string(reader.offset() - 4));
    }
    Entry entry;
    ORX_RETURN_IF_ERROR(reader.ReadDouble(&entry.mass, "entry mass"));
    // ReadFloatArray grows the vector chunk-by-chunk, so a truncated
    // stream fails early instead of committing num_nodes * 4 bytes up
    // front on the corrupt file's say-so.
    std::vector<float> scores;
    ORX_RETURN_IF_ERROR(
        reader.ReadFloatArray(&scores, num_nodes, "score vector"));
    entry.scores = std::move(scores);
    if (!cache.entries_.emplace(std::move(term), std::move(entry)).second) {
      return DataLossError("duplicate rank cache term at byte " +
                           std::to_string(reader.offset()));
    }
  }
  return cache;
}

Status RankCache::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return NotFoundError("cannot open for writing: " + path);
  ORX_RETURN_IF_ERROR(Serialize(out));
  out.flush();
  if (!out) return InternalError("flush failed: " + path);
  return Status::OK();
}

StatusOr<RankCache> RankCache::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open rank cache: " + path);
  return Deserialize(in);
}

Status RankCache::ValidateInvariants() const {
  for (const auto& [term, entry] : entries_) {
    if (term.empty()) {
      return InternalError("invariant violation: rank cache holds an entry "
                           "with an empty term");
    }
    if (!std::isfinite(entry.mass) || entry.mass < 0.0) {
      return InternalError("invariant violation: term '" + term +
                           "' has mass " + std::to_string(entry.mass));
    }
    if (entry.scores.size() != num_nodes_) {
      return InternalError(
          "invariant violation: term '" + term + "' has " +
          std::to_string(entry.scores.size()) + " scores, want num_nodes " +
          std::to_string(num_nodes_));
    }
    for (size_t v = 0; v < entry.scores.size(); ++v) {
      const float s = entry.scores[v];
      if (!std::isfinite(s) || s < 0.0f) {
        return InternalError("invariant violation: term '" + term +
                             "' has score " + std::to_string(s) +
                             " at node " + std::to_string(v));
      }
    }
  }
  return Status::OK();
}

size_t RankCache::MemoryFootprintBytes() const {
  size_t bytes = 0;
  for (const auto& [term, entry] : entries_) {
    bytes += term.size() + sizeof(Entry) +
             entry.scores.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace orx::core
