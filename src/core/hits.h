#ifndef ORX_CORE_HITS_H_
#define ORX_CORE_HITS_H_

#include <vector>

#include "common/status.h"
#include "core/base_set.h"
#include "graph/data_graph.h"

namespace orx::core {

/// Parameters of the HITS computation.
struct HitsOptions {
  /// L1 convergence threshold on the normalized authority vector.
  double epsilon = 1e-6;
  int max_iterations = 100;
  /// The focused subgraph is the root set (the query base set) expanded
  /// by this many hops over data edges in either direction (Kleinberg
  /// expands the root set once).
  int expansion_hops = 1;
};

/// Result of a HITS run; vectors are full-graph sized (zero outside the
/// focused subgraph) and L1-normalized over it.
struct HitsResult {
  std::vector<double> authorities;
  std::vector<double> hubs;
  int iterations = 0;
  bool converged = false;
  size_t subgraph_size = 0;
};

/// Kleinberg's HITS [Kle99], one of the link-based baselines the paper's
/// related work discusses: mutually reinforcing hub/authority scores on
/// the query's focused subgraph (root set = base set, expanded by one
/// hop). Unlike ObjectRank it ignores edge types, schema semantics and
/// keyword weighting beyond the root-set choice — which is exactly the
/// gap the paper's system fills; the baselines benchmark quantifies it.
///
/// Operates on the *data* edges (each u -> v counts once, untyped).
/// Errors: kInvalidArgument on an empty base set.
StatusOr<HitsResult> ComputeHits(const graph::DataGraph& data,
                                 const BaseSet& base,
                                 const HitsOptions& options = {});

}  // namespace orx::core

#endif  // ORX_CORE_HITS_H_
