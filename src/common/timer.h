#ifndef ORX_COMMON_TIMER_H_
#define ORX_COMMON_TIMER_H_

#include <chrono>

namespace orx {

/// Wall-clock stopwatch used by the benchmark harness to time the stages
/// of a query/reformulation iteration (Figures 14-17).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace orx

#endif  // ORX_COMMON_TIMER_H_
