#ifndef ORX_COMMON_STRINGS_H_
#define ORX_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace orx {

/// Splits `text` on any occurrence of `sep`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Splits `text` on whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Returns `text` lowercased (ASCII only; the datasets are ASCII).
std::string AsciiLower(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double with `digits` significant decimal places (printf "%.*f").
std::string FormatDouble(double value, int digits);

/// Thread-safe strerror: the message for `errno_value` as a string.
/// std::strerror may return a pointer into shared static storage
/// (clang-tidy concurrency-mt-unsafe); this wraps strerror_r instead.
std::string ErrnoString(int errno_value);

}  // namespace orx

#endif  // ORX_COMMON_STRINGS_H_
