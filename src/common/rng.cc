#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace orx {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  ORX_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ORX_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one value per call keeps the generator stateless apart
  // from the xoshiro state.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= UniformDouble();
  } while (p > limit);
  return k - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace orx
