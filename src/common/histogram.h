#ifndef ORX_COMMON_HISTOGRAM_H_
#define ORX_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace orx {

/// A fixed-bucket log-spaced latency histogram for concurrent recording on
/// the serving hot path. Record() is lock-free (a relaxed fetch_add on the
/// bucket plus a striped accumulator update — stripes keep concurrent
/// recorders off each other's cache lines, so there is no global CAS to
/// spin on under contention); Percentile() walks a racy-but-monotone
/// snapshot of the bucket counters, which is exact once recording threads
/// quiesce and off by at most the in-flight samples while they don't —
/// fine for operational metrics, not for billing.
///
/// Buckets cover [100 ns, ~350 s) with ~10 buckets per decade; samples
/// outside the range clamp into the first/last bucket. A percentile is
/// reported as the geometric midpoint of its bucket, clamped to the
/// recorded sample min/max, so the error is bounded by the bucket ratio
/// (~25%) *within* the recorded range: a degenerate distribution (all
/// samples equal) reports that exact value, samples below the first
/// bucket bound never inflate to the bucket midpoint, and the unbounded
/// overflow bucket reports the recorded max instead of a meaningless
/// midpoint.
///
/// Deliberately capability-free under the thread-safety analysis
/// (common/mutex.h): every field is a std::atomic and the documented
/// raciness of Percentile() is the design, so there is no mutex to name
/// in an ORX_GUARDED_BY.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 96;

  LatencyHistogram();

  /// Adds one sample. Thread-safe, lock-free. Non-finite or negative
  /// samples count as 0 (first bucket).
  void Record(double seconds);

  /// Total samples recorded.
  uint64_t TotalCount() const;

  /// Sum of all recorded samples in seconds (for means).
  double TotalSeconds() const;

  /// Mean sample, or 0 with no samples. Count and sum are derived from
  /// one pass over the accumulator stripes (the same snapshot
  /// discipline Percentile() applies to the buckets), so the mean is
  /// never computed from a count and a sum taken at visibly different
  /// times.
  double MeanSeconds() const;

  /// Smallest / largest recorded sample; 0 with no samples.
  double MinSeconds() const;
  double MaxSeconds() const;

  /// The p-th percentile (p in [0, 100]): the geometric midpoint of the
  /// bucket holding that rank, clamped to [MinSeconds(), MaxSeconds()]
  /// (the overflow bucket reports MaxSeconds()); 0 with no samples.
  double Percentile(double p) const;

  /// Resets every counter to zero. Not atomic with concurrent Record()
  /// calls; callers quiesce recording first.
  void Reset();

  /// "p50=1.2ms p95=8.4ms p99=20.1ms mean=2.3ms n=1234" for diagnostics.
  std::string ToString() const;

  /// Lower bound in seconds of bucket i (exposed for tests).
  static double BucketLowerBound(size_t i);

 private:
  /// Accumulator stripes: each recording thread owns (round-robin) one
  /// cache-line-sized stripe, so the per-sample count/sum updates of
  /// different threads never contend on one atomic. Readers sum over
  /// stripes.
  static constexpr size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count;
    /// Maintained with a CAS loop (atomic<double>::fetch_add is C++20
    /// but not yet universal across the toolchains we build on); the
    /// striping keeps the loop effectively contention-free.
    std::atomic<double> sum;
  };

  static size_t BucketIndex(double seconds);
  static size_t StripeIndex();

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::array<Stripe, kStripes> stripes_;
  /// Recorded sample range (min starts at +inf, max at 0); used to clamp
  /// percentile estimates to values that were actually observed.
  std::atomic<double> min_seconds_;
  std::atomic<double> max_seconds_;
};

}  // namespace orx

#endif  // ORX_COMMON_HISTOGRAM_H_
