#ifndef ORX_COMMON_HISTOGRAM_H_
#define ORX_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace orx {

/// A fixed-bucket log-spaced latency histogram for concurrent recording on
/// the serving hot path. Record() is lock-free (one relaxed fetch_add per
/// sample); Percentile() walks a racy-but-monotone snapshot of the bucket
/// counters, which is exact once recording threads quiesce and off by at
/// most the in-flight samples while they don't — fine for operational
/// metrics, not for billing.
///
/// Buckets cover [100 ns, ~350 s) with ~10 buckets per decade; samples
/// outside the range clamp into the first/last bucket. A percentile is
/// reported as the geometric midpoint of its bucket, so the error is
/// bounded by the bucket ratio (~25%), independent of the sample count.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 96;

  LatencyHistogram();

  /// Adds one sample. Thread-safe, lock-free.
  void Record(double seconds);

  /// Total samples recorded.
  uint64_t TotalCount() const;

  /// Sum of all recorded samples in seconds (for means).
  double TotalSeconds() const;

  /// Mean sample, or 0 with no samples.
  double MeanSeconds() const;

  /// The p-th percentile (p in [0, 100]) as the geometric midpoint of the
  /// bucket holding that rank; 0 with no samples.
  double Percentile(double p) const;

  /// Resets every counter to zero. Not atomic with concurrent Record()
  /// calls; callers quiesce recording first.
  void Reset();

  /// "p50=1.2ms p95=8.4ms p99=20.1ms mean=2.3ms n=1234" for diagnostics.
  std::string ToString() const;

  /// Lower bound in seconds of bucket i (exposed for tests).
  static double BucketLowerBound(size_t i);

 private:
  static size_t BucketIndex(double seconds);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  /// Sum maintained with a CAS loop (atomic<double>::fetch_add is C++20
  /// but not yet universal across the toolchains we build on).
  std::atomic<double> sum_seconds_;
};

}  // namespace orx

#endif  // ORX_COMMON_HISTOGRAM_H_
