#include "common/byte_io.h"

#include <algorithm>
#include <cstring>

namespace orx {
namespace {

// Elements appended per growth step of a length-prefixed read. Bounds
// the allocation a corrupt length field can force before the stream
// runs out of bytes: one chunk, not the full claimed length.
constexpr size_t kChunkElements = size_t{1} << 16;

}  // namespace

Status ByteReader::Truncated(const char* what) const {
  return DataLossError("truncated " + std::string(what) + " at byte " +
                       std::to_string(offset_));
}

Status ByteReader::ReadBytes(char* out, size_t n, const char* what) {
  if (n == 0) return Status::OK();
  if (!in_.read(out, static_cast<std::streamsize>(n))) {
    // gcount() bytes arrived before EOF; they are consumed either way.
    offset_ += static_cast<uint64_t>(in_.gcount());
    return Truncated(what);
  }
  offset_ += n;
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* v, const char* what) {
  char buf[4];
  ORX_RETURN_IF_ERROR(ReadBytes(buf, 4, what));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* v, const char* what) {
  char buf[8];
  ORX_RETURN_IF_ERROR(ReadBytes(buf, 8, what));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return Status::OK();
}

Status ByteReader::ReadDouble(double* v, const char* what) {
  static_assert(sizeof(double) == 8);
  char buf[8];
  ORX_RETURN_IF_ERROR(ReadBytes(buf, 8, what));
  std::memcpy(v, buf, 8);
  return Status::OK();
}

Status ByteReader::ReadString(std::string* s, uint64_t limit,
                              const char* what) {
  uint32_t len = 0;
  ORX_RETURN_IF_ERROR(ReadU32(&len, what));
  if (len > limit) {
    return DataLossError("implausible " + std::string(what) + " length " +
                         std::to_string(len) + " at byte " +
                         std::to_string(offset_ - 4));
  }
  s->clear();
  size_t remaining = len;
  while (remaining > 0) {
    const size_t step = std::min(remaining, kChunkElements);
    const size_t old_size = s->size();
    s->resize(old_size + step);
    ORX_RETURN_IF_ERROR(ReadBytes(s->data() + old_size, step, what));
    remaining -= step;
  }
  return Status::OK();
}

Status ByteReader::ReadFloatArray(std::vector<float>* out, size_t count,
                                  const char* what) {
  static_assert(sizeof(float) == 4);
  out->clear();
  size_t remaining = count;
  while (remaining > 0) {
    const size_t step = std::min(remaining, kChunkElements);
    const size_t old_size = out->size();
    out->resize(old_size + step);
    ORX_RETURN_IF_ERROR(ReadBytes(
        reinterpret_cast<char*>(out->data() + old_size), step * sizeof(float),
        what));
    remaining -= step;
  }
  return Status::OK();
}

}  // namespace orx
