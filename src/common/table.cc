#include "common/table.h"

#include <algorithm>

#include "common/check.h"

namespace orx {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ORX_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ORX_CHECK_MSG(row.size() == header_.size(),
                "row arity must match the header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace orx
