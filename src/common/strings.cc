#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace orx {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string ErrnoString(int errno_value) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // glibc default: GNU strerror_r returns the message pointer (which may
  // be `buf` or a static immutable string) and never fails.
  return std::string(strerror_r(errno_value, buf, sizeof(buf)));
#else
  // XSI strerror_r fills `buf` and returns 0 on success.
  if (strerror_r(errno_value, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", errno_value);
  }
  return std::string(buf);
#endif
}

}  // namespace orx
