#include "common/numa.h"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <thread>

namespace orx {
namespace {

// Reads one line from a sysfs file; "" if unreadable.
std::string ReadSysfsLine(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::string line;
  std::getline(in, line);
  return line;
}

NumaTopology DetectTopology() {
  NumaTopology topo;
  // Probe node0, node1, ... until the first gap; sysfs node ids are
  // dense for online nodes.
  for (int node = 0;; ++node) {
    const std::string list = ReadSysfsLine("/sys/devices/system/node/node" +
                                           std::to_string(node) + "/cpulist");
    if (list.empty()) break;
    std::vector<int> cpus = ParseCpuList(list);
    if (cpus.empty()) break;
    topo.node_cpus.push_back(std::move(cpus));
  }
  if (topo.node_cpus.empty()) {
    // UMA fallback: one node holding every hardware thread.
    const int n = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    std::vector<int> cpus(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) cpus[static_cast<size_t>(i)] = i;
    topo.node_cpus.push_back(std::move(cpus));
  }
  return topo;
}

}  // namespace

size_t NumaTopology::num_cpus() const {
  size_t total = 0;
  for (const auto& cpus : node_cpus) total += cpus.size();
  return total;
}

int NumaTopology::NodeOfCpu(int cpu) const {
  for (size_t n = 0; n < node_cpus.size(); ++n) {
    if (std::binary_search(node_cpus[n].begin(), node_cpus[n].end(), cpu)) {
      return static_cast<int>(n);
    }
  }
  return 0;
}

std::string NumaTopology::ToString() const {
  std::ostringstream out;
  out << node_cpus.size() << " node(s):";
  for (size_t n = 0; n < node_cpus.size(); ++n) {
    out << " node" << n << "[" << node_cpus[n].size() << " cpus]";
  }
  return out.str();
}

std::vector<int> ParseCpuList(std::string_view list) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view item = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t dash = item.find('-');
    int lo = -1, hi = -1;
    if (dash == std::string_view::npos) {
      auto [p, ec] = std::from_chars(item.data(), item.data() + item.size(),
                                     lo);
      if (ec != std::errc() || p != item.data() + item.size()) continue;
      hi = lo;
    } else {
      const std::string_view a = item.substr(0, dash);
      const std::string_view b = item.substr(dash + 1);
      auto [pa, ea] = std::from_chars(a.data(), a.data() + a.size(), lo);
      auto [pb, eb] = std::from_chars(b.data(), b.data() + b.size(), hi);
      if (ea != std::errc() || eb != std::errc() ||
          pa != a.data() + a.size() || pb != b.data() + b.size()) {
        continue;
      }
    }
    if (lo < 0 || hi < lo || hi - lo > 4095) continue;  // sanity bound
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

const NumaTopology& Topology() {
  static const NumaTopology& topo = *new NumaTopology(DetectTopology());
  return topo;
}

int NodeForWorker(size_t worker, size_t num_workers,
                  const NumaTopology& topology) {
  const size_t nodes = std::max<size_t>(1, topology.num_nodes());
  if (num_workers == 0) return 0;
  // Contiguous blocks, remainder spread over the leading nodes: with 10
  // workers on 4 nodes the blocks are 3,3,2,2 — worker order stays
  // node-major so partition t and worker t touch the same socket.
  const size_t base = num_workers / nodes;
  const size_t extra = num_workers % nodes;
  const size_t boundary = extra * (base + 1);
  size_t node;
  if (worker < boundary) {
    node = worker / (base + 1);
  } else if (base == 0) {
    node = worker % nodes;  // more nodes than workers: round-robin
  } else {
    node = extra + (worker - boundary) / base;
  }
  return static_cast<int>(std::min(node, nodes - 1));
}

bool PinCurrentThreadToNode(int node) {
  const NumaTopology& topo = Topology();
  if (topo.num_nodes() <= 1) return false;
  if (node < 0 || static_cast<size_t>(node) >= topo.num_nodes()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : topo.node_cpus[static_cast<size_t>(node)]) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

std::shared_ptr<void> AllocateFirstTouch(size_t bytes) {
  constexpr size_t kAlign = 64;
  void* raw = ::operator new(bytes, std::align_val_t(kAlign));
  std::shared_ptr<void> owner(raw, [](void* p) {
    ::operator delete(p, std::align_val_t(kAlign));
  });
  const NumaTopology& topo = Topology();
  const size_t nodes = topo.num_nodes();
  if (nodes <= 1 || bytes < (size_t{1} << 20)) {
    std::memset(raw, 0, bytes);
    return owner;
  }
  // One toucher per node, each zeroing its contiguous node-major block —
  // the physical pages land on the node that will stream them. Blocks
  // split at page boundaries so two nodes never share a page.
  const size_t page = 4096;
  const size_t pages = (bytes + page - 1) / page;
  std::vector<std::thread> touchers;
  touchers.reserve(nodes);
  char* base = static_cast<char*>(raw);
  for (size_t n = 0; n < nodes; ++n) {
    const size_t lo = pages * n / nodes * page;
    const size_t hi = std::min(bytes, pages * (n + 1) / nodes * page);
    if (lo >= hi) continue;
    touchers.emplace_back([base, lo, hi, n] {
      ScopedNodeAffinity pin(static_cast<int>(n));
      std::memset(base + lo, 0, hi - lo);
    });
  }
  for (std::thread& t : touchers) t.join();
  return owner;
}

ScopedNodeAffinity::ScopedNodeAffinity(int node) {
  static_assert(sizeof(saved_mask_) >= sizeof(cpu_set_t));
  cpu_set_t saved;
  if (pthread_getaffinity_np(pthread_self(), sizeof(saved), &saved) != 0) {
    return;
  }
  if (!PinCurrentThreadToNode(node)) return;
  std::memcpy(saved_mask_, &saved, sizeof(saved));
  active_ = true;
}

ScopedNodeAffinity::~ScopedNodeAffinity() {
  if (!active_) return;
  cpu_set_t saved;
  std::memcpy(&saved, saved_mask_, sizeof(saved));
  pthread_setaffinity_np(pthread_self(), sizeof(saved), &saved);
}

}  // namespace orx
