#ifndef ORX_COMMON_LOGGING_H_
#define ORX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace orx {

/// Log severities. kInfo and above print to stderr; kDebug prints only
/// when verbose logging is enabled.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Enables/disables kDebug output process-wide (default: disabled).
void SetVerboseLogging(bool enabled);
bool VerboseLoggingEnabled();

namespace internal {

/// Stream-style log-line collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace orx

#define ORX_LOG(severity)                                        \
  ::orx::internal::LogMessage(::orx::LogSeverity::k##severity,   \
                              __FILE__, __LINE__)

#define ORX_VLOG()                                                      \
  if (::orx::VerboseLoggingEnabled())                                   \
  ::orx::internal::LogMessage(::orx::LogSeverity::kDebug, __FILE__, __LINE__)

#endif  // ORX_COMMON_LOGGING_H_
