// Annotated lock layer: orx::Mutex / orx::MutexLock / orx::CondVar.
//
// Every mutex in src/ goes through this wrapper (enforced by the
// `raw-mutex` lint rule) so that two orthogonal guarantees apply to the
// whole tree at once:
//
//  1. Static proof under Clang. The ORX_* macros below expand to Clang
//     Thread Safety Analysis attributes; the `thread-safety` CI job
//     compiles everything with `-Wthread-safety -Wthread-safety-beta
//     -Werror`, so a field marked ORX_GUARDED_BY(mu) that is touched
//     without holding `mu` is a build break, not a TSan sample. Under
//     GCC (the default local toolchain) the macros are no-ops and the
//     wrapper costs one pointer over std::mutex.
//
//  2. Deterministic lock-order validation at runtime. Mutexes built
//     with a name enroll in a process-wide acquisition-order graph; a
//     debug build (or any build after SetLockOrderValidation(true))
//     maintains a per-thread held-lock stack and aborts, naming both
//     locks and both acquisition sites, the first time two named
//     mutexes are ever acquired in inconsistent orders — no unlucky
//     interleaving required. Self-deadlock (re-acquiring a held
//     orx::Mutex) and waiting a CondVar on a mutex the caller does not
//     hold abort for *all* mutexes, named or not.
//
// Conventions (see docs/correctness.md, "Static thread-safety
// analysis"):
//   - fields:   `int x ORX_GUARDED_BY(mu_);`
//   - helpers that expect the lock held: `void FooLocked() ORX_REQUIRES(mu_);`
//   - public entry points that take the lock: `void Foo() ORX_LOCKS_EXCLUDED(mu_);`
//   - condition waits are explicit while-loops in the annotated caller;
//     CondVar deliberately has no predicate overloads because the
//     analysis cannot see through a predicate lambda.
#ifndef ORX_COMMON_MUTEX_H_
#define ORX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- Clang Thread Safety Analysis attribute macros -------------------------
// No-ops on non-Clang compilers so GCC builds the identical tree.
#if defined(__clang__) && (!defined(SWIG))
#define ORX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ORX_THREAD_ANNOTATION(x)
#endif

#define ORX_CAPABILITY(x) ORX_THREAD_ANNOTATION(capability(x))
#define ORX_SCOPED_CAPABILITY ORX_THREAD_ANNOTATION(scoped_lockable)
#define ORX_GUARDED_BY(x) ORX_THREAD_ANNOTATION(guarded_by(x))
#define ORX_PT_GUARDED_BY(x) ORX_THREAD_ANNOTATION(pt_guarded_by(x))
#define ORX_REQUIRES(...) \
  ORX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ORX_ACQUIRE(...) \
  ORX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ORX_RELEASE(...) \
  ORX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ORX_TRY_ACQUIRE(...) \
  ORX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ORX_LOCKS_EXCLUDED(...) \
  ORX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ORX_ASSERT_CAPABILITY(x) \
  ORX_THREAD_ANNOTATION(assert_capability(x))
#define ORX_RETURN_CAPABILITY(x) ORX_THREAD_ANNOTATION(lock_returned(x))
#define ORX_NO_THREAD_SAFETY_ANALYSIS \
  ORX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace orx {

class CondVar;

// Wrapper around std::mutex carrying a Clang capability and an optional
// name. Named mutexes participate in the global acquisition-order
// graph; unnamed ones are exempt from ordering (many short-lived
// instances of one class would otherwise alias to a single graph node
// and fabricate cycles) but still get self-deadlock and wait-unheld
// checking. Name string must outlive the mutex (string literals).
class ORX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  ~Mutex();

  // The default arguments capture the *call site*, which is what the
  // lock-order validator reports on an inversion.
  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) ORX_ACQUIRE();
  void Unlock() ORX_RELEASE();
  // Records the hold (so Unlock/AssertHeld work) but deliberately adds
  // no order-graph edge: a trylock cannot participate in a deadlock.
  bool TryLock(const char* file = __builtin_FILE(),
               int line = __builtin_LINE()) ORX_TRY_ACQUIRE(true);
  // Runtime-checks (when validation is on) and statically asserts that
  // the calling thread holds this mutex. For paths the static analysis
  // cannot follow (e.g. a callback invoked from a locked region).
  void AssertHeld() const ORX_ASSERT_CAPABILITY(this);

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = nullptr;
};

// RAII lock with the scoped-capability annotation. Prefer this over
// paired Lock()/Unlock() everywhere control flow allows.
class ORX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) ORX_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(file, line);
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ORX_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

// Condition variable bound to orx::Mutex. No predicate overloads on
// purpose: the caller writes `while (!pred) cv.Wait(mu);` inside the
// locked region so the static analysis sees every read of the guarded
// predicate under its capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and reacquires before returning.
  // Aborts (validation on) if the calling thread does not hold `mu`.
  void Wait(Mutex& mu) ORX_REQUIRES(mu);
  // Returns false if `deadline` passed before a notification; the
  // mutex is reacquired either way, so the caller re-checks its
  // predicate on both outcomes.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      ORX_REQUIRES(mu);
  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// --- runtime lock-order validator ------------------------------------------
// Defaults on in builds of mutex.cc without NDEBUG (Debug / sanitizer
// configs) and off in NDEBUG builds; tests force it with
// SetLockOrderValidation(true). Toggle only while no orx::Mutex is
// held anywhere: holds taken while validation was off are invisible to
// the per-thread stacks, so enabling mid-flight can misreport.
void SetLockOrderValidation(bool enabled);
bool LockOrderValidationEnabled();

// Drops every recorded acquisition-order edge (test isolation only).
void ResetLockOrderGraphForTest();

}  // namespace orx

#endif  // ORX_COMMON_MUTEX_H_
