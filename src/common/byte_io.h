#ifndef ORX_COMMON_BYTE_IO_H_
#define ORX_COMMON_BYTE_IO_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/status.h"

namespace orx {

/// Little-endian primitive reader over an std::istream for the binary
/// (de)serializers (io/dataset_io, core/rank_cache). Two jobs beyond
/// plain stream reads, both aimed at untrusted input:
///
///  * every read tracks the byte offset consumed so far, and every error
///    is kDataLoss naming that offset — "truncated score vector at byte
///    1 032" instead of "truncated stream";
///  * length-prefixed reads (ReadString, ReadFloatArray) grow their
///    destination in bounded chunks as bytes actually arrive, so a
///    corrupt or hostile length field can never drive one huge eager
///    allocation before the stream runs dry, and the count * element-size
///    arithmetic cannot overflow.
///
/// The reader owns no state beyond the offset; interleaving it with
/// direct stream reads would desynchronize offset() and is unsupported.
class ByteReader {
 public:
  explicit ByteReader(std::istream& in) : in_(in) {}

  /// Bytes successfully consumed so far (== the offset of the next read,
  /// and the offset reported by a failing read).
  uint64_t offset() const { return offset_; }

  /// Reads exactly `n` bytes; kDataLoss("truncated <what> at byte N")
  /// otherwise.
  Status ReadBytes(char* out, size_t n, const char* what);

  Status ReadU32(uint32_t* v, const char* what);
  Status ReadU64(uint64_t* v, const char* what);
  Status ReadDouble(double* v, const char* what);

  /// Reads a u32-length-prefixed string. A length above `limit` is
  /// kDataLoss ("implausible <what> length L at byte N") — limits are
  /// per-field sanity bounds, not stream positions.
  Status ReadString(std::string* s, uint64_t limit, const char* what);

  /// Reads exactly `count` little-endian floats into `*out` (replacing
  /// its contents), growing in bounded chunks.
  Status ReadFloatArray(std::vector<float>* out, size_t count,
                        const char* what);

 private:
  Status Truncated(const char* what) const;

  std::istream& in_;
  uint64_t offset_ = 0;
};

}  // namespace orx

#endif  // ORX_COMMON_BYTE_IO_H_
