#ifndef ORX_COMMON_NUMA_H_
#define ORX_COMMON_NUMA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace orx {

/// CPU/memory topology for NUMA-aware scheduling, read once from
/// /sys/devices/system/node (no libnuma dependency). On machines without
/// that sysfs tree — or with it disabled — the topology degrades to one
/// node holding every CPU, and all the placement machinery below becomes
/// a no-op: callers never need to special-case UMA boxes.
struct NumaTopology {
  /// node_cpus[n] is the sorted list of CPU ids on NUMA node n. Always
  /// holds at least one node with at least one CPU.
  std::vector<std::vector<int>> node_cpus;

  size_t num_nodes() const { return node_cpus.size(); }
  size_t num_cpus() const;

  /// The node owning `cpu`, or 0 if the cpu is not listed.
  int NodeOfCpu(int cpu) const;

  std::string ToString() const;
};

/// Parses one sysfs cpulist ("0-3,8,10-11") into CPU ids. Malformed
/// ranges are skipped, not errors — sysfs is trusted but this keeps the
/// parser total. Exposed for tests.
std::vector<int> ParseCpuList(std::string_view list);

/// The machine's topology, detected once per process and cached.
const NumaTopology& Topology();

/// The NUMA node worker `worker` of `num_workers` should run on:
/// contiguous worker blocks per node (workers [0, k) on node 0, [k, 2k)
/// on node 1, ...), so a BalancedPartition handed out in worker order
/// keeps each partition's slice of the SELL structure on the socket that
/// first touched — and therefore owns — its pages.
int NodeForWorker(size_t worker, size_t num_workers,
                  const NumaTopology& topology);

/// Pins the calling thread to the CPUs of `node`. Returns false (and
/// changes nothing) if the node is unknown, the platform call fails, or
/// the topology has a single node (pinning would only hurt the
/// scheduler). Best-effort by design: NUMA placement is a performance
/// hint, never a correctness requirement.
bool PinCurrentThreadToNode(int node);

/// Allocates `bytes` of 64-byte-aligned storage whose pages are
/// first-touched (zeroed) in parallel from threads pinned across the
/// NUMA nodes, in the same contiguous node-major blocks NodeForWorker
/// hands to pool workers: byte range b of node n is the range worker
/// block n processes, so an edge-balanced partition streaming range b
/// reads node-local memory. On a single-node topology the buffer is
/// zeroed inline. The returned pointer owns the storage; callers wrap it
/// in ArrayRef::Borrowed with this as the keepalive.
std::shared_ptr<void> AllocateFirstTouch(size_t bytes);

/// RAII pin: pins the calling thread to `node` on construction and
/// restores the previous affinity mask on destruction. `active()` says
/// whether the pin actually took effect.
class ScopedNodeAffinity {
 public:
  explicit ScopedNodeAffinity(int node);
  ~ScopedNodeAffinity();

  ScopedNodeAffinity(const ScopedNodeAffinity&) = delete;
  ScopedNodeAffinity& operator=(const ScopedNodeAffinity&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  // Opaque saved cpu_set_t storage (avoids leaking <sched.h> here).
  alignas(8) unsigned char saved_mask_[128];
};

}  // namespace orx

#endif  // ORX_COMMON_NUMA_H_
