#ifndef ORX_COMMON_THREAD_POOL_H_
#define ORX_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace orx {

/// A fixed-size worker pool for CPU-bound fan-out: submit independent
/// tasks, then Wait() for all of them. Built for the offline index-build
/// paths (per-keyword RankCache precomputation, batched serving later) —
/// throughput over latency, no task priorities, no futures.
///
/// Tasks must not throw (the library is exception-free; a throwing task
/// aborts). Tasks may submit further tasks. Determinism is the caller's
/// job: give each task its own output slot and merge in a fixed order
/// after Wait() returns.
class ThreadPool {
 public:
  /// Runs once on each worker thread right after it starts, with the
  /// worker's index in [0, num_threads). Used for thread-affinity setup
  /// (NUMA node pinning, see common/numa.h) before any task runs.
  using WorkerStartFn = std::function<void(size_t worker_index)>;

  /// Spawns `num_threads` workers; 0 means HardwareThreads().
  explicit ThreadPool(size_t num_threads);

  /// Same, with a per-worker startup hook. The constructor does not wait
  /// for the hooks; they are ordered before any task that worker runs.
  ThreadPool(size_t num_threads, WorkerStartFn on_worker_start);

  /// Drains outstanding tasks (Wait), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task) ORX_LOCKS_EXCLUDED(mu_);

  /// Blocks until every submitted task has finished, including tasks
  /// submitted while waiting. Safe to call repeatedly; the pool is
  /// reusable afterwards.
  void Wait() ORX_LOCKS_EXCLUDED(mu_);

  /// Runs fn(i) for every i in [0, n) across the pool and waits. The
  /// assignment of indices to workers is unspecified; each index runs
  /// exactly once.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  Mutex mu_{"thread_pool.mu"};
  CondVar task_ready_;   // queue non-empty or stopping
  CondVar all_done_;     // queue empty and nothing running
  std::deque<std::function<void()>> queue_ ORX_GUARDED_BY(mu_);
  size_t in_flight_ ORX_GUARDED_BY(mu_) = 0;  // popped but not finished
  bool stop_ ORX_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace orx

#endif  // ORX_COMMON_THREAD_POOL_H_
