#ifndef ORX_COMMON_STATUS_H_
#define ORX_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace orx {

/// Error categories used across the ORX library. The library does not use
/// exceptions: fallible operations return Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kDataLoss,
  /// The operation was refused because a resource is at capacity (e.g. the
  /// serving admission queue is full); retrying later may succeed.
  kUnavailable,
  /// The operation was abandoned because its deadline expired before it
  /// completed; any partial result is discarded.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: silently dropping a Status is almost always a bug (the
/// error path vanishes); intentional drops must go through IgnoreError()
/// below, which tools/orx_lint.py recognizes, instead of a bare (void)
/// cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// message is allowed but the message is ignored by ok().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the canonical OK status.
  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Convenience factories mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

/// A value-or-error holder, modeled after absl::StatusOr. Exactly one of
/// {value, non-OK status} is present. [[nodiscard]] for the same reason
/// as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a non-OK status. Calling with an OK status is an
  /// internal error (converted to kInternal).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "StatusOr constructed with OK status but no value");
    }
  }

  /// Constructs from a value; status() is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Accessors for the held value.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Named sink for a deliberately dropped Status/StatusOr. Use when a
/// failure is genuinely ignorable (e.g. best-effort cleanup) — the call
/// reads as a decision, and tools/orx_lint.py treats it as the one
/// sanctioned way to discard an error (bare `(void)Foo()` casts of calls
/// are lint errors). Takes by const-ref so the argument still constructs
/// normally under [[nodiscard]].
template <typename S>
inline void IgnoreError(const S&) {}

}  // namespace orx

/// Propagates a non-OK Status from the current function.
#define ORX_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::orx::Status orx_status_tmp_ = (expr);      \
    if (!orx_status_tmp_.ok()) return orx_status_tmp_; \
  } while (0)

#endif  // ORX_COMMON_STATUS_H_
