#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace orx {

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(num_threads, WorkerStartFn()) {}

ThreadPool::ThreadPool(size_t num_threads, WorkerStartFn on_worker_start) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i, on_worker_start] {
      if (on_worker_start) on_worker_start(i);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_ready_.SignalAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && in_flight_ == 0)) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One sweep task per worker, all pulling from a shared counter: cheap
  // dynamic load balancing without per-index queue traffic.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t sweeps = std::min(n, num_threads());
  for (size_t t = 0; t < sweeps; ++t) {
    Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

size_t ThreadPool::HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) task_ready_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.SignalAll();
    }
  }
}

}  // namespace orx
