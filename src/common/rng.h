#ifndef ORX_COMMON_RNG_H_
#define ORX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace orx {

/// Deterministic 64-bit PRNG (xoshiro256**, seeded via SplitMix64).
///
/// All randomized components of ORX (dataset generators, simulated users)
/// take an explicit Rng so experiments are reproducible bit-for-bit given
/// the same seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). Pre: bound > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Pre: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a sample from Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  /// Returns a Poisson(lambda) sample (Knuth's method; intended for small
  /// lambda such as per-paper citation counts).
  int Poisson(double lambda);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i)));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Creates an independent child generator; used to give each dataset
  /// component its own stream so insertion order does not perturb others.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace orx

#endif  // ORX_COMMON_RNG_H_
