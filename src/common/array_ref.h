#ifndef ORX_COMMON_ARRAY_REF_H_
#define ORX_COMMON_ARRAY_REF_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace orx {

/// An array that either *owns* its elements (std::vector) or *borrows*
/// them from external storage it keeps alive (typically an mmap'd
/// container file — see io/container.h). The zero-copy snapshot path
/// threads ArrayRef through every large index structure (DataGraph
/// edges, AuthorityGraph CSR, SELL slices, fused weights, RankCache
/// score vectors): loading a dataset then aliases file-backed pages
/// instead of deserializing, while every in-memory construction path
/// keeps building plain vectors and assigning them in.
///
/// Reads branch once on the mode and are otherwise identical to a
/// vector. Mutation goes through mut(), which materializes a borrowed
/// array into an owned copy first (copy-on-write): the live-mutation
/// path (src/mutate/) can therefore edit a graph whose baseline came
/// from an mmap without ever writing to the mapping (which is
/// MAP_PRIVATE read-only).
///
/// Copying an owned ArrayRef deep-copies the vector; copying a borrowed
/// one shares the borrow (and the keepalive) — borrowed storage is
/// immutable, so sharing is safe and keeps snapshot copies cheap.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;
  /*implicit*/ ArrayRef(std::vector<T> v) : owned_(std::move(v)) {}
  ArrayRef& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    view_ = {};
    keepalive_.reset();
    borrowed_ = false;
    return *this;
  }

  /// Wraps external storage. `keepalive` owns (transitively) the memory
  /// `view` points into and is held for the life of this ArrayRef.
  static ArrayRef Borrowed(std::span<const T> view,
                           std::shared_ptr<const void> keepalive) {
    ArrayRef r;
    r.view_ = view;
    r.keepalive_ = std::move(keepalive);
    r.borrowed_ = true;
    return r;
  }

  bool borrowed() const { return borrowed_; }

  const T* data() const { return borrowed_ ? view_.data() : owned_.data(); }
  size_t size() const { return borrowed_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> span() const { return {data(), size()}; }
  /*implicit*/ operator std::span<const T>() const { return span(); }

  /// Mutable access to the elements as a vector. If the array is
  /// borrowed, the elements are copied into owned storage first and the
  /// borrow (with its keepalive) is released.
  std::vector<T>& mut() {
    if (borrowed_) {
      owned_.assign(view_.begin(), view_.end());
      view_ = {};
      keepalive_.reset();
      borrowed_ = false;
    }
    return owned_;
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  std::shared_ptr<const void> keepalive_;
  bool borrowed_ = false;
};

}  // namespace orx

#endif  // ORX_COMMON_ARRAY_REF_H_
