#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace orx {
namespace {

// 96 buckets at ~10 per decade: ratio = 10^(1/10), range
// [1e-7 s, 1e-7 * ratio^96) ≈ [100 ns, 398 s).
constexpr double kMinSeconds = 1e-7;
const double kLogRatio = std::log(10.0) / 10.0;

// Negative/NaN inputs are operational nonsense (a backwards clock); they
// must not poison the recorded min/max used for percentile clamping.
double Sanitize(double seconds) {
  return std::isfinite(seconds) && seconds > 0.0 ? seconds : 0.0;
}

}  // namespace

LatencyHistogram::LatencyHistogram() { Reset(); }

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
  min_seconds_.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
  max_seconds_.store(0.0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  const double idx = std::log(seconds / kMinSeconds) / kLogRatio;
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

size_t LatencyHistogram::StripeIndex() {
  // Round-robin stripe assignment at first use per thread: adjacent
  // threads land on different stripes regardless of the thread-id hash
  // quality.
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

double LatencyHistogram::BucketLowerBound(size_t i) {
  return kMinSeconds * std::exp(kLogRatio * static_cast<double>(i));
}

void LatencyHistogram::Record(double seconds) {
  const double sample = Sanitize(seconds);
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndex()];
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  double sum = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(sum, sum + sample,
                                           std::memory_order_relaxed)) {
  }
  double mn = min_seconds_.load(std::memory_order_relaxed);
  while (sample < mn && !min_seconds_.compare_exchange_weak(
                            mn, sample, std::memory_order_relaxed)) {
  }
  double mx = max_seconds_.load(std::memory_order_relaxed);
  while (sample > mx && !max_seconds_.compare_exchange_weak(
                            mx, sample, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t n = 0;
  for (const Stripe& s : stripes_) {
    n += s.count.load(std::memory_order_relaxed);
  }
  return n;
}

double LatencyHistogram::TotalSeconds() const {
  double sum = 0.0;
  for (const Stripe& s : stripes_) {
    sum += s.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

double LatencyHistogram::MeanSeconds() const {
  // One pass deriving count and sum together — a count from one instant
  // and a sum from a visibly later one would report a mean no sample set
  // ever had (the Percentile() snapshot discipline, applied to the
  // stripes).
  uint64_t n = 0;
  double sum = 0.0;
  for (const Stripe& s : stripes_) {
    n += s.count.load(std::memory_order_relaxed);
    sum += s.sum.load(std::memory_order_relaxed);
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double LatencyHistogram::MinSeconds() const {
  const double mn = min_seconds_.load(std::memory_order_relaxed);
  return std::isinf(mn) ? 0.0 : mn;
}

double LatencyHistogram::MaxSeconds() const {
  return max_seconds_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  // Snapshot the counters; under concurrent recording the per-bucket reads
  // are not a consistent cut, so derive the total from the snapshot itself.
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double mn = MinSeconds();
  const double mx = MaxSeconds();
  // Rank of the percentile sample, 1-based nearest-rank definition.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      if (i == kNumBuckets - 1) {
        // The overflow bucket is unbounded above; its midpoint is
        // meaningless, but the recorded max is a sample that truly
        // landed here (or below, in which case the clamp is still an
        // upper bound on the rank's sample).
        return mx;
      }
      // Geometric midpoint of [lower, lower * ratio), clamped to the
      // recorded range: the true rank-th sample can't lie outside
      // [min, max], so never report a value no request experienced.
      const double midpoint =
          BucketLowerBound(i) * std::exp(kLogRatio * 0.5);
      return std::clamp(midpoint, mn, mx);
    }
  }
  return mx;
}

std::string LatencyHistogram::ToString() const {
  auto ms = [](double seconds) { return FormatDouble(seconds * 1e3, 2); };
  return "p50=" + ms(Percentile(50)) + "ms p95=" + ms(Percentile(95)) +
         "ms p99=" + ms(Percentile(99)) + "ms mean=" + ms(MeanSeconds()) +
         "ms n=" + std::to_string(TotalCount());
}

}  // namespace orx
