#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace orx {
namespace {

// 96 buckets at ~10 per decade: ratio = 10^(1/10), range
// [1e-7 s, 1e-7 * ratio^96) ≈ [100 ns, 398 s).
constexpr double kMinSeconds = 1e-7;
const double kLogRatio = std::log(10.0) / 10.0;

}  // namespace

LatencyHistogram::LatencyHistogram() { Reset(); }

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_seconds_.store(0.0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN
  const double idx = std::log(seconds / kMinSeconds) / kLogRatio;
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double LatencyHistogram::BucketLowerBound(size_t i) {
  return kMinSeconds * std::exp(kLogRatio * static_cast<double>(i));
}

void LatencyHistogram::Record(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_seconds_.load(std::memory_order_relaxed);
  while (!sum_seconds_.compare_exchange_weak(sum, sum + seconds,
                                             std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::TotalSeconds() const {
  return sum_seconds_.load(std::memory_order_relaxed);
}

double LatencyHistogram::MeanSeconds() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : TotalSeconds() / static_cast<double>(n);
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  // Snapshot the counters; under concurrent recording the per-bucket reads
  // are not a consistent cut, so derive the total from the snapshot itself.
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Rank of the percentile sample, 1-based nearest-rank definition.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Geometric midpoint of [lower, lower * ratio).
      return BucketLowerBound(i) * std::exp(kLogRatio * 0.5);
    }
  }
  return BucketLowerBound(kNumBuckets - 1);
}

std::string LatencyHistogram::ToString() const {
  auto ms = [](double seconds) { return FormatDouble(seconds * 1e3, 2); };
  return "p50=" + ms(Percentile(50)) + "ms p95=" + ms(Percentile(95)) +
         "ms p99=" + ms(Percentile(99)) + "ms mean=" + ms(MeanSeconds()) +
         "ms n=" + std::to_string(TotalCount());
}

}  // namespace orx
