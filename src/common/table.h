#ifndef ORX_COMMON_TABLE_H_
#define ORX_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace orx {

/// Plain-text table printer used by the benchmark harness to render paper
/// tables/figure series in a shape comparable to the paper's.
///
///   TablePrinter t({"Dataset", "#nodes", "#edges"});
///   t.AddRow({"DBLPtop", "22653", "166960"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with column-aligned cells and a header rule.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace orx

#endif  // ORX_COMMON_TABLE_H_
