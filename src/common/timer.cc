#include "common/timer.h"

// Timer is header-only; this file exists so the target has a TU per header
// and to keep the build layout uniform.
