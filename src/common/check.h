#ifndef ORX_COMMON_CHECK_H_
#define ORX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

/// Invariant-checking macros. ORX_CHECK fires in all build modes; it guards
/// internal invariants whose violation indicates a bug in the library (user
/// input errors are reported via Status instead). The process aborts with a
/// source location so failures surface in tests immediately.
#define ORX_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ORX_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ORX_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ORX_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

namespace orx::check_internal {

/// Renders an operand for a failed comparison check. Anything streamable
/// prints its value; everything else prints a placeholder so the macros
/// work with operands that have no operator<<.
template <typename T, typename = void>
struct Streamable : std::false_type {};
template <typename T>
struct Streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                          << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string FormatOperand(const T& value) {
  if constexpr (Streamable<T>::value) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void CheckOpFail(const char* file, int line,
                                     const char* expr,
                                     const std::string& lhs,
                                     const std::string& rhs) {
  std::fprintf(stderr, "ORX_CHECK failed at %s:%d: %s (%s vs. %s)\n", file,
               line, expr, lhs.c_str(), rhs.c_str());
  std::abort();
}

/// Shared implementation of ORX_CHECK_OK / ORX_DCHECK_OK. Templated so
/// this header does not depend on common/status.h; any type with
/// ok() / ToString() works (Status, StatusOr<T>).
template <typename T, typename = void>
struct HasToString : std::false_type {};
template <typename T>
struct HasToString<T, std::void_t<decltype(std::declval<const T&>()
                                               .ToString())>>
    : std::true_type {};

template <typename S>
void CheckOkImpl(const S& status, const char* file, int line,
                 const char* expr) {
  if (!status.ok()) {
    std::string rendered;
    if constexpr (HasToString<S>::value) {
      rendered = status.ToString();
    } else {
      rendered = status.status().ToString();  // StatusOr<T>
    }
    std::fprintf(stderr, "ORX_CHECK_OK failed at %s:%d: %s is %s\n", file,
                 line, expr, rendered.c_str());
    std::abort();
  }
}

}  // namespace orx::check_internal

/// Comparison checks that print both operand values on failure:
///   ORX_CHECK_EQ(r.size(), num_nodes_);
///   -> "ORX_CHECK failed at f.cc:12: r.size() == num_nodes_ (3 vs. 5)"
/// Operands are evaluated exactly once.
#define ORX_CHECK_OP_(op, a, b)                                             \
  do {                                                                      \
    auto&& orx_check_a_ = (a);                                              \
    auto&& orx_check_b_ = (b);                                              \
    if (!(orx_check_a_ op orx_check_b_)) {                                  \
      ::orx::check_internal::CheckOpFail(                                   \
          __FILE__, __LINE__, #a " " #op " " #b,                            \
          ::orx::check_internal::FormatOperand(orx_check_a_),               \
          ::orx::check_internal::FormatOperand(orx_check_b_));              \
    }                                                                       \
  } while (0)

#define ORX_CHECK_EQ(a, b) ORX_CHECK_OP_(==, a, b)
#define ORX_CHECK_NE(a, b) ORX_CHECK_OP_(!=, a, b)
#define ORX_CHECK_LT(a, b) ORX_CHECK_OP_(<, a, b)
#define ORX_CHECK_LE(a, b) ORX_CHECK_OP_(<=, a, b)

/// Aborts (with the rendered Status) unless `expr` evaluates to an OK
/// Status/StatusOr. For must-not-fail internal calls whose error path
/// would otherwise be silently dropped.
#define ORX_CHECK_OK(expr)                                                  \
  ::orx::check_internal::CheckOkImpl((expr), __FILE__, __LINE__, #expr)

/// ORX_DCHECK* compile out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define ORX_DCHECK(cond) \
  do {                   \
  } while (0)
#define ORX_DCHECK_OK(expr) \
  do {                      \
  } while (0)
#else
#define ORX_DCHECK(cond) ORX_CHECK(cond)
#define ORX_DCHECK_OK(expr) ORX_CHECK_OK(expr)
#endif

#endif  // ORX_COMMON_CHECK_H_
