#ifndef ORX_COMMON_CHECK_H_
#define ORX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant-checking macros. ORX_CHECK fires in all build modes; it guards
/// internal invariants whose violation indicates a bug in the library (user
/// input errors are reported via Status instead). The process aborts with a
/// source location so failures surface in tests immediately.
#define ORX_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ORX_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ORX_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ORX_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// ORX_DCHECK compiles out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define ORX_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define ORX_DCHECK(cond) ORX_CHECK(cond)
#endif

#endif  // ORX_COMMON_CHECK_H_
