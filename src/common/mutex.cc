// Runtime lock-order validator backing orx::Mutex (see mutex.h).
//
// Design: each thread keeps a stack of currently-held mutexes with the
// file:line of each acquisition. When a *named* mutex B is acquired
// while a *named* mutex A is held, the directed edge A -> B (with both
// sites) is inserted into a process-wide order graph; if B can already
// reach A through recorded edges, the program has two call paths that
// acquire the pair in opposite orders — a deadlock waiting for the
// right interleaving — and we abort immediately, deterministically,
// naming both locks and both acquisition sites. Instance-keyed checks
// (double-acquire, unlocking or cond-waiting a mutex the thread does
// not hold, destroying a held mutex) apply to unnamed mutexes too.
//
// This file is the one sanctioned user of raw std:: synchronization in
// src/ (the validator cannot be built on the layer it validates); the
// `raw-mutex` lint rule exempts common/mutex.{h,cc} by path.
#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace orx {
namespace {

// Validation defaults to on exactly when this TU is built with
// assertions (Debug / sanitizer configs); RelWithDebInfo and Release
// define NDEBUG and pay only an atomic load per lock operation.
#ifdef NDEBUG
constexpr bool kValidateByDefault = false;
#else
constexpr bool kValidateByDefault = true;
#endif

std::atomic<bool> g_validate{kValidateByDefault};

struct Held {
  const Mutex* mu;
  const char* name;  // nullptr for unnamed mutexes
  const char* file;
  int line;
};

std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

struct EdgeSite {
  // Acquisition sites recorded the first time this edge was seen:
  // `from` was held (acquired at from_file:from_line) when `to` was
  // acquired at to_file:to_line.
  const char* from_file;
  int from_line;
  const char* to_file;
  int to_line;
};

struct OrderGraph {
  std::mutex mu;
  // name -> (successor name -> first site that recorded the edge)
  std::map<std::string, std::map<std::string, EdgeSite>> edges;
};

OrderGraph& Graph() {
  static OrderGraph* g = new OrderGraph();  // leaky: usable at exit
  return *g;
}

// DFS reachability over recorded edges. Caller holds Graph().mu.
bool Reaches(const OrderGraph& g, const std::string& from,
             const std::string& to, std::set<std::string>& visited) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  auto it = g.edges.find(from);
  if (it == g.edges.end()) return false;
  for (const auto& [next, site] : it->second) {
    (void)site;
    if (Reaches(g, next, to, visited)) return true;
  }
  return false;
}

[[noreturn]] void Die(const char* check, const std::string& detail) {
  std::fprintf(stderr, "ORX_CHECK failed: %s\n%s\n", check, detail.c_str());
  std::fflush(stderr);
  std::abort();
}

std::string SiteString(const char* file, int line) {
  return std::string(file ? file : "?") + ":" + std::to_string(line);
}

void RecordOrderEdges(const Mutex* mu, const char* name, const char* file,
                      int line) {
  if (name == nullptr) return;
  (void)mu;
  OrderGraph& g = Graph();
  for (const Held& held : HeldStack()) {
    if (held.name == nullptr) continue;
    if (std::strcmp(held.name, name) == 0) continue;  // same lock class
    std::lock_guard<std::mutex> graph_lock(g.mu);
    auto& successors = g.edges[held.name];
    if (successors.count(name)) continue;  // edge already established
    // Inserting held.name -> name: a cycle exists iff name already
    // reaches held.name through recorded edges.
    std::set<std::string> visited;
    if (Reaches(g, name, held.name, visited)) {
      const EdgeSite* prior = nullptr;
      auto rev = g.edges.find(name);
      if (rev != g.edges.end()) {
        auto re = rev->second.find(held.name);
        if (re != rev->second.end()) prior = &re->second;
      }
      std::string detail =
          "lock-order inversion: acquiring \"" + std::string(name) +
          "\" at " + SiteString(file, line) + " while holding \"" +
          held.name + "\" (acquired at " +
          SiteString(held.file, held.line) + "),\nbut the opposite order \"" +
          name + "\" before \"" + held.name + "\" was established" +
          (prior != nullptr
               ? " at " + SiteString(prior->to_file, prior->to_line) +
                     " (while \"" + name + "\" was held from " +
                     SiteString(prior->from_file, prior->from_line) + ")"
               : " by a chain of intermediate locks") +
          ".";
      Die("lock-order inversion", detail);
    }
    successors[name] = EdgeSite{held.file, held.line, file, line};
  }
}

void CheckNotHeld(const Mutex* mu, const char* name, const char* file,
                  int line) {
  for (const Held& held : HeldStack()) {
    if (held.mu == mu) {
      Die("mutex already held",
          "self-deadlock: mutex \"" + std::string(name ? name : "<unnamed>") +
              "\" re-acquired at " + SiteString(file, line) +
              " while already held by this thread (acquired at " +
              SiteString(held.file, held.line) + ").");
    }
  }
}

void PushHeld(const Mutex* mu, const char* name, const char* file, int line) {
  HeldStack().push_back(Held{mu, name, file, line});
}

// Tolerates a missing entry: the hold may predate enabling validation.
void PopHeld(const Mutex* mu) {
  std::vector<Held>& stack = HeldStack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

bool IsHeldByThisThread(const Mutex* mu) {
  for (const Held& held : HeldStack()) {
    if (held.mu == mu) return true;
  }
  return false;
}

}  // namespace

Mutex::~Mutex() {
  if (g_validate.load(std::memory_order_relaxed) &&
      IsHeldByThisThread(this)) {
    Die("mutex destroyed while held",
        "mutex \"" + std::string(name_ ? name_ : "<unnamed>") +
            "\" destroyed by a thread that still holds it.");
  }
}

void Mutex::Lock(const char* file, int line) {
  if (g_validate.load(std::memory_order_relaxed)) {
    CheckNotHeld(this, name_, file, line);
    RecordOrderEdges(this, name_, file, line);
    mu_.lock();
    PushHeld(this, name_, file, line);
    return;
  }
  mu_.lock();
}

void Mutex::Unlock() {
  if (g_validate.load(std::memory_order_relaxed)) PopHeld(this);
  mu_.unlock();
}

bool Mutex::TryLock(const char* file, int line) {
  if (!mu_.try_lock()) return false;
  // No order edge on purpose: a trylock backs off instead of blocking,
  // so it cannot close a deadlock cycle (abseil convention).
  if (g_validate.load(std::memory_order_relaxed)) {
    PushHeld(this, name_, file, line);
  }
  return true;
}

void Mutex::AssertHeld() const {
  if (g_validate.load(std::memory_order_relaxed) &&
      !IsHeldByThisThread(this)) {
    Die("AssertHeld failed",
        "mutex \"" + std::string(name_ ? name_ : "<unnamed>") +
            "\" is not held by the asserting thread.");
  }
}

void CondVar::Wait(Mutex& mu) {
  if (g_validate.load(std::memory_order_relaxed) &&
      !IsHeldByThisThread(&mu)) {
    Die("condition wait on unheld mutex",
        "CondVar::Wait called with mutex \"" +
            std::string(mu.name() ? mu.name() : "<unnamed>") +
            "\" not held by the calling thread.");
  }
  // Adopt the already-locked std::mutex for the wait, then release the
  // unique_lock's ownership claim so the orx::Mutex wrapper (which
  // still considers itself locked) retains it on return.
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  if (g_validate.load(std::memory_order_relaxed) &&
      !IsHeldByThisThread(&mu)) {
    Die("condition wait on unheld mutex",
        "CondVar::WaitUntil called with mutex \"" +
            std::string(mu.name() ? mu.name() : "<unnamed>") +
            "\" not held by the calling thread.");
  }
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status == std::cv_status::no_timeout;
}

void SetLockOrderValidation(bool enabled) {
  g_validate.store(enabled, std::memory_order_relaxed);
}

bool LockOrderValidationEnabled() {
  return g_validate.load(std::memory_order_relaxed);
}

void ResetLockOrderGraphForTest() {
  OrderGraph& g = Graph();
  std::lock_guard<std::mutex> graph_lock(g.mu);
  g.edges.clear();
}

}  // namespace orx
