#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace orx {
namespace {

std::atomic<bool> g_verbose{false};

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetVerboseLogging(bool enabled) { g_verbose.store(enabled); }
bool VerboseLoggingEnabled() { return g_verbose.load(); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Trim the path to the basename for readable logs.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ == LogSeverity::kDebug && !VerboseLoggingEnabled()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace orx
