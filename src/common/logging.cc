#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace orx {
namespace {

std::atomic<bool> g_verbose{false};

// Serializes line emission across threads. stderr is unbuffered, so a
// printf-style call may reach the kernel as several write(2)s and two
// serve workers logging at once would interleave partial lines; the lock
// plus a single fwrite of the fully formatted line keeps every line
// intact. Heap-allocated so the mutex survives static destruction order
// (logging from atexit handlers / late destructors stays safe). Named,
// so logging while holding any other named lock records an order edge;
// the emit lock is a leaf (nothing is acquired under it), so it can
// never close a cycle.
Mutex& EmitMutex() {
  static Mutex& mu = *new Mutex("logging.emit");
  return mu;
}

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetVerboseLogging(bool enabled) { g_verbose.store(enabled); }
bool VerboseLoggingEnabled() { return g_verbose.load(); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Trim the path to the basename for readable logs.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ == LogSeverity::kDebug && !VerboseLoggingEnabled()) return;
  std::string line = stream_.str();
  line.push_back('\n');
  MutexLock lock(EmitMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace orx
