#include "explain/explaining_subgraph.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace orx::explain {

LocalId ExplainingSubgraph::LocalOf(graph::NodeId global) const {
  auto it = local_of_.find(global);
  return it == local_of_.end() ? kInvalidLocalId : it->second;
}

void ExplainingSubgraph::BuildEdgeIndex() {
  const size_t n = nodes_.size();
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const ExplainEdge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_index_.resize(edges_.size());
  in_index_.resize(edges_.size());
  std::vector<uint32_t> out_cursor(out_offsets_.begin(),
                                   out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    out_index_[out_cursor[edges_[i].from]++] = i;
    in_index_[in_cursor[edges_[i].to]++] = i;
  }
}

double ExplainingSubgraph::AdjustedOutFlowSum(LocalId v) const {
  double sum = 0.0;
  for (uint32_t i : OutEdgeIndices(v)) sum += edges_[i].adjusted_flow;
  return sum;
}

double ExplainingSubgraph::AdjustedInFlowSum(LocalId v) const {
  double sum = 0.0;
  for (uint32_t i : InEdgeIndices(v)) sum += edges_[i].adjusted_flow;
  return sum;
}

std::string ExplainingSubgraph::ToString(const graph::DataGraph& data) const {
  std::string out = "ExplainingSubgraph: " + std::to_string(num_nodes()) +
                    " nodes, " + std::to_string(num_edges()) +
                    " edges; target = " +
                    data.DisplayLabel(target_global()) + "\n";
  // Render edges ordered by descending explaining flow: the paths that
  // matter most to the user come first.
  std::vector<uint32_t> order(edges_.size());
  for (uint32_t i = 0; i < edges_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return edges_[a].adjusted_flow > edges_[b].adjusted_flow;
  });
  for (uint32_t i : order) {
    const ExplainEdge& e = edges_[i];
    out += "  " + data.DisplayLabel(nodes_[e.from]) + " -> " +
           data.DisplayLabel(nodes_[e.to]) +
           "  flow=" + FormatDouble(e.adjusted_flow, 8) +
           " (original " + FormatDouble(e.original_flow, 8) + ")\n";
  }
  return out;
}

std::string ExplainingSubgraph::ToDot(const graph::DataGraph& data) const {
  auto escape = [](std::string text) {
    std::string out;
    for (char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };

  std::string dot = "digraph explaining_subgraph {\n"
                    "  rankdir=LR;\n"
                    "  node [shape=box, fontsize=10];\n";
  for (LocalId v = 0; v < num_nodes(); ++v) {
    std::string label = data.DisplayLabel(nodes_[v]);
    if (label.size() > 40) label = label.substr(0, 37) + "...";
    dot += "  n" + std::to_string(v) + " [label=\"" + escape(label) + "\"";
    if (v == target_local_) {
      dot += ", peripheries=2, style=bold";
    } else if (is_source_[v]) {
      dot += ", style=filled, fillcolor=lightgray";
    }
    dot += "];\n";
  }

  double max_flow = 0.0;
  for (const ExplainEdge& e : edges_) {
    max_flow = std::max(max_flow, e.adjusted_flow);
  }
  for (const ExplainEdge& e : edges_) {
    const double share = max_flow > 0.0 ? e.adjusted_flow / max_flow : 0.0;
    dot += "  n" + std::to_string(e.from) + " -> n" + std::to_string(e.to) +
           " [label=\"" + FormatDouble(e.adjusted_flow, 6) +
           "\", penwidth=" + FormatDouble(0.5 + 3.5 * share, 2) +
           ", fontsize=8];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace orx::explain
