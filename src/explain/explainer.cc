#include "explain/explainer.h"

#include <deque>
#include <unordered_map>

#include "common/timer.h"

namespace orx::explain {

StatusOr<Explanation> Explainer::Explain(graph::NodeId target,
                                         const core::BaseSet& base,
                                         const std::vector<double>& scores,
                                         const graph::TransferRates& rates,
                                         double damping,
                                         const ExplainOptions& options) const {
  const size_t n = graph_->num_nodes();
  if (target >= n) {
    return InvalidArgumentError("target node does not exist");
  }
  if (scores.size() != n) {
    return InvalidArgumentError(
        "score vector size does not match the graph");
  }
  if (base.empty()) {
    return InvalidArgumentError("base set is empty");
  }
  if (options.radius <= 0) {
    return InvalidArgumentError("radius must be positive");
  }

  Timer construction_timer;

  // --- Construction stage (Figure 8, steps 1-2) -------------------------
  // Radius-3 balls around popular objects can span a large fraction of the
  // graph, so the visited/depth bookkeeping uses dense per-node arrays
  // (O(n) bytes, allocated per call) instead of hash maps — this keeps the
  // construction stage far cheaper than the ObjectRank2 execution, as in
  // the paper's Figures 14-17.
  //
  // Step 1: reverse breadth-first search from the target over edges that
  // carry authority (rate > min_rate), bounded by the radius L. An in-edge
  // u -> v is "reversed" by stepping from v to u; InEdges gives exactly
  // the incoming authority edges.
  constexpr int16_t kUnvisited = -1;
  std::vector<int16_t> ball_depth(n, kUnvisited);
  ball_depth[target] = 0;
  std::deque<graph::NodeId> frontier{target};
  while (!frontier.empty()) {
    const graph::NodeId v = frontier.front();
    frontier.pop_front();
    const int16_t dv = ball_depth[v];
    if (dv >= options.radius) continue;
    for (const graph::AuthorityEdge& e : graph_->InEdges(v)) {
      const graph::NodeId u = e.target;  // the *source* of the in-edge
      if (ball_depth[u] != kUnvisited) continue;
      if (graph::AuthorityGraph::EdgeRate(e, rates) <= options.min_rate) {
        continue;
      }
      ball_depth[u] = static_cast<int16_t>(dv + 1);
      frontier.push_back(u);
    }
  }

  // Step 2: forward breadth-first search from the base-set nodes that fell
  // inside the ball, restricted to the ball, over positive-rate edges.
  std::vector<uint8_t> forward_reached(n, 0);
  std::vector<graph::NodeId> nodes;  // deterministic discovery order
  for (const auto& [s, weight] : base.entries) {
    if (ball_depth[s] == kUnvisited || forward_reached[s] != 0) continue;
    forward_reached[s] = 1;
    nodes.push_back(s);
    frontier.push_back(s);
  }
  if (nodes.empty()) {
    return NotFoundError(
        "no base-set node can reach the target within the radius");
  }
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop_front();
    for (const graph::AuthorityEdge& e : graph_->OutEdges(u)) {
      if (ball_depth[e.target] == kUnvisited ||
          forward_reached[e.target] != 0) {
        continue;
      }
      if (graph::AuthorityGraph::EdgeRate(e, rates) <= options.min_rate) {
        continue;
      }
      forward_reached[e.target] = 1;
      nodes.push_back(e.target);
      frontier.push_back(e.target);
    }
  }
  if (forward_reached[target] == 0) {
    return NotFoundError(
        "the target is not reachable from the base set within the radius");
  }

  // Edge set + original flows (Equation 5): every positive-rate authority
  // edge between included nodes. Both endpoints being included means the
  // edge lies on a base-to-target walk, so it can carry authority to the
  // target.
  struct CandidateEdge {
    graph::NodeId from, to;
    uint32_t rate_index;
    double rate;
    double original_flow;
  };
  // Pass 1: the largest candidate flow, needed for the pruning threshold
  // before any edge is stored (balls can hold millions of candidates).
  double max_flow = 0.0;
  for (const graph::NodeId u : nodes) {
    const double du_score = damping * scores[u];
    if (du_score <= max_flow) continue;  // no edge of u can set a new max
    for (const graph::AuthorityEdge& e : graph_->OutEdges(u)) {
      if (forward_reached[e.target] == 0) continue;
      const double rate = graph::AuthorityGraph::EdgeRate(e, rates);
      if (rate <= options.min_rate) continue;
      max_flow = std::max(max_flow, du_score * rate);
    }
  }

  // Pass 2: collect only the edges that survive the flow pruning
  // ("only keep the paths with high authority flow", Section 4) — edges
  // carrying a negligible share of the strongest flow are dropped, except
  // edges into the target, the explanation's subject.
  const double threshold =
      options.prune_fraction > 0.0 ? options.prune_fraction * max_flow : 0.0;
  std::vector<CandidateEdge> candidates;
  for (const graph::NodeId u : nodes) {
    const double du_score = damping * scores[u];
    for (const graph::AuthorityEdge& e : graph_->OutEdges(u)) {
      if (forward_reached[e.target] == 0) continue;
      const double rate = graph::AuthorityGraph::EdgeRate(e, rates);
      if (rate <= options.min_rate) continue;
      const double flow = du_score * rate;
      if (flow < threshold && e.target != target) continue;
      candidates.push_back(CandidateEdge{u, e.target, e.rate_index, rate,
                                         flow});
    }
  }

  if (options.prune_fraction > 0.0 && max_flow > 0.0) {
    // Pruning may strand edges whose head no longer reaches the target;
    // flow into a dead end explains nothing, so keep only edges whose
    // head is backward-reachable from the target over surviving edges.
    std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> in_of;
    for (const CandidateEdge& e : candidates) {
      in_of[e.to].push_back(e.from);
    }
    std::unordered_map<graph::NodeId, bool> reaches;
    reaches.emplace(target, true);
    std::deque<graph::NodeId> queue{target};
    while (!queue.empty()) {
      const graph::NodeId v = queue.front();
      queue.pop_front();
      auto it = in_of.find(v);
      if (it == in_of.end()) continue;
      for (graph::NodeId u : it->second) {
        if (reaches.emplace(u, true).second) queue.push_back(u);
      }
    }
    std::erase_if(candidates, [&](const CandidateEdge& e) {
      return reaches.find(e.to) == reaches.end();
    });
  }

  Explanation result;
  ExplainingSubgraph& sub = result.subgraph;
  // The final node set: endpoints of surviving edges plus the target.
  sub.local_of_.emplace(target, 0);
  sub.nodes_.push_back(target);
  auto local_id = [&](graph::NodeId v) {
    auto [it, inserted] =
        sub.local_of_.emplace(v, static_cast<LocalId>(sub.nodes_.size()));
    if (inserted) sub.nodes_.push_back(v);
    return it->second;
  };
  sub.target_local_ = 0;
  for (const CandidateEdge& e : candidates) {
    ExplainEdge edge;
    edge.from = local_id(e.from);
    edge.to = local_id(e.to);
    edge.rate_index = e.rate_index;
    edge.rate = e.rate;
    edge.original_flow = e.original_flow;
    sub.edges_.push_back(edge);
  }
  sub.BuildEdgeIndex();

  // Record source flags and distances-to-target (for the reformulation's
  // decay factor). Distances are recomputed inside the subgraph: pruning
  // during forward search cannot shorten them, and every included node
  // retains a path to the target through included nodes.
  sub.is_source_.assign(sub.nodes_.size(), false);
  for (const auto& [s, weight] : base.entries) {
    const LocalId ls = sub.LocalOf(s);
    if (ls != kInvalidLocalId) sub.is_source_[ls] = true;
  }
  sub.dist_to_target_.assign(sub.nodes_.size(), -1);
  sub.dist_to_target_[sub.target_local_] = 0;
  std::deque<LocalId> local_frontier{sub.target_local_};
  while (!local_frontier.empty()) {
    const LocalId v = local_frontier.front();
    local_frontier.pop_front();
    for (uint32_t ei : sub.InEdgeIndices(v)) {
      const LocalId u = sub.edges_[ei].from;
      if (sub.dist_to_target_[u] < 0) {
        sub.dist_to_target_[u] = sub.dist_to_target_[v] + 1;
        local_frontier.push_back(u);
      }
    }
  }
  result.construction_seconds = construction_timer.ElapsedSeconds();

  // --- Flow adjustment stage (Figure 8, steps 3-7) -----------------------
  Timer adjustment_timer;
  FlowAdjustResult adjust = FlowAdjuster().Run(sub, options);
  result.adjustment_seconds = adjustment_timer.ElapsedSeconds();
  result.iterations = adjust.iterations;
  result.converged = adjust.converged;
  return result;
}

}  // namespace orx::explain
