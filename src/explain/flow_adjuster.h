#ifndef ORX_EXPLAIN_FLOW_ADJUSTER_H_
#define ORX_EXPLAIN_FLOW_ADJUSTER_H_

#include "explain/explaining_subgraph.h"

namespace orx::explain {

/// Outcome of the flow-adjustment fixpoint (the "Explaining ObjectRank2"
/// execution whose iteration counts Table 3 reports).
struct FlowAdjustResult {
  int iterations = 0;
  bool converged = false;
};

/// Implements the flow adjustment stage of Section 4: iterates the
/// fixpoint
///
///     h(v_k) = sum over out-edges (v_k -> v_j) of G_v^Q of
///              h(v_j) * a(v_k -> v_j)                       (Equation 10)
///
/// with h(target) pinned to 1 (the target's incoming flows are shown
/// unadjusted), then rewrites every edge's adjusted flow as
/// Flow(v_i -> v_k) = h(v_k) * Flow_0(v_i -> v_k) (Equation 7).
///
/// Convergence follows from Theorem 1 (the computation is a PageRank-style
/// iteration on a graph where every node has a path to the target).
class FlowAdjuster {
 public:
  /// Runs the fixpoint on `subgraph` in place: fills h_ and the edges'
  /// adjusted_flow. Pre: the subgraph's edges carry original_flow and the
  /// edge index is built.
  FlowAdjustResult Run(ExplainingSubgraph& subgraph,
                       const ExplainOptions& options) const;
};

}  // namespace orx::explain

#endif  // ORX_EXPLAIN_FLOW_ADJUSTER_H_
