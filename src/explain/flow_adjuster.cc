#include "explain/flow_adjuster.h"

#include <cmath>

#include "common/check.h"

namespace orx::explain {

FlowAdjustResult FlowAdjuster::Run(ExplainingSubgraph& subgraph,
                                   const ExplainOptions& options) const {
  const size_t n = subgraph.num_nodes();
  const LocalId target = subgraph.target_local();
  ORX_CHECK(target != kInvalidLocalId);

  // Step 4 of Figure 8: initialize every reduction factor to 1.
  std::vector<double>& h = subgraph.h_;
  h.assign(n, 1.0);

  // Convergence is judged on what the user sees — the adjusted flows
  // Flow(e) = h(head) * Flow_0(e) — so each node's h-change is weighted by
  // its incoming original flow I_0 and compared against the total
  // explaining flow. Far-away nodes with negligible flow then stop
  // delaying convergence, matching the handful of iterations Table 3
  // reports.
  std::vector<double> in_flow(n, 0.0);
  for (const ExplainEdge& e : subgraph.edges_) {
    in_flow[e.to] += e.original_flow;
  }

  FlowAdjustResult result;
  std::vector<double> next(n, 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Step 5 of Figure 8: h(v_k) = sum h(v_j) * a(v_k -> v_j) over the
    // out-edges of v_k inside G_v^Q; the target is not updated.
    for (LocalId vk = 0; vk < n; ++vk) {
      if (vk == target) {
        next[vk] = 1.0;
        continue;
      }
      double sum = 0.0;
      for (uint32_t ei : subgraph.OutEdgeIndices(vk)) {
        const ExplainEdge& e = subgraph.edges_[ei];
        sum += h[e.to] * e.rate;
      }
      next[vk] = sum;
    }
    double weighted_delta = 0.0;
    double weighted_total = 0.0;
    for (size_t v = 0; v < n; ++v) {
      weighted_delta += std::fabs(next[v] - h[v]) * in_flow[v];
      weighted_total += next[v] * in_flow[v];
    }
    h.swap(next);
    result.iterations = iter;
    if (weighted_delta <= options.epsilon * std::max(weighted_total,
                                                     1e-300)) {
      result.converged = true;
      break;
    }
  }

  // Step 6 of Figure 8 (Equation 7): scale each edge's flow by the
  // reduction factor of its *head*; edges into the target keep their
  // original flow (h(target) == 1).
  for (ExplainEdge& e : subgraph.edges_) {
    e.adjusted_flow = h[e.to] * e.original_flow;
  }
  return result;
}

}  // namespace orx::explain
