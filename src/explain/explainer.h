#ifndef ORX_EXPLAIN_EXPLAINER_H_
#define ORX_EXPLAIN_EXPLAINER_H_

#include <vector>

#include "common/status.h"
#include "core/base_set.h"
#include "core/objectrank.h"
#include "explain/explaining_subgraph.h"
#include "explain/flow_adjuster.h"
#include "graph/authority_graph.h"
#include "graph/data_graph.h"

namespace orx::explain {

/// A complete explanation of one query result, with the per-stage costs
/// the performance figures (14-17) break out.
struct Explanation {
  ExplainingSubgraph subgraph;
  /// Iterations of the explaining fixpoint (Table 3).
  int iterations = 0;
  bool converged = false;
  /// Wall-clock seconds of the construction stage ("Explaining Subgraph
  /// Creation") and the flow-adjustment stage ("Explaining ObjectRank2
  /// Execution").
  double construction_seconds = 0.0;
  double adjustment_seconds = 0.0;
};

/// Builds explaining subgraphs (the Explain-ObjectRank algorithm of
/// Figure 8): why did result `target` score what it scored for query Q?
///
/// Construction stage — the node set is
///   { nodes within `radius` edges of the target, walking edges backwards
///     over positive-rate authority edges }
///   intersected with
///   { nodes forward-reachable from the base set S(Q) inside that ball },
/// and the edge set is every positive-rate authority edge between included
/// nodes (each such edge lies on a base-set-to-target walk).
///
/// Flow adjustment stage — see FlowAdjuster.
class Explainer {
 public:
  Explainer(const graph::DataGraph& data, const graph::AuthorityGraph& graph)
      : data_(&data), graph_(&graph) {}

  /// Explains `target` given the query's base set, the converged
  /// full-graph ObjectRank2 scores r^Q, the rates, and the damping factor
  /// used for the query.
  ///
  /// Errors: kNotFound if no authority from S(Q) reaches the target within
  /// the radius (then there is nothing to explain — the target's score is
  /// pure random-jump mass or zero); kInvalidArgument on a bad target or a
  /// score vector of the wrong size.
  StatusOr<Explanation> Explain(graph::NodeId target,
                                const core::BaseSet& base,
                                const std::vector<double>& scores,
                                const graph::TransferRates& rates,
                                double damping,
                                const ExplainOptions& options = {}) const;

 private:
  const graph::DataGraph* data_;
  const graph::AuthorityGraph* graph_;
};

}  // namespace orx::explain

#endif  // ORX_EXPLAIN_EXPLAINER_H_
