#ifndef ORX_EXPLAIN_EXPLAINING_SUBGRAPH_H_
#define ORX_EXPLAIN_EXPLAINING_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/base_set.h"
#include "graph/authority_graph.h"
#include "graph/data_graph.h"
#include "graph/transfer_rates.h"

namespace orx::explain {

/// Local index of a node inside an explaining subgraph.
using LocalId = uint32_t;
inline constexpr LocalId kInvalidLocalId = static_cast<LocalId>(-1);

/// One edge of an explaining subgraph G_v^Q, annotated with its authority
/// flows (Section 4).
struct ExplainEdge {
  LocalId from = kInvalidLocalId;
  LocalId to = kInvalidLocalId;
  /// Rate slot of the underlying authority edge (RateIndex(etype, dir)).
  uint32_t rate_index = 0;
  /// The per-edge transfer rate a(e) of Equation 1.
  double rate = 0.0;
  /// Flow_0(e) = d * a(e) * r^Q(from): the flow at the convergence state
  /// of the full-graph ObjectRank2 execution (Equation 5).
  double original_flow = 0.0;
  /// Flow(e) = h(to) * Flow_0(e): the explaining authority flow — the part
  /// of the original flow that eventually reaches the target (Equation 7).
  double adjusted_flow = 0.0;
};

/// Construction parameters (Section 4).
struct ExplainOptions {
  /// Radius L: only nodes within L edges of the target are considered
  /// (the paper finds L=3 adequate and uses it in all experiments).
  int radius = 3;

  /// Relative convergence threshold of the flow-adjustment fixpoint
  /// (Equation 10): iteration stops when the flow-weighted change of the
  /// reduction factors drops below epsilon times the total explaining
  /// flow (the paper's performance runs use 0.001).
  double epsilon = 1e-3;

  /// Hard iteration cap for the fixpoint.
  int max_iterations = 200;

  /// Edges whose transfer rate is <= min_rate carry no authority and are
  /// not traversed during construction.
  double min_rate = 0.0;

  /// Flow pruning (Section 4: "we ... only keep the paths with high
  /// authority flow"): candidate edges whose original flow is below
  /// prune_fraction times the largest original flow in the subgraph are
  /// dropped (edges into the target are always kept — they are what is
  /// being explained). 0 disables pruning.
  double prune_fraction = 0.01;
};

/// The explaining subgraph G_v^Q for a target object v and query Q: the
/// subgraph of the authority transfer data graph containing every node and
/// edge on a directed path (within the radius) from the base set S(Q) to
/// v, annotated with original and explaining authority flows.
///
/// Nodes are stored with dense LocalIds; local id 0 is not special — use
/// target_local() for the target. The structure is immutable once built by
/// the Explainer.
class ExplainingSubgraph {
 public:
  /// Number of subgraph nodes / edges.
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Global data-graph id of a local node.
  graph::NodeId GlobalId(LocalId v) const { return nodes_[v]; }

  /// Local id of a global node, or kInvalidLocalId if not in the subgraph.
  LocalId LocalOf(graph::NodeId global) const;

  /// True if `global` is a node of the subgraph.
  bool Contains(graph::NodeId global) const {
    return LocalOf(global) != kInvalidLocalId;
  }

  LocalId target_local() const { return target_local_; }
  graph::NodeId target_global() const { return nodes_[target_local_]; }

  /// All edges (arbitrary order).
  const std::vector<ExplainEdge>& edges() const { return edges_; }

  /// Indices (into edges()) of the out-/in-edges of local node `v`.
  std::span<const uint32_t> OutEdgeIndices(LocalId v) const {
    return {out_index_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const uint32_t> InEdgeIndices(LocalId v) const {
    return {in_index_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// The reduction factor h(v) of Equation 10 (1 for the target).
  double ReductionFactor(LocalId v) const { return h_[v]; }

  /// Distance D(v) of node `v` from the target in number of edges,
  /// following edge direction (0 for the target itself). Used by the
  /// content-based reformulation decay factor (Equation 11).
  int DistanceToTarget(LocalId v) const { return dist_to_target_[v]; }

  /// Sum of adjusted (explaining) flows on the out-edges of `v`.
  double AdjustedOutFlowSum(LocalId v) const;

  /// Sum of adjusted (explaining) flows on the in-edges of `v`.
  double AdjustedInFlowSum(LocalId v) const;

  /// Whether `v` is a base-set node of this subgraph (an authority source).
  bool IsSource(LocalId v) const { return is_source_[v]; }

  /// Multi-line human-readable rendering (for the examples).
  std::string ToString(const graph::DataGraph& data) const;

  /// Graphviz DOT rendering, the "explaining subgraph displayed to the
  /// user" of the paper's online demo: the target is double-circled,
  /// base-set sources are shaded, every edge is labeled with its
  /// explaining flow, and edge thickness scales with the flow share.
  std::string ToDot(const graph::DataGraph& data) const;

 private:
  friend class Explainer;
  friend class FlowAdjuster;

  void BuildEdgeIndex();

  std::vector<graph::NodeId> nodes_;
  std::unordered_map<graph::NodeId, LocalId> local_of_;
  LocalId target_local_ = kInvalidLocalId;

  std::vector<ExplainEdge> edges_;
  std::vector<uint32_t> out_offsets_, out_index_;
  std::vector<uint32_t> in_offsets_, in_index_;

  std::vector<double> h_;
  std::vector<int> dist_to_target_;
  std::vector<bool> is_source_;
};

}  // namespace orx::explain

#endif  // ORX_EXPLAIN_EXPLAINING_SUBGRAPH_H_
