#ifndef ORX_EVAL_SURVEY_H_
#define ORX_EVAL_SURVEY_H_

#include <vector>

#include "core/searcher.h"
#include "eval/residual_collection.h"
#include "eval/simulated_user.h"
#include "reformulate/reformulator.h"

namespace orx::eval {

/// Configuration of one simulated relevance-feedback session (the unit of
/// the Section 6.1 surveys and the Section 6.2 performance runs).
struct SurveyConfig {
  reform::ReformulationOptions reform;
  core::SearchOptions search;
  SimulatedUserOptions user;
  /// Number of reformulated queries after the initial one (the paper
  /// reports 4 feedback iterations internally, 5 externally).
  int feedback_iterations = 4;
  /// How many relevant results the user marks per round.
  int max_feedback_objects = 2;
  /// Seed the first query with the global ObjectRank (Section 6.2).
  bool precompute_global = true;
};

/// Everything measured about one (initial or reformulated) query.
struct SurveyIteration {
  /// Residual-collection precision of this query's top-k.
  double precision = 0.0;
  /// The query vector and rates this search ran with.
  text::QueryVector query;
  graph::TransferRates rates;

  /// Performance counters (Figures 14-17).
  int objectrank_iterations = 0;
  double search_seconds = 0.0;
  double explain_construction_seconds = 0.0;
  double explain_adjustment_seconds = 0.0;
  double reformulation_seconds = 0.0;
  /// Explaining-fixpoint iterations averaged over this round's feedback
  /// objects (Table 3); 0 when no feedback was given.
  double avg_explain_iterations = 0.0;
  size_t feedback_count = 0;
  size_t base_set_size = 0;
};

/// A full session: iterations[0] is the initial query, iterations[i>0] the
/// i-th reformulated query.
struct SurveyResult {
  std::vector<SurveyIteration> iterations;
  /// False if the initial search failed (e.g. keyword absent); then
  /// iterations is empty.
  bool ok = false;
};

/// Runs one feedback session:
///   search -> judge (residual precision) -> user marks relevant results
///   -> reformulate -> repeat.
/// The user's intent must already be set (SimulatedUser::SetIntent).
/// Rounds in which no top-k result is relevant produce no feedback and
/// leave the query/rates unchanged (there is nothing to learn from).
SurveyResult RunFeedbackSession(const graph::DataGraph& data,
                                const graph::AuthorityGraph& graph,
                                const text::Corpus& corpus,
                                const text::QueryVector& initial_query,
                                const graph::TransferRates& initial_rates,
                                const SimulatedUser& user,
                                const SurveyConfig& config);

}  // namespace orx::eval

#endif  // ORX_EVAL_SURVEY_H_
