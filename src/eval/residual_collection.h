#ifndef ORX_EVAL_RESIDUAL_COLLECTION_H_
#define ORX_EVAL_RESIDUAL_COLLECTION_H_

#include <optional>
#include <vector>

#include "core/top_k.h"
#include "graph/data_graph.h"

namespace orx::eval {

/// The residual-collection evaluation protocol of [RL03, SB90] as used in
/// Section 6.1.1: every object the user has seen and marked relevant is
/// removed from the collection, and each (initial or reformulated) query
/// is evaluated against what remains.
///
/// The tracker owns the seen set; rankings are produced by re-running
/// top-k with the seen objects excluded.
class ResidualCollection {
 public:
  explicit ResidualCollection(size_t num_nodes) : seen_(num_nodes, false) {}

  /// Marks `v` as seen-relevant (removed from future evaluations).
  void Remove(graph::NodeId v) {
    if (v < seen_.size()) seen_[v] = true;
  }

  bool IsRemoved(graph::NodeId v) const {
    return v < seen_.size() && seen_[v];
  }

  size_t num_removed() const;

  /// Top-k of `scores` over the residual collection (optionally filtered
  /// to one node type).
  std::vector<core::ScoredNode> ResidualTopK(
      const std::vector<double>& scores, size_t k,
      const graph::DataGraph& data,
      std::optional<graph::TypeId> type) const;

 private:
  std::vector<bool> seen_;
};

}  // namespace orx::eval

#endif  // ORX_EVAL_RESIDUAL_COLLECTION_H_
