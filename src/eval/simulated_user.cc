#include "eval/simulated_user.h"

#include <algorithm>

namespace orx::eval {

graph::TransferRates PerturbedRates(const graph::SchemaGraph& schema,
                                    const graph::TransferRates& rates,
                                    double noise, Rng& rng) {
  graph::TransferRates out = rates;
  for (uint32_t s = 0; s < out.num_slots(); ++s) {
    const double r = out.slot(s);
    if (r <= 0.0) continue;
    const double factor = 1.0 + noise * (2.0 * rng.UniformDouble() - 1.0);
    out.set_slot(s, std::clamp(r * factor, 0.0, 1.0));
  }
  out.CapOutgoingSums(schema);
  return out;
}

SimulatedUser::SimulatedUser(const graph::DataGraph& data,
                             const graph::AuthorityGraph& graph,
                             const text::Corpus& corpus,
                             graph::TransferRates ground_truth_rates,
                             SimulatedUserOptions options)
    : searcher_(data, graph, corpus),
      corpus_(&corpus),
      ground_truth_rates_(std::move(ground_truth_rates)),
      options_(options) {}

bool SimulatedUser::SetIntent(const text::QueryVector& query) {
  relevant_.clear();
  core::SearchOptions search = options_.search;
  search.k = static_cast<size_t>(options_.relevant_pool);
  search.use_warm_start = false;  // judgments must not depend on history
  if (options_.require_keyword_containment) {
    // Over-fetch, then keep the keyword-matching prefix: the pool is
    // authority-ordered but restricted to textual matches.
    search.k = static_cast<size_t>(options_.relevant_pool) * 20;
  }
  auto result = searcher_.Search(query, ground_truth_rates_, search);
  if (!result.ok()) return false;
  for (const core::ScoredNode& r : result->top) {
    if (r.score <= 0.0) continue;
    if (options_.require_keyword_containment) {
      bool matches = false;
      for (const std::string& term : query.terms()) {
        auto tid = corpus_->TermIdOf(term);
        if (tid.has_value() && corpus_->DocContains(r.node, *tid)) {
          matches = true;
          break;
        }
      }
      if (!matches) continue;
    }
    relevant_.insert(r.node);
    if (relevant_.size() >= static_cast<size_t>(options_.relevant_pool)) {
      break;
    }
  }
  return !relevant_.empty();
}

}  // namespace orx::eval
