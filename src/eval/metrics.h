#ifndef ORX_EVAL_METRICS_H_
#define ORX_EVAL_METRICS_H_

#include <unordered_set>
#include <vector>

#include "core/top_k.h"
#include "graph/data_graph.h"

namespace orx::eval {

/// Cosine similarity of two equal-length vectors; 0 if either is zero.
/// Figures 11/13 report cos(ObjVector, UserVector) over the 8-slot DBLP
/// rate vectors.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Precision of a ranked list against a relevant set: the fraction of
/// results that are relevant. The paper limits output to k, so recall
/// equals precision (Section 6.1.1).
double Precision(const std::vector<core::ScoredNode>& results,
                 const std::unordered_set<graph::NodeId>& relevant);

/// Mean of a series (used to average precision across queries/users).
double Mean(const std::vector<double>& values);

}  // namespace orx::eval

#endif  // ORX_EVAL_METRICS_H_
