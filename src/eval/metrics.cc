#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"

namespace orx::eval {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ORX_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Precision(const std::vector<core::ScoredNode>& results,
                 const std::unordered_set<graph::NodeId>& relevant) {
  if (results.empty()) return 0.0;
  size_t hits = 0;
  for (const core::ScoredNode& r : results) {
    if (relevant.count(r.node) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace orx::eval
