#include "eval/survey.h"

#include "common/logging.h"
#include "eval/metrics.h"

namespace orx::eval {

SurveyResult RunFeedbackSession(const graph::DataGraph& data,
                                const graph::AuthorityGraph& graph,
                                const text::Corpus& corpus,
                                const text::QueryVector& initial_query,
                                const graph::TransferRates& initial_rates,
                                const SimulatedUser& user,
                                const SurveyConfig& config) {
  SurveyResult result;
  core::Searcher searcher(data, graph, corpus);
  if (config.precompute_global) {
    searcher.PrecomputeGlobalRank(initial_rates, config.search.objectrank);
  }
  reform::Reformulator reformulator(data, graph, corpus);
  ResidualCollection residual(data.num_nodes());

  text::QueryVector query = initial_query;
  graph::TransferRates rates = initial_rates;
  // ObjectRank2 convergence requires every node type's outgoing rate sum
  // to be at most 1 (Section 5.2, normalization step 4). The surveys
  // initialize every slot to 0.3, which violates this for node types with
  // several outgoing slots — enforce the invariant up front, as the
  // reformulator does after every adjustment.
  rates.CapOutgoingSums(data.schema());

  for (int iter = 0; iter <= config.feedback_iterations; ++iter) {
    SurveyIteration stats;
    stats.query = query;
    stats.rates = rates;

    auto search = searcher.Search(query, rates, config.search);
    if (!search.ok()) {
      if (iter == 0) return result;  // initial query failed: no session
      ORX_LOG(Warning) << "reformulated query failed: "
                       << search.status().ToString();
      result.iterations.push_back(stats);
      continue;
    }
    stats.objectrank_iterations = search->iterations;
    stats.search_seconds = search->seconds;
    stats.base_set_size = search->base_set_size;

    // Judge on the residual collection.
    std::vector<core::ScoredNode> residual_top = residual.ResidualTopK(
        search->scores, config.search.k, data, config.search.result_type);
    stats.precision = Precision(residual_top, user.relevant_set());

    // The user marks up to max_feedback_objects relevant results; they
    // leave the collection (residual protocol).
    std::vector<graph::NodeId> feedback;
    for (const core::ScoredNode& r : residual_top) {
      if (static_cast<int>(feedback.size()) >= config.max_feedback_objects) {
        break;
      }
      if (r.score > 0.0 && user.IsRelevant(r.node)) {
        feedback.push_back(r.node);
      }
    }
    for (graph::NodeId v : feedback) residual.Remove(v);
    stats.feedback_count = feedback.size();

    // Reformulate for the next round (not after the last search).
    if (iter < config.feedback_iterations && !feedback.empty()) {
      auto base = core::BuildBaseSet(corpus, query,
                                     core::BaseSetMode::kIrWeighted,
                                     config.search.bm25);
      if (base.ok()) {
        auto reformulated = reformulator.Reformulate(
            query, rates, *base, search->scores, feedback, config.reform);
        if (reformulated.ok()) {
          stats.explain_construction_seconds =
              reformulated->explain_construction_seconds;
          stats.explain_adjustment_seconds =
              reformulated->explain_adjustment_seconds;
          stats.reformulation_seconds =
              reformulated->reformulation_seconds;
          stats.avg_explain_iterations =
              reformulated->avg_explain_iterations;
          query = reformulated->query;
          rates = reformulated->rates;
        }
      }
    }
    result.iterations.push_back(std::move(stats));
  }
  result.ok = true;
  return result;
}

}  // namespace orx::eval
