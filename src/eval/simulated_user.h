#ifndef ORX_EVAL_SIMULATED_USER_H_
#define ORX_EVAL_SIMULATED_USER_H_

#include <optional>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/searcher.h"
#include "graph/transfer_rates.h"
#include "text/query.h"

namespace orx::eval {

/// Returns `rates` with every nonzero slot multiplied by
/// (1 + noise * U(-1, 1)), clamped to [0, 1] and re-capped so per-type
/// outgoing sums stay <= 1. Distinct simulated survey subjects (below)
/// get distinct perturbations: experts agree on the broad shape of
/// authority flow but not on exact magnitudes, which is what averaging
/// over human subjects gives the paper's surveys.
graph::TransferRates PerturbedRates(const graph::SchemaGraph& schema,
                                    const graph::TransferRates& rates,
                                    double noise, Rng& rng);

/// Configuration of a simulated survey subject.
struct SimulatedUserOptions {
  /// The user deems relevant the top `relevant_pool` objects of the
  /// ground-truth ranking for their query intent.
  int relevant_pool = 10;
  /// If true, only objects containing at least one query keyword qualify
  /// as relevant (the pool is drawn from the keyword-matching prefix of
  /// the ground-truth ranking). Models judges who value textual match as
  /// well as authority; used by the baseline comparisons.
  bool require_keyword_containment = false;
  /// Options used for the ground-truth search (same engine, the user's
  /// private rates).
  core::SearchOptions search;
};

/// A stand-in for the paper's human survey subjects (DESIGN.md
/// substitution #3). The user privately holds the expert-tuned authority
/// transfer rates (the [BHP04] ground truth the paper trains against) and
/// judges a result relevant iff it appears in the top-R of the
/// ground-truth ObjectRank2 ranking for the query. This gives the
/// deterministic relevance judgments that the residual-collection
/// precision and the rate-training cosine curves are computed from.
class SimulatedUser {
 public:
  /// `searcher` must outlive the user; it is used only for ground-truth
  /// searches (its warm-start state is not disturbed — a private searcher
  /// over the same indexes is created internally).
  SimulatedUser(const graph::DataGraph& data,
                const graph::AuthorityGraph& graph,
                const text::Corpus& corpus,
                graph::TransferRates ground_truth_rates,
                SimulatedUserOptions options = {});

  /// Fixes the user's intent to `query` and computes the relevant set.
  /// Returns false if the ground-truth search failed (no keyword match).
  bool SetIntent(const text::QueryVector& query);

  /// Relevance judgment (requires SetIntent).
  bool IsRelevant(graph::NodeId v) const { return relevant_.count(v) > 0; }

  const std::unordered_set<graph::NodeId>& relevant_set() const {
    return relevant_;
  }

  const graph::TransferRates& ground_truth_rates() const {
    return ground_truth_rates_;
  }

 private:
  core::Searcher searcher_;
  const text::Corpus* corpus_;
  graph::TransferRates ground_truth_rates_;
  SimulatedUserOptions options_;
  std::unordered_set<graph::NodeId> relevant_;
};

}  // namespace orx::eval

#endif  // ORX_EVAL_SIMULATED_USER_H_
