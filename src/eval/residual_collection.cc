#include "eval/residual_collection.h"

#include <algorithm>

namespace orx::eval {

size_t ResidualCollection::num_removed() const {
  return static_cast<size_t>(
      std::count(seen_.begin(), seen_.end(), true));
}

std::vector<core::ScoredNode> ResidualCollection::ResidualTopK(
    const std::vector<double>& scores, size_t k,
    const graph::DataGraph& data, std::optional<graph::TypeId> type) const {
  return core::TopKOfTypeExcluding(scores, k, data, type, seen_);
}

}  // namespace orx::eval
