#include "serve/serve_metrics.h"

#include "common/strings.h"

namespace orx::serve {

std::string ServeMetrics::ToString() const {
  auto ms = [](double seconds) { return FormatDouble(seconds * 1e3, 2); };
  return "qps=" + FormatDouble(qps, 1) +
         " completed=" + std::to_string(completed) +
         " executed=" + std::to_string(executed) +
         " hits=" + std::to_string(cache_hits) +
         " coalesced=" + std::to_string(coalesced) +
         " rejected=" + std::to_string(rejected) +
         " deadline_exceeded=" + std::to_string(deadline_exceeded) +
         " failed=" + std::to_string(failed) +
         " batches=" + std::to_string(batches) +
         " batched=" + std::to_string(batched_queries) +
         " batch_occ=" + FormatDouble(batch_occupancy_mean, 2) + "/max=" +
         std::to_string(batch_occupancy_max) +
         " tiers=" + std::to_string(tier_exact) + "e/" +
         std::to_string(tier_approximate) + "a/" +
         std::to_string(tier_cached) + "c esc=" +
         std::to_string(escalations) + " miss=" +
         std::to_string(miss_no_cache) + "n/" +
         std::to_string(miss_rates_mismatch) + "r/" +
         std::to_string(miss_bm25_mismatch) + "b/" +
         std::to_string(miss_missing_terms) + "t/" +
         std::to_string(miss_error_budget) + "e" +
         " p50=" + ms(latency_p50) +
         "ms p95=" + ms(latency_p95) + "ms p99=" + ms(latency_p99) +
         "ms mean=" + ms(latency_mean) + "ms";
}

}  // namespace orx::serve
