#ifndef ORX_SERVE_SERVE_METRICS_H_
#define ORX_SERVE_SERVE_METRICS_H_

#include <cstdint>
#include <string>

namespace orx::serve {

/// A point-in-time snapshot of SearchService's operational counters.
/// Counters are cumulative since service construction; latencies come
/// from a fixed-bucket histogram (see common/histogram.h), so the
/// percentiles carry that histogram's ~25% bucket resolution.
///
/// Deliberately lock-free and annotation-free: this is a plain value
/// type filled from atomics inside SearchService::Snapshot() — no field
/// here is ever shared mutable state, so nothing carries ORX_GUARDED_BY
/// (see docs/correctness.md, "Static thread-safety analysis").
struct ServeMetrics {
  /// Requests presented to Submit(), including rejected ones.
  uint64_t submitted = 0;
  /// Requests refused at admission because max_pending executions were
  /// already in service (kUnavailable).
  uint64_t rejected = 0;
  /// Requests answered from a completed result-cache entry.
  uint64_t cache_hits = 0;
  /// Requests that piggybacked on an identical in-flight execution
  /// (single flight): N concurrent identical queries = 1 execution and
  /// N-1 coalesced requests.
  uint64_t coalesced = 0;
  /// Executions actually run on the pool (single-flight leaders).
  uint64_t executed = 0;
  /// Executions abandoned because their deadline expired (queued or
  /// mid-iteration).
  uint64_t deadline_exceeded = 0;
  /// Executions that finished with a non-OK status other than
  /// kDeadlineExceeded (e.g. kNotFound for unknown keywords).
  uint64_t failed = 0;
  /// Requests whose future has been fulfilled (hits + coalesced +
  /// executions; excludes admission rejections).
  uint64_t completed = 0;

  /// Block executions run by the batch scheduler: one per flushed
  /// collection window that had at least one live lane (a window whose
  /// only lane expired while queued does not count). Single-lane flushes
  /// count — occupancy, not batch count, measures how well batching works.
  uint64_t batches = 0;
  /// Cache-miss executions that ran as a lane of a batch window.
  uint64_t batched_queries = 0;
  /// Largest lane count any single batch executed with.
  uint64_t batch_occupancy_max = 0;
  /// batched_queries / batches — mean lanes per block execution (0 when
  /// batching is off or nothing has been batched).
  double batch_occupancy_mean = 0.0;

  /// Executions answered per tier (core::SearchTier of the *result*, so
  /// an approximate request that escalated counts under tier_exact).
  /// Only successful executions count; serve-level result-cache hits are
  /// `cache_hits` above, not tiers — tier_cached is the rank-cache tier.
  uint64_t tier_exact = 0;
  uint64_t tier_approximate = 0;
  uint64_t tier_cached = 0;
  /// Executions where a non-exact tier was requested but could not
  /// certify its answer, so the exact kernel ran (SearchResult::escalated).
  uint64_t escalations = 0;

  /// Rank-cache miss reasons of executions (core::CacheMissReason; kNone
  /// — a hit, or a tier that never consulted the cache — is not counted).
  uint64_t miss_no_cache = 0;
  uint64_t miss_rates_mismatch = 0;
  uint64_t miss_bm25_mismatch = 0;
  uint64_t miss_missing_terms = 0;
  uint64_t miss_error_budget = 0;

  /// Per-tier execution-stage latency (SearchResult::seconds — the
  /// kernel, not queueing), seconds.
  double tier_exact_p50 = 0.0;
  double tier_exact_p99 = 0.0;
  double tier_approximate_p50 = 0.0;
  double tier_approximate_p99 = 0.0;
  double tier_cached_p50 = 0.0;
  double tier_cached_p99 = 0.0;

  /// Seconds since the service was constructed.
  double uptime_seconds = 0.0;
  /// completed / uptime_seconds.
  double qps = 0.0;

  /// End-to-end request latency (submit -> future fulfilled), seconds.
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;

  /// One-line rendering for benchmarks and the CLI.
  std::string ToString() const;
};

}  // namespace orx::serve

#endif  // ORX_SERVE_SERVE_METRICS_H_
