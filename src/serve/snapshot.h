#ifndef ORX_SERVE_SNAPSHOT_H_
#define ORX_SERVE_SNAPSHOT_H_

#include <memory>

#include "core/rank_cache.h"
#include "core/searcher.h"
#include "graph/authority_graph.h"
#include "graph/data_graph.h"
#include "graph/spmv_layout.h"
#include "graph/transfer_rates.h"
#include "text/corpus.h"

namespace orx::serve {

/// One immutable, reference-counted view of everything a query needs:
/// the graphs, the corpus, the transfer rates, an optional precomputed
/// RankCache, and the SearchOptions requests default to. SearchService
/// holds the current snapshot behind a shared_ptr and swaps it atomically
/// on hot reload; a request pins the snapshot it admitted with for its
/// whole lifetime, so dataset/cache replacement never races with queries
/// in flight — old snapshots die when their last request finishes.
///
/// The component pointers are shared_ptrs so a snapshot can either own
/// its pieces outright or alias a larger owner (e.g. a datasets::Dataset
/// held via the aliasing shared_ptr constructor). Everything reachable
/// from a published snapshot must be immutable.
struct ServeSnapshot {
  std::shared_ptr<const graph::DataGraph> data;
  std::shared_ptr<const graph::AuthorityGraph> authority;
  std::shared_ptr<const text::Corpus> corpus;
  /// Rates the service searches under (a cheap value type, copied in).
  graph::TransferRates rates;
  /// Optional per-keyword precomputation; null = always run the power
  /// iteration. Must have been built for `authority` + `rates`.
  std::shared_ptr<const core::RankCache> rank_cache;
  /// Options a request uses when it doesn't bring its own.
  core::SearchOptions default_options;
  /// Fused-weight cache shared by every request served from this
  /// snapshot: the rate-resolved SpMV layout the power iteration streams
  /// is materialized once per TransferRates fingerprint and reused, so
  /// hot-swapping a snapshot (new graph and/or retrained rates) swaps the
  /// layouts with it while in-flight requests keep the layouts their
  /// pinned snapshot owns. A thread-safe memo of pure functions of
  /// (authority, rates) — logically immutable, like everything else here.
  std::shared_ptr<graph::FusedWeightCache> fused_cache =
      std::make_shared<graph::FusedWeightCache>();

  /// True iff the mandatory components are present.
  bool Complete() const {
    return data != nullptr && authority != nullptr && corpus != nullptr;
  }
};

/// Convenience for building a snapshot whose graph components alias one
/// owning object (the owner is kept alive by the aliasing shared_ptrs).
template <typename Owner>
ServeSnapshot SnapshotFromOwner(std::shared_ptr<Owner> owner,
                                const graph::DataGraph& data,
                                const graph::AuthorityGraph& authority,
                                const text::Corpus& corpus,
                                graph::TransferRates rates) {
  ServeSnapshot snapshot;
  snapshot.data = std::shared_ptr<const graph::DataGraph>(owner, &data);
  snapshot.authority =
      std::shared_ptr<const graph::AuthorityGraph>(owner, &authority);
  snapshot.corpus = std::shared_ptr<const text::Corpus>(owner, &corpus);
  snapshot.rates = std::move(rates);
  return snapshot;
}

}  // namespace orx::serve

#endif  // ORX_SERVE_SNAPSHOT_H_
