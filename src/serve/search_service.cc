#include "serve/search_service.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/check.h"

namespace orx::serve {
namespace {

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g|", value);
  out += buf;
}

// "v<version>|": the key prefix that scopes cache entries and batch
// windows to one snapshot version. Kept separate from the options/query
// suffix so the cache lookup can probe retained older versions by
// re-prefixing the same suffix.
std::string VersionPrefix(uint64_t version) {
  std::string prefix = "v";
  prefix += std::to_string(version);
  prefix += "|";
  return prefix;
}

// The numeric-options fingerprint shared by RequestKeySuffix (which
// appends the normalized query) and BatchKey (which appends the rates
// fingerprint instead).
void AppendOptionsKey(std::string& key, const core::SearchOptions& options) {
  key += "m";
  key += std::to_string(static_cast<int>(options.mode));
  key += "|k";
  key += std::to_string(options.k);
  key += "|t";
  key += options.result_type.has_value()
             ? std::to_string(*options.result_type)
             : std::string("-");
  key += "|w";
  key += options.use_warm_start ? "1" : "0";
  key += "|";
  AppendDouble(key, options.objectrank.damping);
  AppendDouble(key, options.objectrank.epsilon);
  key += std::to_string(options.objectrank.max_iterations);
  key += "|";
  key += std::to_string(options.objectrank.num_threads);
  key += "|K";
  key += std::to_string(static_cast<int>(options.objectrank.kernel));
  key += "|";
  AppendDouble(key, options.bm25.k1);
  AppendDouble(key, options.bm25.b);
  AppendDouble(key, options.bm25.k3);
  // The resolved tier and the approximate-kernel knobs shape the result
  // (approximate scores are one-sided estimates), so they must split the
  // cache/batch keyspace — otherwise an exact request could be answered
  // from an approximate result computed under the same numeric options.
  key += "T";
  key += std::to_string(static_cast<int>(options.tier));
  key += "|";
  AppendDouble(key, options.approx.r_max);
  key += std::to_string(options.approx.max_pushes);
  key += "|";
}

}  // namespace

std::string SearchService::RequestKeySuffix(
    const text::QueryVector& query, const core::SearchOptions& options) {
  std::string key;
  key.reserve(64 + query.size() * 24);
  AppendOptionsKey(key, options);
  // Normalized query: (term, weight) pairs sorted by term, so the key is
  // insensitive to keyword order (the scores are — the base set is a sum
  // over terms).
  std::vector<size_t> order(query.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return query.terms()[a] < query.terms()[b];
  });
  for (size_t i : order) {
    key += query.terms()[i];
    key += '=';
    AppendDouble(key, query.weights()[i]);
  }
  return key;
}

std::string SearchService::BatchKey(const core::SearchOptions& options,
                                    uint64_t version,
                                    uint64_t rates_fingerprint) {
  std::string key = VersionPrefix(version);
  key.reserve(96);
  AppendOptionsKey(key, options);
  key += "r";
  key += std::to_string(rates_fingerprint);
  return key;
}

int SearchService::CapIntraQueryThreads(int requested, size_t pool_workers) {
  const size_t hardware = ThreadPool::HardwareThreads();
  const int cap = static_cast<int>(
      std::max<size_t>(1, hardware / std::max<size_t>(1, pool_workers)));
  return std::clamp(requested, 1, cap);
}

SearchService::SearchService(std::shared_ptr<const ServeSnapshot> snapshot,
                             Options options)
    : options_(options),
      start_time_(Clock::now()),
      snapshot_(std::move(snapshot)) {
  ORX_CHECK_MSG(snapshot_ != nullptr && snapshot_->Complete(),
                "SearchService needs a complete snapshot");
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

SearchService::~SearchService() {
  {
    // Wake batch leaders sleeping on their collection window so shutdown
    // doesn't have to sit out max_batch_delay_ms; their lanes run (and
    // their futures resolve) during the pool drain below.
    MutexLock lock(mu_);
    for (auto& [key, batch] : open_batches_) {
      batch->closed = true;
      batch->cv.SignalAll();
    }
    open_batches_.clear();
  }
  // Drain before any other member dies: tasks touch the maps and metrics.
  pool_.reset();
}

std::future<StatusOr<ServeResponse>> SearchService::Submit(
    ServeRequest request) {
  auto completion = std::make_shared<Completion>();
  completion->promise.emplace();
  std::future<ResponseOr> future = completion->promise->get_future();
  SubmitInternal(std::move(request), std::move(completion));
  return future;
}

void SearchService::SubmitAsync(ServeRequest request, Callback done) {
  auto completion = std::make_shared<Completion>();
  completion->callback = std::move(done);
  SubmitInternal(std::move(request), std::move(completion));
}

void SearchService::SubmitInternal(ServeRequest request,
                                   CompletionPtr completion) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point submit_time = Clock::now();

  double deadline_seconds = request.deadline_seconds;
  if (deadline_seconds == 0.0) {
    deadline_seconds = options_.default_deadline_seconds;
  }
  const bool has_deadline = deadline_seconds > 0.0;
  const Clock::time_point deadline =
      has_deadline
          ? submit_time + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(deadline_seconds))
          : Clock::time_point::max();

  enum class Action { kHit, kCoalesce, kReject, kLead, kJoinBatch,
                      kLeadBatch };
  Action action;
  ServeResponse hit;
  std::shared_ptr<const ServeSnapshot> snap;
  uint64_t version = 0;
  core::SearchOptions options;
  std::string key;
  std::shared_ptr<PendingBatch> new_batch;
  std::string batch_key;
  {
    MutexLock lock(mu_);
    snap = snapshot_;
    version = version_;
    options =
        request.options.has_value() ? *request.options : snap->default_options;
    // Threading contract: a request may only parallelize its power
    // iteration within the machine share its execution slot represents.
    options.objectrank.num_threads = CapIntraQueryThreads(
        options.objectrank.num_threads, pool_->num_threads());
    // Tier resolution, strongest signal first: the per-request hint, then
    // the adaptive policy (only for requests still on kAuto). Resolved
    // BEFORE the key is computed — the tier is part of the keyspace.
    if (request.tier != core::SearchTier::kAuto) {
      options.tier = request.tier;
    }
    if (options_.enable_tier_policy &&
        options.tier == core::SearchTier::kAuto) {
      const double headroom = has_deadline ? deadline_seconds
                                           : std::numeric_limits<double>::max();
      const double load =
          options_.max_pending == 0
              ? 0.0
              : static_cast<double>(pending_) /
                    static_cast<double>(options_.max_pending);
      if (headroom < options_.tier_approx_deadline_seconds) {
        options.tier = core::SearchTier::kCached;
      } else if (headroom < options_.tier_exact_deadline_seconds ||
                 load >= options_.tier_load_high) {
        options.tier = core::SearchTier::kApproximate;
      }
      // else: stay kAuto — the certified-cache-or-exact path.
    }
    const std::string suffix = RequestKeySuffix(request.query, options);
    key = VersionPrefix(version) + suffix;

    if (LookupCacheLocked(suffix, hit)) {
      action = Action::kHit;
    } else if (auto flight = flights_.find(key); flight != flights_.end()) {
      // Count the coalesce *before* the waiter is published (still under
      // mu_): the leader may deliver this waiter's completion the moment
      // the lock drops, and a metrics snapshot taken then must already
      // see the coalesced counter — otherwise `completed` can transiently
      // exceed `cache_hits + coalesced + executed` (see Snapshot()).
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      flight->second->waiters.push_back(Waiter{completion, submit_time});
      action = Action::kCoalesce;
    } else if (pending_ >= options_.max_pending) {
      action = Action::kReject;
    } else {
      ++pending_;
      if (options_.single_flight) {
        flights_.emplace(key, std::make_shared<Flight>());
      }
      if (options_.max_batch_size > 1) {
        // Batch scheduler: this execution becomes a lane of an open
        // collection window with a compatible fingerprint, or opens one.
        // The lane keeps its own flight key, promise, and deadline; the
        // caller's cancel hook moves out of the shared options (it is
        // per lane, and not part of any key).
        batch_key = BatchKey(options, version, snap->rates.Fingerprint());
        BatchLane lane;
        lane.key = std::move(key);
        lane.query = std::move(request.query);
        lane.caller_cancel = std::move(options.objectrank.cancel);
        options.objectrank.cancel = nullptr;
        lane.completion = completion;
        lane.submit_time = submit_time;
        lane.deadline = deadline;
        lane.has_deadline = has_deadline;
        if (auto it = open_batches_.find(batch_key);
            it != open_batches_.end() && !it->second->closed &&
            it->second->lanes.size() < options_.max_batch_size) {
          it->second->lanes.push_back(std::move(lane));
          if (it->second->lanes.size() >= options_.max_batch_size) {
            // Full: flush now. Erasing under the same lock that joined
            // the lane means late arrivals open a fresh window instead
            // of racing this one's execution.
            it->second->closed = true;
            it->second->cv.Signal();
            open_batches_.erase(it);
          }
          action = Action::kJoinBatch;
        } else {
          new_batch = std::make_shared<PendingBatch>();
          new_batch->snapshot = snap;
          new_batch->version = version;
          new_batch->options = options;
          new_batch->created = submit_time;
          new_batch->lanes.push_back(std::move(lane));
          open_batches_[batch_key] = new_batch;
          action = Action::kLeadBatch;
        }
      } else {
        action = Action::kLead;
      }
    }
  }

  switch (action) {
    case Action::kHit:
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      Fulfill(completion, std::move(hit), submit_time);
      break;
    case Action::kCoalesce:
      break;  // counted under mu_ above; the leader fulfills us
    case Action::kReject:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      completion->Deliver(UnavailableError(
          "admission queue full (" + std::to_string(options_.max_pending) +
          " executions pending)"));
      break;
    case Action::kLead:
      pool_->Submit([this, key = std::move(key), request = std::move(request),
                     snap = std::move(snap), version, options, completion,
                     submit_time, deadline, has_deadline]() mutable {
        Execute(std::move(key), std::move(request), std::move(snap), version,
                std::move(options), std::move(completion), submit_time,
                deadline, has_deadline);
      });
      break;
    case Action::kJoinBatch:
      break;  // the window's leader task executes and fulfills us
    case Action::kLeadBatch:
      pool_->Submit([this, batch = std::move(new_batch),
                     batch_key = std::move(batch_key)]() mutable {
        ExecuteBatch(std::move(batch), std::move(batch_key));
      });
      break;
  }
}

StatusOr<ServeResponse> SearchService::Search(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void SearchService::Execute(std::string key, ServeRequest request,
                            std::shared_ptr<const ServeSnapshot> snapshot,
                            uint64_t version, core::SearchOptions options,
                            CompletionPtr completion,
                            Clock::time_point submit_time,
                            Clock::time_point deadline, bool has_deadline) {
  const Clock::time_point start = Clock::now();
  const double queue_seconds = ToSeconds(start - submit_time);

  StatusOr<core::SearchResult> result =
      Status(StatusCode::kInternal, "unset");
  if (has_deadline && start >= deadline) {
    result = DeadlineExceededError("deadline expired while queued (" +
                                   std::to_string(queue_seconds) + "s)");
  } else {
    if (has_deadline) {
      // Chain the deadline onto any caller-supplied hook; either trips
      // the cooperative cancellation in the power iteration.
      std::function<bool()> caller_cancel =
          std::move(options.objectrank.cancel);
      options.objectrank.cancel = [deadline, caller_cancel]() {
        return Clock::now() >= deadline ||
               (caller_cancel && caller_cancel());
      };
    }
    // A Searcher is one session's worth of mutable warm-start state, so
    // each execution gets a fresh one on the stack; the graphs, corpus,
    // and rank cache it reads are shared, immutable snapshot members.
    core::Searcher searcher(*snapshot->data, *snapshot->authority,
                            *snapshot->corpus);
    if (snapshot->rank_cache != nullptr) {
      searcher.AttachRankCache(snapshot->rank_cache.get());
    }
    if (snapshot->fused_cache != nullptr) {
      // Every request reuses the snapshot's materialized SpMV layouts
      // instead of resolving rates per edge per iteration.
      searcher.AttachFusedCache(snapshot->fused_cache);
    }
    result = searcher.Search(request.query, snapshot->rates, options);
  }

  FinishExecution(key, version, result, completion, submit_time,
                  queue_seconds, /*batch_lanes=*/0);
}

void SearchService::ExecuteBatch(std::shared_ptr<PendingBatch> batch,
                                 std::string batch_key) {
  std::vector<BatchLane> lanes;
  {
    MutexLock lock(mu_);
    const Clock::time_point flush_at =
        batch->created +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options_.max_batch_delay_ms /
                                          1e3));
    // Sleep until the window fills (a joiner closes it and notifies) or
    // its delay expires. Spurious wakeups just re-check the predicate;
    // WaitUntil returning false means the delay expired.
    while (!batch->closed) {
      if (!batch->cv.WaitUntil(mu_, flush_at)) break;
    }
    if (!batch->closed) {
      // Expired: close and unpublish it so late arrivals open a fresh
      // window instead of joining one that is about to run.
      batch->closed = true;
      if (auto it = open_batches_.find(batch_key);
          it != open_batches_.end() && it->second == batch) {
        open_batches_.erase(it);
      }
    }
    lanes = std::move(batch->lanes);
  }
  RunBatch(batch, std::move(lanes));
}

void SearchService::RunBatch(const std::shared_ptr<PendingBatch>& batch,
                             std::vector<BatchLane> lanes) {
  const Clock::time_point start = Clock::now();

  // Lanes whose deadline expired while the window collected fail without
  // computing — exactly the queued-expiry path of a solo execution; the
  // rest of the batch goes on.
  std::vector<size_t> live;
  live.reserve(lanes.size());
  for (size_t i = 0; i < lanes.size(); ++i) {
    BatchLane& lane = lanes[i];
    if (lane.has_deadline && start >= lane.deadline) {
      const double queue_seconds = ToSeconds(start - lane.submit_time);
      const StatusOr<core::SearchResult> expired = DeadlineExceededError(
          "deadline expired while queued (" + std::to_string(queue_seconds) +
          "s)");
      FinishExecution(lane.key, batch->version, expired, lane.completion,
                      lane.submit_time, queue_seconds, /*batch_lanes=*/0);
    } else {
      live.push_back(i);
    }
  }
  if (live.empty()) return;

  std::vector<core::BatchSearchRequest> requests;
  requests.reserve(live.size());
  for (const size_t i : live) {
    BatchLane& lane = lanes[i];
    core::BatchSearchRequest request;
    request.query = std::move(lane.query);
    if (lane.has_deadline) {
      // Chain this lane's deadline onto its caller hook; either retires
      // only this lane from the block.
      const Clock::time_point deadline = lane.deadline;
      std::function<bool()> caller = lane.caller_cancel;
      request.cancel = [deadline, caller] {
        return Clock::now() >= deadline || (caller && caller());
      };
    } else {
      request.cancel = lane.caller_cancel;
    }
    requests.push_back(std::move(request));
  }

  const std::shared_ptr<const ServeSnapshot>& snapshot = batch->snapshot;
  // One fresh Searcher serves the whole batch (it is one "session" of
  // concurrent lanes); graphs, corpus, and caches are shared immutable
  // snapshot members, as in Execute().
  core::Searcher searcher(*snapshot->data, *snapshot->authority,
                          *snapshot->corpus);
  if (snapshot->rank_cache != nullptr) {
    searcher.AttachRankCache(snapshot->rank_cache.get());
  }
  if (snapshot->fused_cache != nullptr) {
    searcher.AttachFusedCache(snapshot->fused_cache);
  }
  const std::vector<StatusOr<core::SearchResult>> results =
      searcher.SearchBatch(requests, snapshot->rates, batch->options);

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(live.size(), std::memory_order_relaxed);
  uint64_t seen = batch_occupancy_max_.load(std::memory_order_relaxed);
  while (seen < live.size() &&
         !batch_occupancy_max_.compare_exchange_weak(
             seen, live.size(), std::memory_order_relaxed)) {
  }

  for (size_t k = 0; k < live.size(); ++k) {
    BatchLane& lane = lanes[live[k]];
    FinishExecution(lane.key, batch->version, results[k], lane.completion,
                    lane.submit_time, ToSeconds(start - lane.submit_time),
                    live.size());
  }
}

void SearchService::FinishExecution(const std::string& key, uint64_t version,
                                    const StatusOr<core::SearchResult>& result,
                                    const CompletionPtr& completion,
                                    Clock::time_point submit_time,
                                    double queue_seconds,
                                    size_t batch_lanes) {
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Tier accounting keys on what actually answered (tier_used), so an
    // escalated approximate request lands under exact — escalations_
    // keeps the count of those separately.
    switch (result->tier_used) {
      case core::SearchTier::kApproximate:
        tier_approximate_.fetch_add(1, std::memory_order_relaxed);
        tier_latency_[1].Record(result->seconds);
        break;
      case core::SearchTier::kCached:
        tier_cached_.fetch_add(1, std::memory_order_relaxed);
        tier_latency_[2].Record(result->seconds);
        break;
      default:
        tier_exact_.fetch_add(1, std::memory_order_relaxed);
        tier_latency_[0].Record(result->seconds);
        break;
    }
    if (result->escalated) {
      escalations_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto reason = static_cast<size_t>(result->cache_miss_reason);
    if (reason != 0 && reason < miss_reasons_.size()) {
      miss_reasons_[reason].fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<Waiter> waiters;
  {
    MutexLock lock(mu_);
    --pending_;
    if (auto it = flights_.find(key); it != flights_.end()) {
      waiters = std::move(it->second->waiters);
      flights_.erase(it);
    }
    // Cache any result whose version is still inside the retention
    // window: a result computed against the previous snapshot can keep
    // serving hits until retention slides past it. Versions a concurrent
    // swap already aged out stay uncached — their keyspace is dead.
    const uint64_t keep =
        std::max<uint64_t>(1, options_.result_cache_versions);
    if (result.ok() && version <= version_ && version_ - version < keep) {
      CacheResultLocked(key, version, *result);
    }
  }

  if (result.ok()) {
    ServeResponse response;
    response.result = *result;
    response.snapshot_version = version;
    response.queue_seconds = queue_seconds;
    response.batch_lanes = batch_lanes;
    Fulfill(completion, std::move(response), submit_time);
    for (Waiter& w : waiters) {
      ServeResponse echoed;
      echoed.result = *result;
      echoed.coalesced = true;
      echoed.snapshot_version = version;
      echoed.batch_lanes = batch_lanes;
      Fulfill(w.completion, std::move(echoed), w.submit_time);
    }
  } else {
    Fulfill(completion, result.status(), submit_time);
    for (Waiter& w : waiters) {
      Fulfill(w.completion, result.status(), w.submit_time);
    }
  }
}

void SearchService::Fulfill(const CompletionPtr& completion,
                            ResponseOr response,
                            Clock::time_point submit_time) {
  const double total = ToSeconds(Clock::now() - submit_time);
  if (response.ok()) response->total_seconds = total;
  // Metrics first: a caller unblocked by Deliver must already see this
  // completion in Snapshot(). The release pairs with Snapshot()'s acquire
  // load of completed_: every action counter (cache_hits_, coalesced_,
  // executed_, rejected_) incremented before this line is visible to a
  // snapshot that observes this completion, so the invariant
  //   completed <= cache_hits + coalesced + executed
  // holds in every cut.
  latency_.Record(total);
  completed_.fetch_add(1, std::memory_order_release);
  completion->Deliver(std::move(response));
}

bool SearchService::LookupCacheLocked(const std::string& suffix,
                                      ServeResponse& hit) {
  // Probe newest-first so a request always prefers the freshest retained
  // result for its query; older versions only answer when the current one
  // has no entry yet (the window right after a hot swap).
  const uint64_t keep = std::max<uint64_t>(1, options_.result_cache_versions);
  for (uint64_t back = 0; back < keep && back < version_; ++back) {
    const std::string probe = VersionPrefix(version_ - back) + suffix;
    if (auto it = cached_.find(probe); it != cached_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      hit.result = it->second->result;
      hit.cache_hit = true;
      hit.snapshot_version = it->second->snapshot_version;
      return true;
    }
  }
  return false;
}

void SearchService::CacheResultLocked(const std::string& key,
                                      uint64_t version,
                                      const core::SearchResult& result) {
  if (options_.result_cache_entries == 0) return;
  if (auto it = cached_.find(key); it != cached_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // a coalesced burst already cached this key
  }
  lru_.push_front(CachedResult{key, version, result});
  cached_[key] = lru_.begin();
  while (lru_.size() > options_.result_cache_entries) {
    cached_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void SearchService::SwapSnapshot(
    std::shared_ptr<const ServeSnapshot> snapshot) {
  ORX_CHECK_MSG(snapshot != nullptr && snapshot->Complete(),
                "SwapSnapshot needs a complete snapshot");
  MutexLock lock(mu_);
  snapshot_ = std::move(snapshot);
  ++version_;
  // Evict only the entries that slid out of the retention window; the
  // rest keep serving (slightly stale) hits, so a steady read workload
  // doesn't pay a full cold cache on every publication.
  const uint64_t keep = std::max<uint64_t>(1, options_.result_cache_versions);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->snapshot_version + keep <= version_) {
      cached_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<const ServeSnapshot> SearchService::snapshot() const {
  MutexLock lock(mu_);
  return snapshot_;
}

uint64_t SearchService::snapshot_version() const {
  MutexLock lock(mu_);
  return version_;
}

ServeMetrics SearchService::Snapshot() const {
  ServeMetrics m;
  // completed_ is read FIRST, with acquire: it is the publication counter
  // (incremented with release in Fulfill, after the action counters).
  // Reading it before the others guarantees every completion this
  // snapshot counts has its cache-hit/coalesce/execute increment already
  // visible, so `completed <= cache_hits + coalesced + executed` and
  // `completed <= submitted` hold in every snapshot — the counters can
  // only read *ahead* of the completed cut, never behind it.
  m.completed = completed_.load(std::memory_order_acquire);
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  m.coalesced = coalesced_.load(std::memory_order_relaxed);
  m.executed = executed_.load(std::memory_order_relaxed);
  m.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  m.batches = batches_.load(std::memory_order_relaxed);
  m.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  m.batch_occupancy_max =
      batch_occupancy_max_.load(std::memory_order_relaxed);
  m.batch_occupancy_mean =
      m.batches > 0
          ? static_cast<double>(m.batched_queries) /
                static_cast<double>(m.batches)
          : 0.0;
  m.tier_exact = tier_exact_.load(std::memory_order_relaxed);
  m.tier_approximate = tier_approximate_.load(std::memory_order_relaxed);
  m.tier_cached = tier_cached_.load(std::memory_order_relaxed);
  m.escalations = escalations_.load(std::memory_order_relaxed);
  using core::CacheMissReason;
  const auto miss = [&](CacheMissReason r) {
    return miss_reasons_[static_cast<size_t>(r)].load(
        std::memory_order_relaxed);
  };
  m.miss_no_cache = miss(CacheMissReason::kNoCache);
  m.miss_rates_mismatch = miss(CacheMissReason::kRatesMismatch);
  m.miss_bm25_mismatch = miss(CacheMissReason::kBm25Mismatch);
  m.miss_missing_terms = miss(CacheMissReason::kMissingTerms);
  m.miss_error_budget = miss(CacheMissReason::kErrorBudget);
  m.tier_exact_p50 = tier_latency_[0].Percentile(50);
  m.tier_exact_p99 = tier_latency_[0].Percentile(99);
  m.tier_approximate_p50 = tier_latency_[1].Percentile(50);
  m.tier_approximate_p99 = tier_latency_[1].Percentile(99);
  m.tier_cached_p50 = tier_latency_[2].Percentile(50);
  m.tier_cached_p99 = tier_latency_[2].Percentile(99);
  m.uptime_seconds = ToSeconds(Clock::now() - start_time_);
  m.qps = m.uptime_seconds > 0.0
              ? static_cast<double>(m.completed) / m.uptime_seconds
              : 0.0;
  m.latency_mean = latency_.MeanSeconds();
  m.latency_p50 = latency_.Percentile(50);
  m.latency_p95 = latency_.Percentile(95);
  m.latency_p99 = latency_.Percentile(99);
  return m;
}

}  // namespace orx::serve
